//! Cross-compiler from HIR to virtual-register code.
//!
//! This is the analogue of the paper's in-kernel cross-compiler from the
//! scheduler intermediate representation to eBPF assembly (§4.1, "eBPF
//! Compilation"). Declarative primitives are *fused*: `FILTER` chains
//! compile to inlined predicate tests inside a single scan loop, so
//! aggregate values (subflow lists, queue views) never materialize at
//! runtime — this is the "combines scheduler primitives, such as FILTER,
//! reducing the number of loops and function calls" optimization.
//!
//! Aggregate-typed variables are re-expanded at each use site from their
//! recorded initializer ([`crate::hir::HProgram::aggregate_init`]);
//! predicates are pure, so re-evaluation is semantically transparent.
//!
//! The output uses unlimited virtual registers; [`crate::regalloc`] maps
//! them onto the machine registers `r6`..`r9` plus spill slots.

use crate::ast::{BinOp, UnOp};
use crate::bytecode::{AluOp, Cond, Helper};
use crate::env::QueueKind;
use crate::error::{CompileError, Pos, Stage};
use crate::exec::NULL_HANDLE;
use crate::hir::{ExprId, HExpr, HProgram, HStmt, StmtId, VarSlot};

/// A virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(pub u32);

/// A branch-target label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(pub u32);

/// Virtual-register instruction (three-address form).
#[derive(Debug, Clone, PartialEq)]
pub enum VInsn {
    /// Branch-target marker; emits no machine code.
    Label(Label),
    /// `dst = imm`
    MovImm {
        /// Destination.
        dst: VReg,
        /// Immediate.
        imm: i64,
    },
    /// `dst = src`
    Mov {
        /// Destination.
        dst: VReg,
        /// Source.
        src: VReg,
    },
    /// `dst = a op b`
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        dst: VReg,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
    },
    /// `dst = a op imm`
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination.
        dst: VReg,
        /// Left operand.
        a: VReg,
        /// Immediate right operand.
        imm: i64,
    },
    /// `dst = -src`
    Neg {
        /// Destination.
        dst: VReg,
        /// Source.
        src: VReg,
    },
    /// Unconditional jump.
    Ja(Label),
    /// Conditional jump comparing two virtual registers.
    Jcc {
        /// Condition.
        cond: Cond,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
        /// Branch target when the condition holds.
        target: Label,
    },
    /// Conditional jump comparing a virtual register with an immediate.
    JccImm {
        /// Condition.
        cond: Cond,
        /// Left operand.
        a: VReg,
        /// Immediate right operand.
        imm: i64,
        /// Branch target when the condition holds.
        target: Label,
    },
    /// Helper call.
    Call {
        /// The helper.
        helper: Helper,
        /// Argument virtual registers (≤ 5).
        args: Vec<VReg>,
        /// Destination of the result, when used.
        ret: Option<VReg>,
    },
    /// Terminate execution.
    Exit,
}

/// Virtual-register code plus the instruction → source-span side table.
///
/// `spans[i]` is the source position of the HIR construct that produced
/// `insns[i]`; [`crate::regalloc`] threads the spans through lowering so
/// every machine instruction in the final [`crate::bytecode::DebugTable`]
/// maps back to scheduler source.
#[derive(Debug, Clone, PartialEq)]
pub struct VCode {
    /// The virtual-register instruction stream.
    pub insns: Vec<VInsn>,
    /// Source position per instruction, parallel to `insns`.
    pub spans: Vec<Pos>,
}

impl VCode {
    /// Wraps a hand-built instruction list with `0:0` spans (tests and
    /// synthetic programs that have no source).
    pub fn from_insns(insns: Vec<VInsn>) -> Self {
        let spans = vec![Pos { line: 0, col: 0 }; insns.len()];
        VCode { insns, spans }
    }
}

/// Generates virtual-register code for a lowered program.
pub fn generate(prog: &HProgram) -> Result<VCode, CompileError> {
    let mut cg = Cg {
        prog,
        out: Vec::new(),
        spans: Vec::new(),
        cur_pos: Pos::new(0, 0),
        next_vreg: 0,
        next_label: 0,
        slot_vreg: vec![None; prog.n_slots],
    };
    for &sid in &prog.body {
        cg.gen_stmt(sid)?;
    }
    cg.emit(VInsn::Exit);
    Ok(VCode {
        insns: cg.out,
        spans: cg.spans,
    })
}

/// Decomposed subflow-list expression: the `SUBFLOWS` base plus a fused
/// predicate chain.
struct ListChain {
    filters: Vec<(VarSlot, ExprId)>,
}

struct Cg<'p> {
    prog: &'p HProgram,
    out: Vec<VInsn>,
    /// Source span per emitted instruction, parallel to `out`.
    spans: Vec<Pos>,
    /// Position of the construct currently being lowered; stamped onto
    /// every instruction [`Cg::emit`] produces.
    cur_pos: Pos,
    next_vreg: u32,
    next_label: u32,
    slot_vreg: Vec<Option<VReg>>,
}

impl<'p> Cg<'p> {
    fn vreg(&mut self) -> VReg {
        let v = VReg(self.next_vreg);
        self.next_vreg += 1;
        v
    }

    fn label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    fn emit(&mut self, i: VInsn) {
        self.out.push(i);
        self.spans.push(self.cur_pos);
    }

    fn place(&mut self, l: Label) {
        self.emit(VInsn::Label(l));
    }

    fn slot(&mut self, s: VarSlot) -> VReg {
        if let Some(v) = self.slot_vreg[s.0 as usize] {
            v
        } else {
            let v = self.vreg();
            self.slot_vreg[s.0 as usize] = Some(v);
            v
        }
    }

    fn imm(&mut self, value: i64) -> VReg {
        let v = self.vreg();
        self.emit(VInsn::MovImm { dst: v, imm: value });
        v
    }

    fn internal_err(&self, msg: &str) -> CompileError {
        CompileError::new(Stage::Codegen, Pos::new(0, 0), msg.to_string())
    }

    // ----- aggregate decomposition -----

    fn decompose_list(&self, e: ExprId, chain: &mut ListChain) -> Result<(), CompileError> {
        match self.prog.expr(e) {
            HExpr::Subflows => Ok(()),
            HExpr::ListFilter { list, var, pred } => {
                self.decompose_list(*list, chain)?;
                chain.filters.push((*var, *pred));
                Ok(())
            }
            HExpr::ReadVar(slot) => {
                let init = self.prog.aggregate_init[slot.0 as usize]
                    .ok_or_else(|| self.internal_err("aggregate variable without initializer"))?;
                self.decompose_list(init, chain)
            }
            _ => Err(self.internal_err("expression is not a subflow list")),
        }
    }

    fn decompose_queue(
        &self,
        e: ExprId,
        filters: &mut Vec<(VarSlot, ExprId)>,
    ) -> Result<QueueKind, CompileError> {
        match self.prog.expr(e) {
            HExpr::Queue(kind) => Ok(*kind),
            HExpr::QueueFilter { queue, var, pred } => {
                let kind = self.decompose_queue(*queue, filters)?;
                filters.push((*var, *pred));
                Ok(kind)
            }
            HExpr::ReadVar(slot) => {
                let init = self.prog.aggregate_init[slot.0 as usize]
                    .ok_or_else(|| self.internal_err("aggregate variable without initializer"))?;
                self.decompose_queue(init, filters)
            }
            _ => Err(self.internal_err("expression is not a packet queue")),
        }
    }

    // ----- loop generation -----

    /// Emits a loop over the decomposed subflow list. `body` receives the
    /// current subflow handle and the loop's break label.
    fn gen_list_loop<F>(&mut self, list: ExprId, mut body: F) -> Result<(), CompileError>
    where
        F: FnMut(&mut Self, VReg, Label) -> Result<(), CompileError>,
    {
        let mut chain = ListChain {
            filters: Vec::new(),
        };
        self.decompose_list(list, &mut chain)?;

        let idx = self.vreg();
        let n = self.vreg();
        self.emit(VInsn::MovImm { dst: idx, imm: 0 });
        self.emit(VInsn::Call {
            helper: Helper::SubflowCount,
            args: vec![],
            ret: Some(n),
        });
        let head = self.label();
        let cont = self.label();
        let end = self.label();
        self.place(head);
        self.emit(VInsn::Jcc {
            cond: Cond::Ge,
            a: idx,
            b: n,
            target: end,
        });
        let sbf = self.vreg();
        self.emit(VInsn::Call {
            helper: Helper::SubflowAt,
            args: vec![idx],
            ret: Some(sbf),
        });
        for &(slot, pred) in &chain.filters {
            let bound = self.slot(slot);
            self.emit(VInsn::Mov {
                dst: bound,
                src: sbf,
            });
            let p = self.gen_expr(pred)?;
            self.emit(VInsn::JccImm {
                cond: Cond::Eq,
                a: p,
                imm: 0,
                target: cont,
            });
        }
        body(self, sbf, end)?;
        self.place(cont);
        self.emit(VInsn::AluImm {
            op: AluOp::Add,
            dst: idx,
            a: idx,
            imm: 1,
        });
        self.emit(VInsn::Ja(head));
        self.place(end);
        Ok(())
    }

    /// Emits a loop over the visible, matching packets of a queue view.
    fn gen_queue_loop<F>(&mut self, queue: ExprId, mut body: F) -> Result<(), CompileError>
    where
        F: FnMut(&mut Self, VReg, Label) -> Result<(), CompileError>,
    {
        let mut filters = Vec::new();
        let kind = self.decompose_queue(queue, &mut filters)?;

        let idx = self.vreg();
        let n = self.vreg();
        let kind_reg = self.imm(kind.code());
        self.emit(VInsn::MovImm { dst: idx, imm: 0 });
        self.emit(VInsn::Call {
            helper: Helper::QueueLen,
            args: vec![kind_reg],
            ret: Some(n),
        });
        let head = self.label();
        let cont = self.label();
        let end = self.label();
        self.place(head);
        self.emit(VInsn::Jcc {
            cond: Cond::Ge,
            a: idx,
            b: n,
            target: end,
        });
        let pkt = self.vreg();
        self.emit(VInsn::Call {
            helper: Helper::QueueGet,
            args: vec![kind_reg, idx],
            ret: Some(pkt),
        });
        // Skip packets removed earlier in this execution.
        self.emit(VInsn::JccImm {
            cond: Cond::Eq,
            a: pkt,
            imm: NULL_HANDLE,
            target: cont,
        });
        for &(slot, pred) in &filters {
            let bound = self.slot(slot);
            self.emit(VInsn::Mov {
                dst: bound,
                src: pkt,
            });
            let p = self.gen_expr(pred)?;
            self.emit(VInsn::JccImm {
                cond: Cond::Eq,
                a: p,
                imm: 0,
                target: cont,
            });
        }
        body(self, pkt, end)?;
        self.place(cont);
        self.emit(VInsn::AluImm {
            op: AluOp::Add,
            dst: idx,
            a: idx,
            imm: 1,
        });
        self.emit(VInsn::Ja(head));
        self.place(end);
        Ok(())
    }

    /// Emits the generic min/max selection loop shared by lists and queues.
    #[allow(clippy::too_many_arguments)]
    fn gen_minmax_body(
        &mut self,
        var: VarSlot,
        key: ExprId,
        is_max: bool,
        elem: VReg,
        best: VReg,
        bestk: VReg,
        first: VReg,
    ) -> Result<(), CompileError> {
        let bound = self.slot(var);
        self.emit(VInsn::Mov {
            dst: bound,
            src: elem,
        });
        let k = self.gen_expr(key)?;
        let take = self.label();
        let skip = self.label();
        self.emit(VInsn::JccImm {
            cond: Cond::Eq,
            a: first,
            imm: 1,
            target: take,
        });
        self.emit(VInsn::Jcc {
            cond: if is_max { Cond::Gt } else { Cond::Lt },
            a: k,
            b: bestk,
            target: take,
        });
        self.emit(VInsn::Ja(skip));
        self.place(take);
        self.emit(VInsn::Mov {
            dst: best,
            src: elem,
        });
        self.emit(VInsn::Mov { dst: bestk, src: k });
        self.emit(VInsn::MovImm { dst: first, imm: 0 });
        self.place(skip);
        Ok(())
    }

    // ----- statements -----

    fn gen_block(&mut self, body: &[StmtId]) -> Result<(), CompileError> {
        for &sid in body {
            self.gen_stmt(sid)?;
        }
        Ok(())
    }

    fn gen_stmt(&mut self, sid: StmtId) -> Result<(), CompileError> {
        self.cur_pos = self.prog.stmt_pos(sid);
        match self.prog.stmt(sid).clone() {
            HStmt::VarDecl { slot, init } => {
                if self.prog.slot_ty[slot.0 as usize].is_aggregate() {
                    // Fused at use sites; no code.
                    return Ok(());
                }
                let v = self.gen_expr(init)?;
                let dst = self.slot(slot);
                self.emit(VInsn::Mov { dst, src: v });
                Ok(())
            }
            HStmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self.gen_expr(cond)?;
                let l_else = self.label();
                let l_end = self.label();
                self.emit(VInsn::JccImm {
                    cond: Cond::Eq,
                    a: c,
                    imm: 0,
                    target: l_else,
                });
                self.gen_block(&then_body)?;
                self.emit(VInsn::Ja(l_end));
                self.place(l_else);
                self.gen_block(&else_body)?;
                self.place(l_end);
                Ok(())
            }
            HStmt::Foreach { slot, list, body } => self.gen_list_loop(list, |cg, sbf, _end| {
                let bound = cg.slot(slot);
                cg.emit(VInsn::Mov {
                    dst: bound,
                    src: sbf,
                });
                cg.gen_block(&body)
            }),
            HStmt::SetReg { reg, value } => {
                let v = self.gen_expr(value)?;
                let r = self.imm(reg.index() as i64);
                self.emit(VInsn::Call {
                    helper: Helper::SetReg,
                    args: vec![r, v],
                    ret: None,
                });
                Ok(())
            }
            HStmt::Push { target, packet } => {
                let t = self.gen_expr(target)?;
                let p = self.gen_expr(packet)?;
                self.emit(VInsn::Call {
                    helper: Helper::Push,
                    args: vec![t, p],
                    ret: None,
                });
                Ok(())
            }
            HStmt::Drop { packet } => {
                let p = self.gen_expr(packet)?;
                self.emit(VInsn::Call {
                    helper: Helper::DropPkt,
                    args: vec![p],
                    ret: None,
                });
                Ok(())
            }
            HStmt::Return => {
                self.emit(VInsn::Exit);
                Ok(())
            }
        }
    }

    // ----- expressions -----

    fn gen_expr(&mut self, eid: ExprId) -> Result<VReg, CompileError> {
        self.cur_pos = self.prog.expr_pos(eid);
        match self.prog.expr(eid).clone() {
            HExpr::Int(v) => Ok(self.imm(v)),
            HExpr::Bool(b) => Ok(self.imm(i64::from(b))),
            HExpr::NullPacket | HExpr::NullSubflow => Ok(self.imm(NULL_HANDLE)),
            HExpr::ReadReg(r) => {
                let idx = self.imm(r.index() as i64);
                let ret = self.vreg();
                self.emit(VInsn::Call {
                    helper: Helper::GetReg,
                    args: vec![idx],
                    ret: Some(ret),
                });
                Ok(ret)
            }
            HExpr::ReadVar(slot) => {
                debug_assert!(
                    !self.prog.slot_ty[slot.0 as usize].is_aggregate(),
                    "aggregate reads are fused at use sites"
                );
                Ok(self.slot(slot))
            }
            HExpr::Subflows
            | HExpr::Queue(_)
            | HExpr::ListFilter { .. }
            | HExpr::QueueFilter { .. } => {
                Err(self.internal_err("aggregate expression evaluated as scalar"))
            }
            HExpr::SubflowProp { sbf, prop } => {
                let s = self.gen_expr(sbf)?;
                let p = self.imm(prop.code());
                let ret = self.vreg();
                self.emit(VInsn::Call {
                    helper: Helper::SubflowProp,
                    args: vec![s, p],
                    ret: Some(ret),
                });
                Ok(ret)
            }
            HExpr::PacketProp { pkt, prop } => {
                let s = self.gen_expr(pkt)?;
                let p = self.imm(prop.code());
                let ret = self.vreg();
                self.emit(VInsn::Call {
                    helper: Helper::PacketProp,
                    args: vec![s, p],
                    ret: Some(ret),
                });
                Ok(ret)
            }
            HExpr::SentOn { pkt, sbf } => {
                let p = self.gen_expr(pkt)?;
                let s = self.gen_expr(sbf)?;
                let ret = self.vreg();
                self.emit(VInsn::Call {
                    helper: Helper::SentOn,
                    args: vec![p, s],
                    ret: Some(ret),
                });
                Ok(ret)
            }
            HExpr::HasWindowFor { sbf, pkt } => {
                let s = self.gen_expr(sbf)?;
                let p = self.gen_expr(pkt)?;
                let ret = self.vreg();
                self.emit(VInsn::Call {
                    helper: Helper::HasWindowFor,
                    args: vec![s, p],
                    ret: Some(ret),
                });
                Ok(ret)
            }
            HExpr::ListMinMax {
                list,
                var,
                key,
                is_max,
            } => {
                let best = self.vreg();
                let bestk = self.vreg();
                let first = self.vreg();
                self.emit(VInsn::MovImm {
                    dst: best,
                    imm: NULL_HANDLE,
                });
                self.emit(VInsn::MovImm { dst: bestk, imm: 0 });
                self.emit(VInsn::MovImm { dst: first, imm: 1 });
                self.gen_list_loop(list, |cg, sbf, _| {
                    cg.gen_minmax_body(var, key, is_max, sbf, best, bestk, first)
                })?;
                Ok(best)
            }
            HExpr::QueueMinMax {
                queue,
                var,
                key,
                is_max,
            } => {
                let best = self.vreg();
                let bestk = self.vreg();
                let first = self.vreg();
                self.emit(VInsn::MovImm {
                    dst: best,
                    imm: NULL_HANDLE,
                });
                self.emit(VInsn::MovImm { dst: bestk, imm: 0 });
                self.emit(VInsn::MovImm { dst: first, imm: 1 });
                self.gen_queue_loop(queue, |cg, pkt, _| {
                    cg.gen_minmax_body(var, key, is_max, pkt, best, bestk, first)
                })?;
                Ok(best)
            }
            HExpr::ListSum { list, var, key } => {
                let total = self.vreg();
                self.emit(VInsn::MovImm { dst: total, imm: 0 });
                self.gen_list_loop(list, |cg, sbf, _| {
                    let bound = cg.slot(var);
                    cg.emit(VInsn::Mov {
                        dst: bound,
                        src: sbf,
                    });
                    let k = cg.gen_expr(key)?;
                    cg.emit(VInsn::Alu {
                        op: AluOp::Add,
                        dst: total,
                        a: total,
                        b: k,
                    });
                    Ok(())
                })?;
                Ok(total)
            }
            HExpr::QueueSum { queue, var, key } => {
                let total = self.vreg();
                self.emit(VInsn::MovImm { dst: total, imm: 0 });
                self.gen_queue_loop(queue, |cg, pkt, _| {
                    let bound = cg.slot(var);
                    cg.emit(VInsn::Mov {
                        dst: bound,
                        src: pkt,
                    });
                    let k = cg.gen_expr(key)?;
                    cg.emit(VInsn::Alu {
                        op: AluOp::Add,
                        dst: total,
                        a: total,
                        b: k,
                    });
                    Ok(())
                })?;
                Ok(total)
            }
            HExpr::ListCount(list) => {
                let count = self.vreg();
                self.emit(VInsn::MovImm { dst: count, imm: 0 });
                self.gen_list_loop(list, |cg, _sbf, _| {
                    cg.emit(VInsn::AluImm {
                        op: AluOp::Add,
                        dst: count,
                        a: count,
                        imm: 1,
                    });
                    Ok(())
                })?;
                Ok(count)
            }
            HExpr::QueueCount(queue) => {
                let count = self.vreg();
                self.emit(VInsn::MovImm { dst: count, imm: 0 });
                self.gen_queue_loop(queue, |cg, _pkt, _| {
                    cg.emit(VInsn::AluImm {
                        op: AluOp::Add,
                        dst: count,
                        a: count,
                        imm: 1,
                    });
                    Ok(())
                })?;
                Ok(count)
            }
            HExpr::ListEmpty(list) => {
                let empty = self.vreg();
                self.emit(VInsn::MovImm { dst: empty, imm: 1 });
                self.gen_list_loop(list, |cg, _sbf, end| {
                    cg.emit(VInsn::MovImm { dst: empty, imm: 0 });
                    cg.emit(VInsn::Ja(end));
                    Ok(())
                })?;
                Ok(empty)
            }
            HExpr::QueueEmpty(queue) => {
                let empty = self.vreg();
                self.emit(VInsn::MovImm { dst: empty, imm: 1 });
                self.gen_queue_loop(queue, |cg, _pkt, end| {
                    cg.emit(VInsn::MovImm { dst: empty, imm: 0 });
                    cg.emit(VInsn::Ja(end));
                    Ok(())
                })?;
                Ok(empty)
            }
            HExpr::ListGet { list, index } => {
                let target = self.gen_expr(index)?;
                let result = self.vreg();
                let cnt = self.vreg();
                self.emit(VInsn::MovImm {
                    dst: result,
                    imm: NULL_HANDLE,
                });
                self.emit(VInsn::MovImm { dst: cnt, imm: 0 });
                self.gen_list_loop(list, |cg, sbf, end| {
                    let next = cg.label();
                    cg.emit(VInsn::Jcc {
                        cond: Cond::Ne,
                        a: cnt,
                        b: target,
                        target: next,
                    });
                    cg.emit(VInsn::Mov {
                        dst: result,
                        src: sbf,
                    });
                    cg.emit(VInsn::Ja(end));
                    cg.place(next);
                    cg.emit(VInsn::AluImm {
                        op: AluOp::Add,
                        dst: cnt,
                        a: cnt,
                        imm: 1,
                    });
                    Ok(())
                })?;
                Ok(result)
            }
            HExpr::QueueTop(queue) => {
                let result = self.vreg();
                self.emit(VInsn::MovImm {
                    dst: result,
                    imm: NULL_HANDLE,
                });
                self.gen_queue_loop(queue, |cg, pkt, end| {
                    cg.emit(VInsn::Mov {
                        dst: result,
                        src: pkt,
                    });
                    cg.emit(VInsn::Ja(end));
                    Ok(())
                })?;
                Ok(result)
            }
            HExpr::QueuePop(queue) => {
                let result = self.vreg();
                self.emit(VInsn::MovImm {
                    dst: result,
                    imm: NULL_HANDLE,
                });
                self.gen_queue_loop(queue, |cg, pkt, end| {
                    cg.emit(VInsn::Mov {
                        dst: result,
                        src: pkt,
                    });
                    cg.emit(VInsn::Ja(end));
                    Ok(())
                })?;
                self.emit(VInsn::Call {
                    helper: Helper::Pop,
                    args: vec![result],
                    ret: None,
                });
                Ok(result)
            }
            HExpr::Unary { op, expr } => {
                let v = self.gen_expr(expr)?;
                let dst = self.vreg();
                match op {
                    UnOp::Not => self.emit(VInsn::AluImm {
                        op: AluOp::Xor,
                        dst,
                        a: v,
                        imm: 1,
                    }),
                    UnOp::Neg => self.emit(VInsn::Neg { dst, src: v }),
                }
                Ok(dst)
            }
            HExpr::Binary { op, lhs, rhs, .. } => {
                let a = self.gen_expr(lhs)?;
                let b = self.gen_expr(rhs)?;
                let dst = self.vreg();
                let alu = match op {
                    BinOp::Add => Some(AluOp::Add),
                    BinOp::Sub => Some(AluOp::Sub),
                    BinOp::Mul => Some(AluOp::Mul),
                    BinOp::Div => Some(AluOp::Div),
                    BinOp::Rem => Some(AluOp::Rem),
                    BinOp::And => Some(AluOp::And),
                    BinOp::Or => Some(AluOp::Or),
                    _ => None,
                };
                if let Some(alu) = alu {
                    self.emit(VInsn::Alu { op: alu, dst, a, b });
                    return Ok(dst);
                }
                let cond = match op {
                    BinOp::Eq => Cond::Eq,
                    BinOp::Ne => Cond::Ne,
                    BinOp::Lt => Cond::Lt,
                    BinOp::Le => Cond::Le,
                    BinOp::Gt => Cond::Gt,
                    BinOp::Ge => Cond::Ge,
                    _ => unreachable!("arith/logic handled above"),
                };
                let l_true = self.label();
                self.emit(VInsn::MovImm { dst, imm: 1 });
                self.emit(VInsn::Jcc {
                    cond,
                    a,
                    b,
                    target: l_true,
                });
                self.emit(VInsn::MovImm { dst, imm: 0 });
                self.place(l_true);
                Ok(dst)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::sema::lower;

    fn gen(src: &str) -> Vec<VInsn> {
        generate(&lower(&parse(src).unwrap()).unwrap())
            .unwrap()
            .insns
    }

    #[test]
    fn spans_are_parallel_to_insns_and_nonzero() {
        let vcode =
            generate(&lower(&parse("SET(R1, 2);\nSET(R2, SUBFLOWS.COUNT);").unwrap()).unwrap())
                .unwrap();
        assert_eq!(vcode.insns.len(), vcode.spans.len());
        // Everything except the synthetic trailing Exit carries a real
        // source position; the second statement's code points at line 2.
        assert!(vcode.spans[..vcode.spans.len() - 1]
            .iter()
            .all(|p| p.line >= 1));
        assert!(vcode.spans.iter().any(|p| p.line == 2));
    }

    #[test]
    fn generates_code_for_min_rtt() {
        let code = gen(
            "IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) { SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP()); }",
        );
        assert!(matches!(code.last(), Some(VInsn::Exit)));
        // Push helper must appear exactly once.
        let pushes = code
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    VInsn::Call {
                        helper: Helper::Push,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(pushes, 1);
    }

    #[test]
    fn filter_chains_are_fused_into_one_loop() {
        // Two chained filters over SUBFLOWS consumed by COUNT: a single
        // SubflowCount call drives a single loop.
        let code = gen("SET(R1, SUBFLOWS.FILTER(s => s.RTT > 1).FILTER(t => t.CWND > 1).COUNT);");
        let loops = code
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    VInsn::Call {
                        helper: Helper::SubflowCount,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(loops, 1, "fused filters share one scan loop");
    }

    #[test]
    fn aggregate_vars_are_inlined_per_use() {
        // `sbfs` used twice -> the subflow scan is expanded twice.
        let code = gen("VAR sbfs = SUBFLOWS.FILTER(s => s.RTT > 0);
             SET(R1, sbfs.COUNT);
             SET(R2, sbfs.COUNT);");
        let loops = code
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    VInsn::Call {
                        helper: Helper::SubflowCount,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(loops, 2);
    }

    #[test]
    fn return_emits_exit() {
        let code = gen("RETURN; SET(R1, 1);");
        let exits = code.iter().filter(|i| matches!(i, VInsn::Exit)).count();
        assert_eq!(exits, 2, "explicit RETURN plus trailing Exit");
    }

    #[test]
    fn pop_calls_pop_helper() {
        let code = gen("DROP(Q.POP());");
        assert!(code.iter().any(|i| matches!(
            i,
            VInsn::Call {
                helper: Helper::Pop,
                ..
            }
        )));
        assert!(code.iter().any(|i| matches!(
            i,
            VInsn::Call {
                helper: Helper::DropPkt,
                ..
            }
        )));
    }
}
