//! The per-execution runtime context shared by all backends.
//!
//! [`ExecCtx`] wraps a read-only borrow of a [`SchedulerEnv`] for the
//! duration of one scheduler execution and implements the effect model of
//! the paper's `action_queue` (§4.1):
//!
//! * subflow and packet **properties are immutable** during one execution —
//!   reads go straight to the environment snapshot;
//! * **`POP`/`DROP` are immediately visible** in the queue views of the
//!   same execution (the "augmented queue" of Fig. 6);
//! * **`PUSH` and `DROP` are buffered** as [`Action`]s and applied by the
//!   environment after the execution completes;
//! * **register writes are immediately visible** to subsequent reads in
//!   the same execution (required by the round-robin scheduler of Fig. 5)
//!   and flushed to the environment afterwards;
//! * a packet that was popped but neither pushed nor dropped produces no
//!   action and therefore stays in its queue — *losing packets is
//!   impossible by construction* (§3.3).
//!
//! All values cross this interface as `i64` using the same encoding the
//! bytecode VM uses natively: booleans are `0`/`1`, packet and subflow
//! references are their numeric handles, and `NULL` is [`NULL_HANDLE`].

use crate::env::{
    Action, PacketProp, PacketRef, QueueKind, RegId, SchedulerEnv, SubflowId, SubflowProp,
    NUM_REGISTERS,
};
use crate::error::ExecError;

/// The `i64` encoding of `NULL` for packet and subflow handles.
pub const NULL_HANDLE: i64 = -1;

/// Fallback per-execution step budget. One step is charged per evaluated
/// node / executed bytecode instruction / scanned queue element, so this
/// bounds scheduler executions the way the eBPF verifier bounds program
/// runtime.
///
/// Compiled programs normally run under the much tighter per-program
/// bound certified by the admission verifier
/// ([`crate::program::SchedulerProgram::certified_step_bound`]); this
/// blanket value remains as the sentinel default for raw
/// [`ExecCtx`]-level execution and for callers that opt out of
/// admission.
pub const DEFAULT_STEP_BUDGET: u64 = 1_000_000;

/// Statistics describing one completed scheduler execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Steps charged against the budget.
    pub steps: u64,
    /// Number of `PUSH` actions emitted.
    pub pushes: u32,
    /// Number of `DROP` actions emitted.
    pub drops: u32,
    /// Number of `POP`s performed.
    pub pops: u32,
    /// Number of `POP`s that evaluated on an empty view and yielded
    /// `NULL`. Zero whenever every pop site was guarded by an emptiness
    /// check — the dynamic shadow of the reinjection-safety property
    /// certificate (see `crate::verify::props`).
    pub null_pops: u32,
    /// Number of register writes performed.
    pub reg_writes: u32,
}

/// Execution context for a single scheduler run.
pub struct ExecCtx<'e> {
    env: &'e dyn SchedulerEnv,
    regs: [i64; NUM_REGISTERS],
    /// Packets removed from queue views this execution (popped or dropped).
    removed: Vec<PacketRef>,
    actions: Vec<Action>,
    steps_left: u64,
    budget: u64,
    stats: ExecStats,
}

impl<'e> ExecCtx<'e> {
    /// Creates a context over `env` with the given step budget.
    pub fn new(env: &'e dyn SchedulerEnv, budget: u64) -> Self {
        let mut regs = [0i64; NUM_REGISTERS];
        for (i, r) in regs.iter_mut().enumerate() {
            *r = env.register(RegId::new((i + 1) as u8).expect("register index in range"));
        }
        ExecCtx {
            env,
            regs,
            removed: Vec::new(),
            actions: Vec::new(),
            steps_left: budget,
            budget,
            stats: ExecStats::default(),
        }
    }

    /// Charges `n` steps against the budget.
    #[inline]
    pub fn step(&mut self, n: u64) -> Result<(), ExecError> {
        if let Some(rest) = self.steps_left.checked_sub(n) {
            self.steps_left = rest;
            Ok(())
        } else {
            self.steps_left = 0;
            Err(ExecError::StepBudgetExhausted {
                budget: self.budget,
            })
        }
    }

    /// Number of established subflows.
    #[inline]
    pub fn subflow_count(&self) -> i64 {
        self.env.subflows().len() as i64
    }

    /// Handle of the `i`-th subflow, or [`NULL_HANDLE`] out of range.
    #[inline]
    pub fn subflow_at(&self, i: i64) -> i64 {
        if i < 0 {
            return NULL_HANDLE;
        }
        match self.env.subflows().get(i as usize) {
            Some(s) => i64::from(s.0),
            None => NULL_HANDLE,
        }
    }

    /// Property read; `NULL` subflows read as 0 (graceful by design).
    #[inline]
    pub fn subflow_prop(&self, sbf: i64, prop: SubflowProp) -> i64 {
        if sbf < 0 {
            return 0;
        }
        self.env.subflow_prop(SubflowId(sbf as u32), prop)
    }

    /// Raw snapshot length of `queue` (including packets already removed
    /// this execution; use [`ExecCtx::queue_get`] to skip them).
    #[inline]
    pub fn queue_raw_len(&self, queue: QueueKind) -> i64 {
        self.env.queue(queue).len() as i64
    }

    /// Handle of the `i`-th packet of `queue`, or [`NULL_HANDLE`] if the
    /// index is out of range or the packet was popped/dropped earlier in
    /// this execution.
    #[inline]
    pub fn queue_get(&self, queue: QueueKind, i: i64) -> i64 {
        if i < 0 {
            return NULL_HANDLE;
        }
        match self.env.queue(queue).get(i as usize) {
            Some(p) if !self.removed.contains(p) => p.0 as i64,
            _ => NULL_HANDLE,
        }
    }

    /// Property read; `NULL` packets read as 0.
    #[inline]
    pub fn packet_prop(&self, pkt: i64, prop: PacketProp) -> i64 {
        if pkt < 0 {
            return 0;
        }
        self.env.packet_prop(PacketRef(pkt as u64), prop)
    }

    /// `SENT_ON`; `NULL` operands yield `false`.
    #[inline]
    pub fn sent_on(&self, pkt: i64, sbf: i64) -> i64 {
        if pkt < 0 || sbf < 0 {
            return 0;
        }
        i64::from(
            self.env
                .sent_on(PacketRef(pkt as u64), SubflowId(sbf as u32)),
        )
    }

    /// `HAS_WINDOW_FOR`; `NULL` operands yield `false`.
    #[inline]
    pub fn has_window_for(&self, sbf: i64, pkt: i64) -> i64 {
        if pkt < 0 || sbf < 0 {
            return 0;
        }
        i64::from(
            self.env
                .has_window_for(SubflowId(sbf as u32), PacketRef(pkt as u64)),
        )
    }

    /// Marks `pkt` as popped: it disappears from queue views for the rest
    /// of this execution. A no-op for `NULL`.
    #[inline]
    pub fn pop(&mut self, pkt: i64) {
        if pkt < 0 {
            self.stats.null_pops += 1;
            return;
        }
        let r = PacketRef(pkt as u64);
        if !self.removed.contains(&r) {
            self.removed.push(r);
            self.stats.pops += 1;
        }
    }

    /// Emits a `Push` action. A no-op when either operand is `NULL` —
    /// pushing to a vanished subflow fails gracefully and the packet
    /// remains schedulable.
    #[inline]
    pub fn push(&mut self, sbf: i64, pkt: i64) {
        if sbf < 0 || pkt < 0 {
            return;
        }
        self.actions.push(Action::Push {
            subflow: SubflowId(sbf as u32),
            packet: PacketRef(pkt as u64),
        });
        self.stats.pushes += 1;
    }

    /// Emits a `Drop` action and removes the packet from queue views.
    /// A no-op for `NULL`.
    #[inline]
    pub fn drop_packet(&mut self, pkt: i64) {
        if pkt < 0 {
            return;
        }
        let r = PacketRef(pkt as u64);
        if !self.removed.contains(&r) {
            self.removed.push(r);
        }
        self.actions.push(Action::Drop { packet: r });
        self.stats.drops += 1;
    }

    /// Current value of `reg` (overlay-aware).
    #[inline]
    pub fn get_reg(&self, reg: RegId) -> i64 {
        self.regs[reg.index()]
    }

    /// Writes `reg`; visible to subsequent reads in this execution.
    #[inline]
    pub fn set_reg(&mut self, reg: RegId, value: i64) {
        self.regs[reg.index()] = value;
        self.stats.reg_writes += 1;
    }

    /// Number of actions emitted so far.
    pub fn action_count(&self) -> usize {
        self.actions.len()
    }

    /// Finishes the execution: returns the final register file, the
    /// ordered action list, and statistics. The caller is responsible for
    /// handing registers and actions to [`SchedulerEnv::apply`].
    pub fn finish(mut self) -> ([i64; NUM_REGISTERS], Vec<Action>, ExecStats) {
        self.stats.steps = self.budget - self.steps_left;
        (self.regs, self.actions, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testenv::MockEnv;

    #[test]
    fn null_operands_are_graceful() {
        let env = MockEnv::new();
        let mut ctx = ExecCtx::new(&env, 100);
        assert_eq!(ctx.subflow_prop(NULL_HANDLE, SubflowProp::Rtt), 0);
        assert_eq!(ctx.packet_prop(NULL_HANDLE, PacketProp::Size), 0);
        assert_eq!(ctx.sent_on(NULL_HANDLE, 0), 0);
        assert_eq!(ctx.has_window_for(0, NULL_HANDLE), 0);
        ctx.push(NULL_HANDLE, 5);
        ctx.push(5, NULL_HANDLE);
        ctx.drop_packet(NULL_HANDLE);
        ctx.pop(NULL_HANDLE);
        let (_, actions, stats) = ctx.finish();
        assert!(actions.is_empty());
        assert_eq!(stats.pushes, 0);
        assert_eq!(stats.drops, 0);
        assert_eq!(stats.pops, 0);
        assert_eq!(stats.null_pops, 1, "the NULL pop is counted separately");
    }

    #[test]
    fn pop_hides_packet_from_views() {
        let mut env = MockEnv::new();
        env.push_packet(QueueKind::SendQueue, 1000, 7, 1400);
        env.push_packet(QueueKind::SendQueue, 1001, 8, 1400);
        let mut ctx = ExecCtx::new(&env, 100);
        assert_eq!(ctx.queue_get(QueueKind::SendQueue, 0), 1000);
        ctx.pop(1000);
        assert_eq!(ctx.queue_get(QueueKind::SendQueue, 0), NULL_HANDLE);
        assert_eq!(ctx.queue_get(QueueKind::SendQueue, 1), 1001);
    }

    #[test]
    fn budget_exhaustion_reports_error() {
        let env = MockEnv::new();
        let mut ctx = ExecCtx::new(&env, 3);
        assert!(ctx.step(2).is_ok());
        assert!(ctx.step(2).is_err());
    }

    #[test]
    fn register_overlay_reads_back() {
        let mut env = MockEnv::new();
        env.set_register(RegId::R2, 41);
        let mut ctx = ExecCtx::new(&env, 100);
        assert_eq!(ctx.get_reg(RegId::R2), 41);
        ctx.set_reg(RegId::R2, 42);
        assert_eq!(ctx.get_reg(RegId::R2), 42);
        let (regs, _, _) = ctx.finish();
        assert_eq!(regs[RegId::R2.index()], 42);
    }

    #[test]
    fn actions_preserve_emission_order() {
        let mut env = MockEnv::new();
        env.add_subflow(0);
        env.push_packet(QueueKind::SendQueue, 10, 0, 100);
        env.push_packet(QueueKind::SendQueue, 11, 1, 100);
        let mut ctx = ExecCtx::new(&env, 100);
        ctx.push(0, 10);
        ctx.drop_packet(11);
        ctx.push(0, 11);
        let (_, actions, _) = ctx.finish();
        assert_eq!(actions.len(), 3);
        assert!(matches!(actions[0], Action::Push { .. }));
        assert!(matches!(actions[1], Action::Drop { .. }));
    }
}
