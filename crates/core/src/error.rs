//! Error types for scheduler compilation and execution.

use std::fmt;

/// Position of a token or construct in the scheduler source, 1-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Pos {
    pub(crate) const fn new(line: u32, col: u32) -> Self {
        Pos { line, col }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// An error raised while turning scheduler source text into an executable
/// program (lexing, parsing, type checking, or semantic analysis).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Which compilation stage rejected the program.
    pub stage: Stage,
    /// Where in the source the problem was detected.
    pub pos: Pos,
    /// Human-readable description of the problem.
    pub message: String,
}

/// The compilation stage that produced a [`CompileError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Tokenization.
    Lex,
    /// Syntactic analysis.
    Parse,
    /// Type checking and semantic restrictions (single assignment,
    /// side-effect isolation, property resolution).
    Sema,
    /// Bytecode generation or verification.
    Codegen,
    /// Static admission verification (abstract interpretation): a program
    /// was rejected because the verifier reported an error-severity
    /// diagnostic (see [`crate::verify`]).
    Verify,
    /// Bytecode-level verification: the eBPF-style dataflow verifier over
    /// the compiled artifact (see [`crate::verify::vm`]) rejected the
    /// program, or the structural bytecode checks failed.
    VmVerify,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Stage::Lex => "lex",
            Stage::Parse => "parse",
            Stage::Sema => "sema",
            Stage::Codegen => "codegen",
            Stage::Verify => "verify",
            Stage::VmVerify => "vm-verify",
        };
        f.write_str(s)
    }
}

impl CompileError {
    pub(crate) fn new(stage: Stage, pos: Pos, message: impl Into<String>) -> Self {
        CompileError {
            stage,
            pos,
            message: message.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error at {}: {}", self.stage, self.pos, self.message)
    }
}

impl std::error::Error for CompileError {}

/// An error raised while executing a scheduler program.
///
/// The programming model is designed so that well-typed programs cannot
/// fail at runtime ("no exceptions by design"); the only runtime errors
/// are resource-budget violations enforced by the verifier/runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The per-execution instruction/step budget was exhausted. This is
    /// the runtime analogue of the eBPF verifier's termination guarantee.
    StepBudgetExhausted {
        /// The budget that was in force.
        budget: u64,
    },
    /// The VM detected malformed bytecode at runtime. Indicates an
    /// internal codegen bug; verified programs never raise this.
    MalformedBytecode {
        /// Program counter at which the fault occurred.
        pc: usize,
        /// Description of the fault.
        detail: String,
    },
    /// A backend aborted the upcall with a structured trap: a native
    /// scheduler signalled an unrecoverable condition, or an execution
    /// path reached a state the backend cannot continue from. Traps
    /// propagate as values — never panics — so the simulator's
    /// containment supervisor can quarantine the program without
    /// `catch_unwind`.
    Trap {
        /// Backend or component that raised the trap.
        origin: &'static str,
        /// Description of the fault.
        detail: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::StepBudgetExhausted { budget } => {
                write!(f, "scheduler execution exceeded step budget of {budget}")
            }
            ExecError::MalformedBytecode { pc, detail } => {
                write!(f, "malformed bytecode at pc {pc}: {detail}")
            }
            ExecError::Trap { origin, detail } => {
                write!(f, "scheduler trap in {origin}: {detail}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_error_display_includes_stage_and_pos() {
        let e = CompileError::new(Stage::Parse, Pos::new(3, 7), "unexpected token");
        assert_eq!(e.to_string(), "parse error at 3:7: unexpected token");
    }

    #[test]
    fn exec_error_display() {
        let e = ExecError::StepBudgetExhausted { budget: 10 };
        assert!(e.to_string().contains("10"));
        let e = ExecError::MalformedBytecode {
            pc: 4,
            detail: "bad jump".into(),
        };
        assert!(e.to_string().contains("pc 4"));
        let e = ExecError::Trap {
            origin: "native",
            detail: "induced fault".into(),
        };
        assert!(e.to_string().contains("native"));
        assert!(e.to_string().contains("induced fault"));
    }

    #[test]
    fn stage_display_all_variants() {
        assert_eq!(Stage::Lex.to_string(), "lex");
        assert_eq!(Stage::Parse.to_string(), "parse");
        assert_eq!(Stage::Sema.to_string(), "sema");
        assert_eq!(Stage::Codegen.to_string(), "codegen");
        assert_eq!(Stage::Verify.to_string(), "verify");
        assert_eq!(Stage::VmVerify.to_string(), "vm-verify");
    }
}
