//! The public compilation and execution facade.
//!
//! [`compile`] turns scheduler source text into a [`SchedulerProgram`]
//! (parse → type check → optimize → admission verify → generate bytecode
//! → bytecode verify); the admission step runs the abstract-interpretation
//! verifier of [`crate::verify`] ahead of every backend and certifies the
//! per-program step bound instances run under;
//! [`SchedulerProgram::instantiate`] creates a per-connection
//! [`SchedulerInstance`] bound to one of the three execution backends.
//! Programs are immutable and cheaply shared between instances through
//! [`std::sync::Arc`], matching the paper's model where loaded schedulers
//! are reused by many connections (§4.3, "Number of Schedulers").

use crate::aot;
use crate::bytecode::{BytecodeProgram, DebugTable};
use crate::env::SchedulerEnv;
use crate::error::{CompileError, ExecError, Stage};
use crate::exec::{ExecCtx, ExecStats};
use crate::hir::HProgram;
use crate::interp;
use crate::optimizer;
use crate::parser;
use crate::regalloc;
use crate::sema;
use crate::vm;
use crate::{codegen, env::QueueKind};
use std::sync::Arc;

/// The execution backend for a scheduler instance (paper §4.1 Fig. 6:
/// interpreter, ahead-of-time compiler, eBPF JIT).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Tree-walking interpreter over the typed HIR (baseline).
    Interpreter,
    /// Ahead-of-time compilation to a closure graph (the "generated C"
    /// analogue).
    Aot,
    /// The eBPF-flavoured bytecode VM with verifier, linear-scan register
    /// allocation, and constant-subflow-count specialization.
    #[default]
    Vm,
}

impl Backend {
    /// All backends.
    pub const ALL: [Backend; 3] = [Backend::Interpreter, Backend::Aot, Backend::Vm];

    /// Human-readable backend name.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Interpreter => "interpreter",
            Backend::Aot => "aot",
            Backend::Vm => "vm",
        }
    }
}

/// A compiled, verified scheduler specification.
#[derive(Debug, Clone)]
pub struct SchedulerProgram {
    name: Option<String>,
    source: String,
    hir: HProgram,
    bytecode: BytecodeProgram,
    debug: DebugTable,
    optimizer_rewrites: usize,
    opt_report: Option<crate::opt::OptReport>,
    verdict: crate::verify::Verdict,
    vm_verdict: crate::verify::vm::BytecodeVerdict,
    props: crate::verify::props::PropertyCertificate,
}

/// Compiles scheduler source text.
///
/// Runs the full pipeline: lex, parse, semantic analysis (typing, single
/// assignment, side-effect isolation), HIR optimization, bytecode
/// generation, register allocation, and verification.
///
/// # Errors
///
/// Returns the first [`CompileError`] encountered at any stage.
pub fn compile(source: &str) -> Result<SchedulerProgram, CompileError> {
    compile_named(None, source)
}

/// Like [`compile`], attaching a scheduler name for diagnostics and the
/// program registry of higher layers.
pub fn compile_named(name: Option<&str>, source: &str) -> Result<SchedulerProgram, CompileError> {
    compile_with_options(name, source, CompileOptions::default())
}

/// Compilation knobs, primarily for the runtime-optimization ablation
/// experiments: every knob defaults to the production setting.
#[derive(Debug, Clone, Copy)]
pub struct CompileOptions {
    /// Run the HIR optimizer (constant folding, dead-branch elimination).
    pub optimize: bool,
    /// Reject programs the static admission verifier finds an
    /// error-severity diagnostic in (see [`crate::verify`]). Disabling
    /// this "observe mode" still runs the verifier and records its
    /// [`crate::verify::Verdict`] on the program, but admits everything —
    /// used by the fuzzing harnesses to measure verifier precision.
    pub enforce_admission: bool,
    /// Run the verified bytecode optimizer (see [`crate::opt`]) between
    /// codegen and the final bytecode verification. Off by default: the
    /// unoptimized image is the reference the conformance differ runs
    /// against.
    pub optimize_bytecode: bool,
    /// Fail-closed bytecode optimization: a rolled-back pass becomes a
    /// compile error instead of a `misoptimization` warning on the
    /// [`crate::opt::OptReport`]. Only meaningful with
    /// [`CompileOptions::optimize_bytecode`].
    pub strict_optimize: bool,
    /// Inject one deliberately unsound rewrite into the bytecode
    /// optimizer (testing only; see [`crate::opt::Sabotage`]).
    #[doc(hidden)]
    pub opt_sabotage: Option<crate::opt::Sabotage>,
    /// Weaken one property analysis (testing only; see
    /// [`crate::verify::props::PropWeakening`]).
    #[doc(hidden)]
    pub prop_weakening: Option<crate::verify::props::PropWeakening>,
    /// Run the relational octagon domain in the admission and property
    /// verifiers. Off, both fall back to the projection-only (pure
    /// interval) analysis — the differential soundness sweeps compare
    /// the two modes.
    pub relational_domain: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            optimize: true,
            enforce_admission: true,
            optimize_bytecode: false,
            strict_optimize: false,
            opt_sabotage: None,
            prop_weakening: None,
            relational_domain: true,
        }
    }
}

/// Like [`compile_named`] with explicit [`CompileOptions`].
pub fn compile_with_options(
    name: Option<&str>,
    source: &str,
    options: CompileOptions,
) -> Result<SchedulerProgram, CompileError> {
    let ast = parser::parse(source)?;
    let mut hir = sema::lower(&ast)?;
    let optimizer_rewrites = if options.optimize {
        optimizer::optimize(&mut hir)
    } else {
        0
    };
    // Static admission: the abstract-interpretation verifier runs on the
    // exact HIR the backends execute. Its verdict is always recorded;
    // enforcement turns error-severity findings into compile errors.
    let verify_cfg = crate::verify::VerifyConfig {
        relational_domain: options.relational_domain,
        ..crate::verify::VerifyConfig::default()
    };
    let verdict = crate::verify::verify_with_config(&hir, &verify_cfg);
    if options.enforce_admission && !verdict.admitted() {
        let first = verdict
            .diagnostics
            .iter()
            .find(|d| d.severity == crate::verify::Severity::Error)
            .expect("unadmitted verdict has an error diagnostic");
        return Err(CompileError {
            stage: Stage::Verify,
            pos: first.pos,
            message: format!("[{}] {}", first.lint, first.message),
        });
    }
    // Semantic property certificate (work-conservation, starvation,
    // redundancy bound, reinjection safety) over the same HIR. Findings
    // never gate admission: they are recorded on the program for the lint
    // CLI and armed as dynamic invariants by the simulator's oracle.
    let props = crate::verify::props::verify_properties_with(
        &hir,
        options.prop_weakening,
        options.relational_domain,
    );
    let vcode = codegen::generate(&hir)?;
    let (bytecode, debug) = regalloc::allocate_with_debug(&vcode)?;
    // Optional verified bytecode optimization: each pass's output is
    // re-verified and cross-checked against the HIR admission certificate
    // before it replaces the image (see [`crate::opt`]); on any
    // disagreement the pass is rolled back, so what reaches the final
    // verification below is always a validated image.
    let (bytecode, debug, opt_report) = if options.optimize_bytecode {
        let (b, d, r) = crate::opt::optimize_bytecode(
            &bytecode,
            &debug,
            &hir,
            verdict.certified_step_bound,
            &crate::verify::VerifyConfig::default(),
            &crate::opt::OptOptions {
                strict: options.strict_optimize,
                sabotage: options.opt_sabotage,
            },
            Some(&props),
        )?;
        (b, d, Some(r))
    } else {
        (bytecode, debug, None)
    };
    vm::verify_with_debug(&bytecode, Some(&debug))?;
    // Translation validation: an independent abstract interpretation over
    // the generated bytecode, cross-checked against the HIR admission
    // certificate (step bound + helper audit). Any error here means the
    // compiler produced code that disagrees with what was certified.
    let vm_verdict = crate::verify::vm::validate_translation(
        &bytecode,
        &debug,
        &hir,
        verdict.certified_step_bound,
        &crate::verify::VerifyConfig::default(),
    );
    if options.enforce_admission && !vm_verdict.admitted() {
        let first = vm_verdict
            .diagnostics
            .iter()
            .find(|d| d.severity == crate::verify::Severity::Error)
            .expect("unadmitted bytecode verdict has an error diagnostic");
        return Err(CompileError {
            stage: Stage::VmVerify,
            pos: first.pos,
            message: format!("[{}] {}", first.lint, first.message),
        });
    }
    Ok(SchedulerProgram {
        name: name.map(str::to_owned),
        source: source.to_owned(),
        hir,
        bytecode,
        debug,
        optimizer_rewrites,
        opt_report,
        verdict,
        vm_verdict,
        props,
    })
}

impl SchedulerProgram {
    /// The scheduler's registered name, if any.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// The original source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Number of rewrites the HIR optimizer applied.
    pub fn optimizer_rewrites(&self) -> usize {
        self.optimizer_rewrites
    }

    /// What the verified bytecode optimizer did, when it ran
    /// ([`CompileOptions::optimize_bytecode`]); `None` otherwise.
    pub fn opt_report(&self) -> Option<&crate::opt::OptReport> {
        self.opt_report.as_ref()
    }

    /// The admission verifier's verdict for this program (always computed,
    /// even in observe mode).
    pub fn verdict(&self) -> &crate::verify::Verdict {
        &self.verdict
    }

    /// The certified worst-case step bound: new instances use this as
    /// their per-execution budget instead of a blanket default.
    pub fn certified_step_bound(&self) -> u64 {
        self.verdict.certified_step_bound
    }

    /// The semantic property certificate (work-conservation, starvation,
    /// redundancy bound, reinjection safety); always computed, never
    /// gates admission. See [`crate::verify::props`].
    pub fn property_certificate(&self) -> &crate::verify::props::PropertyCertificate {
        &self.props
    }

    /// Bytecode disassembly (the proc-style debug listing of §4.1).
    pub fn disassemble(&self) -> String {
        self.bytecode.disassemble()
    }

    /// The generated bytecode image the VM backend executes.
    pub fn bytecode(&self) -> &BytecodeProgram {
        &self.bytecode
    }

    /// The instruction → source-span debug side table emitted by codegen.
    pub fn debug_table(&self) -> &DebugTable {
        &self.debug
    }

    /// The bytecode verifier's verdict for the generated image (always
    /// computed, even in observe mode; see [`crate::verify::vm`]).
    pub fn bytecode_verdict(&self) -> &crate::verify::vm::BytecodeVerdict {
        &self.vm_verdict
    }

    /// Human-readable bytecode verification report: annotated listing
    /// (spans + abstract register states) plus the verdict, as surfaced
    /// by `progmp-lint --bytecode`.
    pub fn bytecode_report(&self) -> String {
        let name = self.name.as_deref().unwrap_or("<program>");
        format!(
            "{}{}",
            self.vm_verdict.render_human(name),
            self.vm_verdict.annotated
        )
    }

    /// Re-runs translation validation of an alternate bytecode `image`
    /// against this program's HIR admission certificate. Used by the
    /// conformance harness to prove that seeded codegen/regalloc
    /// miscompiles are caught statically; the image must be span-aligned
    /// with this program's debug table (in-place mutations only).
    pub fn validate_bytecode(&self, image: &BytecodeProgram) -> crate::verify::vm::BytecodeVerdict {
        crate::verify::vm::validate_translation(
            image,
            &self.debug,
            &self.hir,
            self.verdict.certified_step_bound,
            &crate::verify::VerifyConfig::default(),
        )
    }

    /// Static audit of everything the scheduler touches (properties,
    /// queues, registers, effects) — the multi-tenancy admission check;
    /// see [`crate::analysis`].
    pub fn analyze(&self) -> crate::analysis::Analysis {
        crate::analysis::analyze(&self.hir)
    }

    /// Approximate resident size of the loaded program in bytes
    /// (for the §4.3 memory-overhead table).
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.source.len()
            + self.hir.size_bytes()
            + self.bytecode.size_bytes()
    }

    /// Creates a per-connection instance running on `backend`.
    pub fn instantiate(&self, backend: Backend) -> SchedulerInstance {
        SchedulerInstance::new(Arc::new(self.clone()), backend)
    }

    /// Creates an instance from an already shared program.
    pub fn instantiate_shared(
        program: Arc<SchedulerProgram>,
        backend: Backend,
    ) -> SchedulerInstance {
        SchedulerInstance::new(program, backend)
    }
}

enum BackendState {
    Interpreter,
    Aot(aot::CompiledProgram),
    Vm {
        /// Image specialized for a constant subflow count, with the count
        /// it was specialized for (paper §4.1 "constant subflow number").
        specialized: Option<(i64, BytecodeProgram)>,
    },
}

/// Cumulative counters for one scheduler instance, exposed in the spirit
/// of the paper's proc-based statistics interface.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstanceStats {
    /// Completed executions.
    pub executions: u64,
    /// Total steps across all executions.
    pub total_steps: u64,
    /// Total `PUSH` actions emitted.
    pub total_pushes: u64,
    /// Total `DROP` actions emitted.
    pub total_drops: u64,
    /// Times the VM re-specialized for a new subflow count.
    pub respecializations: u64,
}

/// A per-connection scheduler instance: a shared program plus the
/// backend-specific execution state.
pub struct SchedulerInstance {
    program: Arc<SchedulerProgram>,
    backend: Backend,
    state: BackendState,
    budget: u64,
    stats: InstanceStats,
    specialize: bool,
}

impl std::fmt::Debug for SchedulerInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedulerInstance")
            .field("name", &self.program.name())
            .field("backend", &self.backend.name())
            .field("stats", &self.stats)
            .finish()
    }
}

impl SchedulerInstance {
    fn new(program: Arc<SchedulerProgram>, backend: Backend) -> Self {
        let state = match backend {
            Backend::Interpreter => BackendState::Interpreter,
            Backend::Aot => BackendState::Aot(
                aot::compile(&program.hir).expect("verified programs AOT-compile"),
            ),
            Backend::Vm => BackendState::Vm { specialized: None },
        };
        // The per-program certified bound replaces the blanket default
        // budget: tight enough to stop runaways early, provably above any
        // legal execution of *this* program.
        let budget = program.certified_step_bound();
        SchedulerInstance {
            program,
            backend,
            state,
            budget,
            stats: InstanceStats::default(),
            specialize: true,
        }
    }

    /// The backend this instance runs on.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The shared program.
    pub fn program(&self) -> &SchedulerProgram {
        &self.program
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> InstanceStats {
        self.stats
    }

    /// Overrides the per-execution step budget.
    pub fn set_step_budget(&mut self, budget: u64) {
        self.budget = budget.max(1);
    }

    /// Enables/disables the constant-subflow-count specialization of the
    /// VM backend (paper §4.1); enabled by default. No effect on other
    /// backends. For the runtime-optimization ablation.
    pub fn set_specialization(&mut self, enabled: bool) {
        self.specialize = enabled;
        if let BackendState::Vm { specialized } = &mut self.state {
            *specialized = None;
        }
    }

    /// Approximate per-instance memory cost in bytes, excluding the shared
    /// program (the paper reports 328 B per instantiation on top of the
    /// loaded scheduler).
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + match &self.state {
                BackendState::Vm {
                    specialized: Some((_, p)),
                } => p.size_bytes(),
                _ => 0,
            }
    }

    /// Executes the scheduler once against `env`, applying buffered
    /// effects afterwards.
    ///
    /// # Errors
    ///
    /// [`ExecError::StepBudgetExhausted`] if the execution exceeds the
    /// step budget; effects of the partial execution are *not* applied.
    pub fn execute(&mut self, env: &mut dyn SchedulerEnv) -> Result<ExecStats, ExecError> {
        let mut ctx = ExecCtx::new(env, self.budget);
        self.execute_raw(&mut ctx)?;
        let (regs, actions, stats) = ctx.finish();
        env.apply(&regs, &actions);
        self.stats.total_steps += stats.steps;
        self.stats.total_pushes += u64::from(stats.pushes);
        self.stats.total_drops += u64::from(stats.drops);
        Ok(stats)
    }

    /// Runs one execution against an externally managed [`ExecCtx`]
    /// without applying effects — the embedding transport (e.g. the
    /// simulator's meta socket) owns context creation, effect application,
    /// and statistics. Instance counters are still updated for
    /// respecialization bookkeeping.
    pub fn execute_raw(&mut self, ctx: &mut ExecCtx<'_>) -> Result<(), ExecError> {
        match &mut self.state {
            BackendState::Interpreter => interp::execute(&self.program.hir, ctx)?,
            BackendState::Aot(compiled) => compiled.execute(ctx)?,
            BackendState::Vm { specialized } => {
                if self.specialize {
                    let n = ctx.subflow_count();
                    let needs_respec = !matches!(specialized, Some((k, _)) if *k == n);
                    if needs_respec {
                        *specialized =
                            Some((n, vm::specialize_subflow_count(&self.program.bytecode, n)));
                        self.stats.respecializations += 1;
                    }
                    let image = match specialized {
                        Some((_, p)) => p,
                        None => unreachable!("specialized image set above"),
                    };
                    vm::execute(image, ctx)?;
                } else {
                    vm::execute(&self.program.bytecode, ctx)?;
                }
            }
        }
        self.stats.executions += 1;
        Ok(())
    }

    /// Runs one VM execution recording per-instruction hit counts and
    /// returns the disassembly annotated with them — the paper's
    /// proc-based profiling trace (§4.1). Only meaningful on the VM
    /// backend; other backends return `None`.
    pub fn profile_execution(&mut self, env: &mut dyn SchedulerEnv) -> Option<String> {
        if self.backend != Backend::Vm {
            return None;
        }
        let mut counts = Vec::new();
        let mut ctx = ExecCtx::new(env, self.budget);
        vm::execute_profiled(&self.program.bytecode, &mut ctx, &mut counts).ok()?;
        let (regs, actions, _) = ctx.finish();
        env.apply(&regs, &actions);
        let mut out = String::new();
        for (i, line) in self.program.disassemble().lines().enumerate() {
            let hits = counts.get(i).copied().unwrap_or(0);
            out.push_str(&format!("{hits:>8}  {line}\n"));
        }
        Some(out)
    }

    /// Repeatedly executes the scheduler while it makes progress — the
    /// runtime realization of the paper's *compressed executions*: one
    /// trigger may schedule several packets, each execution seeing fresh
    /// state. Stops when an execution emits no `PUSH`/`DROP`, when the
    /// sending and reinjection queues are exhausted, or after
    /// `max_rounds`.
    ///
    /// Returns the number of rounds executed and the aggregated stats.
    pub fn run_to_quiescence(
        &mut self,
        env: &mut dyn SchedulerEnv,
        max_rounds: u32,
    ) -> Result<(u32, ExecStats), ExecError> {
        let mut total = ExecStats::default();
        let mut rounds = 0;
        while rounds < max_rounds {
            let stats = self.execute(env)?;
            rounds += 1;
            total.steps += stats.steps;
            total.pushes += stats.pushes;
            total.drops += stats.drops;
            total.pops += stats.pops;
            total.null_pops += stats.null_pops;
            total.reg_writes += stats.reg_writes;
            if stats.pushes == 0 && stats.drops == 0 {
                break;
            }
            if env.queue(QueueKind::SendQueue).is_empty()
                && env.queue(QueueKind::Reinject).is_empty()
            {
                break;
            }
        }
        Ok((rounds, total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{QueueKind, RegId, SchedulerEnv, SubflowProp};
    use crate::testenv::MockEnv;

    const MIN_RTT: &str =
        "IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) { SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP()); }";

    fn env_with_packets(n: u64) -> MockEnv {
        let mut env = MockEnv::new();
        env.add_subflow(0);
        env.set_subflow_prop(0, SubflowProp::Rtt, 10_000);
        env.add_subflow(1);
        env.set_subflow_prop(1, SubflowProp::Rtt, 40_000);
        for i in 0..n {
            env.push_packet(QueueKind::SendQueue, 100 + i, i as i64, 1400);
        }
        env
    }

    #[test]
    fn all_backends_agree_on_min_rtt() {
        let prog = compile(MIN_RTT).unwrap();
        for backend in Backend::ALL {
            let mut env = env_with_packets(1);
            let mut inst = prog.instantiate(backend);
            inst.execute(&mut env).unwrap();
            assert_eq!(env.transmissions.len(), 1, "backend {}", backend.name());
            assert_eq!(env.transmissions[0].0 .0, 0, "backend {}", backend.name());
        }
    }

    #[test]
    fn run_to_quiescence_drains_queue() {
        let prog = compile(MIN_RTT).unwrap();
        let mut inst = prog.instantiate(Backend::Vm);
        let mut env = env_with_packets(5);
        let (rounds, total) = inst.run_to_quiescence(&mut env, 64).unwrap();
        assert_eq!(total.pushes, 5);
        assert!(rounds >= 5);
        assert!(env.queue_contents(QueueKind::SendQueue).is_empty());
    }

    #[test]
    fn run_to_quiescence_stops_without_progress() {
        // A scheduler that never pushes must not loop.
        let prog = compile("SET(R1, R1 + 1);").unwrap();
        let mut inst = prog.instantiate(Backend::Interpreter);
        let mut env = env_with_packets(3);
        let (rounds, _) = inst.run_to_quiescence(&mut env, 64).unwrap();
        assert_eq!(rounds, 1);
        assert_eq!(env.register(RegId::R1), 1);
    }

    #[test]
    fn vm_respecializes_on_subflow_change() {
        let prog = compile("SET(R1, SUBFLOWS.COUNT);").unwrap();
        let mut inst = prog.instantiate(Backend::Vm);
        let mut env = MockEnv::new();
        env.add_subflow(0);
        inst.execute(&mut env).unwrap();
        assert_eq!(env.register(RegId::R1), 1);
        assert_eq!(inst.stats().respecializations, 1);
        inst.execute(&mut env).unwrap();
        assert_eq!(inst.stats().respecializations, 1, "count unchanged: reuse");
        env.add_subflow(1);
        inst.execute(&mut env).unwrap();
        assert_eq!(env.register(RegId::R1), 2);
        assert_eq!(
            inst.stats().respecializations,
            2,
            "count changed: respecialize"
        );
    }

    #[test]
    fn program_is_shareable_across_instances() {
        let prog = Arc::new(compile(MIN_RTT).unwrap());
        let mut a = SchedulerProgram::instantiate_shared(Arc::clone(&prog), Backend::Vm);
        let mut b = SchedulerProgram::instantiate_shared(Arc::clone(&prog), Backend::Interpreter);
        let mut env = env_with_packets(2);
        a.execute(&mut env).unwrap();
        b.execute(&mut env).unwrap();
        assert_eq!(env.transmissions.len(), 2);
    }

    #[test]
    fn size_accounting_is_nonzero() {
        let prog = compile(MIN_RTT).unwrap();
        assert!(prog.size_bytes() > 500);
        let inst = prog.instantiate(Backend::Vm);
        assert!(inst.size_bytes() > 0);
    }

    #[test]
    fn compile_error_surfaces_from_any_stage() {
        assert!(compile("VAR x = @;").is_err()); // lex
        assert!(compile("VAR x = ;").is_err()); // parse
        assert!(compile("VAR x = y;").is_err()); // sema
    }

    #[test]
    fn instance_stats_accumulate() {
        let prog = compile(MIN_RTT).unwrap();
        let mut inst = prog.instantiate(Backend::Aot);
        let mut env = env_with_packets(3);
        for _ in 0..3 {
            inst.execute(&mut env).unwrap();
        }
        let s = inst.stats();
        assert_eq!(s.executions, 3);
        assert_eq!(s.total_pushes, 3);
        assert!(s.total_steps > 0);
    }

    #[test]
    fn profiling_trace_annotates_hit_counts() {
        let prog = compile(MIN_RTT).unwrap();
        let mut inst = prog.instantiate(Backend::Vm);
        let mut env = env_with_packets(1);
        let trace = inst
            .profile_execution(&mut env)
            .expect("vm backend profiles");
        // The first instruction executed exactly once; the listing carries
        // one count column per instruction.
        let first = trace.lines().next().unwrap();
        assert!(first.trim_start().starts_with('1'), "{first}");
        assert_eq!(trace.lines().count(), prog.disassemble().lines().count());
        // Loop bodies (the subflow scan) ran more than once.
        let max_hits: u64 = trace
            .lines()
            .filter_map(|l| l.split_whitespace().next()?.parse().ok())
            .max()
            .unwrap();
        assert!(max_hits >= 2, "scan loop executed per subflow: {max_hits}");
        // Profiled execution applied its effects like a normal one.
        assert_eq!(env.transmissions.len(), 1);
    }

    #[test]
    fn profiling_unavailable_off_vm() {
        let prog = compile(MIN_RTT).unwrap();
        let mut inst = prog.instantiate(Backend::Interpreter);
        let mut env = env_with_packets(1);
        assert!(inst.profile_execution(&mut env).is_none());
    }

    #[test]
    fn unoptimized_compile_skips_rewrites() {
        let src = "SET(R1, 2 + 3);";
        let opt = compile(src).unwrap();
        let raw = compile_with_options(
            None,
            src,
            CompileOptions {
                optimize: false,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        assert!(opt.optimizer_rewrites() > 0);
        assert_eq!(raw.optimizer_rewrites(), 0);
        // Semantics identical either way.
        for prog in [&opt, &raw] {
            let mut env = MockEnv::new();
            prog.instantiate(Backend::Vm).execute(&mut env).unwrap();
            assert_eq!(env.register(RegId::R1), 5);
        }
    }

    #[test]
    fn specialization_toggle_preserves_semantics() {
        let prog = compile(MIN_RTT).unwrap();
        for enabled in [true, false] {
            let mut inst = prog.instantiate(Backend::Vm);
            inst.set_specialization(enabled);
            let mut env = env_with_packets(1);
            inst.execute(&mut env).unwrap();
            assert_eq!(env.transmissions.len(), 1);
            assert_eq!(env.transmissions[0].0 .0, 0);
        }
    }

    #[test]
    fn admission_gate_rejects_error_diagnostics() {
        // A popped packet that is never pushed or dropped is an
        // error-severity finding: the compile fails at the verify stage.
        let err = compile("VAR p = Q.POP(); SET(R1, R1 + 1);").unwrap_err();
        assert_eq!(err.stage, crate::error::Stage::Verify);
        assert!(err.message.contains("pop-without-push"), "{}", err.message);
    }

    #[test]
    fn observe_mode_admits_and_records_verdict() {
        let prog = compile_with_options(
            None,
            "VAR p = Q.POP(); SET(R1, R1 + 1);",
            CompileOptions {
                enforce_admission: false,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        assert!(!prog.verdict().admitted());
        assert!(prog.certified_step_bound() >= 1024);
    }

    #[test]
    fn instances_run_under_the_certified_bound() {
        let prog = compile(MIN_RTT).unwrap();
        assert!(prog.verdict().admitted());
        let bound = prog.certified_step_bound();
        assert!(bound >= 1024);
        // The bound must actually admit real executions.
        let mut inst = prog.instantiate(Backend::Vm);
        let mut env = env_with_packets(2);
        let stats = inst.execute(&mut env).unwrap();
        assert!(stats.steps <= bound, "{} > {bound}", stats.steps);
    }

    #[test]
    fn named_compile_keeps_name() {
        let prog = compile_named(Some("minRtt"), MIN_RTT).unwrap();
        assert_eq!(prog.name(), Some("minRtt"));
        assert!(prog.disassemble().contains("call"));
    }
}
