//! The scheduling environment model (paper §3.1).
//!
//! A scheduler program executes against an implementation of
//! [`SchedulerEnv`]: a snapshot view of one MPTCP connection consisting of
//! the sending queue `Q`, the unacknowledged-in-flight queue `QU`, the
//! reinjection queue `RQ`, the set of subflows with their transport state,
//! and the connection's scheduler registers.
//!
//! Side effects produced by a scheduler execution ([`Action`]s) are
//! buffered by the runtime ([`crate::exec::ExecCtx`]) and applied to the
//! environment *after* the execution completes, mirroring the paper's
//! `action_queue` design: "subflow and packet properties are immutable
//! during a single scheduler execution".

use std::fmt;

/// Identifier of one MPTCP subflow within a connection.
///
/// Subflow identifiers are stable for the lifetime of the subflow; the
/// programming model never stores them across executions (registers hold
/// plain integers only), which is how the paper rules out stale subflow
/// references by design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubflowId(pub u32);

impl fmt::Display for SubflowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sbf#{}", self.0)
    }
}

/// Opaque handle to a packet (an `sk_buff` in the kernel implementation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PacketRef(pub u64);

impl fmt::Display for PacketRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "skb#{}", self.0)
    }
}

/// The three packet queues of the environment model (paper Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueKind {
    /// `Q` — the sending queue, filled by the application.
    SendQueue,
    /// `QU` — unacknowledged packets in flight.
    Unacked,
    /// `RQ` — the reinjection queue of packets with suspected loss.
    Reinject,
}

impl QueueKind {
    /// All queue kinds, in declaration order.
    pub const ALL: [QueueKind; 3] = [
        QueueKind::SendQueue,
        QueueKind::Unacked,
        QueueKind::Reinject,
    ];

    /// The surface-language name of the queue (`Q`, `QU`, `RQ`).
    pub fn name(self) -> &'static str {
        match self {
            QueueKind::SendQueue => "Q",
            QueueKind::Unacked => "QU",
            QueueKind::Reinject => "RQ",
        }
    }
}

impl fmt::Display for QueueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Number of scheduler registers per connection (`R1` .. `R8`).
pub const NUM_REGISTERS: usize = 8;

/// One of the per-connection scheduler registers `R1` .. `R8`.
///
/// Registers are the only state a scheduler retains between executions and
/// the channel through which applications signal scheduling intents
/// (paper §3.2: "Setting Registers").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegId(u8);

impl RegId {
    /// Creates the register with 1-based index `n` (`R1` is `new(1)`).
    ///
    /// Returns `None` if `n` is zero or larger than [`NUM_REGISTERS`].
    pub fn new(n: u8) -> Option<RegId> {
        if n >= 1 && (n as usize) <= NUM_REGISTERS {
            Some(RegId(n - 1))
        } else {
            None
        }
    }

    /// Zero-based index of the register.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Register `R1`, conventionally used for the primary application intent.
    pub const R1: RegId = RegId(0);
    /// Register `R2`.
    pub const R2: RegId = RegId(1);
    /// Register `R3`.
    pub const R3: RegId = RegId(2);
    /// Register `R4`.
    pub const R4: RegId = RegId(3);
    /// Register `R5`.
    pub const R5: RegId = RegId(4);
    /// Register `R6`.
    pub const R6: RegId = RegId(5);
}

impl fmt::Display for RegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0 + 1)
    }
}

/// Integer- or boolean-valued subflow properties exposed to schedulers.
///
/// Times are in microseconds, sizes in bytes, windows in packets, rates in
/// bytes per second. Boolean properties report `0`/`1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubflowProp {
    /// Stable numeric identifier of the subflow.
    Id,
    /// Smoothed round-trip time estimate (µs).
    Rtt,
    /// Round-trip time mean deviation (µs), the `RTT_VAR` of the paper.
    RttVar,
    /// Congestion window (packets), maintained by the congestion control.
    Cwnd,
    /// Slow-start threshold (packets).
    Ssthresh,
    /// Packets sent but not yet acknowledged on this subflow.
    SkbsInFlight,
    /// Packets accepted by the subflow send buffer but not yet on the wire.
    Queued,
    /// Total packets this subflow has declared lost.
    LostSkbs,
    /// Boolean: subflow is flagged as backup by the path manager.
    IsBackup,
    /// Boolean: subflow is throttled by the TCP-small-queue condition.
    TsqThrottled,
    /// Boolean: subflow is in loss recovery.
    Lossy,
    /// Maximum segment size (bytes).
    Mss,
    /// Delivery-rate estimate (bytes/second), `BW` in the surface language.
    Bw,
    /// Free receive-window space advertised by the peer (bytes).
    RwndFree,
    /// Microseconds since this subflow last carried a packet
    /// (`LAST_ACT_AGE`), useful for probing idle subflows.
    LastActAge,
    /// User-assigned subflow cost/preference weight (`COST`), set through
    /// the extended API; lower is preferred. Defaults to 0.
    Cost,
}

impl SubflowProp {
    /// The property's surface-language name.
    pub fn name(self) -> &'static str {
        match self {
            SubflowProp::Id => "ID",
            SubflowProp::Rtt => "RTT",
            SubflowProp::RttVar => "RTT_VAR",
            SubflowProp::Cwnd => "CWND",
            SubflowProp::Ssthresh => "SSTHRESH",
            SubflowProp::SkbsInFlight => "SKBS_IN_FLIGHT",
            SubflowProp::Queued => "QUEUED",
            SubflowProp::LostSkbs => "LOST_SKBS",
            SubflowProp::IsBackup => "IS_BACKUP",
            SubflowProp::TsqThrottled => "TSQ_THROTTLED",
            SubflowProp::Lossy => "LOSSY",
            SubflowProp::Mss => "MSS",
            SubflowProp::Bw => "BW",
            SubflowProp::RwndFree => "RWND_FREE",
            SubflowProp::LastActAge => "LAST_ACT_AGE",
            SubflowProp::Cost => "COST",
        }
    }

    /// Whether the property is boolean-typed in the surface language.
    pub fn is_bool(self) -> bool {
        matches!(
            self,
            SubflowProp::IsBackup | SubflowProp::TsqThrottled | SubflowProp::Lossy
        )
    }

    /// Resolves a surface-language property name.
    pub fn from_name(name: &str) -> Option<SubflowProp> {
        Some(match name {
            "ID" => SubflowProp::Id,
            "RTT" | "RTT_AVG" => SubflowProp::Rtt,
            "RTT_VAR" => SubflowProp::RttVar,
            "CWND" => SubflowProp::Cwnd,
            "SSTHRESH" => SubflowProp::Ssthresh,
            "SKBS_IN_FLIGHT" => SubflowProp::SkbsInFlight,
            "QUEUED" => SubflowProp::Queued,
            "LOST_SKBS" => SubflowProp::LostSkbs,
            "IS_BACKUP" => SubflowProp::IsBackup,
            "TSQ_THROTTLED" => SubflowProp::TsqThrottled,
            "LOSSY" => SubflowProp::Lossy,
            "MSS" => SubflowProp::Mss,
            "BW" => SubflowProp::Bw,
            "RWND_FREE" => SubflowProp::RwndFree,
            "LAST_ACT_AGE" => SubflowProp::LastActAge,
            "COST" => SubflowProp::Cost,
            _ => return None,
        })
    }

    /// All subflow properties.
    pub const ALL: [SubflowProp; 16] = [
        SubflowProp::Id,
        SubflowProp::Rtt,
        SubflowProp::RttVar,
        SubflowProp::Cwnd,
        SubflowProp::Ssthresh,
        SubflowProp::SkbsInFlight,
        SubflowProp::Queued,
        SubflowProp::LostSkbs,
        SubflowProp::IsBackup,
        SubflowProp::TsqThrottled,
        SubflowProp::Lossy,
        SubflowProp::Mss,
        SubflowProp::Bw,
        SubflowProp::RwndFree,
        SubflowProp::LastActAge,
        SubflowProp::Cost,
    ];
}

/// Integer-valued packet properties exposed to schedulers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketProp {
    /// Data-level (meta) sequence number of the packet's first byte.
    Seq,
    /// Payload size in bytes.
    Size,
    /// User-assigned 32-bit property set through the extended API
    /// (paper §3.2 "Packet Properties"), e.g. an HTTP/2 content class.
    UserProp,
    /// How many times the packet has been transmitted (on any subflow).
    SentCount,
    /// Microseconds since the packet first entered the sending queue.
    Age,
}

impl PacketProp {
    /// The property's surface-language name.
    pub fn name(self) -> &'static str {
        match self {
            PacketProp::Seq => "SEQ",
            PacketProp::Size => "SIZE",
            PacketProp::UserProp => "PROP",
            PacketProp::SentCount => "SENT_COUNT",
            PacketProp::Age => "AGE",
        }
    }

    /// Resolves a surface-language property name.
    pub fn from_name(name: &str) -> Option<PacketProp> {
        Some(match name {
            "SEQ" => PacketProp::Seq,
            "SIZE" | "LENGTH" => PacketProp::Size,
            "PROP" => PacketProp::UserProp,
            "SENT_COUNT" => PacketProp::SentCount,
            "AGE" => PacketProp::Age,
            _ => return None,
        })
    }

    /// All packet properties.
    pub const ALL: [PacketProp; 5] = [
        PacketProp::Seq,
        PacketProp::Size,
        PacketProp::UserProp,
        PacketProp::SentCount,
        PacketProp::Age,
    ];
}

/// A buffered side effect emitted by a scheduler execution.
///
/// Actions are applied to the environment in emission order once the
/// execution finishes. A packet that was popped from a queue but never
/// pushed or dropped produces no action at all and therefore — by
/// construction — remains in its queue: the runtime makes losing packets
/// impossible, as required by paper §3.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Transmit `packet` on `subflow`. If the packet is still in `Q` or
    /// `RQ` the environment moves it to `QU`; repeated pushes of the same
    /// packet on different subflows transmit redundant copies.
    Push {
        /// Target subflow.
        subflow: SubflowId,
        /// Packet to transmit.
        packet: PacketRef,
    },
    /// Remove `packet` from `Q`/`RQ` without transmitting it.
    Drop {
        /// Packet to discard from the schedulable queues.
        packet: PacketRef,
    },
}

/// The complete observable effect of one scheduler execution: the final
/// register file and the ordered action list handed to
/// [`SchedulerEnv::apply`].
///
/// Two executions with equal effect traces are indistinguishable to the
/// environment — this is the comparison unit of the cross-backend
/// differential conformance harness (`progmp-conformance`), which demands
/// bit-identical traces from all three backends.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EffectTrace {
    /// Register file as applied (one entry per completed execution).
    pub registers: Vec<[i64; NUM_REGISTERS]>,
    /// Every action applied, in emission order, tagged with the index of
    /// the execution that emitted it.
    pub actions: Vec<(u32, Action)>,
}

impl EffectTrace {
    /// Number of completed executions recorded.
    pub fn executions(&self) -> usize {
        self.registers.len()
    }

    /// Canonical line-per-effect rendering, stable across runs, for
    /// golden files and divergence reports.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, regs) in self.registers.iter().enumerate() {
            out.push_str(&format!("exec {i} regs ["));
            for (j, r) in regs.iter().enumerate() {
                if j > 0 {
                    out.push(' ');
                }
                out.push_str(&r.to_string());
            }
            out.push_str("]\n");
            for (exec, action) in self.actions.iter().filter(|(e, _)| *e as usize == i) {
                let _ = exec;
                match action {
                    Action::Push { subflow, packet } => {
                        out.push_str(&format!("  push {subflow} {packet}\n"));
                    }
                    Action::Drop { packet } => {
                        out.push_str(&format!("  drop {packet}\n"));
                    }
                }
            }
        }
        out
    }
}

/// A [`SchedulerEnv`] wrapper that records every applied effect into an
/// [`EffectTrace`] before forwarding it to the wrapped environment.
///
/// Reads delegate unchanged, so wrapping is semantically invisible to the
/// scheduler. Used by the conformance harness to capture the exact effect
/// stream of each backend; usable with any environment, including the
/// simulator's meta socket.
#[derive(Debug)]
pub struct RecordingEnv<E> {
    /// The wrapped environment.
    pub inner: E,
    /// Effects recorded so far.
    pub trace: EffectTrace,
}

impl<E: SchedulerEnv> RecordingEnv<E> {
    /// Wraps `inner` with an empty trace.
    pub fn new(inner: E) -> Self {
        RecordingEnv {
            inner,
            trace: EffectTrace::default(),
        }
    }
}

impl<E: SchedulerEnv> SchedulerEnv for RecordingEnv<E> {
    fn subflows(&self) -> &[SubflowId] {
        self.inner.subflows()
    }

    fn subflow_prop(&self, subflow: SubflowId, prop: SubflowProp) -> i64 {
        self.inner.subflow_prop(subflow, prop)
    }

    fn queue(&self, queue: QueueKind) -> &[PacketRef] {
        self.inner.queue(queue)
    }

    fn packet_prop(&self, packet: PacketRef, prop: PacketProp) -> i64 {
        self.inner.packet_prop(packet, prop)
    }

    fn sent_on(&self, packet: PacketRef, subflow: SubflowId) -> bool {
        self.inner.sent_on(packet, subflow)
    }

    fn has_window_for(&self, subflow: SubflowId, packet: PacketRef) -> bool {
        self.inner.has_window_for(subflow, packet)
    }

    fn register(&self, reg: RegId) -> i64 {
        self.inner.register(reg)
    }

    fn apply(&mut self, registers: &[i64; NUM_REGISTERS], actions: &[Action]) {
        let exec = self.trace.registers.len() as u32;
        self.trace.registers.push(*registers);
        self.trace
            .actions
            .extend(actions.iter().map(|a| (exec, *a)));
        self.inner.apply(registers, actions);
    }
}

/// Why the runtime invoked the scheduler (paper Fig. 4 calling model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trigger {
    /// New data arrived in the sending queue `Q`.
    NewData,
    /// An acknowledgement was received on some subflow.
    AckReceived,
    /// A packet was added to the reinjection queue `RQ`.
    LossSuspected,
    /// A subflow was established or closed.
    SubflowChange,
    /// An application changed a register through the extended API.
    RegisterChanged,
    /// A retransmission or probe timer fired.
    Timer,
    /// Receive window opened after being full.
    WindowOpened,
}

impl Trigger {
    /// All trigger kinds.
    pub const ALL: [Trigger; 7] = [
        Trigger::NewData,
        Trigger::AckReceived,
        Trigger::LossSuspected,
        Trigger::SubflowChange,
        Trigger::RegisterChanged,
        Trigger::Timer,
        Trigger::WindowOpened,
    ];
}

/// A snapshot view of one MPTCP connection against which scheduler
/// programs execute, plus the effect-application entry point.
///
/// Implementations: the discrete-event simulator's meta socket
/// (`mptcp-sim`), and [`crate::testenv::MockEnv`] for tests and benches.
///
/// During one scheduler execution the runtime only calls the read methods;
/// implementations should return stable values for the duration of the
/// execution (properties are immutable per execution by the model's
/// semantics). Effects are delivered in one batch through
/// [`SchedulerEnv::apply`].
pub trait SchedulerEnv {
    /// The currently established subflows, in establishment order.
    fn subflows(&self) -> &[SubflowId];

    /// Reads an integer/boolean property of `subflow`.
    ///
    /// Must return 0 for unknown subflows rather than panic (a subflow can
    /// disappear between snapshot and property read in exotic
    /// implementations; the model requires graceful degradation).
    fn subflow_prop(&self, subflow: SubflowId, prop: SubflowProp) -> i64;

    /// The packets currently in `queue`, in queue order.
    fn queue(&self, queue: QueueKind) -> &[PacketRef];

    /// Reads an integer property of `packet`.
    fn packet_prop(&self, packet: PacketRef, prop: PacketProp) -> i64;

    /// Whether `packet` has (ever) been transmitted on `subflow`.
    fn sent_on(&self, packet: PacketRef, subflow: SubflowId) -> bool;

    /// Whether the connection-level receive window can accommodate
    /// `packet` if sent on `subflow` now.
    fn has_window_for(&self, subflow: SubflowId, packet: PacketRef) -> bool;

    /// Current value of register `reg`.
    fn register(&self, reg: RegId) -> i64;

    /// Applies the buffered effects of one completed scheduler execution:
    /// the final register file and the ordered action list.
    fn apply(&mut self, registers: &[i64; NUM_REGISTERS], actions: &[Action]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_id_bounds() {
        assert_eq!(RegId::new(0), None);
        assert_eq!(RegId::new(1), Some(RegId::R1));
        assert_eq!(RegId::new(8).unwrap().index(), 7);
        assert_eq!(RegId::new(9), None);
        assert_eq!(RegId::R3.to_string(), "R3");
    }

    #[test]
    fn subflow_prop_name_round_trip() {
        for p in SubflowProp::ALL {
            assert_eq!(SubflowProp::from_name(p.name()), Some(p));
        }
        assert_eq!(SubflowProp::from_name("NOPE"), None);
        // RTT_AVG is an alias for the smoothed RTT.
        assert_eq!(SubflowProp::from_name("RTT_AVG"), Some(SubflowProp::Rtt));
    }

    #[test]
    fn packet_prop_name_round_trip() {
        for p in PacketProp::ALL {
            assert_eq!(PacketProp::from_name(p.name()), Some(p));
        }
        assert_eq!(PacketProp::from_name("LENGTH"), Some(PacketProp::Size));
    }

    #[test]
    fn bool_props_flagged() {
        assert!(SubflowProp::IsBackup.is_bool());
        assert!(SubflowProp::TsqThrottled.is_bool());
        assert!(SubflowProp::Lossy.is_bool());
        assert!(!SubflowProp::Rtt.is_bool());
    }

    #[test]
    fn queue_names() {
        assert_eq!(QueueKind::SendQueue.name(), "Q");
        assert_eq!(QueueKind::Unacked.name(), "QU");
        assert_eq!(QueueKind::Reinject.name(), "RQ");
    }

    #[test]
    fn recording_env_captures_effects_and_delegates() {
        use crate::testenv::MockEnv;

        let mut env = MockEnv::new();
        env.add_subflow(0);
        env.push_packet(QueueKind::SendQueue, 7, 0, 100);
        let mut rec = RecordingEnv::new(env);

        let mut regs = [0i64; NUM_REGISTERS];
        regs[0] = 42;
        rec.apply(
            &regs,
            &[Action::Push {
                subflow: SubflowId(0),
                packet: PacketRef(7),
            }],
        );
        rec.apply(
            &regs,
            &[Action::Drop {
                packet: PacketRef(7),
            }],
        );

        assert_eq!(rec.trace.executions(), 2);
        assert_eq!(rec.trace.actions.len(), 2);
        assert_eq!(rec.trace.actions[0].0, 0);
        assert_eq!(rec.trace.actions[1].0, 1);
        // The wrapped env observed the same effects.
        assert_eq!(rec.inner.transmissions.len(), 1);
        assert_eq!(rec.inner.register(RegId::R1), 42);
        let rendered = rec.trace.render();
        assert!(rendered.contains("push sbf#0 skb#7"), "{rendered}");
        assert!(rendered.contains("drop skb#7"), "{rendered}");
    }

    #[test]
    fn equal_traces_compare_equal() {
        let mk = || {
            let mut t = EffectTrace::default();
            t.registers.push([1; NUM_REGISTERS]);
            t.actions.push((
                0,
                Action::Push {
                    subflow: SubflowId(1),
                    packet: PacketRef(2),
                },
            ));
            t
        };
        assert_eq!(mk(), mk());
        assert_eq!(mk().render(), mk().render());
    }
}
