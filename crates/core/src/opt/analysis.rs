//! Shared dataflow analyses for the bytecode optimizer: CFG successors,
//! register/slot liveness, dominators, and a conservative forward
//! interval analysis that feeds sparse conditional constant propagation.
//!
//! All analyses are sound with respect to the *runtime* semantics of
//! [`crate::vm`], not just the verifier's model: registers `r1`..`r5`
//! after a helper call and the initial register file are treated as
//! unknown (even though the VM zeroes them) so that rewrites stay valid
//! under [`crate::vm::specialize_subflow_count`], which patches
//! `Call SubflowCount` into a plain `MovImm` without the call's
//! clobbering behaviour.

use crate::bytecode::{AluOp, Cond, Helper, Insn, NUM_MACH_REGS};
use crate::opt::edit::jump_target;
use crate::verify::domain::{Interval, Tri};

/// A set of machine registers plus stack slots (slots fit one `u64`
/// because [`crate::bytecode::MAX_STACK_SLOTS`] is 64).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct LiveSet {
    pub regs: u16,
    pub slots: u64,
}

impl LiveSet {
    pub fn has_reg(self, r: u8) -> bool {
        self.regs & (1 << r) != 0
    }

    pub fn has_slot(self, s: u16) -> bool {
        self.slots & (1 << s) != 0
    }

    fn union(self, other: LiveSet) -> LiveSet {
        LiveSet {
            regs: self.regs | other.regs,
            slots: self.slots | other.slots,
        }
    }
}

/// Registers/slots read by `insn` (helper calls read their argument
/// registers).
pub(crate) fn reads(insn: &Insn) -> LiveSet {
    let mut s = LiveSet::default();
    let mut reg = |r: u8| s.regs |= 1 << r;
    match insn {
        Insn::MovImm { .. } | Insn::Ja { .. } | Insn::Exit => {}
        Insn::Mov { src, .. } => reg(*src),
        Insn::Alu { dst, src, .. } => {
            reg(*dst);
            reg(*src);
        }
        Insn::AluImm { dst, .. } | Insn::Neg { dst } => reg(*dst),
        Insn::Jmp { lhs, rhs, .. } => {
            reg(*lhs);
            reg(*rhs);
        }
        Insn::JmpImm { lhs, .. } => reg(*lhs),
        Insn::Call { helper } => {
            for r in 1..=helper.arg_count() as u8 {
                reg(r);
            }
        }
        Insn::Ld { slot, .. } => s.slots |= 1 << slot,
        Insn::St { src, .. } => reg(*src),
    }
    s
}

/// Registers/slots written by `insn` (helper calls clobber `r0`..`r5`).
pub(crate) fn writes(insn: &Insn) -> LiveSet {
    let mut s = LiveSet::default();
    match insn {
        Insn::MovImm { dst, .. }
        | Insn::Mov { dst, .. }
        | Insn::Alu { dst, .. }
        | Insn::AluImm { dst, .. }
        | Insn::Neg { dst }
        | Insn::Ld { dst, .. } => s.regs = 1 << dst,
        Insn::Call { .. } => s.regs = 0b11_1111,
        Insn::St { slot, .. } => s.slots = 1 << slot,
        Insn::Ja { .. } | Insn::Jmp { .. } | Insn::JmpImm { .. } | Insn::Exit => {}
    }
    s
}

/// CFG successors of `pc` (fallthrough first, then branch target).
pub(crate) fn successors(code: &[Insn], pc: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(2);
    match &code[pc] {
        Insn::Exit => {}
        Insn::Ja { .. } => {
            if let Some(t) = jump_target(pc, &code[pc]) {
                out.push(t);
            }
        }
        insn @ (Insn::Jmp { .. } | Insn::JmpImm { .. }) => {
            out.push(pc + 1);
            if let Some(t) = jump_target(pc, insn) {
                if t != pc + 1 {
                    out.push(t);
                }
            }
        }
        _ => out.push(pc + 1),
    }
    out.retain(|t| *t < code.len());
    out
}

/// Pcs reachable from entry.
pub(crate) fn reachable(code: &[Insn]) -> Vec<bool> {
    let mut seen = vec![false; code.len()];
    let mut work = vec![0usize];
    while let Some(pc) = work.pop() {
        if pc >= code.len() || seen[pc] {
            continue;
        }
        seen[pc] = true;
        work.extend(successors(code, pc));
    }
    seen
}

/// Backward register/slot liveness. `live_in[pc]` / `live_out[pc]` hold
/// the registers and slots whose current value may still be read.
pub(crate) struct Liveness {
    pub live_in: Vec<LiveSet>,
    pub live_out: Vec<LiveSet>,
}

pub(crate) fn liveness(code: &[Insn]) -> Liveness {
    let n = code.len();
    let mut live_in = vec![LiveSet::default(); n];
    let mut live_out = vec![LiveSet::default(); n];
    let mut changed = true;
    while changed {
        changed = false;
        for pc in (0..n).rev() {
            let mut out = LiveSet::default();
            for succ in successors(code, pc) {
                out = out.union(live_in[succ]);
            }
            let w = writes(&code[pc]);
            let inn = reads(&code[pc]).union(LiveSet {
                regs: out.regs & !w.regs,
                slots: out.slots & !w.slots,
            });
            if out != live_out[pc] || inn != live_in[pc] {
                live_out[pc] = out;
                live_in[pc] = inn;
                changed = true;
            }
        }
    }
    Liveness { live_in, live_out }
}

/// Dominator sets as per-pc bitsets. `dominates(d, u)` is true when every
/// path from entry to `u` passes through `d`.
pub(crate) struct Dominators {
    sets: Vec<Vec<u64>>,
}

impl Dominators {
    pub fn dominates(&self, d: usize, u: usize) -> bool {
        self.sets[u][d / 64] & (1 << (d % 64)) != 0
    }
}

pub(crate) fn dominators(code: &[Insn]) -> Dominators {
    let n = code.len();
    let words = n.div_ceil(64);
    let reach = reachable(code);
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (pc, &reachable_pc) in reach.iter().enumerate() {
        if reachable_pc {
            for s in successors(code, pc) {
                preds[s].push(pc);
            }
        }
    }
    let full = vec![u64::MAX; words];
    let mut sets: Vec<Vec<u64>> = vec![full; n];
    sets[0] = vec![0; words];
    sets[0][0] = 1;
    let mut changed = true;
    while changed {
        changed = false;
        for pc in 1..n {
            if !reach[pc] {
                continue;
            }
            let mut acc = vec![u64::MAX; words];
            for p in &preds[pc] {
                for (a, b) in acc.iter_mut().zip(&sets[*p]) {
                    *a &= b;
                }
            }
            acc[pc / 64] |= 1 << (pc % 64);
            if acc != sets[pc] {
                sets[pc] = acc;
                changed = true;
            }
        }
    }
    Dominators { sets }
}

/// Joins at one program point beyond which intervals are widened, keeping
/// the forward analysis finite (mirrors the dataflow verifier).
const WIDEN_AFTER: u32 = 8;

/// Abstract machine state before one instruction.
#[derive(Clone, PartialEq, Eq)]
pub(crate) struct FactState {
    pub regs: [Interval; NUM_MACH_REGS],
    pub slots: Vec<Interval>,
}

impl FactState {
    fn join(&self, other: &FactState) -> FactState {
        let mut regs = self.regs;
        for (a, b) in regs.iter_mut().zip(&other.regs) {
            *a = a.join(*b);
        }
        FactState {
            regs,
            slots: self
                .slots
                .iter()
                .zip(&other.slots)
                .map(|(a, b)| a.join(*b))
                .collect(),
        }
    }

    fn widen(&self, next: &FactState) -> FactState {
        let mut regs = self.regs;
        for (a, b) in regs.iter_mut().zip(&next.regs) {
            *a = a.widen(*b);
        }
        FactState {
            regs,
            slots: self
                .slots
                .iter()
                .zip(&next.slots)
                .map(|(a, b)| a.widen(*b))
                .collect(),
        }
    }
}

/// Result of the forward interval analysis: the abstract state *before*
/// each pc (`None` = unreachable), plus per-branch feasibility.
pub(crate) struct Facts {
    pub before: Vec<Option<FactState>>,
}

/// Evaluates `cond` between two intervals as three-valued truth.
pub(crate) fn eval_cond(cond: Cond, lhs: Interval, rhs: Interval) -> Tri {
    match cond {
        Cond::Eq => lhs.eq_ab(rhs),
        Cond::Ne => lhs.eq_ab(rhs).not(),
        Cond::Lt => lhs.lt(rhs),
        Cond::Le => lhs.le(rhs),
        Cond::Gt => rhs.lt(lhs),
        Cond::Ge => rhs.le(lhs),
    }
}

fn alu(op: AluOp, a: Interval, b: Interval) -> Interval {
    match op {
        AluOp::Add => a.add(b),
        AluOp::Sub => a.sub(b),
        AluOp::Mul => a.mul(b),
        AluOp::Div => a.div(b),
        AluOp::Rem => a.rem(b),
        AluOp::And => match (a.as_exact(), b.as_exact()) {
            (Some(x), Some(y)) => Interval::exact(x & y),
            (Some(0), _) | (_, Some(0)) => Interval::exact(0),
            _ if bool_range(a) && bool_range(b) => Interval::BOOL,
            _ => Interval::TOP,
        },
        AluOp::Or | AluOp::Xor => match (a.as_exact(), b.as_exact()) {
            (Some(x), Some(y)) => Interval::exact(if op == AluOp::Or { x | y } else { x ^ y }),
            _ if bool_range(a) && bool_range(b) => Interval::BOOL,
            _ => Interval::TOP,
        },
    }
}

fn bool_range(iv: Interval) -> bool {
    iv.lo >= 0 && iv.hi <= 1
}

/// Refines `(lhs, rhs)` under the assumption that `cond` holds.
/// `None` = infeasible.
fn assume(cond: Cond, lhs: Interval, rhs: Interval) -> Option<(Interval, Interval)> {
    match cond {
        Cond::Eq => lhs.assume_eq(rhs),
        Cond::Ne => lhs.assume_ne(rhs),
        Cond::Lt => lhs.assume_lt(rhs),
        Cond::Le => lhs.assume_le(rhs),
        Cond::Gt => rhs.assume_lt(lhs).map(|(b, a)| (a, b)),
        Cond::Ge => rhs.assume_le(lhs).map(|(b, a)| (a, b)),
    }
}

/// Runs the forward interval analysis over `code`.
pub(crate) fn facts(code: &[Insn], stack_slots: u16) -> Facts {
    let n = code.len();
    let mut before: Vec<Option<FactState>> = vec![None; n];
    let mut joins = vec![0u32; n];
    // Initial registers are unknown (see module docs); the read-only
    // frame pointer r10 is exactly 0 for the whole execution.
    let mut init = FactState {
        regs: [Interval::TOP; NUM_MACH_REGS],
        slots: vec![Interval::TOP; usize::from(stack_slots)],
    };
    init.regs[10] = Interval::exact(0);
    before[0] = Some(init);
    let mut work = vec![0usize];

    while let Some(pc) = work.pop() {
        let Some(state) = before[pc].clone() else {
            continue;
        };
        let flow = |target: usize,
                    next: FactState,
                    before: &mut Vec<Option<FactState>>,
                    joins: &mut Vec<u32>,
                    work: &mut Vec<usize>| {
            if target >= n {
                return;
            }
            let merged = match &before[target] {
                None => next,
                Some(old) => {
                    let joined = old.join(&next);
                    if joined == *old {
                        return;
                    }
                    joins[target] += 1;
                    if joins[target] > WIDEN_AFTER {
                        old.widen(&joined)
                    } else {
                        joined
                    }
                }
            };
            before[target] = Some(merged);
            work.push(target);
        };

        match &code[pc] {
            Insn::Exit => {}
            Insn::Ja { .. } => {
                if let Some(t) = jump_target(pc, &code[pc]) {
                    flow(t, state, &mut before, &mut joins, &mut work);
                }
            }
            Insn::Jmp { cond, lhs, rhs, .. } => {
                let (a, b) = (state.regs[usize::from(*lhs)], state.regs[usize::from(*rhs)]);
                let t = jump_target(pc, &code[pc]);
                if let Some((ra, rb)) = assume(*cond, a, b) {
                    if let Some(t) = t {
                        let mut s = state.clone();
                        s.regs[usize::from(*lhs)] = ra;
                        s.regs[usize::from(*rhs)] = rb;
                        flow(t, s, &mut before, &mut joins, &mut work);
                    }
                }
                if let Some((ra, rb)) = assume(negate(*cond), a, b) {
                    let mut s = state;
                    s.regs[usize::from(*lhs)] = ra;
                    s.regs[usize::from(*rhs)] = rb;
                    flow(pc + 1, s, &mut before, &mut joins, &mut work);
                }
            }
            Insn::JmpImm { cond, lhs, imm, .. } => {
                let a = state.regs[usize::from(*lhs)];
                let b = Interval::exact(*imm);
                let t = jump_target(pc, &code[pc]);
                if let Some((ra, _)) = assume(*cond, a, b) {
                    if let Some(t) = t {
                        let mut s = state.clone();
                        s.regs[usize::from(*lhs)] = ra;
                        flow(t, s, &mut before, &mut joins, &mut work);
                    }
                }
                if let Some((ra, _)) = assume(negate(*cond), a, b) {
                    let mut s = state;
                    s.regs[usize::from(*lhs)] = ra;
                    flow(pc + 1, s, &mut before, &mut joins, &mut work);
                }
            }
            insn => {
                let mut s = state;
                match insn {
                    Insn::MovImm { dst, imm } => {
                        s.regs[usize::from(*dst)] = Interval::exact(*imm);
                    }
                    Insn::Mov { dst, src } => {
                        s.regs[usize::from(*dst)] = s.regs[usize::from(*src)];
                    }
                    Insn::Alu { op, dst, src } => {
                        let d = usize::from(*dst);
                        s.regs[d] = alu(*op, s.regs[d], s.regs[usize::from(*src)]);
                    }
                    Insn::AluImm { op, dst, imm } => {
                        let d = usize::from(*dst);
                        s.regs[d] = alu(*op, s.regs[d], Interval::exact(*imm));
                    }
                    Insn::Neg { dst } => {
                        let d = usize::from(*dst);
                        s.regs[d] = s.regs[d].neg();
                    }
                    Insn::Call { helper } => {
                        s.regs[0] = match helper {
                            Helper::SentOn | Helper::HasWindowFor => Interval::BOOL,
                            _ => Interval::TOP,
                        };
                        // The VM zeroes r1..r5, but specialization can
                        // replace this call with a MovImm that does not:
                        // model them as unknown.
                        for r in 1..=5 {
                            s.regs[r] = Interval::TOP;
                        }
                    }
                    Insn::Ld { dst, slot } => {
                        s.regs[usize::from(*dst)] = s
                            .slots
                            .get(usize::from(*slot))
                            .copied()
                            .unwrap_or(Interval::TOP);
                    }
                    Insn::St { slot, src } => {
                        let v = s.regs[usize::from(*src)];
                        if let Some(slot) = s.slots.get_mut(usize::from(*slot)) {
                            *slot = v;
                        }
                    }
                    _ => unreachable!(),
                }
                flow(pc + 1, s, &mut before, &mut joins, &mut work);
            }
        }
    }
    Facts { before }
}

/// Index of an effectful helper in [`EffectProfile::must`] order
/// (`PUSH`, `POP`, `DROP`); `None` for pure helpers.
pub(crate) fn effect_helper_index(h: Helper) -> Option<usize> {
    match h {
        Helper::Push => Some(0),
        Helper::Pop => Some(1),
        Helper::DropPkt => Some(2),
        _ => None,
    }
}

/// Display name for [`EffectProfile::must`] index `i`.
pub(crate) fn effect_helper_name(i: usize) -> &'static str {
    ["PUSH", "POP", "DROP"][i]
}

/// Must-execute profile of the effectful helper calls: which `PUSH` /
/// `POP` / `DROP` sites run on *every* feasible path from entry to exit.
///
/// Feasibility uses the same forward interval facts that drive SCCP, so
/// a legitimate constant-guard fold leaves the profile unchanged (the
/// proven edge was already the only feasible one), while an *unproven*
/// guard deleted in front of an effect site turns that site from
/// conditional into must-execute. The property-certificate gate in
/// [`super::check_candidate`](crate::opt) rejects exactly that shift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct EffectProfile {
    /// Per helper (`PUSH`, `POP`, `DROP`): count of must-execute call
    /// sites and the pc of the first one.
    pub must: [(u32, Option<usize>); 3],
}

pub(crate) fn effect_profile(code: &[Insn], stack_slots: u16) -> EffectProfile {
    let n = code.len();
    let f = facts(code, stack_slots);
    // Effectful call sites in pc order; each gets one bit.
    let sites: Vec<usize> = (0..n)
        .filter(|&pc| {
            matches!(&code[pc], Insn::Call { helper } if effect_helper_index(*helper).is_some())
        })
        .collect();
    let mut bit_of = vec![usize::MAX; n];
    for (bit, &pc) in sites.iter().enumerate() {
        bit_of[pc] = bit;
    }
    let words = sites.len().div_ceil(64).max(1);

    // Forward must-analysis: `must[pc]` = sites executed on every
    // feasible path reaching `pc` (None = not yet reached, the top
    // element); meet over predecessors is bitset intersection.
    let mut must: Vec<Option<Vec<u64>>> = vec![None; n];
    if n == 0 {
        return EffectProfile {
            must: [(0, None); 3],
        };
    }
    must[0] = Some(vec![0u64; words]);
    let mut work = vec![0usize];
    while let Some(pc) = work.pop() {
        let (Some(cur), Some(state)) = (must[pc].clone(), f.before[pc].as_ref()) else {
            continue;
        };
        let mut out = cur;
        if bit_of[pc] != usize::MAX {
            let b = bit_of[pc];
            out[b / 64] |= 1 << (b % 64);
        }
        // Feasible successors under the interval facts at `pc`.
        let mut succs: Vec<usize> = Vec::with_capacity(2);
        match &code[pc] {
            Insn::Exit => {}
            Insn::Ja { .. } => succs.extend(jump_target(pc, &code[pc])),
            Insn::Jmp { cond, lhs, rhs, .. } => {
                let a = state.regs[usize::from(*lhs)];
                let b = state.regs[usize::from(*rhs)];
                if assume(negate(*cond), a, b).is_some() {
                    succs.push(pc + 1);
                }
                if assume(*cond, a, b).is_some() {
                    succs.extend(jump_target(pc, &code[pc]));
                }
            }
            Insn::JmpImm { cond, lhs, imm, .. } => {
                let a = state.regs[usize::from(*lhs)];
                let b = Interval::exact(*imm);
                if assume(negate(*cond), a, b).is_some() {
                    succs.push(pc + 1);
                }
                if assume(*cond, a, b).is_some() {
                    succs.extend(jump_target(pc, &code[pc]));
                }
            }
            _ => succs.push(pc + 1),
        }
        for t in succs {
            if t >= n {
                continue;
            }
            let merged = match &must[t] {
                None => out.clone(),
                Some(old) => {
                    let m: Vec<u64> = old.iter().zip(&out).map(|(a, b)| a & b).collect();
                    if m == *old {
                        continue;
                    }
                    m
                }
            };
            must[t] = Some(merged);
            work.push(t);
        }
    }

    // Sites on every path = intersection over all reached exits.
    let mut at_exit: Option<Vec<u64>> = None;
    for pc in 0..n {
        if !matches!(code[pc], Insn::Exit) {
            continue;
        }
        let Some(set) = &must[pc] else { continue };
        at_exit = Some(match at_exit {
            None => set.clone(),
            Some(acc) => acc.iter().zip(set).map(|(a, b)| a & b).collect(),
        });
    }
    let mut profile = EffectProfile {
        must: [(0, None); 3],
    };
    if let Some(set) = at_exit {
        for (bit, &pc) in sites.iter().enumerate() {
            if set[bit / 64] & (1 << (bit % 64)) == 0 {
                continue;
            }
            if let Insn::Call { helper } = &code[pc] {
                if let Some(i) = effect_helper_index(*helper) {
                    profile.must[i].0 += 1;
                    if profile.must[i].1.is_none() {
                        profile.must[i].1 = Some(pc);
                    }
                }
            }
        }
    }
    profile
}

fn negate(cond: Cond) -> Cond {
    match cond {
        Cond::Eq => Cond::Ne,
        Cond::Ne => Cond::Eq,
        Cond::Lt => Cond::Ge,
        Cond::Le => Cond::Gt,
        Cond::Gt => Cond::Le,
        Cond::Ge => Cond::Lt,
    }
}

/// A natural loop discovered from a back edge: `head..=back` inclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Loop {
    pub head: usize,
    pub back: usize,
}

/// All loops, from back edges (a reachable branch whose target is not
/// after it). Matches the codegen's loop shapes, where the body is the
/// contiguous interval `[head, back]`.
pub(crate) fn loops(code: &[Insn]) -> Vec<Loop> {
    let reach = reachable(code);
    let mut out = Vec::new();
    for pc in 0..code.len() {
        if !reach[pc] {
            continue;
        }
        if let Some(t) = jump_target(pc, &code[pc]) {
            if t <= pc {
                out.push(Loop { head: t, back: pc });
            }
        }
    }
    out
}
