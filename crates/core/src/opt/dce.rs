//! Dead-code and dead-store elimination.
//!
//! Two deletion sources, iterated to a local fixpoint: instructions the
//! CFG proves unreachable, and definitions (register writes, stack
//! stores, pure helper calls) whose result liveness proves is never read.
//! Effectful helper calls (`Pop`/`Push`/`DropPkt`/`SetReg`) are never
//! deleted — even unreachable ones — because the translation validator
//! audits their exact call-site counts against the HIR admission
//! certificate, and `Exit` instructions are kept so every fallthrough
//! chain still terminates.

use crate::bytecode::{AluOp, BytecodeProgram, DebugTable, Helper, Insn};
use crate::opt::analysis::{liveness, loops, reachable};
use crate::opt::edit::Editor;
use crate::opt::Sabotage;

/// True when deleting this instruction can never change observable
/// behaviour regardless of context.
fn deletable_unreachable(insn: &Insn) -> bool {
    !matches!(
        insn,
        Insn::Exit
            | Insn::Call {
                helper: Helper::Pop | Helper::Push | Helper::DropPkt | Helper::SetReg,
            }
    )
}

fn round(prog: &BytecodeProgram, debug: &DebugTable) -> (BytecodeProgram, DebugTable, u64) {
    let code = &prog.code;
    let n = code.len();
    let mut ed = Editor::new(prog, debug);
    let reach = reachable(code);
    let live = liveness(code);

    for pc in 0..n {
        if !reach[pc] {
            if deletable_unreachable(&code[pc]) {
                ed.delete(pc);
            }
            continue;
        }
        let out = live.live_out[pc];
        match code[pc] {
            Insn::MovImm { dst, .. }
            | Insn::Mov { dst, .. }
            | Insn::Alu { dst, .. }
            | Insn::AluImm { dst, .. }
            | Insn::Neg { dst }
            | Insn::Ld { dst, .. }
                // Division traps are not a concern: the VM defines x/0 and
                // x%0 as 0, so every ALU op is side-effect free.
                if !out.has_reg(dst) =>
            {
                ed.delete(pc);
            }
            Insn::St { slot, .. } if !out.has_slot(slot) => {
                ed.delete(pc);
            }
            Insn::Call { helper } => {
                let pure = !matches!(
                    helper,
                    Helper::Pop | Helper::Push | Helper::DropPkt | Helper::SetReg
                );
                // A call clobbers r0..r5; it is dead only when none of
                // those post-call values are ever read. (The VM zeroes
                // r1..r5 on calls — a read relying on that zero keeps the
                // call alive through liveness.)
                if pure && (0..=5u8).all(|r| !out.has_reg(r)) {
                    ed.delete(pc);
                }
            }
            _ => {}
        }
    }

    let changes = ed.changes();
    if changes == 0 {
        return (prog.clone(), debug.clone(), 0);
    }
    let (p, d) = ed.finish();
    (p, d, changes)
}

pub(crate) fn run(
    prog: &BytecodeProgram,
    debug: &DebugTable,
    sabotage: Option<Sabotage>,
) -> (BytecodeProgram, DebugTable, u64) {
    if sabotage == Some(Sabotage::DeleteLiveIncrement) {
        // Deliberately unsound: treat the loop counter increment as dead
        // and delete it, so the induction variable never advances.
        let mut ed = Editor::new(prog, debug);
        for lp in loops(&prog.code) {
            for pc in lp.head..=lp.back.min(prog.code.len() - 1) {
                if matches!(prog.code[pc], Insn::AluImm { op: AluOp::Add, .. }) {
                    ed.delete(pc);
                    let changes = ed.changes();
                    let (p, d) = ed.finish();
                    return (p, d, changes);
                }
            }
        }
        return (prog.clone(), debug.clone(), 0);
    }

    let mut cur = prog.clone();
    let mut dbg = debug.clone();
    let mut total = 0u64;
    for _ in 0..16 {
        let (p, d, c) = round(&cur, &dbg);
        if c == 0 {
            break;
        }
        total += c;
        cur = p;
        dbg = d;
    }
    (cur, dbg, total)
}
