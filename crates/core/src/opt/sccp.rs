//! Sparse conditional constant propagation + constant-guard elimination.
//!
//! Consumes the forward interval facts ([`super::analysis::facts`]) the
//! same way the admission verifier does, but to *rewrite* instead of
//! reject: ALU ops whose operands are proven exact fold to `MovImm`,
//! register operands proven constant fold into immediates, and guards the
//! interval domain proves always/never taken become unconditional jumps
//! or disappear. Dead fallthrough/branch code left behind is swept by the
//! dead-code pass.

use crate::bytecode::{AluOp, BytecodeProgram, DebugTable, Helper, Insn};
use crate::opt::analysis::{eval_cond, facts, reachable};
use crate::opt::edit::{jump_target, Editor};
use crate::opt::Sabotage;
use crate::verify::domain::{Interval, Tri};

fn fold(op: AluOp, a: i64, b: i64) -> i64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        AluOp::Rem => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
    }
}

pub(crate) fn run(
    prog: &BytecodeProgram,
    debug: &DebugTable,
    sabotage: Option<Sabotage>,
) -> (BytecodeProgram, DebugTable, u64) {
    let mut ed = Editor::new(prog, debug);
    let f = facts(&prog.code, prog.stack_slots);
    let reach = reachable(&prog.code);

    for pc in 0..prog.code.len() {
        let Some(state) = &f.before[pc] else { continue };
        let exact = |r: u8| state.regs[usize::from(r)].as_exact();
        match prog.code[pc] {
            Insn::Mov { dst, src } => {
                if let Some(v) = exact(src) {
                    ed.set(pc, Insn::MovImm { dst, imm: v });
                }
            }
            Insn::Alu { op, dst, src } => match (exact(dst), exact(src)) {
                (Some(a), Some(b)) => ed.set(
                    pc,
                    Insn::MovImm {
                        dst,
                        imm: fold(op, a, b),
                    },
                ),
                (None, Some(b)) => ed.set(pc, Insn::AluImm { op, dst, imm: b }),
                _ => {}
            },
            Insn::AluImm { op, dst, imm } => {
                if let Some(a) = exact(dst) {
                    ed.set(
                        pc,
                        Insn::MovImm {
                            dst,
                            imm: fold(op, a, imm),
                        },
                    );
                }
            }
            Insn::Neg { dst } => {
                if let Some(a) = exact(dst) {
                    ed.set(
                        pc,
                        Insn::MovImm {
                            dst,
                            imm: a.wrapping_neg(),
                        },
                    );
                }
            }
            Insn::Ld { dst, slot } => {
                if let Some(v) = state
                    .slots
                    .get(usize::from(slot))
                    .and_then(|iv| iv.as_exact())
                {
                    ed.set(pc, Insn::MovImm { dst, imm: v });
                }
            }
            Insn::Jmp { cond, lhs, rhs, .. } => {
                let a = state.regs[usize::from(lhs)];
                let b = state.regs[usize::from(rhs)];
                fold_guard(&mut ed, pc, eval_cond(cond, a, b));
            }
            Insn::JmpImm { cond, lhs, imm, .. } => {
                let a = state.regs[usize::from(lhs)];
                fold_guard(&mut ed, pc, eval_cond(cond, a, Interval::exact(imm)));
            }
            _ => {}
        }
    }

    if sabotage == Some(Sabotage::DropLiveGuard) {
        // Deliberately unsound: claim the first conditional guard inside a
        // loop body is never taken and delete it, leaving the loop without
        // its exit test.
        'outer: for back in 0..prog.code.len() {
            let Some(head) = jump_target(back, &prog.code[back]).filter(|t| *t <= back) else {
                continue;
            };
            for (pc, &reachable_pc) in reach.iter().enumerate().take(back + 1).skip(head) {
                if reachable_pc && matches!(prog.code[pc], Insn::Jmp { .. } | Insn::JmpImm { .. }) {
                    ed.delete(pc);
                    break 'outer;
                }
            }
        }
    }

    if sabotage == Some(Sabotage::UnguardEffect) {
        // Deliberately unsound: claim the first *undecided* forward guard
        // whose guarded region contains an effectful PUSH/POP/DROP call
        // is constant and delete it, making the effect unconditional.
        // Every call site survives and the bound never grows, so only the
        // property-certificate gate can catch this.
        for (pc, &reachable) in reach.iter().enumerate() {
            if !reachable {
                continue;
            }
            let Some(state) = &f.before[pc] else { continue };
            let undecided = match prog.code[pc] {
                Insn::Jmp { cond, lhs, rhs, .. } => {
                    let a = state.regs[usize::from(lhs)];
                    let b = state.regs[usize::from(rhs)];
                    eval_cond(cond, a, b) == Tri::Unknown
                }
                Insn::JmpImm { cond, lhs, imm, .. } => {
                    let a = state.regs[usize::from(lhs)];
                    eval_cond(cond, a, Interval::exact(imm)) == Tri::Unknown
                }
                _ => false,
            };
            if !undecided {
                continue;
            }
            let Some(target) = jump_target(pc, &prog.code[pc]).filter(|t| *t > pc) else {
                continue;
            };
            let guards_effect = (pc + 1..target.min(prog.code.len())).any(|i| {
                matches!(
                    prog.code[i],
                    Insn::Call {
                        helper: Helper::Push | Helper::Pop | Helper::DropPkt
                    }
                )
            });
            if guards_effect {
                ed.delete(pc);
                break;
            }
        }
    }

    let changes = ed.changes();
    if changes == 0 {
        return (prog.clone(), debug.clone(), 0);
    }
    let (p, d) = ed.finish();
    (p, d, changes)
}

/// Rewrites the guard at `pc` when its outcome is proven.
fn fold_guard(ed: &mut Editor, pc: usize, tri: Tri) {
    match tri {
        Tri::True => {
            let target = ed.target(pc).expect("conditional branch has a target");
            if target == pc + 1 {
                ed.delete(pc);
            } else {
                ed.set_branch(pc, Insn::Ja { off: 0 }, target);
            }
        }
        Tri::False => ed.delete(pc),
        Tri::Unknown => {}
    }
}
