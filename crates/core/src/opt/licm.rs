//! Loop-invariant hoisting out of counted FOREACH loops.
//!
//! The codegen re-materializes every constant operand of a filter or
//! MIN/MAX predicate *inside* the loop body — either as a `MovImm` into
//! an allocatable register or, under spill pressure, as a
//! `MovImm r0, c; St slot, r0` pair per iteration. This pass hoists those
//! into a preheader inserted in front of the loop head, guarded by
//! dominance and liveness conditions so the hoisted definition is
//! observationally identical on every path (including the zero-trip
//! path). The loop body interval itself is left shape-intact so the
//! dataflow verifier's counted-loop recognition — and hence the certified
//! step bound — still applies to the optimized image.

use crate::bytecode::{BytecodeProgram, DebugTable, Insn, FIRST_ALLOCATABLE};
use crate::opt::analysis::{dominators, liveness, loops, reachable, successors, writes};
use crate::opt::edit::{Editor, NewInsn};
use crate::opt::Sabotage;
use crate::verify::vm::verify_bytecode;
use crate::verify::VerifyConfig;

pub(crate) fn run(
    prog: &BytecodeProgram,
    debug: &DebugTable,
    sabotage: Option<Sabotage>,
) -> (BytecodeProgram, DebugTable, u64) {
    let mut ed = Editor::new(prog, debug);
    let code = &prog.code;
    let n = code.len();
    let reach = reachable(code);
    let live = liveness(code);
    let dom = dominators(code);
    let all_loops = loops(code);

    if sabotage == Some(Sabotage::LoopVariantHoist) {
        // Deliberately unsound: hoist the loop-variant induction update —
        // the `Mov idx, scratch` store feeding the back edge — to the
        // preheader, so the counter never advances inside the loop.
        for lp in &all_loops {
            if lp.back == 0 || lp.back >= n || lp.back - 1 <= lp.head {
                continue;
            }
            let pc = lp.back - 1;
            if let Insn::Mov { .. } = code[pc] {
                ed.delete(pc);
                ed.insert_before(
                    lp.head,
                    vec![NewInsn {
                        insn: code[pc],
                        span: debug.pos(pc),
                    }],
                    Some((lp.head, lp.back)),
                );
                let changes = ed.changes();
                let (p, d) = ed.finish();
                return (p, d, changes);
            }
        }
        return (prog.clone(), debug.clone(), 0);
    }

    // Hoist innermost-first so a definition is only hoisted once per run.
    let mut hoisted = vec![false; n];
    let mut order = all_loops;
    order.sort_by_key(|l| l.back - l.head);

    for lp in &order {
        if lp.head == 0 || lp.back >= n {
            continue;
        }
        // Exit targets: successors of body instructions outside the body.
        let mut exits: Vec<usize> = Vec::new();
        for (pc, &reachable_pc) in reach.iter().enumerate().take(lp.back + 1).skip(lp.head) {
            if !reachable_pc {
                continue;
            }
            for s in successors(code, pc) {
                if (s < lp.head || s > lp.back) && !exits.contains(&s) {
                    exits.push(s);
                }
            }
        }
        let body = lp.head..=lp.back;
        let reg_clear = |r: u8, def: &[usize]| -> bool {
            // `r` has no definition in the body besides `def`, is dead at
            // the loop head and every exit, and (for the defined register)
            // every body read is dominated by the definition.
            if live.live_in[lp.head].has_reg(r) {
                return false;
            }
            if exits.iter().any(|e| *e < n && live.live_in[*e].has_reg(r)) {
                return false;
            }
            for pc in body.clone() {
                if def.contains(&pc) || !reach[pc] {
                    continue;
                }
                if writes(&code[pc]).has_reg(r) {
                    return false;
                }
            }
            true
        };

        let mut items: Vec<NewInsn> = Vec::new();
        for pc in lp.head..=lp.back {
            if !reach[pc] || hoisted[pc] {
                continue;
            }
            match code[pc] {
                // MovImm into an allocatable home register.
                Insn::MovImm { dst, imm: _ } if (FIRST_ALLOCATABLE..10).contains(&dst) => {
                    if !reg_clear(dst, &[pc]) {
                        continue;
                    }
                    let uses_dominated = body.clone().all(|u| {
                        !reach[u]
                            || u == pc
                            || !crate::opt::analysis::reads(&code[u]).has_reg(dst)
                            || dom.dominates(pc, u)
                    });
                    if !uses_dominated || !dom.dominates(pc, lp.back) {
                        continue;
                    }
                    hoisted[pc] = true;
                    ed.delete(pc);
                    items.push(NewInsn {
                        insn: code[pc],
                        span: debug.pos(pc),
                    });
                }
                // Spilled constant: MovImm scratch + St slot pair.
                Insn::MovImm { dst, imm: _ } if dst < FIRST_ALLOCATABLE => {
                    let st = pc + 1;
                    if st > lp.back || hoisted[st] {
                        continue;
                    }
                    let Insn::St { slot, src } = code[st] else {
                        continue;
                    };
                    if src != dst || usize::from(slot) >= 64 {
                        continue;
                    }
                    // The scratch value must feed only the store, and the
                    // preheader's clobber of the scratch register must be
                    // unobservable at loop entry. Other in-body writes to
                    // the scratch register are fine — they have their own
                    // local uses.
                    if live.live_out[st].has_reg(dst) || live.live_in[lp.head].has_reg(dst) {
                        continue;
                    }
                    // `st` must be the fallthrough of `pc` (no leader between).
                    if crate::opt::edit::jump_target(pc, &code[pc]).is_some()
                        || code.iter().enumerate().any(|(b, i)| {
                            crate::opt::edit::jump_target(b, i) == Some(st) && reach[b]
                        })
                    {
                        continue;
                    }
                    // Slot conditions mirror the register ones.
                    if live.live_in[lp.head].has_slot(slot)
                        || exits
                            .iter()
                            .any(|e| *e < n && live.live_in[*e].has_slot(slot))
                    {
                        continue;
                    }
                    let slot_clear = body
                        .clone()
                        .all(|u| u == st || !reach[u] || !writes(&code[u]).has_slot(slot));
                    let loads_dominated = body.clone().all(|u| {
                        !reach[u]
                            || !crate::opt::analysis::reads(&code[u]).has_slot(slot)
                            || dom.dominates(st, u)
                    });
                    if !slot_clear || !loads_dominated || !dom.dominates(st, lp.back) {
                        continue;
                    }
                    hoisted[pc] = true;
                    hoisted[st] = true;
                    ed.delete(pc);
                    ed.delete(st);
                    items.push(NewInsn {
                        insn: code[pc],
                        span: debug.pos(pc),
                    });
                    items.push(NewInsn {
                        insn: code[st],
                        span: debug.pos(st),
                    });
                }
                _ => {}
            }
        }
        if !items.is_empty() {
            ed.insert_before(lp.head, items, Some((lp.head, lp.back)));
        }
    }

    let changes = ed.changes();
    if changes == 0 {
        return (prog.clone(), debug.clone(), 0);
    }
    let (p, d) = ed.finish();

    // Model-profitability gate. The dataflow verifier's step-bound model
    // charges a loop's exit-test block per iteration but dead-ends the
    // body fallthrough at the back edge, so for top-test loops a hoisted
    // body instruction buys nothing back while the preheader copy is
    // charged once. A hoist that raises the model bound is sound but
    // unprofitable under the certificate — skip it rather than have the
    // pipeline roll back a semantically valid rewrite.
    let cfg = VerifyConfig::default();
    let before = verify_bytecode(prog, Some(debug), &cfg).step_bound;
    let after = verify_bytecode(&p, Some(&d), &cfg).step_bound;
    match (before, after) {
        (Some(b), Some(a)) if a <= b => (p, d, changes),
        _ => (prog.clone(), debug.clone(), 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{AluOp, Cond};
    use crate::error::Pos;

    fn prog(code: Vec<Insn>) -> (BytecodeProgram, DebugTable) {
        let spans = (0..code.len())
            .map(|i| Pos {
                line: i as u32 + 1,
                col: 1,
            })
            .collect();
        (
            BytecodeProgram {
                code,
                stack_slots: 0,
            },
            DebugTable { spans },
        )
    }

    /// Bottom-test loop: every body instruction sits on the model's
    /// longest path, so hoisting the invariant `MovImm` lowers the bound
    /// and the profitability gate keeps the rewrite.
    #[test]
    fn hoists_invariant_out_of_bottom_test_loop() {
        let (p, d) = prog(vec![
            Insn::MovImm { dst: 6, imm: 0 },
            Insn::MovImm { dst: 9, imm: 3 },
            // loop head (pc 2): invariant definition, re-executed per trip
            Insn::MovImm { dst: 7, imm: 7 },
            Insn::AluImm {
                op: AluOp::Add,
                dst: 6,
                imm: 1,
            },
            Insn::Jmp {
                cond: Cond::Lt,
                lhs: 6,
                rhs: 9,
                off: -3,
            }, // back edge -> pc 2
            Insn::Exit,
        ]);
        let (np, _, rewrites) = run(&p, &d, None);
        assert!(rewrites > 0, "invariant MovImm should hoist");
        // The invariant lands in a preheader; the back edge now targets
        // the increment, skipping it.
        assert_eq!(np.code[2], Insn::MovImm { dst: 7, imm: 7 });
        assert!(matches!(np.code[3], Insn::AluImm { .. }));
        assert_eq!(
            crate::opt::edit::jump_target(4, &np.code[4]),
            Some(3),
            "back edge must re-enter at the loop body, not the preheader"
        );
    }

    /// A definition of a register live into the loop head must stay put.
    #[test]
    fn does_not_hoist_when_register_is_live_at_head() {
        let (p, d) = prog(vec![
            Insn::MovImm { dst: 7, imm: 1 },
            Insn::MovImm { dst: 6, imm: 0 },
            // loop head (pc 2): r7 is read before being redefined, so the
            // body definition is NOT loop-invariant in effect.
            Insn::Alu {
                op: AluOp::Add,
                dst: 6,
                src: 7,
            },
            Insn::MovImm { dst: 7, imm: 7 },
            Insn::AluImm {
                op: AluOp::Add,
                dst: 6,
                imm: 1,
            },
            Insn::JmpImm {
                cond: Cond::Lt,
                lhs: 6,
                imm: 9,
                off: -4,
            }, // back edge -> pc 2
            Insn::Exit,
        ]);
        let (np, _, rewrites) = run(&p, &d, None);
        assert_eq!(rewrites, 0, "r7 is live at the head; no hoist");
        assert_eq!(np.code, p.code);
    }
}
