//! Position-stable bytecode editing.
//!
//! Every pass rewrites the instruction stream through an [`Editor`]:
//! branch offsets are decoded to absolute targets up front, edits are
//! expressed as in-place replacements, deletions, and block insertions,
//! and [`Editor::finish`] re-linearizes the program — recomputing every
//! relative offset and keeping the [`DebugTable`] span side table aligned
//! so diagnostics on the optimized image still point at real source.

use crate::bytecode::{BytecodeProgram, DebugTable, Insn};
use crate::error::Pos;

/// An instruction queued for insertion before some existing pc.
pub(crate) struct NewInsn {
    /// The instruction (branch offsets ignored; none of the passes insert
    /// branches today).
    pub insn: Insn,
    /// Source span carried into the debug table.
    pub span: Pos,
}

struct Insertion {
    at: usize,
    items: Vec<NewInsn>,
    /// Branch sources inside `[interior.0, interior.1]` that target `at`
    /// keep targeting the original instruction (loop back edges); all
    /// other branches to `at` are redirected to the inserted block.
    interior: Option<(usize, usize)>,
}

/// A batch editor over one bytecode image.
pub(crate) struct Editor {
    code: Vec<Insn>,
    spans: Vec<Pos>,
    /// Absolute jump target per pc (`Some` for `Ja`/`Jmp`/`JmpImm`).
    targets: Vec<Option<usize>>,
    keep: Vec<bool>,
    insertions: Vec<Insertion>,
    stack_slots: u16,
    changes: u64,
}

/// Absolute target of the (possibly branching) instruction at `pc`, using
/// the eBPF convention that offsets are relative to the next instruction.
pub(crate) fn jump_target(pc: usize, insn: &Insn) -> Option<usize> {
    let off = match insn {
        Insn::Ja { off } => *off,
        Insn::Jmp { off, .. } => *off,
        Insn::JmpImm { off, .. } => *off,
        _ => return None,
    };
    usize::try_from(pc as i64 + 1 + i64::from(off)).ok()
}

impl Editor {
    pub(crate) fn new(prog: &BytecodeProgram, debug: &DebugTable) -> Editor {
        let n = prog.code.len();
        let mut spans = debug.spans.clone();
        spans.resize(n, Pos { line: 0, col: 0 });
        let targets = prog
            .code
            .iter()
            .enumerate()
            .map(|(pc, insn)| jump_target(pc, insn))
            .collect();
        Editor {
            code: prog.code.clone(),
            spans,
            targets,
            keep: vec![true; n],
            insertions: Vec::new(),
            stack_slots: prog.stack_slots,
            changes: 0,
        }
    }

    pub(crate) fn target(&self, pc: usize) -> Option<usize> {
        self.targets[pc]
    }

    pub(crate) fn is_deleted(&self, pc: usize) -> bool {
        !self.keep[pc]
    }

    pub(crate) fn changes(&self) -> u64 {
        self.changes
    }

    /// Replaces the instruction at `pc` with a non-branching instruction.
    pub(crate) fn set(&mut self, pc: usize, insn: Insn) {
        debug_assert!(jump_target(pc, &insn).is_none() || matches!(insn, Insn::Ja { .. }));
        self.code[pc] = insn;
        self.targets[pc] = None;
        self.changes += 1;
    }

    /// Replaces the instruction at `pc` with a branch to absolute `target`.
    pub(crate) fn set_branch(&mut self, pc: usize, insn: Insn, target: usize) {
        self.code[pc] = insn;
        self.targets[pc] = Some(target);
        self.changes += 1;
    }

    /// Retargets the existing branch at `pc`.
    pub(crate) fn retarget(&mut self, pc: usize, target: usize) {
        debug_assert!(self.targets[pc].is_some());
        self.targets[pc] = Some(target);
        self.changes += 1;
    }

    /// Marks `pc` for deletion; branches into it land on the next kept
    /// instruction, so only semantic no-ops may be deleted.
    pub(crate) fn delete(&mut self, pc: usize) {
        if self.keep[pc] {
            self.keep[pc] = false;
            self.changes += 1;
        }
    }

    /// Queues `items` for insertion immediately before `at`. Branches from
    /// sources within `interior` that target `at` keep pointing at the
    /// original instruction (the loop-back-edge case); every other entry
    /// into `at` flows through the inserted block first.
    pub(crate) fn insert_before(
        &mut self,
        at: usize,
        items: Vec<NewInsn>,
        interior: Option<(usize, usize)>,
    ) {
        self.changes += items.len() as u64;
        self.insertions.push(Insertion {
            at,
            items,
            interior,
        });
    }

    /// Re-linearizes into a fresh program + debug table.
    pub(crate) fn finish(self) -> (BytecodeProgram, DebugTable) {
        let n = self.code.len();
        let mut new_code: Vec<Insn> = Vec::with_capacity(n);
        let mut new_spans: Vec<Pos> = Vec::with_capacity(n);
        // (source old pc or usize::MAX for inserted, absolute old target)
        let mut pending: Vec<(usize, Option<usize>)> = Vec::with_capacity(n);
        let mut newpos = vec![usize::MAX; n + 1];
        let mut insert_start = vec![usize::MAX; n + 1];

        for pc in 0..n {
            for ins in self.insertions.iter().filter(|i| i.at == pc) {
                if insert_start[pc] == usize::MAX {
                    insert_start[pc] = new_code.len();
                }
                for item in &ins.items {
                    new_code.push(item.insn);
                    new_spans.push(item.span);
                    pending.push((usize::MAX, None));
                }
            }
            if self.keep[pc] {
                newpos[pc] = new_code.len();
                new_code.push(self.code[pc]);
                new_spans.push(self.spans[pc]);
                pending.push((pc, self.targets[pc]));
            }
        }
        newpos[n] = new_code.len();

        // Landing pad per old pc: its own new position, or the next kept
        // instruction's (deleted instructions are semantic no-ops).
        let mut land = vec![new_code.len(); n + 1];
        for pc in (0..n).rev() {
            land[pc] = if self.keep[pc] {
                newpos[pc]
            } else {
                land[pc + 1]
            };
        }

        for (new_pc, (old_pc, target)) in pending.iter().enumerate() {
            let Some(t) = *target else { continue };
            let redirected = self
                .insertions
                .iter()
                .find(|i| i.at == t && insert_start[t] != usize::MAX)
                .is_some_and(|i| match i.interior {
                    Some((lo, hi)) => *old_pc == usize::MAX || *old_pc < lo || *old_pc > hi,
                    None => true,
                });
            let new_t = if redirected { insert_start[t] } else { land[t] };
            let off = i32::try_from(new_t as i64 - new_pc as i64 - 1)
                .expect("optimized jump offset fits i32");
            match &mut new_code[new_pc] {
                Insn::Ja { off: o } => *o = off,
                Insn::Jmp { off: o, .. } => *o = off,
                Insn::JmpImm { off: o, .. } => *o = off,
                other => unreachable!("target recorded for non-branch {other:?}"),
            }
        }

        (
            BytecodeProgram {
                code: new_code,
                stack_slots: self.stack_slots,
            },
            DebugTable { spans: new_spans },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::Cond;

    fn prog(code: Vec<Insn>) -> (BytecodeProgram, DebugTable) {
        let spans = (0..code.len())
            .map(|i| Pos {
                line: i as u32 + 1,
                col: 1,
            })
            .collect();
        (
            BytecodeProgram {
                code,
                stack_slots: 0,
            },
            DebugTable { spans },
        )
    }

    #[test]
    fn delete_remaps_branches_to_next_kept() {
        let (p, d) = prog(vec![
            Insn::JmpImm {
                cond: Cond::Eq,
                lhs: 6,
                imm: 0,
                off: 2,
            }, // -> pc 3
            Insn::MovImm { dst: 6, imm: 1 },
            Insn::MovImm { dst: 7, imm: 2 },
            Insn::MovImm { dst: 8, imm: 3 },
            Insn::Exit,
        ]);
        let mut ed = Editor::new(&p, &d);
        ed.delete(3); // branch target becomes the Exit
        ed.delete(1);
        let (np, nd) = ed.finish();
        assert_eq!(np.code.len(), 3);
        assert_eq!(
            np.code[0],
            Insn::JmpImm {
                cond: Cond::Eq,
                lhs: 6,
                imm: 0,
                off: 1,
            }
        );
        assert_eq!(np.code[2], Insn::Exit);
        // Spans follow the surviving instructions.
        assert_eq!(nd.spans[1], Pos { line: 3, col: 1 });
    }

    #[test]
    fn insert_before_respects_interior_back_edges() {
        let (p, d) = prog(vec![
            Insn::MovImm { dst: 6, imm: 0 },
            // loop head (pc 1): exit test
            Insn::JmpImm {
                cond: Cond::Ge,
                lhs: 6,
                imm: 2,
                off: 2,
            }, // -> pc 4
            Insn::AluImm {
                op: crate::bytecode::AluOp::Add,
                dst: 6,
                imm: 1,
            },
            Insn::Ja { off: -3 }, // back edge -> pc 1
            Insn::Exit,
        ]);
        let mut ed = Editor::new(&p, &d);
        ed.insert_before(
            1,
            vec![NewInsn {
                insn: Insn::MovImm { dst: 7, imm: 9 },
                span: Pos { line: 9, col: 9 },
            }],
            Some((1, 3)),
        );
        let (np, _) = ed.finish();
        assert_eq!(np.code[1], Insn::MovImm { dst: 7, imm: 9 });
        // Back edge still targets the original head (now pc 2), skipping
        // the preheader.
        assert_eq!(np.code[4], Insn::Ja { off: -3 });
        // Exit test offset now reaches Exit at pc 5.
        assert_eq!(jump_target(2, &np.code[2]), Some(5));
    }
}
