//! Local value numbering: pure-helper common-subexpression elimination,
//! copy propagation, and redundant load/store elimination within basic
//! blocks.
//!
//! Purity follows the runtime effect model of [`crate::exec::ExecCtx`]:
//! `SubflowCount`/`SubflowAt`/`SubflowProp`/`PacketProp`/`SentOn`/
//! `HasWindowFor`/`QueueLen` read immutable snapshot state and are always
//! reusable; `QueueGet` is reusable until a `Pop`/`DropPkt` changes the
//! visible queue view, and `GetReg` until a `SetReg`. Effectful helpers
//! (`Pop`, `Push`, `DropPkt`, `SetReg`) are never touched — the
//! translation validator audits their exact call-site counts against the
//! HIR certificate.

use crate::bytecode::{AluOp, BytecodeProgram, DebugTable, Helper, Insn, NUM_MACH_REGS};
use crate::opt::edit::Editor;
use crate::opt::Sabotage;
use std::collections::HashMap;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ExprKey {
    Const(i64),
    Alu(AluOp, u32, u32),
    Neg(u32),
    /// Pure helper call; the final field is the invalidation era for
    /// helpers whose result depends on mutable execution state.
    Helper(Helper, Vec<u32>, u32),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    Reg(u8),
    Slot(u16),
}

struct Lvn {
    next: u32,
    reg_vn: [u32; NUM_MACH_REGS],
    slot_vn: HashMap<u16, u32>,
    exprs: HashMap<ExprKey, u32>,
    holders: HashMap<u32, Vec<Loc>>,
    queue_era: u32,
    reg_era: u32,
}

impl Lvn {
    fn new() -> Lvn {
        let mut lvn = Lvn {
            next: 0,
            reg_vn: [0; NUM_MACH_REGS],
            slot_vn: HashMap::new(),
            exprs: HashMap::new(),
            holders: HashMap::new(),
            queue_era: 0,
            reg_era: 0,
        };
        for r in 0..NUM_MACH_REGS {
            let vn = lvn.fresh();
            lvn.reg_vn[r] = vn;
            lvn.holders.entry(vn).or_default().push(Loc::Reg(r as u8));
        }
        lvn
    }

    fn fresh(&mut self) -> u32 {
        self.next += 1;
        self.next
    }

    fn reg(&self, r: u8) -> u32 {
        self.reg_vn[usize::from(r)]
    }

    fn slot(&mut self, s: u16) -> u32 {
        if let Some(vn) = self.slot_vn.get(&s) {
            return *vn;
        }
        let vn = self.fresh();
        self.slot_vn.insert(s, vn);
        self.holders.entry(vn).or_default().push(Loc::Slot(s));
        vn
    }

    /// Records that `loc` now holds `vn`, dropping its previous binding.
    fn bind(&mut self, loc: Loc, vn: u32) {
        let old = match loc {
            Loc::Reg(r) => std::mem::replace(&mut self.reg_vn[usize::from(r)], vn),
            Loc::Slot(s) => self.slot_vn.insert(s, vn).unwrap_or(0),
        };
        if let Some(hs) = self.holders.get_mut(&old) {
            hs.retain(|h| *h != loc);
        }
        self.holders.entry(vn).or_default().push(loc);
    }

    fn fresh_bind(&mut self, loc: Loc) -> u32 {
        let vn = self.fresh();
        self.bind(loc, vn);
        vn
    }

    /// A register (preferred) or slot currently holding `vn`, excluding
    /// `exclude`. The frame pointer and helper argument registers are
    /// never offered: r10 is special and r0..r5 are clobbered by calls in
    /// ways later rewrites (specialization) may change.
    fn holder(&self, vn: u32, exclude: Loc) -> Option<Loc> {
        let hs = self.holders.get(&vn)?;
        hs.iter()
            .filter(|h| **h != exclude)
            .filter(|h| !matches!(h, Loc::Reg(r) if *r < 6 || *r == 10))
            .min_by_key(|h| match h {
                Loc::Reg(r) => (0, u16::from(*r)),
                Loc::Slot(s) => (1, *s),
            })
            .copied()
    }

    /// Looks up (or records) the value number of `key`.
    fn number(&mut self, key: ExprKey) -> (u32, bool) {
        if let Some(vn) = self.exprs.get(&key) {
            return (*vn, true);
        }
        let vn = self.fresh();
        self.exprs.insert(key, vn);
        (vn, false)
    }
}

fn pure_key(lvn: &mut Lvn, helper: Helper) -> Option<ExprKey> {
    let era = match helper {
        Helper::SubflowCount
        | Helper::SubflowAt
        | Helper::SubflowProp
        | Helper::PacketProp
        | Helper::SentOn
        | Helper::HasWindowFor
        | Helper::QueueLen => 0,
        Helper::QueueGet => lvn.queue_era,
        Helper::GetReg => lvn.reg_era,
        Helper::Pop | Helper::Push | Helper::DropPkt | Helper::SetReg => return None,
    };
    let args = (1..=helper.arg_count() as u8).map(|r| lvn.reg(r)).collect();
    Some(ExprKey::Helper(helper, args, era))
}

/// Emits `dst = <holder of vn>` as a replacement instruction.
fn mov_from(dst: u8, loc: Loc) -> Insn {
    match loc {
        Loc::Reg(src) => Insn::Mov { dst, src },
        Loc::Slot(slot) => Insn::Ld { dst, slot },
    }
}

pub(crate) fn run(
    prog: &BytecodeProgram,
    debug: &DebugTable,
    sabotage: Option<Sabotage>,
) -> (BytecodeProgram, DebugTable, u64) {
    let mut ed = Editor::new(prog, debug);
    let n = prog.code.len();

    // Basic-block leaders: entry, branch targets, fallthroughs of branches.
    let mut leader = vec![false; n];
    if n > 0 {
        leader[0] = true;
    }
    for pc in 0..n {
        if let Some(t) = crate::opt::edit::jump_target(pc, &prog.code[pc]) {
            if t < n {
                leader[t] = true;
            }
        }
        if matches!(
            prog.code[pc],
            Insn::Ja { .. } | Insn::Jmp { .. } | Insn::JmpImm { .. } | Insn::Exit
        ) && pc + 1 < n
        {
            leader[pc + 1] = true;
        }
    }

    let mut sabotaged = sabotage != Some(Sabotage::ImpureCse);
    let mut lvn = Lvn::new();
    for (pc, &is_leader) in leader.iter().enumerate() {
        if is_leader {
            lvn = Lvn::new();
        }
        match prog.code[pc] {
            Insn::MovImm { dst, imm } => {
                let (vn, _) = lvn.number(ExprKey::Const(imm));
                if lvn.reg(dst) == vn {
                    ed.delete(pc);
                } else {
                    lvn.bind(Loc::Reg(dst), vn);
                }
            }
            Insn::Mov { dst, src } => {
                let vn = lvn.reg(src);
                if dst == src || lvn.reg(dst) == vn {
                    ed.delete(pc);
                } else {
                    lvn.bind(Loc::Reg(dst), vn);
                }
            }
            Insn::Alu { op, dst, src } => {
                let (mut a, mut b) = (lvn.reg(dst), lvn.reg(src));
                if matches!(
                    op,
                    AluOp::Add | AluOp::Mul | AluOp::And | AluOp::Or | AluOp::Xor
                ) && b < a
                {
                    std::mem::swap(&mut a, &mut b);
                }
                let (vn, known) = lvn.number(ExprKey::Alu(op, a, b));
                if known {
                    if let Some(h) = lvn.holder(vn, Loc::Reg(dst)) {
                        if lvn.reg(dst) == vn {
                            ed.delete(pc);
                        } else {
                            ed.set(pc, mov_from(dst, h));
                        }
                        lvn.bind(Loc::Reg(dst), vn);
                        continue;
                    }
                }
                lvn.bind(Loc::Reg(dst), vn);
            }
            Insn::AluImm { op, dst, imm } => {
                let a = lvn.reg(dst);
                let (b, _) = lvn.number(ExprKey::Const(imm));
                let (vn, known) = lvn.number(ExprKey::Alu(op, a, b));
                if known {
                    if let Some(h) = lvn.holder(vn, Loc::Reg(dst)) {
                        if lvn.reg(dst) == vn {
                            ed.delete(pc);
                        } else {
                            ed.set(pc, mov_from(dst, h));
                        }
                        lvn.bind(Loc::Reg(dst), vn);
                        continue;
                    }
                }
                lvn.bind(Loc::Reg(dst), vn);
            }
            Insn::Neg { dst } => {
                let (vn, known) = lvn.number(ExprKey::Neg(lvn.reg(dst)));
                if known {
                    if let Some(h) = lvn.holder(vn, Loc::Reg(dst)) {
                        ed.set(pc, mov_from(dst, h));
                    }
                }
                lvn.bind(Loc::Reg(dst), vn);
            }
            Insn::Call { helper } => {
                if !sabotaged && helper == Helper::Pop {
                    // Deliberately unsound: "CSE" the effectful Pop away as
                    // if it were a repeat of a pure computation, reusing a
                    // register a preceding call clobbered.
                    ed.set(pc, Insn::Mov { dst: 0, src: 5 });
                    sabotaged = true;
                    for r in 0..=5u8 {
                        lvn.fresh_bind(Loc::Reg(r));
                    }
                    continue;
                }
                match pure_key(&mut lvn, helper) {
                    Some(key) => {
                        let (vn, known) = lvn.number(key);
                        if known {
                            if let Some(h) = lvn.holder(vn, Loc::Reg(0)) {
                                ed.set(pc, mov_from(0, h));
                                // Replacing the call keeps r1..r5 live with
                                // their pre-call values; rebind them so
                                // later lookups stay consistent (they are
                                // excluded as holders anyway).
                                lvn.bind(Loc::Reg(0), vn);
                                for r in 1..=5u8 {
                                    lvn.fresh_bind(Loc::Reg(r));
                                }
                                continue;
                            }
                        }
                        lvn.bind(Loc::Reg(0), vn);
                        for r in 1..=5u8 {
                            lvn.fresh_bind(Loc::Reg(r));
                        }
                    }
                    None => {
                        match helper {
                            Helper::Pop | Helper::DropPkt => lvn.queue_era += 1,
                            Helper::SetReg => lvn.reg_era += 1,
                            _ => {}
                        }
                        for r in 0..=5u8 {
                            lvn.fresh_bind(Loc::Reg(r));
                        }
                    }
                }
            }
            Insn::Ld { dst, slot } => {
                let vn = lvn.slot(slot);
                if lvn.reg(dst) == vn {
                    ed.delete(pc);
                } else if let Some(Loc::Reg(src)) = lvn.holder(vn, Loc::Slot(slot)) {
                    if src != dst {
                        ed.set(pc, Insn::Mov { dst, src });
                    }
                    lvn.bind(Loc::Reg(dst), vn);
                } else {
                    lvn.bind(Loc::Reg(dst), vn);
                }
            }
            Insn::St { slot, src } => {
                let vn = lvn.reg(src);
                if lvn.slot(slot) == vn {
                    ed.delete(pc);
                } else {
                    lvn.bind(Loc::Slot(slot), vn);
                }
            }
            Insn::Ja { .. } | Insn::Jmp { .. } | Insn::JmpImm { .. } | Insn::Exit => {}
        }
    }

    let changes = ed.changes();
    if changes == 0 {
        return (prog.clone(), debug.clone(), 0);
    }
    let (p, d) = ed.finish();
    (p, d, changes)
}
