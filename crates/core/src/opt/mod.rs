//! Verified bytecode optimizer: dataflow-driven rewrites with per-pass
//! translation validation.
//!
//! Four pass classes run over the emitted bytecode image, consuming the
//! same abstract facts the admission verifier computes: sparse
//! conditional constant propagation with constant-guard elimination
//! (`sccp`), local value numbering with pure-helper CSE (`cse`),
//! loop-invariant hoisting out of counted FOREACH loops (`licm`),
//! jump-threading/peephole cleanup (`peephole`), and dead-code/
//! dead-store elimination (`dce`).
//!
//! Every pass is *verified*: after each rewrite batch the dataflow
//! verifier re-runs on the candidate image, the translation-validation
//! machinery cross-checks it against the HIR admission certificate, and
//! the certified step bound is required never to increase. Any
//! disagreement rolls the pass back and surfaces a spanned
//! `misoptimization` diagnostic — fail-open to the last good image by
//! default, fail-closed (a compile error) under strict mode. The
//! [`Sabotage`] hooks deliberately break one rewrite per pass class so
//! the conformance suite can prove the validation actually fires.

pub(crate) mod analysis;
pub(crate) mod cse;
pub(crate) mod dce;
pub(crate) mod edit;
pub(crate) mod licm;
pub(crate) mod peephole;
pub(crate) mod sccp;

use crate::bytecode::{BytecodeProgram, DebugTable};
use crate::error::{CompileError, Pos, Stage};
use crate::hir::HProgram;
use crate::verify::props::{PropStatus, PropertyCertificate};
use crate::verify::vm::{validate_translation, verify_bytecode};
use crate::verify::{Diagnostic, Lint, Severity, VerifyConfig};

/// Test-only hook injecting one deliberately unsound rewrite into a pass,
/// used by the conformance mutation check to prove per-pass translation
/// validation catches real optimizer bugs with source spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sabotage {
    /// SCCP deletes a loop's live exit guard as if proven never-taken.
    DropLiveGuard,
    /// DCE deletes a loop counter increment as if it were dead.
    DeleteLiveIncrement,
    /// CSE replaces an effectful `POP` call like a pure repeat.
    ImpureCse,
    /// LICM hoists the loop-variant induction update to the preheader.
    LoopVariantHoist,
    /// Peephole threads a back edge one instruction past the exit test.
    BadJumpThread,
    /// SCCP deletes the live guard in front of an effectful `PUSH`/`POP`
    /// region as if proven constant, making the effect unconditional.
    /// Survives every structural/bound/audit check (the call sites are
    /// unchanged) — only the property-certificate gate catches it.
    UnguardEffect,
}

impl Sabotage {
    /// All sabotage hooks, at least one per pass class.
    pub const ALL: [Sabotage; 6] = [
        Sabotage::DropLiveGuard,
        Sabotage::DeleteLiveIncrement,
        Sabotage::ImpureCse,
        Sabotage::LoopVariantHoist,
        Sabotage::BadJumpThread,
        Sabotage::UnguardEffect,
    ];

    /// Stable name, for harness output.
    pub fn name(self) -> &'static str {
        match self {
            Sabotage::DropLiveGuard => "sccp-drop-live-guard",
            Sabotage::DeleteLiveIncrement => "dce-delete-live-increment",
            Sabotage::ImpureCse => "cse-impure-pop",
            Sabotage::LoopVariantHoist => "licm-loop-variant-hoist",
            Sabotage::BadJumpThread => "peephole-bad-jump-thread",
            Sabotage::UnguardEffect => "sccp-unguard-effect",
        }
    }

    /// The pass the hook is wired into.
    fn pass(self) -> &'static str {
        match self {
            Sabotage::DropLiveGuard | Sabotage::UnguardEffect => "sccp",
            Sabotage::DeleteLiveIncrement => "dce",
            Sabotage::ImpureCse => "cse",
            Sabotage::LoopVariantHoist => "licm",
            Sabotage::BadJumpThread => "peephole",
        }
    }
}

/// Knobs for [`optimize_bytecode`].
#[derive(Debug, Clone, Copy, Default)]
pub struct OptOptions {
    /// Fail-closed: a rolled-back pass becomes a compile error instead of
    /// a warning diagnostic on the report.
    pub strict: bool,
    /// Inject one unsound rewrite (testing only; see [`Sabotage`]).
    pub sabotage: Option<Sabotage>,
}

/// Per-pass rewrite accounting, aggregated across pipeline rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassStats {
    /// Pass name (`sccp`, `cse`, `licm`, `peephole`, `dce`).
    pub name: &'static str,
    /// Rewrites that survived validation and were kept.
    pub rewrites: u64,
    /// True when at least one batch from this pass failed validation and
    /// was rolled back.
    pub rolled_back: bool,
}

/// What the optimizer did to one program.
#[derive(Debug, Clone, Default)]
pub struct OptReport {
    /// Accounting per pass, in pipeline order.
    pub passes: Vec<PassStats>,
    /// Pipeline rounds executed.
    pub rounds: u32,
    /// Instruction count of the input image.
    pub insns_before: usize,
    /// Instruction count of the optimized image.
    pub insns_after: usize,
    /// Bytecode-model step bound of the input image.
    pub bound_before: u64,
    /// Bytecode-model step bound of the optimized image (never larger).
    pub bound_after: u64,
    /// `misoptimization` warnings for rolled-back passes (empty on a
    /// clean run).
    pub diagnostics: Vec<Diagnostic>,
}

impl OptReport {
    /// Total kept rewrites across all passes.
    pub fn total_rewrites(&self) -> u64 {
        self.passes.iter().map(|p| p.rewrites).sum()
    }

    /// Multi-line human-readable summary.
    pub fn render_human(&self) -> String {
        let mut out = format!(
            "optimizer: {} rewrites in {} rounds, {} -> {} insns, step bound {} -> {}\n",
            self.total_rewrites(),
            self.rounds,
            self.insns_before,
            self.insns_after,
            self.bound_before,
            self.bound_after,
        );
        for p in &self.passes {
            out.push_str(&format!(
                "  {:<8} {:>4} rewrites{}\n",
                p.name,
                p.rewrites,
                if p.rolled_back { "  [rolled back]" } else { "" }
            ));
        }
        for d in &self.diagnostics {
            out.push_str(&format!("  {d}\n"));
        }
        out
    }

    /// Single-object JSON report (hand-rolled; the crate has no serde).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"rewrites\":{},\"rounds\":{},\"insns_before\":{},\"insns_after\":{},\
             \"bound_before\":{},\"bound_after\":{},\"passes\":[",
            self.total_rewrites(),
            self.rounds,
            self.insns_before,
            self.insns_after,
            self.bound_before,
            self.bound_after,
        ));
        for (i, p) in self.passes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"rewrites\":{},\"rolled_back\":{}}}",
                p.name, p.rewrites, p.rolled_back
            ));
        }
        out.push_str("],\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"lint\":\"{}\",\"severity\":\"{}\",\"line\":{},\"col\":{},\"message\":",
                d.lint, d.severity, d.pos.line, d.pos.col
            ));
            crate::verify::diag::json_string(&mut out, &d.message);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

type PassFn =
    fn(&BytecodeProgram, &DebugTable, Option<Sabotage>) -> (BytecodeProgram, DebugTable, u64);

const PASSES: [(&str, PassFn); 5] = [
    ("sccp", sccp::run),
    ("cse", cse::run),
    ("licm", licm::run),
    ("peephole", peephole::run),
    ("dce", dce::run),
];

/// Upper bound on pipeline rounds; each round runs every pass once and
/// the pipeline stops early when a round keeps no rewrite.
const MAX_ROUNDS: u32 = 4;

/// True when `cert` carries claims worth gating on: at least one PROVED
/// scheduler property, or the guarded-POP proof that arms the oracle's
/// `null_pops == 0` dynamic check. Those claims were derived from the
/// HIR's *guard structure* around effectful calls, so the gate below
/// rejects any rewrite that changes which effect sites are
/// unconditional.
fn cert_armed(cert: &PropertyCertificate) -> bool {
    cert.pops_fully_guarded
        || cert
            .outcomes()
            .iter()
            .any(|(_, o)| o.status == PropStatus::Proved)
}

/// Human name of the certificate claim the gate protects for the effect
/// helper at [`analysis::EffectProfile`] index `i`.
fn gated_claim(cert: &PropertyCertificate, i: usize) -> String {
    if i > 0 && cert.pops_fully_guarded {
        return "pops-fully-guarded (null_pops == 0)".to_string();
    }
    cert.outcomes()
        .iter()
        .find(|(_, o)| o.status == PropStatus::Proved)
        .map(|(lint, _)| lint.to_string())
        .unwrap_or_else(|| "pops-fully-guarded (null_pops == 0)".to_string())
}

/// Validates a candidate image against the previous one. Returns the new
/// bytecode-model step bound (plus the candidate's effect profile when
/// the property-certificate gate is armed), or the span + reason of the
/// first failure.
#[allow(clippy::too_many_arguments)]
fn check_candidate(
    cand: &BytecodeProgram,
    cand_debug: &DebugTable,
    hir: &HProgram,
    certified_bound: u64,
    cfg: &VerifyConfig,
    prev_bound: u64,
    props: Option<&PropertyCertificate>,
    prev_profile: Option<&analysis::EffectProfile>,
) -> Result<(u64, Option<analysis::EffectProfile>), (Pos, String)> {
    if let Err(e) = crate::vm::verify(cand) {
        return Err((e.pos, format!("structural verify failed: {}", e.message)));
    }
    let v = verify_bytecode(cand, Some(cand_debug), cfg);
    if let Some(first) = v.diagnostics.iter().find(|d| d.severity == Severity::Error) {
        return Err((
            first.pos,
            format!("re-verification failed: [{}] {}", first.lint, first.message),
        ));
    }
    let Some(bound) = v.step_bound else {
        return Err((
            Pos::new(0, 0),
            "re-verification lost the step bound (loop no longer provably terminates)".to_string(),
        ));
    };
    if bound > prev_bound {
        return Err((
            Pos::new(0, 0),
            format!("step bound increased: {prev_bound} -> {bound}"),
        ));
    }
    let tv = validate_translation(cand, cand_debug, hir, certified_bound, cfg);
    if let Some(first) = tv
        .diagnostics
        .iter()
        .find(|d| d.severity == Severity::Error)
    {
        return Err((
            first.pos,
            format!(
                "translation validation failed: [{}] {}",
                first.lint, first.message
            ),
        ));
    }
    // Property-certificate gate: the certificate's PROVED claims were
    // derived from the HIR's guard structure around effectful calls, so
    // a pass must not change which PUSH/POP/DROP sites execute
    // unconditionally. Feasibility uses the same interval facts SCCP
    // folds with, so a *proven* constant-guard fold leaves the profile
    // unchanged; only an unproven unguarding trips the gate.
    let mut new_profile = None;
    if let (Some(cert), Some(prev)) = (props, prev_profile) {
        let profile = analysis::effect_profile(&cand.code, cand.stack_slots);
        for i in 0..3 {
            if profile.must[i].0 > prev.must[i].0 {
                let pos = profile.must[i]
                    .1
                    .map(|pc| cand_debug.pos(pc))
                    .unwrap_or(Pos::new(0, 0));
                return Err((
                    pos,
                    format!(
                        "property-certificate gate: pass makes a {} site unconditional \
                         ({} -> {} must-execute), weakening the certified {} claim",
                        analysis::effect_helper_name(i),
                        prev.must[i].0,
                        profile.must[i].0,
                        gated_claim(cert, i),
                    ),
                ));
            }
        }
        new_profile = Some(profile);
    }
    Ok((bound, new_profile))
}

/// Runs the verified optimizing pipeline over `prog`.
///
/// The input image must already have passed bytecode verification; if it
/// has not (observe-mode compiles of rejected programs), the image is
/// returned unchanged with an empty report. Each pass's output is
/// re-verified and cross-checked against the HIR admission certificate
/// (`hir`, `certified_bound`); a failing pass is rolled back and recorded
/// as a [`Lint::Misoptimization`] warning, or — under
/// [`OptOptions::strict`] — becomes the returned [`CompileError`].
///
/// When `props` carries a [`PropertyCertificate`] with PROVED claims,
/// per-pass validation additionally enforces the property gate: no pass
/// may change which effectful helper sites execute unconditionally
/// (`check_candidate`).
///
/// # Errors
///
/// Only in strict mode, and only when a pass fails validation.
pub fn optimize_bytecode(
    prog: &BytecodeProgram,
    debug: &DebugTable,
    hir: &HProgram,
    certified_bound: u64,
    cfg: &VerifyConfig,
    options: &OptOptions,
    props: Option<&PropertyCertificate>,
) -> Result<(BytecodeProgram, DebugTable, OptReport), CompileError> {
    let mut report = OptReport {
        passes: PASSES
            .iter()
            .map(|(name, _)| PassStats {
                name,
                rewrites: 0,
                rolled_back: false,
            })
            .collect(),
        insns_before: prog.code.len(),
        insns_after: prog.code.len(),
        ..OptReport::default()
    };

    // Optimize only images the verifier already admits with a finite
    // bound: anything else (observe-mode compiles of rejected programs)
    // passes through untouched.
    let initial = verify_bytecode(prog, Some(debug), cfg);
    let admitted = !initial
        .diagnostics
        .iter()
        .any(|d| d.severity == Severity::Error);
    let Some(initial_bound) = initial.step_bound.filter(|_| admitted) else {
        return Ok((prog.clone(), debug.clone(), report));
    };
    report.bound_before = initial_bound;
    report.bound_after = initial_bound;

    let mut cur = prog.clone();
    let mut dbg = debug.clone();
    let mut bound = initial_bound;
    // Arm the property gate only for certificates with PROVED claims.
    let gate = props.filter(|c| cert_armed(c));
    let mut profile = gate.map(|_| analysis::effect_profile(&prog.code, prog.stack_slots));
    let mut sabotage = options.sabotage;
    // A rolled-back pass is disabled for the rest of the pipeline: passes
    // are deterministic, so re-running one against the same image would
    // reproduce the same rejected candidate (and duplicate diagnostics).
    let mut disabled = [false; PASSES.len()];

    while report.rounds < MAX_ROUNDS {
        report.rounds += 1;
        let mut kept_this_round = 0u64;
        for (i, (name, pass)) in PASSES.iter().enumerate() {
            if disabled[i] {
                continue;
            }
            let sab = sabotage.filter(|s| s.pass() == *name);
            let (cand, cand_dbg, rewrites) = pass(&cur, &dbg, sab);
            if sab.is_some() {
                sabotage = None; // one-shot: do not re-inject after rollback
            }
            if rewrites == 0 {
                continue;
            }
            match check_candidate(
                &cand,
                &cand_dbg,
                hir,
                certified_bound,
                cfg,
                bound,
                gate,
                profile.as_ref(),
            ) {
                Ok((new_bound, new_profile)) => {
                    cur = cand;
                    dbg = cand_dbg;
                    bound = new_bound;
                    if new_profile.is_some() {
                        profile = new_profile;
                    }
                    report.passes[i].rewrites += rewrites;
                    kept_this_round += rewrites;
                }
                Err((pos, why)) => {
                    report.passes[i].rolled_back = true;
                    // Keep sabotaged passes enabled: the injection was
                    // one-shot, so later rounds run the clean pass.
                    if sab.is_none() {
                        disabled[i] = true;
                    }
                    let message = format!("{name} pass rolled back: {why}");
                    if options.strict {
                        return Err(CompileError::new(
                            Stage::VmVerify,
                            pos,
                            format!("[misoptimization] {message}"),
                        ));
                    }
                    report.diagnostics.push(Diagnostic {
                        lint: Lint::Misoptimization,
                        severity: Severity::Warning,
                        pos,
                        message,
                    });
                }
            }
        }
        if kept_this_round == 0 {
            break;
        }
    }

    report.insns_after = cur.code.len();
    report.bound_after = bound;
    Ok((cur, dbg, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile_parts(
        src: &str,
    ) -> (
        BytecodeProgram,
        DebugTable,
        HProgram,
        u64,
        PropertyCertificate,
    ) {
        let ast = crate::parser::parse(src).unwrap();
        let hir = crate::sema::lower(&ast).unwrap();
        let verdict = crate::verify::verify(&hir);
        assert!(verdict.admitted(), "{src}");
        let props = crate::verify::props::verify_properties_with(&hir, None, true);
        let vcode = crate::codegen::generate(&hir).unwrap();
        let (bytecode, debug) = crate::regalloc::allocate_with_debug(&vcode).unwrap();
        (bytecode, debug, hir, verdict.certified_step_bound, props)
    }

    const MIN_RTT: &str =
        "IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) { SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP()); }";

    #[test]
    fn clean_run_shrinks_and_never_raises_bound() {
        let (prog, debug, hir, cert, props) = compile_parts(MIN_RTT);
        let cfg = VerifyConfig::default();
        let (opt, opt_dbg, report) = optimize_bytecode(
            &prog,
            &debug,
            &hir,
            cert,
            &cfg,
            &OptOptions::default(),
            Some(&props),
        )
        .unwrap();
        assert!(report.total_rewrites() > 0, "{}", report.render_human());
        assert!(
            opt.code.len() < prog.code.len(),
            "{}",
            report.render_human()
        );
        assert!(report.bound_after <= report.bound_before);
        assert!(report.diagnostics.is_empty(), "{}", report.render_human());
        assert_eq!(opt_dbg.spans.len(), opt.code.len());
        // The optimized image still passes full translation validation.
        let tv = validate_translation(&opt, &opt_dbg, &hir, cert, &cfg);
        assert!(tv.admitted());
    }

    #[test]
    fn every_sabotage_is_caught_and_rolled_back() {
        let (prog, debug, hir, cert, props) = compile_parts(MIN_RTT);
        let cfg = VerifyConfig::default();
        for sab in Sabotage::ALL {
            let (opt, opt_dbg, report) = optimize_bytecode(
                &prog,
                &debug,
                &hir,
                cert,
                &cfg,
                &OptOptions {
                    strict: false,
                    sabotage: Some(sab),
                },
                Some(&props),
            )
            .unwrap();
            let hit = report
                .diagnostics
                .iter()
                .any(|d| d.lint == Lint::Misoptimization);
            assert!(hit, "{}: sabotage survived validation", sab.name());
            // Fail-open: the surviving image is still valid.
            let tv = validate_translation(&opt, &opt_dbg, &hir, cert, &cfg);
            assert!(tv.admitted(), "{}", sab.name());
        }
    }

    #[test]
    fn unguard_sabotage_is_caught_by_the_property_gate_only() {
        // The unguarding rewrite keeps every call site, never grows the
        // bound, and re-verifies cleanly (NULL is a graceful no-op handle
        // argument) — so the rollback must come from the certificate
        // gate, and must vanish when no certificate is supplied.
        let (prog, debug, hir, cert, props) = compile_parts(MIN_RTT);
        let cfg = VerifyConfig::default();
        let sab = OptOptions {
            strict: false,
            sabotage: Some(Sabotage::UnguardEffect),
        };
        let (_, _, report) =
            optimize_bytecode(&prog, &debug, &hir, cert, &cfg, &sab, Some(&props)).unwrap();
        let diag = report
            .diagnostics
            .iter()
            .find(|d| d.lint == Lint::Misoptimization)
            .expect("unguarding rolled back");
        assert!(
            diag.message.contains("property-certificate gate"),
            "{}",
            diag.message
        );
        assert!(diag.pos.line > 0, "gate diagnostics carry a source span");

        // Without the certificate the unsound image sails through every
        // legacy check — the gap this gate closes.
        let (_, _, ungated) =
            optimize_bytecode(&prog, &debug, &hir, cert, &cfg, &sab, None).unwrap();
        assert!(
            !ungated
                .diagnostics
                .iter()
                .any(|d| d.lint == Lint::Misoptimization),
            "{:?}",
            ungated.diagnostics
        );
    }

    #[test]
    fn strict_mode_turns_rollback_into_error() {
        let (prog, debug, hir, cert, props) = compile_parts(MIN_RTT);
        let cfg = VerifyConfig::default();
        let err = optimize_bytecode(
            &prog,
            &debug,
            &hir,
            cert,
            &cfg,
            &OptOptions {
                strict: true,
                sabotage: Some(Sabotage::DropLiveGuard),
            },
            Some(&props),
        )
        .unwrap_err();
        assert!(err.message.contains("misoptimization"), "{}", err.message);
    }
}
