//! Jump threading and peephole cleanup.
//!
//! The linear-scan allocator lowers every virtual instruction through
//! scratch registers (`dst = a op b` becomes `r0 = a; r0 op= b;
//! dst = r0`), so the emitted stream is rich in copy chains the verifier
//! charges a step each for. This pass coalesces those shapes, removes
//! no-op ALU identities, threads branches whose target is an
//! unconditional jump, and drops jumps to the next instruction.

use crate::bytecode::{AluOp, BytecodeProgram, DebugTable, Insn};
use crate::opt::analysis::liveness;
use crate::opt::edit::{jump_target, Editor};
use crate::opt::Sabotage;

pub(crate) fn run(
    prog: &BytecodeProgram,
    debug: &DebugTable,
    sabotage: Option<Sabotage>,
) -> (BytecodeProgram, DebugTable, u64) {
    let mut ed = Editor::new(prog, debug);
    let code = &prog.code;
    let n = code.len();
    let live = liveness(code);

    if sabotage == Some(Sabotage::BadJumpThread) {
        // Deliberately unsound jump threading: slide the first back edge
        // one instruction forward, past the loop's exit test.
        for (pc, insn) in code.iter().enumerate() {
            if let Some(t) = jump_target(pc, insn) {
                if t <= pc && matches!(insn, Insn::Ja { .. }) {
                    ed.retarget(pc, t + 1);
                    let changes = ed.changes();
                    let (p, d) = ed.finish();
                    return (p, d, changes);
                }
            }
        }
        return (prog.clone(), debug.clone(), 0);
    }

    let mut leader = vec![false; n];
    for (pc, insn) in code.iter().enumerate() {
        if let Some(t) = jump_target(pc, insn) {
            if t < n {
                leader[t] = true;
            }
        }
    }

    // Jump threading: a branch whose target is an unconditional jump goes
    // straight to the final destination (bounded to guard against cycles).
    for pc in 0..n {
        let Some(mut t) = jump_target(pc, &code[pc]) else {
            continue;
        };
        let mut hops = 0;
        while hops < 8 && t < n {
            let Insn::Ja { .. } = code[t] else { break };
            let Some(next) = jump_target(t, &code[t]) else {
                break;
            };
            if next == t {
                break;
            }
            t = next;
            hops += 1;
        }
        if hops > 0 && Some(t) != jump_target(pc, &code[pc]) {
            ed.retarget(pc, t);
        }
    }

    // All fusion patterns below match on the *original* instructions, so a
    // position that one rewrite already changed must not serve as a
    // constituent of a later pattern (the original text would be stale).
    let mut modified = vec![false; n];

    let mut pc = 0;
    while pc < n {
        let insn = code[pc];
        // Branches to the next instruction are no-ops either way.
        if let Some(t) = jump_target(pc, &insn) {
            if t == pc + 1 && ed.target(pc) == Some(t) {
                ed.delete(pc);
                modified[pc] = true;
                pc += 1;
                continue;
            }
        }
        match insn {
            Insn::Mov { dst, src } if dst == src => {
                ed.delete(pc);
                modified[pc] = true;
            }
            Insn::AluImm { op, dst, imm } => match (op, imm) {
                (AluOp::Add | AluOp::Sub | AluOp::Or | AluOp::Xor, 0)
                | (AluOp::Mul | AluOp::Div, 1) => {
                    ed.delete(pc);
                    modified[pc] = true;
                }
                (AluOp::Mul | AluOp::And, 0) | (AluOp::Rem, 1) => {
                    ed.set(pc, Insn::MovImm { dst, imm: 0 });
                    modified[pc] = true;
                }
                _ => {}
            },
            // `A = <producer>; D = A` with A dead after: produce into D.
            Insn::Mov { dst: d, src: a } if pc > 0 => {
                let prev = pc - 1;
                if !ed.is_deleted(prev)
                    && !modified[prev]
                    && !modified[pc]
                    && !leader[pc]
                    && !live.live_out[pc].has_reg(a)
                    && d != a
                {
                    match code[prev] {
                        Insn::MovImm { dst, imm } if dst == a => {
                            ed.delete(prev);
                            ed.set(pc, Insn::MovImm { dst: d, imm });
                            modified[prev] = true;
                            modified[pc] = true;
                        }
                        Insn::Mov { dst, src } if dst == a && src != a && src != d => {
                            ed.delete(prev);
                            ed.set(pc, Insn::Mov { dst: d, src });
                            modified[prev] = true;
                            modified[pc] = true;
                        }
                        Insn::Ld { dst, slot } if dst == a => {
                            ed.delete(prev);
                            ed.set(pc, Insn::Ld { dst: d, slot });
                            modified[prev] = true;
                            modified[pc] = true;
                        }
                        _ => {}
                    }
                }
            }
            // `A = B; St slot, A` with A dead after: store B directly.
            Insn::St { slot, src: a } if pc > 0 => {
                let prev = pc - 1;
                if !ed.is_deleted(prev)
                    && !modified[prev]
                    && !modified[pc]
                    && !leader[pc]
                    && !live.live_out[pc].has_reg(a)
                {
                    if let Insn::Mov { dst, src } = code[prev] {
                        if dst == a && src != a {
                            ed.delete(prev);
                            ed.set(pc, Insn::St { slot, src });
                            modified[prev] = true;
                            modified[pc] = true;
                        }
                    }
                }
            }
            _ => {}
        }
        pc += 1;
    }

    // Three-instruction ALU coalescing: `A = B; A op= x; D = A` with A
    // dead after becomes `D = B; D op= x`.
    let mut i = 0;
    while i + 2 < n {
        let (p0, p1, p2) = (i, i + 1, i + 2);
        if ed.is_deleted(p0)
            || ed.is_deleted(p1)
            || ed.is_deleted(p2)
            || modified[p0]
            || modified[p1]
            || modified[p2]
            || leader[p1]
            || leader[p2]
        {
            i += 1;
            continue;
        }
        let Insn::Mov { dst: a0, src: b } = code[p0] else {
            i += 1;
            continue;
        };
        let Insn::Mov { dst: d, src: a2 } = code[p2] else {
            i += 1;
            continue;
        };
        if a0 != a2 || a0 == b || d == a0 || live.live_out[p2].has_reg(a0) {
            i += 1;
            continue;
        }
        match code[p1] {
            Insn::AluImm { op, dst, imm } if dst == a0 => {
                ed.set(p0, Insn::Mov { dst: d, src: b });
                ed.set(p1, Insn::AluImm { op, dst: d, imm });
                ed.delete(p2);
                modified[p0] = true;
                modified[p1] = true;
                modified[p2] = true;
                i += 3;
            }
            Insn::Alu { op, dst, src } if dst == a0 && src != a0 && src != d && d != b => {
                ed.set(p0, Insn::Mov { dst: d, src: b });
                ed.set(p1, Insn::Alu { op, dst: d, src });
                ed.delete(p2);
                modified[p0] = true;
                modified[p1] = true;
                modified[p2] = true;
                i += 3;
            }
            Insn::Neg { dst } if dst == a0 => {
                ed.set(p0, Insn::Mov { dst: d, src: b });
                ed.set(p1, Insn::Neg { dst: d });
                ed.delete(p2);
                modified[p0] = true;
                modified[p1] = true;
                modified[p2] = true;
                i += 3;
            }
            _ => {
                i += 1;
            }
        }
    }

    let changes = ed.changes();
    if changes == 0 {
        return (prog.clone(), debug.clone(), 0);
    }
    let (p, d) = ed.finish();
    (p, d, changes)
}
