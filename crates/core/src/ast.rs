//! Untyped abstract syntax tree produced by the parser.
//!
//! The AST is deliberately close to the surface syntax; name/property
//! resolution, typing, and the semantic restrictions of the programming
//! model are performed by [`crate::sema`], which lowers the AST to the
//! typed [`crate::hir`] used by all three execution backends.

use crate::env::{QueueKind, RegId};
use crate::error::Pos;

/// A parsed scheduler program: a sequence of statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Top-level statements, in source order.
    pub body: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Source position of the statement's first token.
    pub pos: Pos,
    /// The statement's payload.
    pub kind: StmtKind,
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `VAR name = expr;` — single-assignment variable declaration.
    VarDecl {
        /// Variable name.
        name: String,
        /// Initializer expression.
        init: Expr,
    },
    /// `IF (cond) { then } ELSE { else }`.
    If {
        /// Condition (must be boolean).
        cond: Expr,
        /// Statements of the then-branch.
        then_body: Vec<Stmt>,
        /// Statements of the else-branch (empty when absent).
        else_body: Vec<Stmt>,
    },
    /// `FOREACH (VAR v IN list) { body }` — iterate a subflow list.
    Foreach {
        /// Loop variable name (bound to each subflow in turn).
        var: String,
        /// The subflow list to iterate.
        list: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `SET(Rn, expr);` — write a scheduler register.
    SetReg {
        /// Target register.
        reg: RegId,
        /// New value (integer expression).
        value: Expr,
    },
    /// `target.PUSH(packet);` — schedule `packet` on subflow `target`.
    Push {
        /// Subflow expression.
        target: Expr,
        /// Packet expression.
        packet: Expr,
    },
    /// `DROP(packet);` — discard a packet from the schedulable queues.
    Drop {
        /// Packet expression.
        packet: Expr,
    },
    /// `RETURN;` — end this scheduler execution.
    Return,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Source position of the expression's first token.
    pub pos: Pos,
    /// The expression's payload.
    pub kind: ExprKind,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Boolean literal (`TRUE` / `FALSE`).
    Bool(bool),
    /// `NULL` — the absent packet or subflow.
    Null,
    /// A scheduler register `R1` .. `R8`.
    Reg(RegId),
    /// A variable reference.
    Var(String),
    /// The builtin set of all subflows, `SUBFLOWS`.
    Subflows,
    /// One of the builtin queues `Q`, `QU`, `RQ`.
    Queue(QueueKind),
    /// Property access `obj.NAME` (resolved during sema; includes
    /// pseudo-properties such as `EMPTY`, `COUNT`, and `TOP`).
    Prop {
        /// Receiver expression.
        obj: Box<Expr>,
        /// Property name as written.
        name: String,
    },
    /// `obj.FILTER(v => pred)` on a subflow list or queue.
    Filter {
        /// Receiver expression.
        obj: Box<Expr>,
        /// Lambda parameter name.
        var: String,
        /// Boolean predicate over the lambda parameter.
        pred: Box<Expr>,
    },
    /// `obj.MIN(v => key)` / `obj.MAX(v => key)` — element with the
    /// minimal/maximal integer key; `NULL` for an empty receiver.
    MinMax {
        /// Receiver expression.
        obj: Box<Expr>,
        /// Lambda parameter name.
        var: String,
        /// Integer key over the lambda parameter.
        key: Box<Expr>,
        /// True for `MAX`, false for `MIN`.
        is_max: bool,
    },
    /// `obj.SUM(v => key)` — sum of the integer key over all elements.
    Sum {
        /// Receiver expression.
        obj: Box<Expr>,
        /// Lambda parameter name.
        var: String,
        /// Integer key over the lambda parameter.
        key: Box<Expr>,
    },
    /// `list.GET(index)` — element at `index`, `NULL` if out of range.
    Get {
        /// Receiver (subflow list).
        obj: Box<Expr>,
        /// Zero-based index.
        index: Box<Expr>,
    },
    /// `queue.POP()` — remove and return the first (matching) packet.
    Pop {
        /// Receiver (queue, possibly filtered).
        obj: Box<Expr>,
    },
    /// `packet.SENT_ON(subflow)`.
    SentOn {
        /// Packet expression.
        pkt: Box<Expr>,
        /// Subflow expression.
        sbf: Box<Expr>,
    },
    /// `subflow.HAS_WINDOW_FOR(packet)`.
    HasWindowFor {
        /// Subflow expression.
        sbf: Box<Expr>,
        /// Packet expression.
        pkt: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Boolean negation (`!` / `NOT`).
    Not,
    /// Integer negation (`-`).
    Neg,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (division by zero yields 0, as in eBPF)
    Div,
    /// `%` (modulo by zero yields 0)
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND` (no short-circuit side effects exist: predicates are pure)
    And,
    /// `OR`
    Or,
}

impl BinOp {
    /// True for `==`/`!=`/`<`/`<=`/`>`/`>=`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// True for `+`/`-`/`*`/`/`/`%`.
    pub fn is_arith(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem
        )
    }

    /// True for `AND`/`OR`.
    pub fn is_logic(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_classification_is_partition() {
        let all = [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Rem,
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
            BinOp::And,
            BinOp::Or,
        ];
        for op in all {
            let n = usize::from(op.is_comparison())
                + usize::from(op.is_arith())
                + usize::from(op.is_logic());
            assert_eq!(n, 1, "{op:?} must be in exactly one class");
        }
    }
}
