//! HIR-level optimizations (paper §4.1, "Runtime Optimizations").
//!
//! Enabled by the declarative, side-effect-free core of the programming
//! model ("all optimizations are enabled by the abstractions of the
//! programming model"):
//!
//! * **constant folding** of integer and boolean operations;
//! * **dead-branch elimination** for `IF` with a constant condition;
//! * **double-negation elimination**.
//!
//! The two other optimizations the paper names live elsewhere: *late
//! materialization* of `FILTER` is inherent in all three backends
//! (predicates run during a single scan), and *constant subflow number*
//! specialization is implemented at the bytecode level
//! ([`crate::vm::specialize_subflow_count`]). *Compressed executions* are
//! provided by the runtime driver
//! ([`crate::program::SchedulerInstance::run_to_quiescence`]).
//!
//! The optimizer rewrites expressions in place (the arena keeps dead
//! nodes; they are simply unreferenced) and rebuilds statement bodies.

use crate::ast::{BinOp, UnOp};
use crate::hir::{ExprId, HExpr, HProgram, HStmt, StmtId};
use crate::types::Type;

/// Optimizes `prog`, returning the number of rewrites applied.
pub fn optimize(prog: &mut HProgram) -> usize {
    let mut rewrites = 0;
    // Fold expressions bottom-up until no sweep changes anything. Every
    // rewrite strictly shrinks the referenced expression tree or replaces
    // a node with a literal, so the fixpoint is reached without an
    // arbitrary iteration cap.
    loop {
        let before = rewrites;
        for i in 0..prog.exprs.len() {
            rewrites += fold_expr(prog, ExprId(i as u32));
        }
        if rewrites == before {
            break;
        }
    }
    let body = std::mem::take(&mut prog.body);
    prog.body = prune_block(prog, body, &mut rewrites);
    rewrites
}

fn const_int(prog: &HProgram, e: ExprId) -> Option<i64> {
    match prog.expr(e) {
        HExpr::Int(v) => Some(*v),
        _ => None,
    }
}

fn const_bool(prog: &HProgram, e: ExprId) -> Option<bool> {
    match prog.expr(e) {
        HExpr::Bool(b) => Some(*b),
        _ => None,
    }
}

/// True when evaluating `e` cannot change observable state. Only
/// `Q.POP()` is effectful at expression level (it consumes a packet from
/// the queue view); everything else in the declarative core is a pure
/// read.
fn effect_free(prog: &HProgram, e: ExprId) -> bool {
    match prog.expr(e) {
        HExpr::QueuePop(_) => false,
        HExpr::Int(_)
        | HExpr::Bool(_)
        | HExpr::NullPacket
        | HExpr::NullSubflow
        | HExpr::ReadReg(_)
        | HExpr::ReadVar(_)
        | HExpr::Subflows
        | HExpr::Queue(_) => true,
        HExpr::SubflowProp { sbf: op, .. }
        | HExpr::PacketProp { pkt: op, .. }
        | HExpr::ListCount(op)
        | HExpr::QueueCount(op)
        | HExpr::ListEmpty(op)
        | HExpr::QueueEmpty(op)
        | HExpr::QueueTop(op)
        | HExpr::Unary { expr: op, .. } => effect_free(prog, *op),
        HExpr::SentOn { pkt: a, sbf: b }
        | HExpr::HasWindowFor { sbf: a, pkt: b }
        | HExpr::ListFilter {
            list: a, pred: b, ..
        }
        | HExpr::QueueFilter {
            queue: a, pred: b, ..
        }
        | HExpr::ListMinMax {
            list: a, key: b, ..
        }
        | HExpr::QueueMinMax {
            queue: a, key: b, ..
        }
        | HExpr::ListSum {
            list: a, key: b, ..
        }
        | HExpr::QueueSum {
            queue: a, key: b, ..
        }
        | HExpr::ListGet { list: a, index: b }
        | HExpr::Binary { lhs: a, rhs: b, .. } => effect_free(prog, *a) && effect_free(prog, *b),
    }
}

/// Structural equality of two expression trees (conservative: aggregate
/// operators compare as unequal unless they are the same node).
fn same_expr(prog: &HProgram, a: ExprId, b: ExprId) -> bool {
    if a == b {
        return true;
    }
    match (prog.expr(a), prog.expr(b)) {
        (HExpr::Int(x), HExpr::Int(y)) => x == y,
        (HExpr::Bool(x), HExpr::Bool(y)) => x == y,
        (HExpr::ReadReg(x), HExpr::ReadReg(y)) => x == y,
        (HExpr::ReadVar(x), HExpr::ReadVar(y)) => x == y,
        (HExpr::SubflowProp { sbf: s1, prop: p1 }, HExpr::SubflowProp { sbf: s2, prop: p2 }) => {
            p1 == p2 && same_expr(prog, *s1, *s2)
        }
        (HExpr::PacketProp { pkt: k1, prop: p1 }, HExpr::PacketProp { pkt: k2, prop: p2 }) => {
            p1 == p2 && same_expr(prog, *k1, *k2)
        }
        (HExpr::Unary { op: o1, expr: e1 }, HExpr::Unary { op: o2, expr: e2 }) => {
            o1 == o2 && same_expr(prog, *e1, *e2)
        }
        (
            HExpr::Binary {
                op: o1,
                lhs: l1,
                rhs: r1,
                ..
            },
            HExpr::Binary {
                op: o2,
                lhs: l2,
                rhs: r2,
                ..
            },
        ) => o1 == o2 && same_expr(prog, *l1, *l2) && same_expr(prog, *r1, *r2),
        _ => false,
    }
}

fn fold_expr(prog: &mut HProgram, id: ExprId) -> usize {
    let node = prog.expr(id).clone();
    let replacement = match node {
        HExpr::Binary {
            op,
            lhs,
            rhs,
            operand_ty,
        } => match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => {
                match (const_int(prog, lhs), const_int(prog, rhs)) {
                    (Some(a), Some(b)) => Some(HExpr::Int(match op {
                        BinOp::Add => a.wrapping_add(b),
                        BinOp::Sub => a.wrapping_sub(b),
                        BinOp::Mul => a.wrapping_mul(b),
                        BinOp::Div => {
                            if b == 0 {
                                0
                            } else {
                                a.wrapping_div(b)
                            }
                        }
                        BinOp::Rem => {
                            if b == 0 {
                                0
                            } else {
                                a.wrapping_rem(b)
                            }
                        }
                        _ => unreachable!(),
                    })),
                    // Identity: x + 0, x - 0, x * 1, x / 1.
                    (None, Some(0)) if matches!(op, BinOp::Add | BinOp::Sub) => {
                        Some(prog.expr(lhs).clone())
                    }
                    (None, Some(1)) if matches!(op, BinOp::Mul | BinOp::Div) => {
                        Some(prog.expr(lhs).clone())
                    }
                    (Some(0), None) if op == BinOp::Add => Some(prog.expr(rhs).clone()),
                    (Some(1), None) if op == BinOp::Mul => Some(prog.expr(rhs).clone()),
                    // Annihilator: x * 0 == 0 * x == 0, provided the
                    // discarded operand has no effect (it could be a
                    // `Q.POP()` property read).
                    (None, Some(0)) if op == BinOp::Mul && effect_free(prog, lhs) => {
                        Some(HExpr::Int(0))
                    }
                    (Some(0), None) if op == BinOp::Mul && effect_free(prog, rhs) => {
                        Some(HExpr::Int(0))
                    }
                    _ => None,
                }
            }
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                match (const_int(prog, lhs), const_int(prog, rhs)) {
                    (Some(a), Some(b)) => Some(HExpr::Bool(match op {
                        BinOp::Eq => a == b,
                        BinOp::Ne => a != b,
                        BinOp::Lt => a < b,
                        BinOp::Le => a <= b,
                        BinOp::Gt => a > b,
                        BinOp::Ge => a >= b,
                        _ => unreachable!(),
                    })),
                    _ => match (const_bool(prog, lhs), const_bool(prog, rhs)) {
                        (Some(a), Some(b)) if op == BinOp::Eq => Some(HExpr::Bool(a == b)),
                        (Some(a), Some(b)) if op == BinOp::Ne => Some(HExpr::Bool(a != b)),
                        // Identical pure integer operands compare equal:
                        // x == x, x <= x, x >= x hold; x != x, x < x,
                        // x > x never do.
                        _ if operand_ty == Type::Int
                            && same_expr(prog, lhs, rhs)
                            && effect_free(prog, lhs) =>
                        {
                            Some(HExpr::Bool(matches!(op, BinOp::Eq | BinOp::Le | BinOp::Ge)))
                        }
                        _ => None,
                    },
                }
            }
            BinOp::And => match (const_bool(prog, lhs), const_bool(prog, rhs)) {
                (Some(false), _) | (_, Some(false)) => Some(HExpr::Bool(false)),
                (Some(true), Some(true)) => Some(HExpr::Bool(true)),
                (Some(true), None) => Some(prog.expr(rhs).clone()),
                (None, Some(true)) => Some(prog.expr(lhs).clone()),
                _ => None,
            },
            BinOp::Or => match (const_bool(prog, lhs), const_bool(prog, rhs)) {
                (Some(true), _) | (_, Some(true)) => Some(HExpr::Bool(true)),
                (Some(false), Some(false)) => Some(HExpr::Bool(false)),
                (Some(false), None) => Some(prog.expr(rhs).clone()),
                (None, Some(false)) => Some(prog.expr(lhs).clone()),
                _ => None,
            },
        },
        HExpr::Unary { op, expr } => match op {
            UnOp::Not => match prog.expr(expr).clone() {
                HExpr::Bool(b) => Some(HExpr::Bool(!b)),
                // !!x => x
                HExpr::Unary {
                    op: UnOp::Not,
                    expr: inner,
                } => Some(prog.expr(inner).clone()),
                _ => None,
            },
            UnOp::Neg => const_int(prog, expr).map(|v| HExpr::Int(v.wrapping_neg())),
        },
        _ => None,
    };
    match replacement {
        Some(new_node) if new_node != *prog.expr(id) => {
            prog.exprs[id.0 as usize] = new_node;
            1
        }
        _ => 0,
    }
}

/// Removes statements after an unconditional `RETURN` and flattens `IF`s
/// with constant conditions.
fn prune_block(prog: &mut HProgram, body: Vec<StmtId>, rewrites: &mut usize) -> Vec<StmtId> {
    let mut out = Vec::with_capacity(body.len());
    for sid in body {
        let stmt = prog.stmt(sid).clone();
        match stmt {
            HStmt::If {
                cond,
                then_body,
                else_body,
            } => match const_bool(prog, cond) {
                Some(true) => {
                    *rewrites += 1;
                    let inlined = prune_block(prog, then_body, rewrites);
                    out.extend(inlined);
                    continue;
                }
                Some(false) => {
                    *rewrites += 1;
                    let inlined = prune_block(prog, else_body, rewrites);
                    out.extend(inlined);
                    continue;
                }
                None => {
                    let tb = prune_block(prog, then_body, rewrites);
                    let eb = prune_block(prog, else_body, rewrites);
                    prog.stmts[sid.0 as usize] = HStmt::If {
                        cond,
                        then_body: tb,
                        else_body: eb,
                    };
                    out.push(sid);
                }
            },
            HStmt::Foreach { slot, list, body } => {
                let b = prune_block(prog, body, rewrites);
                prog.stmts[sid.0 as usize] = HStmt::Foreach {
                    slot,
                    list,
                    body: b,
                };
                out.push(sid);
            }
            HStmt::Return => {
                out.push(sid);
                // Everything after an unconditional return is dead.
                break;
            }
            _ => out.push(sid),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{RegId, SchedulerEnv};
    use crate::exec::ExecCtx;
    use crate::interp;
    use crate::parser::parse;
    use crate::sema::lower;
    use crate::testenv::MockEnv;

    fn optimized(src: &str) -> HProgram {
        let mut p = lower(&parse(src).unwrap()).unwrap();
        optimize(&mut p);
        p
    }

    fn run(prog: &HProgram, env: &mut MockEnv) {
        let mut ctx = ExecCtx::new(env, 100_000);
        interp::execute(prog, &mut ctx).unwrap();
        let (regs, actions, _) = ctx.finish();
        env.apply(&regs, &actions);
    }

    #[test]
    fn folds_constant_arithmetic() {
        let p = optimized("SET(R1, 2 + 3 * 4);");
        let HStmt::SetReg { value, .. } = p.stmt(p.body[0]) else {
            panic!()
        };
        assert_eq!(p.expr(*value), &HExpr::Int(14));
    }

    #[test]
    fn folds_division_by_zero_to_zero() {
        let p = optimized("SET(R1, 9 / 0);");
        let HStmt::SetReg { value, .. } = p.stmt(p.body[0]) else {
            panic!()
        };
        assert_eq!(p.expr(*value), &HExpr::Int(0));
    }

    #[test]
    fn prunes_constant_true_branch() {
        let p = optimized("IF (TRUE) { SET(R1, 1); } ELSE { SET(R1, 2); }");
        assert_eq!(p.body.len(), 1);
        assert!(matches!(p.stmt(p.body[0]), HStmt::SetReg { .. }));
        let mut env = MockEnv::new();
        run(&p, &mut env);
        assert_eq!(env.register(RegId::R1), 1);
    }

    #[test]
    fn prunes_constant_false_branch() {
        let p = optimized("IF (1 > 2) { SET(R1, 1); } ELSE { SET(R1, 2); }");
        let mut env = MockEnv::new();
        run(&p, &mut env);
        assert_eq!(env.register(RegId::R1), 2);
    }

    #[test]
    fn removes_dead_code_after_return() {
        let p = optimized("SET(R1, 1); RETURN; SET(R1, 2); SET(R1, 3);");
        assert_eq!(p.body.len(), 2);
    }

    #[test]
    fn double_negation_eliminated() {
        let p = optimized("IF (!!(R1 > 0)) { SET(R2, 1); }");
        // The condition should now be the bare comparison.
        let HStmt::If { cond, .. } = p.stmt(p.body[0]) else {
            panic!()
        };
        assert!(matches!(p.expr(*cond), HExpr::Binary { op: BinOp::Gt, .. }));
    }

    #[test]
    fn short_circuit_and_with_false() {
        let p = optimized("IF (FALSE AND Q.EMPTY) { SET(R1, 1); } ELSE { SET(R1, 2); }");
        // Condition folds to FALSE, IF flattens to else branch.
        assert_eq!(p.body.len(), 1);
        let mut env = MockEnv::new();
        run(&p, &mut env);
        assert_eq!(env.register(RegId::R1), 2);
    }

    #[test]
    fn identity_operations_removed() {
        let p = optimized("SET(R1, R2 + 0); SET(R3, R2 * 1);");
        for &sid in &p.body {
            let HStmt::SetReg { value, .. } = p.stmt(sid) else {
                panic!()
            };
            assert!(matches!(p.expr(*value), HExpr::ReadReg(_)));
        }
    }

    #[test]
    fn multiplication_by_zero_annihilates() {
        // Both operand orders, with a pure non-constant operand.
        let p = optimized("SET(R1, R2 * 0); SET(R3, 0 * (R2 + R4));");
        for &sid in &p.body {
            let HStmt::SetReg { value, .. } = p.stmt(sid) else {
                panic!()
            };
            assert_eq!(p.expr(*value), &HExpr::Int(0));
        }
    }

    #[test]
    fn multiplication_by_zero_keeps_effectful_operand() {
        // Sema already confines POP() to VAR initializers and PUSH
        // arguments, so the annihilator's purity guard is defense in
        // depth — check the classifier directly.
        let src = "VAR pk = Q.POP(); SET(R1, pk.SIZE * 0);";
        let p = lower(&parse(src).unwrap()).unwrap();
        let HStmt::VarDecl { init, .. } = p.stmt(p.body[0]) else {
            panic!()
        };
        assert!(!effect_free(&p, *init), "Q.POP() is effectful");
        // Reading the popped packet through the var is pure, so the
        // annihilator still applies to `pk.SIZE * 0`.
        let p = optimized(src);
        let HStmt::SetReg { value, .. } = p.stmt(p.body[1]) else {
            panic!()
        };
        assert_eq!(p.expr(*value), &HExpr::Int(0));
    }

    #[test]
    fn identical_operand_comparisons_fold() {
        let p = optimized(
            "IF (R1 == R1) { SET(R2, 1); } ELSE { SET(R2, 2); }
             IF (R1 + R3 < R1 + R3) { SET(R4, 1); } ELSE { SET(R4, 2); }",
        );
        // Both IFs flatten: x == x is true, x < x is false.
        assert_eq!(p.body.len(), 2);
        let mut env = MockEnv::new();
        run(&p, &mut env);
        assert_eq!(env.register(RegId::R2), 1);
        assert_eq!(env.register(RegId::R4), 2);
    }

    #[test]
    fn identical_effectful_operands_do_not_fold() {
        // Each Q.POP() consumes a different packet; == must evaluate.
        let src = "VAR a = Q.POP(); VAR b = Q.POP();
                   IF (a.SIZE == b.SIZE) { SET(R1, 1); } ELSE { SET(R1, 2); }";
        let p = optimized(src);
        let HStmt::If { .. } = p.stmt(p.body[2]) else {
            panic!("IF must survive — operands are reads of distinct pops")
        };
    }

    #[test]
    fn fixpoint_folds_deep_chains() {
        // Needs several sweeps: each sweep folds one layer bottom-up.
        let expr = (0..20).fold("1".to_string(), |acc, _| format!("({acc} + 1)"));
        let p = optimized(&format!("SET(R1, {expr});"));
        let HStmt::SetReg { value, .. } = p.stmt(p.body[0]) else {
            panic!()
        };
        assert_eq!(p.expr(*value), &HExpr::Int(21));
    }

    #[test]
    fn optimization_preserves_semantics_on_mixed_program() {
        let src = "
            VAR x = 3 * 7;
            IF (x > 20 AND TRUE) { SET(R1, x + 0); } ELSE { SET(R1, 0 - 1); }
            IF (2 < 1) { SET(R2, 9); }";
        let unopt = lower(&parse(src).unwrap()).unwrap();
        let opt = optimized(src);
        let mut env1 = MockEnv::new();
        let mut env2 = MockEnv::new();
        run(&unopt, &mut env1);
        run(&opt, &mut env2);
        assert_eq!(env1.register(RegId::R1), env2.register(RegId::R1));
        assert_eq!(env1.register(RegId::R2), env2.register(RegId::R2));
        assert_eq!(env1.register(RegId::R1), 21);
    }
}
