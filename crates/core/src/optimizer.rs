//! HIR-level optimizations (paper §4.1, "Runtime Optimizations").
//!
//! Enabled by the declarative, side-effect-free core of the programming
//! model ("all optimizations are enabled by the abstractions of the
//! programming model"):
//!
//! * **constant folding** of integer and boolean operations;
//! * **dead-branch elimination** for `IF` with a constant condition;
//! * **double-negation elimination**.
//!
//! The two other optimizations the paper names live elsewhere: *late
//! materialization* of `FILTER` is inherent in all three backends
//! (predicates run during a single scan), and *constant subflow number*
//! specialization is implemented at the bytecode level
//! ([`crate::vm::specialize_subflow_count`]). *Compressed executions* are
//! provided by the runtime driver
//! ([`crate::program::SchedulerInstance::run_to_quiescence`]).
//!
//! The optimizer rewrites expressions in place (the arena keeps dead
//! nodes; they are simply unreferenced) and rebuilds statement bodies.

use crate::ast::{BinOp, UnOp};
use crate::hir::{ExprId, HExpr, HProgram, HStmt, StmtId};

/// Optimizes `prog`, returning the number of rewrites applied.
pub fn optimize(prog: &mut HProgram) -> usize {
    let mut rewrites = 0;
    // Fold expressions bottom-up until fixpoint (bounded).
    for _ in 0..8 {
        let before = rewrites;
        for i in 0..prog.exprs.len() {
            rewrites += fold_expr(prog, ExprId(i as u32));
        }
        if rewrites == before {
            break;
        }
    }
    let body = std::mem::take(&mut prog.body);
    prog.body = prune_block(prog, body, &mut rewrites);
    rewrites
}

fn const_int(prog: &HProgram, e: ExprId) -> Option<i64> {
    match prog.expr(e) {
        HExpr::Int(v) => Some(*v),
        _ => None,
    }
}

fn const_bool(prog: &HProgram, e: ExprId) -> Option<bool> {
    match prog.expr(e) {
        HExpr::Bool(b) => Some(*b),
        _ => None,
    }
}

fn fold_expr(prog: &mut HProgram, id: ExprId) -> usize {
    let node = prog.expr(id).clone();
    let replacement = match node {
        HExpr::Binary { op, lhs, rhs, .. } => match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => {
                match (const_int(prog, lhs), const_int(prog, rhs)) {
                    (Some(a), Some(b)) => Some(HExpr::Int(match op {
                        BinOp::Add => a.wrapping_add(b),
                        BinOp::Sub => a.wrapping_sub(b),
                        BinOp::Mul => a.wrapping_mul(b),
                        BinOp::Div => {
                            if b == 0 {
                                0
                            } else {
                                a.wrapping_div(b)
                            }
                        }
                        BinOp::Rem => {
                            if b == 0 {
                                0
                            } else {
                                a.wrapping_rem(b)
                            }
                        }
                        _ => unreachable!(),
                    })),
                    // Identity: x + 0, x - 0, x * 1, x / 1.
                    (None, Some(0)) if matches!(op, BinOp::Add | BinOp::Sub) => {
                        Some(prog.expr(lhs).clone())
                    }
                    (None, Some(1)) if matches!(op, BinOp::Mul | BinOp::Div) => {
                        Some(prog.expr(lhs).clone())
                    }
                    (Some(0), None) if op == BinOp::Add => Some(prog.expr(rhs).clone()),
                    (Some(1), None) if op == BinOp::Mul => Some(prog.expr(rhs).clone()),
                    _ => None,
                }
            }
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                match (const_int(prog, lhs), const_int(prog, rhs)) {
                    (Some(a), Some(b)) => Some(HExpr::Bool(match op {
                        BinOp::Eq => a == b,
                        BinOp::Ne => a != b,
                        BinOp::Lt => a < b,
                        BinOp::Le => a <= b,
                        BinOp::Gt => a > b,
                        BinOp::Ge => a >= b,
                        _ => unreachable!(),
                    })),
                    _ => match (const_bool(prog, lhs), const_bool(prog, rhs)) {
                        (Some(a), Some(b)) if op == BinOp::Eq => Some(HExpr::Bool(a == b)),
                        (Some(a), Some(b)) if op == BinOp::Ne => Some(HExpr::Bool(a != b)),
                        _ => None,
                    },
                }
            }
            BinOp::And => match (const_bool(prog, lhs), const_bool(prog, rhs)) {
                (Some(false), _) | (_, Some(false)) => Some(HExpr::Bool(false)),
                (Some(true), Some(true)) => Some(HExpr::Bool(true)),
                (Some(true), None) => Some(prog.expr(rhs).clone()),
                (None, Some(true)) => Some(prog.expr(lhs).clone()),
                _ => None,
            },
            BinOp::Or => match (const_bool(prog, lhs), const_bool(prog, rhs)) {
                (Some(true), _) | (_, Some(true)) => Some(HExpr::Bool(true)),
                (Some(false), Some(false)) => Some(HExpr::Bool(false)),
                (Some(false), None) => Some(prog.expr(rhs).clone()),
                (None, Some(false)) => Some(prog.expr(lhs).clone()),
                _ => None,
            },
        },
        HExpr::Unary { op, expr } => match op {
            UnOp::Not => match prog.expr(expr).clone() {
                HExpr::Bool(b) => Some(HExpr::Bool(!b)),
                // !!x => x
                HExpr::Unary {
                    op: UnOp::Not,
                    expr: inner,
                } => Some(prog.expr(inner).clone()),
                _ => None,
            },
            UnOp::Neg => const_int(prog, expr).map(|v| HExpr::Int(v.wrapping_neg())),
        },
        _ => None,
    };
    match replacement {
        Some(new_node) if new_node != *prog.expr(id) => {
            prog.exprs[id.0 as usize] = new_node;
            1
        }
        _ => 0,
    }
}

/// Removes statements after an unconditional `RETURN` and flattens `IF`s
/// with constant conditions.
fn prune_block(prog: &mut HProgram, body: Vec<StmtId>, rewrites: &mut usize) -> Vec<StmtId> {
    let mut out = Vec::with_capacity(body.len());
    for sid in body {
        let stmt = prog.stmt(sid).clone();
        match stmt {
            HStmt::If {
                cond,
                then_body,
                else_body,
            } => match const_bool(prog, cond) {
                Some(true) => {
                    *rewrites += 1;
                    let inlined = prune_block(prog, then_body, rewrites);
                    out.extend(inlined);
                    continue;
                }
                Some(false) => {
                    *rewrites += 1;
                    let inlined = prune_block(prog, else_body, rewrites);
                    out.extend(inlined);
                    continue;
                }
                None => {
                    let tb = prune_block(prog, then_body, rewrites);
                    let eb = prune_block(prog, else_body, rewrites);
                    prog.stmts[sid.0 as usize] = HStmt::If {
                        cond,
                        then_body: tb,
                        else_body: eb,
                    };
                    out.push(sid);
                }
            },
            HStmt::Foreach { slot, list, body } => {
                let b = prune_block(prog, body, rewrites);
                prog.stmts[sid.0 as usize] = HStmt::Foreach {
                    slot,
                    list,
                    body: b,
                };
                out.push(sid);
            }
            HStmt::Return => {
                out.push(sid);
                // Everything after an unconditional return is dead.
                break;
            }
            _ => out.push(sid),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{RegId, SchedulerEnv};
    use crate::exec::ExecCtx;
    use crate::interp;
    use crate::parser::parse;
    use crate::sema::lower;
    use crate::testenv::MockEnv;

    fn optimized(src: &str) -> HProgram {
        let mut p = lower(&parse(src).unwrap()).unwrap();
        optimize(&mut p);
        p
    }

    fn run(prog: &HProgram, env: &mut MockEnv) {
        let mut ctx = ExecCtx::new(env, 100_000);
        interp::execute(prog, &mut ctx).unwrap();
        let (regs, actions, _) = ctx.finish();
        env.apply(&regs, &actions);
    }

    #[test]
    fn folds_constant_arithmetic() {
        let p = optimized("SET(R1, 2 + 3 * 4);");
        let HStmt::SetReg { value, .. } = p.stmt(p.body[0]) else {
            panic!()
        };
        assert_eq!(p.expr(*value), &HExpr::Int(14));
    }

    #[test]
    fn folds_division_by_zero_to_zero() {
        let p = optimized("SET(R1, 9 / 0);");
        let HStmt::SetReg { value, .. } = p.stmt(p.body[0]) else {
            panic!()
        };
        assert_eq!(p.expr(*value), &HExpr::Int(0));
    }

    #[test]
    fn prunes_constant_true_branch() {
        let p = optimized("IF (TRUE) { SET(R1, 1); } ELSE { SET(R1, 2); }");
        assert_eq!(p.body.len(), 1);
        assert!(matches!(p.stmt(p.body[0]), HStmt::SetReg { .. }));
        let mut env = MockEnv::new();
        run(&p, &mut env);
        assert_eq!(env.register(RegId::R1), 1);
    }

    #[test]
    fn prunes_constant_false_branch() {
        let p = optimized("IF (1 > 2) { SET(R1, 1); } ELSE { SET(R1, 2); }");
        let mut env = MockEnv::new();
        run(&p, &mut env);
        assert_eq!(env.register(RegId::R1), 2);
    }

    #[test]
    fn removes_dead_code_after_return() {
        let p = optimized("SET(R1, 1); RETURN; SET(R1, 2); SET(R1, 3);");
        assert_eq!(p.body.len(), 2);
    }

    #[test]
    fn double_negation_eliminated() {
        let p = optimized("IF (!!(R1 > 0)) { SET(R2, 1); }");
        // The condition should now be the bare comparison.
        let HStmt::If { cond, .. } = p.stmt(p.body[0]) else {
            panic!()
        };
        assert!(matches!(p.expr(*cond), HExpr::Binary { op: BinOp::Gt, .. }));
    }

    #[test]
    fn short_circuit_and_with_false() {
        let p = optimized("IF (FALSE AND Q.EMPTY) { SET(R1, 1); } ELSE { SET(R1, 2); }");
        // Condition folds to FALSE, IF flattens to else branch.
        assert_eq!(p.body.len(), 1);
        let mut env = MockEnv::new();
        run(&p, &mut env);
        assert_eq!(env.register(RegId::R1), 2);
    }

    #[test]
    fn identity_operations_removed() {
        let p = optimized("SET(R1, R2 + 0); SET(R3, R2 * 1);");
        for &sid in &p.body {
            let HStmt::SetReg { value, .. } = p.stmt(sid) else {
                panic!()
            };
            assert!(matches!(p.expr(*value), HExpr::ReadReg(_)));
        }
    }

    #[test]
    fn optimization_preserves_semantics_on_mixed_program() {
        let src = "
            VAR x = 3 * 7;
            IF (x > 20 AND TRUE) { SET(R1, x + 0); } ELSE { SET(R1, 0 - 1); }
            IF (2 < 1) { SET(R2, 9); }";
        let unopt = lower(&parse(src).unwrap()).unwrap();
        let opt = optimized(src);
        let mut env1 = MockEnv::new();
        let mut env2 = MockEnv::new();
        run(&unopt, &mut env1);
        run(&opt, &mut env2);
        assert_eq!(env1.register(RegId::R1), env2.register(RegId::R1));
        assert_eq!(env1.register(RegId::R2), env2.register(RegId::R2));
        assert_eq!(env1.register(RegId::R1), 21);
    }
}
