//! Ahead-of-time compilation to a closure graph (execution environment #2
//! of paper §4.1).
//!
//! The paper's AOT backend generates and compiles C functions so that no
//! parser or interpreter runs in the kernel at schedule time. The Rust
//! analogue compiles the HIR once into a tree of boxed closures: all
//! dispatch decisions (which node kind, which property, which queue) are
//! resolved at compile time and execution is a direct call graph.
//!
//! Values use the same `i64` encoding as the bytecode VM (booleans 0/1,
//! handles, [`NULL_HANDLE`]). Aggregates are fused exactly like the
//! bytecode backend: `FILTER` chains become predicate closures applied
//! during a single scan.

use crate::ast::{BinOp, UnOp};
use crate::env::QueueKind;
use crate::error::{CompileError, ExecError, Pos, Stage};
use crate::exec::{ExecCtx, NULL_HANDLE};
use crate::hir::{ExprId, HExpr, HProgram, HStmt, StmtId, VarSlot};
use std::rc::Rc;

type Frame = Vec<i64>;
type CExpr = Rc<dyn Fn(&mut ExecCtx<'_>, &mut Frame) -> Result<i64, ExecError>>;
type CStmt = Rc<dyn Fn(&mut ExecCtx<'_>, &mut Frame) -> Result<Flow, ExecError>>;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Flow {
    Cont,
    Ret,
}

/// An AOT-compiled scheduler program.
pub struct CompiledProgram {
    body: Vec<CStmt>,
    n_slots: usize,
}

impl std::fmt::Debug for CompiledProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledProgram")
            .field("statements", &self.body.len())
            .field("n_slots", &self.n_slots)
            .finish()
    }
}

impl CompiledProgram {
    /// Executes the compiled program once against `ctx`.
    pub fn execute(&self, ctx: &mut ExecCtx<'_>) -> Result<(), ExecError> {
        let mut frame = vec![0i64; self.n_slots];
        for stmt in &self.body {
            if stmt(ctx, &mut frame)? == Flow::Ret {
                break;
            }
        }
        Ok(())
    }
}

/// Compiles lowered HIR into a closure graph.
pub fn compile(prog: &HProgram) -> Result<CompiledProgram, CompileError> {
    let c = Compiler { prog };
    let body = c.compile_block(&prog.body)?;
    Ok(CompiledProgram {
        body,
        n_slots: prog.n_slots,
    })
}

/// A compile-time-decomposed scan source: subflow set or packet queue,
/// plus the fused predicate chain.
struct Scan {
    queue: Option<QueueKind>,
    filters: Vec<(usize, CExpr)>,
}

impl Scan {
    /// Collects up to `limit` matching element handles.
    fn collect(
        &self,
        ctx: &mut ExecCtx<'_>,
        frame: &mut Frame,
        limit: usize,
    ) -> Result<Vec<i64>, ExecError> {
        let mut out = Vec::new();
        let n = match self.queue {
            Some(q) => ctx.queue_raw_len(q),
            None => ctx.subflow_count(),
        };
        'outer: for i in 0..n {
            ctx.step(1)?;
            let h = match self.queue {
                Some(q) => ctx.queue_get(q, i),
                None => ctx.subflow_at(i),
            };
            if h == NULL_HANDLE {
                continue;
            }
            for (slot, pred) in &self.filters {
                frame[*slot] = h;
                if pred(ctx, frame)? == 0 {
                    continue 'outer;
                }
            }
            out.push(h);
            if out.len() >= limit {
                break;
            }
        }
        Ok(out)
    }
}

struct Compiler<'p> {
    prog: &'p HProgram,
}

impl<'p> Compiler<'p> {
    fn internal_err(&self, msg: &str) -> CompileError {
        CompileError::new(Stage::Codegen, Pos::new(0, 0), msg.to_string())
    }

    fn compile_block(&self, body: &[StmtId]) -> Result<Vec<CStmt>, CompileError> {
        body.iter().map(|&s| self.compile_stmt(s)).collect()
    }

    fn compile_stmt(&self, sid: StmtId) -> Result<CStmt, CompileError> {
        Ok(match self.prog.stmt(sid).clone() {
            HStmt::VarDecl { slot, init } => {
                if self.prog.slot_ty[slot.0 as usize].is_aggregate() {
                    // Fused at use sites.
                    Rc::new(|_, _| Ok(Flow::Cont))
                } else {
                    let e = self.compile_expr(init)?;
                    let s = slot.0 as usize;
                    Rc::new(move |ctx, frame| {
                        ctx.step(1)?;
                        frame[s] = e(ctx, frame)?;
                        Ok(Flow::Cont)
                    })
                }
            }
            HStmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self.compile_expr(cond)?;
                let tb = self.compile_block(&then_body)?;
                let eb = self.compile_block(&else_body)?;
                Rc::new(move |ctx, frame| {
                    ctx.step(1)?;
                    let branch = if c(ctx, frame)? != 0 { &tb } else { &eb };
                    for s in branch {
                        if s(ctx, frame)? == Flow::Ret {
                            return Ok(Flow::Ret);
                        }
                    }
                    Ok(Flow::Cont)
                })
            }
            HStmt::Foreach { slot, list, body } => {
                let scan = self.compile_scan(list)?;
                let b = self.compile_block(&body)?;
                let s = slot.0 as usize;
                Rc::new(move |ctx, frame| {
                    ctx.step(1)?;
                    let elems = scan.collect(ctx, frame, usize::MAX)?;
                    for e in elems {
                        frame[s] = e;
                        for st in &b {
                            if st(ctx, frame)? == Flow::Ret {
                                return Ok(Flow::Ret);
                            }
                        }
                    }
                    Ok(Flow::Cont)
                })
            }
            HStmt::SetReg { reg, value } => {
                let v = self.compile_expr(value)?;
                Rc::new(move |ctx, frame| {
                    ctx.step(1)?;
                    let x = v(ctx, frame)?;
                    ctx.set_reg(reg, x);
                    Ok(Flow::Cont)
                })
            }
            HStmt::Push { target, packet } => {
                let t = self.compile_expr(target)?;
                let p = self.compile_expr(packet)?;
                Rc::new(move |ctx, frame| {
                    ctx.step(1)?;
                    let sbf = t(ctx, frame)?;
                    let pkt = p(ctx, frame)?;
                    ctx.push(sbf, pkt);
                    Ok(Flow::Cont)
                })
            }
            HStmt::Drop { packet } => {
                let p = self.compile_expr(packet)?;
                Rc::new(move |ctx, frame| {
                    ctx.step(1)?;
                    let pkt = p(ctx, frame)?;
                    ctx.drop_packet(pkt);
                    Ok(Flow::Cont)
                })
            }
            HStmt::Return => Rc::new(|_, _| Ok(Flow::Ret)),
        })
    }

    /// Decomposes an aggregate expression into a [`Scan`] at compile time.
    fn compile_scan(&self, e: ExprId) -> Result<Scan, CompileError> {
        match self.prog.expr(e).clone() {
            HExpr::Subflows => Ok(Scan {
                queue: None,
                filters: Vec::new(),
            }),
            HExpr::Queue(kind) => Ok(Scan {
                queue: Some(kind),
                filters: Vec::new(),
            }),
            HExpr::ListFilter { list, var, pred } => {
                let mut scan = self.compile_scan(list)?;
                scan.filters
                    .push((var.0 as usize, self.compile_expr(pred)?));
                Ok(scan)
            }
            HExpr::QueueFilter { queue, var, pred } => {
                let mut scan = self.compile_scan(queue)?;
                scan.filters
                    .push((var.0 as usize, self.compile_expr(pred)?));
                Ok(scan)
            }
            HExpr::ReadVar(slot) => {
                let init = self.prog.aggregate_init[slot.0 as usize]
                    .ok_or_else(|| self.internal_err("aggregate variable without initializer"))?;
                self.compile_scan(init)
            }
            _ => Err(self.internal_err("expression is not an aggregate")),
        }
    }

    fn compile_minmax(
        &self,
        source: ExprId,
        var: VarSlot,
        key: ExprId,
        is_max: bool,
    ) -> Result<CExpr, CompileError> {
        let scan = self.compile_scan(source)?;
        let k = self.compile_expr(key)?;
        let s = var.0 as usize;
        Ok(Rc::new(move |ctx, frame| {
            let elems = scan.collect(ctx, frame, usize::MAX)?;
            let mut best = NULL_HANDLE;
            let mut bestk = 0i64;
            let mut first = true;
            for e in elems {
                ctx.step(1)?;
                frame[s] = e;
                let kv = k(ctx, frame)?;
                let better = first || if is_max { kv > bestk } else { kv < bestk };
                if better {
                    best = e;
                    bestk = kv;
                    first = false;
                }
            }
            Ok(best)
        }))
    }

    fn compile_expr(&self, eid: ExprId) -> Result<CExpr, CompileError> {
        Ok(match self.prog.expr(eid).clone() {
            HExpr::Int(v) => Rc::new(move |ctx, _| {
                ctx.step(1)?;
                Ok(v)
            }),
            HExpr::Bool(b) => {
                let v = i64::from(b);
                Rc::new(move |ctx, _| {
                    ctx.step(1)?;
                    Ok(v)
                })
            }
            HExpr::NullPacket | HExpr::NullSubflow => Rc::new(|ctx, _| {
                ctx.step(1)?;
                Ok(NULL_HANDLE)
            }),
            HExpr::ReadReg(r) => Rc::new(move |ctx, _| {
                ctx.step(1)?;
                Ok(ctx.get_reg(r))
            }),
            HExpr::ReadVar(slot) => {
                if self.prog.slot_ty[slot.0 as usize].is_aggregate() {
                    return Err(self.internal_err("aggregate reads are fused at use sites"));
                }
                let s = slot.0 as usize;
                Rc::new(move |ctx, frame| {
                    ctx.step(1)?;
                    Ok(frame[s])
                })
            }
            HExpr::Subflows
            | HExpr::Queue(_)
            | HExpr::ListFilter { .. }
            | HExpr::QueueFilter { .. } => {
                return Err(self.internal_err("aggregate expression evaluated as scalar"))
            }
            HExpr::SubflowProp { sbf, prop } => {
                let s = self.compile_expr(sbf)?;
                Rc::new(move |ctx, frame| {
                    ctx.step(1)?;
                    let h = s(ctx, frame)?;
                    Ok(ctx.subflow_prop(h, prop))
                })
            }
            HExpr::PacketProp { pkt, prop } => {
                let p = self.compile_expr(pkt)?;
                Rc::new(move |ctx, frame| {
                    ctx.step(1)?;
                    let h = p(ctx, frame)?;
                    Ok(ctx.packet_prop(h, prop))
                })
            }
            HExpr::SentOn { pkt, sbf } => {
                let p = self.compile_expr(pkt)?;
                let s = self.compile_expr(sbf)?;
                Rc::new(move |ctx, frame| {
                    ctx.step(1)?;
                    let ph = p(ctx, frame)?;
                    let sh = s(ctx, frame)?;
                    Ok(ctx.sent_on(ph, sh))
                })
            }
            HExpr::HasWindowFor { sbf, pkt } => {
                let s = self.compile_expr(sbf)?;
                let p = self.compile_expr(pkt)?;
                Rc::new(move |ctx, frame| {
                    ctx.step(1)?;
                    let sh = s(ctx, frame)?;
                    let ph = p(ctx, frame)?;
                    Ok(ctx.has_window_for(sh, ph))
                })
            }
            HExpr::ListMinMax {
                list,
                var,
                key,
                is_max,
            } => self.compile_minmax(list, var, key, is_max)?,
            HExpr::QueueMinMax {
                queue,
                var,
                key,
                is_max,
            } => self.compile_minmax(queue, var, key, is_max)?,
            HExpr::ListSum { list, var, key }
            | HExpr::QueueSum {
                queue: list,
                var,
                key,
            } => {
                let scan = self.compile_scan(list)?;
                let k = self.compile_expr(key)?;
                let s = var.0 as usize;
                Rc::new(move |ctx, frame| {
                    let elems = scan.collect(ctx, frame, usize::MAX)?;
                    let mut total = 0i64;
                    for e in elems {
                        ctx.step(1)?;
                        frame[s] = e;
                        total = total.wrapping_add(k(ctx, frame)?);
                    }
                    Ok(total)
                })
            }
            HExpr::ListCount(src) | HExpr::QueueCount(src) => {
                let scan = self.compile_scan(src)?;
                Rc::new(move |ctx, frame| Ok(scan.collect(ctx, frame, usize::MAX)?.len() as i64))
            }
            HExpr::ListEmpty(src) | HExpr::QueueEmpty(src) => {
                let scan = self.compile_scan(src)?;
                Rc::new(move |ctx, frame| Ok(i64::from(scan.collect(ctx, frame, 1)?.is_empty())))
            }
            HExpr::ListGet { list, index } => {
                let scan = self.compile_scan(list)?;
                let idx = self.compile_expr(index)?;
                Rc::new(move |ctx, frame| {
                    ctx.step(1)?;
                    let i = idx(ctx, frame)?;
                    if i < 0 {
                        return Ok(NULL_HANDLE);
                    }
                    let elems = scan.collect(ctx, frame, (i as usize).saturating_add(1))?;
                    Ok(elems.get(i as usize).copied().unwrap_or(NULL_HANDLE))
                })
            }
            HExpr::QueueTop(src) => {
                let scan = self.compile_scan(src)?;
                Rc::new(move |ctx, frame| {
                    let elems = scan.collect(ctx, frame, 1)?;
                    Ok(elems.first().copied().unwrap_or(NULL_HANDLE))
                })
            }
            HExpr::QueuePop(src) => {
                let scan = self.compile_scan(src)?;
                Rc::new(move |ctx, frame| {
                    let elems = scan.collect(ctx, frame, 1)?;
                    let top = elems.first().copied().unwrap_or(NULL_HANDLE);
                    ctx.pop(top);
                    Ok(top)
                })
            }
            HExpr::Unary { op, expr } => {
                let e = self.compile_expr(expr)?;
                match op {
                    UnOp::Not => Rc::new(move |ctx, frame| {
                        ctx.step(1)?;
                        Ok(i64::from(e(ctx, frame)? == 0))
                    }),
                    UnOp::Neg => Rc::new(move |ctx, frame| {
                        ctx.step(1)?;
                        Ok(e(ctx, frame)?.wrapping_neg())
                    }),
                }
            }
            HExpr::Binary { op, lhs, rhs, .. } => {
                let l = self.compile_expr(lhs)?;
                let r = self.compile_expr(rhs)?;
                macro_rules! bin {
                    (|$a:ident, $b:ident| $body:expr) => {
                        Rc::new(move |ctx: &mut ExecCtx<'_>, frame: &mut Frame| {
                            ctx.step(1)?;
                            let $a = l(ctx, frame)?;
                            let $b = r(ctx, frame)?;
                            Ok($body)
                        }) as CExpr
                    };
                }
                match op {
                    BinOp::Add => bin!(|a, b| a.wrapping_add(b)),
                    BinOp::Sub => bin!(|a, b| a.wrapping_sub(b)),
                    BinOp::Mul => bin!(|a, b| a.wrapping_mul(b)),
                    BinOp::Div => bin!(|a, b| if b == 0 { 0 } else { a.wrapping_div(b) }),
                    BinOp::Rem => bin!(|a, b| if b == 0 { 0 } else { a.wrapping_rem(b) }),
                    BinOp::Eq => bin!(|a, b| i64::from(a == b)),
                    BinOp::Ne => bin!(|a, b| i64::from(a != b)),
                    BinOp::Lt => bin!(|a, b| i64::from(a < b)),
                    BinOp::Le => bin!(|a, b| i64::from(a <= b)),
                    BinOp::Gt => bin!(|a, b| i64::from(a > b)),
                    BinOp::Ge => bin!(|a, b| i64::from(a >= b)),
                    BinOp::And => Rc::new(move |ctx, frame| {
                        ctx.step(1)?;
                        Ok(if l(ctx, frame)? == 0 {
                            0
                        } else {
                            i64::from(r(ctx, frame)? != 0)
                        })
                    }),
                    BinOp::Or => Rc::new(move |ctx, frame| {
                        ctx.step(1)?;
                        Ok(if l(ctx, frame)? != 0 {
                            1
                        } else {
                            i64::from(r(ctx, frame)? != 0)
                        })
                    }),
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{QueueKind, RegId, SchedulerEnv, SubflowProp};
    use crate::parser::parse;
    use crate::sema::lower;
    use crate::testenv::MockEnv;

    fn run_aot(src: &str, env: &mut MockEnv) {
        let hir = lower(&parse(src).unwrap()).unwrap();
        let prog = compile(&hir).unwrap();
        let mut ctx = ExecCtx::new(env, 1_000_000);
        prog.execute(&mut ctx).unwrap();
        let (regs, actions, _) = ctx.finish();
        env.apply(&regs, &actions);
    }

    #[test]
    fn aot_runs_min_rtt() {
        let mut env = MockEnv::new();
        env.add_subflow(0);
        env.set_subflow_prop(0, SubflowProp::Rtt, 10_000);
        env.add_subflow(1);
        env.set_subflow_prop(1, SubflowProp::Rtt, 40_000);
        env.push_packet(QueueKind::SendQueue, 100, 0, 1400);
        run_aot(
            "IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) { SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP()); }",
            &mut env,
        );
        assert_eq!(env.transmissions.len(), 1);
        assert_eq!(env.transmissions[0].0 .0, 0);
    }

    #[test]
    fn aot_foreach_and_registers() {
        let mut env = MockEnv::new();
        env.add_subflow(0);
        env.add_subflow(1);
        env.add_subflow(2);
        run_aot(
            "FOREACH(VAR s IN SUBFLOWS) { SET(R1, R1 + s.ID + 1); }",
            &mut env,
        );
        assert_eq!(env.register(RegId::R1), 1 + 2 + 3);
    }

    #[test]
    fn aot_filtered_queue_pop() {
        let mut env = MockEnv::new();
        env.add_subflow(0);
        env.push_packet(QueueKind::SendQueue, 100, 0, 100);
        env.push_packet(QueueKind::SendQueue, 101, 1, 2000);
        run_aot(
            "SUBFLOWS.GET(0).PUSH(Q.FILTER(p => p.SIZE > 1000).POP());",
            &mut env,
        );
        assert_eq!(env.transmissions[0].1 .0, 101);
    }

    #[test]
    fn aot_division_by_zero() {
        let mut env = MockEnv::new();
        run_aot("SET(R1, 7 / 0);", &mut env);
        assert_eq!(env.register(RegId::R1), 0);
    }
}
