//! Pretty-printer for scheduler programs: renders an AST back to
//! canonical surface syntax.
//!
//! Used by the proc-style introspection interface (show the loaded
//! scheduler), by tooling, and by the parser round-trip property tests
//! (`parse(print(parse(src)))` is structurally identical to
//! `parse(src)`).

use crate::ast::{BinOp, Expr, ExprKind, Program, Stmt, StmtKind, UnOp};

/// Renders a parsed program as canonical source text.
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    for stmt in &program.body {
        print_stmt(stmt, 0, &mut out);
    }
    out
}

/// `Display` renders the canonical source text, same as [`print_program`]:
/// `program.to_string()` parses back to a structurally identical AST.
impl std::fmt::Display for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&print_program(self))
    }
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_block(body: &[Stmt], level: usize, out: &mut String) {
    out.push_str("{\n");
    for stmt in body {
        print_stmt(stmt, level + 1, out);
    }
    indent(level, out);
    out.push('}');
}

fn print_stmt(stmt: &Stmt, level: usize, out: &mut String) {
    indent(level, out);
    match &stmt.kind {
        StmtKind::VarDecl { name, init } => {
            out.push_str("VAR ");
            out.push_str(name);
            out.push_str(" = ");
            print_expr(init, out);
            out.push_str(";\n");
        }
        StmtKind::If {
            cond,
            then_body,
            else_body,
        } => {
            out.push_str("IF (");
            print_expr(cond, out);
            out.push_str(") ");
            print_block(then_body, level, out);
            if !else_body.is_empty() {
                out.push_str(" ELSE ");
                print_block(else_body, level, out);
            }
            out.push('\n');
        }
        StmtKind::Foreach { var, list, body } => {
            out.push_str("FOREACH (VAR ");
            out.push_str(var);
            out.push_str(" IN ");
            print_expr(list, out);
            out.push_str(") ");
            print_block(body, level, out);
            out.push('\n');
        }
        StmtKind::SetReg { reg, value } => {
            out.push_str("SET(");
            out.push_str(&reg.to_string());
            out.push_str(", ");
            print_expr(value, out);
            out.push_str(");\n");
        }
        StmtKind::Push { target, packet } => {
            print_expr(target, out);
            out.push_str(".PUSH(");
            print_expr(packet, out);
            out.push_str(");\n");
        }
        StmtKind::Drop { packet } => {
            out.push_str("DROP(");
            print_expr(packet, out);
            out.push_str(");\n");
        }
        StmtKind::Return => out.push_str("RETURN;\n"),
    }
}

fn bin_op_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "AND",
        BinOp::Or => "OR",
    }
}

fn print_expr(expr: &Expr, out: &mut String) {
    match &expr.kind {
        ExprKind::Int(v) => out.push_str(&v.to_string()),
        ExprKind::Bool(true) => out.push_str("TRUE"),
        ExprKind::Bool(false) => out.push_str("FALSE"),
        ExprKind::Null => out.push_str("NULL"),
        ExprKind::Reg(r) => out.push_str(&r.to_string()),
        ExprKind::Var(name) => out.push_str(name),
        ExprKind::Subflows => out.push_str("SUBFLOWS"),
        ExprKind::Queue(q) => out.push_str(q.name()),
        ExprKind::Prop { obj, name } => {
            print_expr(obj, out);
            out.push('.');
            out.push_str(name);
        }
        ExprKind::Filter { obj, var, pred } => {
            print_expr(obj, out);
            out.push_str(".FILTER(");
            out.push_str(var);
            out.push_str(" => ");
            print_expr(pred, out);
            out.push(')');
        }
        ExprKind::MinMax {
            obj,
            var,
            key,
            is_max,
        } => {
            print_expr(obj, out);
            out.push_str(if *is_max { ".MAX(" } else { ".MIN(" });
            out.push_str(var);
            out.push_str(" => ");
            print_expr(key, out);
            out.push(')');
        }
        ExprKind::Sum { obj, var, key } => {
            print_expr(obj, out);
            out.push_str(".SUM(");
            out.push_str(var);
            out.push_str(" => ");
            print_expr(key, out);
            out.push(')');
        }
        ExprKind::Get { obj, index } => {
            print_expr(obj, out);
            out.push_str(".GET(");
            print_expr(index, out);
            out.push(')');
        }
        ExprKind::Pop { obj } => {
            print_expr(obj, out);
            out.push_str(".POP()");
        }
        ExprKind::SentOn { pkt, sbf } => {
            print_expr(pkt, out);
            out.push_str(".SENT_ON(");
            print_expr(sbf, out);
            out.push(')');
        }
        ExprKind::HasWindowFor { sbf, pkt } => {
            print_expr(sbf, out);
            out.push_str(".HAS_WINDOW_FOR(");
            print_expr(pkt, out);
            out.push(')');
        }
        ExprKind::Unary { op, expr: inner } => {
            match op {
                UnOp::Not => out.push('!'),
                UnOp::Neg => out.push('-'),
            }
            // Parenthesize to stay unambiguous regardless of the inner
            // expression's structure.
            out.push('(');
            print_expr(inner, out);
            out.push(')');
        }
        ExprKind::Binary { op, lhs, rhs } => {
            out.push('(');
            print_expr(lhs, out);
            out.push(' ');
            out.push_str(bin_op_str(*op));
            out.push(' ');
            print_expr(rhs, out);
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Positions differ after printing, so compare structure only.
    fn strip(program: &Program) -> String {
        format!("{:?}", program)
            .split("pos: Pos")
            .map(|part| part.split_once('}').map(|(_, rest)| rest).unwrap_or(part))
            .collect()
    }

    fn round_trips(src: &str) {
        let first = parse(src).expect("parses");
        let printed = print_program(&first);
        let second =
            parse(&printed).unwrap_or_else(|e| panic!("printed output must parse: {e}\n{printed}"));
        assert_eq!(
            strip(&first),
            strip(&second),
            "round trip changed structure:\n--- original\n{src}\n--- printed\n{printed}"
        );
        // Printing is idempotent.
        assert_eq!(printed, print_program(&second));
    }

    #[test]
    fn round_trips_every_bundled_scheduler_shape() {
        round_trips(
            "IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) { SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP()); }",
        );
        round_trips(
            "VAR sbfs = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY);
             IF (R1 >= sbfs.COUNT) { SET(R1, 0); }
             IF (!Q.EMPTY) {
                 VAR sbf = sbfs.GET(R1);
                 IF (sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED) { sbf.PUSH(Q.POP()); }
                 SET(R1, R1 + 1); }",
        );
        round_trips("VAR skb = Q.POP(); FOREACH (VAR sbf IN SUBFLOWS) { sbf.PUSH(skb); }");
        round_trips("DROP(Q.POP()); RETURN;");
        round_trips(
            "VAR s = SUBFLOWS.GET(0);
             VAR p = QU.FILTER(x => !x.SENT_ON(s)).TOP;
             IF (p != NULL AND s.HAS_WINDOW_FOR(p)) { s.PUSH(p); }",
        );
        round_trips("SET(R2, SUBFLOWS.SUM(s => s.BW) - (3 * -R1) % 7);");
        round_trips("IF (TRUE OR FALSE AND !Q.EMPTY) { SET(R1, 0 - 5); } ELSE { RETURN; }");
        round_trips("VAR best = QU.MAX(p => p.SEQ); IF (NULL == best) { RETURN; }");
    }

    #[test]
    fn display_matches_print_program() {
        let p = parse("IF (!Q.EMPTY) { SUBFLOWS.MIN(s => s.RTT).PUSH(Q.POP()); }").unwrap();
        assert_eq!(p.to_string(), print_program(&p));
        // Display output round-trips like print_program output.
        assert_eq!(strip(&p), strip(&parse(&p.to_string()).unwrap()));
    }

    #[test]
    fn precedence_is_preserved_by_parens() {
        // 1 + 2 * 3 and (1 + 2) * 3 must print differently and re-parse
        // to their own structure.
        round_trips("SET(R1, 1 + 2 * 3);");
        round_trips("SET(R1, (1 + 2) * 3);");
        let a = parse("SET(R1, 1 + 2 * 3);").unwrap();
        let b = parse("SET(R1, (1 + 2) * 3);").unwrap();
        assert_ne!(print_program(&a), print_program(&b));
    }
}
