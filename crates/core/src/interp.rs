//! The baseline tree-walking interpreter (execution environment #1 of
//! paper §4.1).
//!
//! Queue `FILTER` chains are evaluated with *late materialization*: a
//! queue value is a view (queue kind + predicate chain) and elements are
//! only tested when `TOP`/`POP`/`COUNT`/`MIN`/... consume the view.
//! Subflow lists are small and materialize eagerly.

use crate::ast::{BinOp, UnOp};
use crate::env::QueueKind;
use crate::error::ExecError;
use crate::exec::{ExecCtx, NULL_HANDLE};
use crate::hir::{ExprId, HExpr, HProgram, HStmt, StmtId, VarSlot};

/// A lazily-filtered queue view.
#[derive(Debug, Clone, Default)]
struct QueueView {
    kind: Option<QueueKind>,
    /// Predicate chain applied in order: (lambda slot, predicate expr).
    filters: Vec<(VarSlot, ExprId)>,
}

/// A runtime value of the interpreter.
#[derive(Debug, Clone)]
enum Value {
    Int(i64),
    Bool(bool),
    /// Packet handle or [`NULL_HANDLE`].
    Packet(i64),
    /// Subflow handle or [`NULL_HANDLE`].
    Subflow(i64),
    SubflowList(Vec<i64>),
    Queue(QueueView),
}

impl Value {
    fn as_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            _ => 0,
        }
    }

    fn as_bool(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            _ => false,
        }
    }

    fn as_handle(&self) -> i64 {
        match self {
            Value::Packet(h) | Value::Subflow(h) => *h,
            _ => NULL_HANDLE,
        }
    }
}

enum Flow {
    Continue,
    Return,
}

/// Executes `prog` once against `ctx` using the tree-walking interpreter.
pub fn execute(prog: &HProgram, ctx: &mut ExecCtx<'_>) -> Result<(), ExecError> {
    let mut interp = Interp {
        prog,
        frame: vec![Value::Int(0); prog.n_slots],
    };
    for &sid in &prog.body {
        if let Flow::Return = interp.exec_stmt(sid, ctx)? {
            break;
        }
    }
    Ok(())
}

struct Interp<'p> {
    prog: &'p HProgram,
    frame: Vec<Value>,
}

impl<'p> Interp<'p> {
    fn exec_block(&mut self, body: &[StmtId], ctx: &mut ExecCtx<'_>) -> Result<Flow, ExecError> {
        for &sid in body {
            if let Flow::Return = self.exec_stmt(sid, ctx)? {
                return Ok(Flow::Return);
            }
        }
        Ok(Flow::Continue)
    }

    fn exec_stmt(&mut self, sid: StmtId, ctx: &mut ExecCtx<'_>) -> Result<Flow, ExecError> {
        ctx.step(1)?;
        // Clone is cheap: statements hold only ids and small vecs of ids.
        let stmt = self.prog.stmt(sid).clone();
        match stmt {
            HStmt::VarDecl { slot, init } => {
                let v = self.eval(init, ctx)?;
                self.frame[slot.0 as usize] = v;
                Ok(Flow::Continue)
            }
            HStmt::If {
                cond,
                then_body,
                else_body,
            } => {
                if self.eval(cond, ctx)?.as_bool() {
                    self.exec_block(&then_body, ctx)
                } else {
                    self.exec_block(&else_body, ctx)
                }
            }
            HStmt::Foreach { slot, list, body } => {
                // Snapshot the list at loop entry; subflow properties are
                // immutable per execution, so this matches lazy semantics.
                let elems = match self.eval(list, ctx)? {
                    Value::SubflowList(v) => v,
                    _ => Vec::new(),
                };
                for e in elems {
                    ctx.step(1)?;
                    self.frame[slot.0 as usize] = Value::Subflow(e);
                    if let Flow::Return = self.exec_block(&body, ctx)? {
                        return Ok(Flow::Return);
                    }
                }
                Ok(Flow::Continue)
            }
            HStmt::SetReg { reg, value } => {
                let v = self.eval(value, ctx)?.as_int();
                ctx.set_reg(reg, v);
                Ok(Flow::Continue)
            }
            HStmt::Push { target, packet } => {
                let t = self.eval(target, ctx)?.as_handle();
                let p = self.eval(packet, ctx)?.as_handle();
                ctx.push(t, p);
                Ok(Flow::Continue)
            }
            HStmt::Drop { packet } => {
                let p = self.eval(packet, ctx)?.as_handle();
                ctx.drop_packet(p);
                Ok(Flow::Continue)
            }
            HStmt::Return => Ok(Flow::Return),
        }
    }

    /// Tests the predicate chain of a queue view against `pkt`.
    fn matches(
        &mut self,
        view: &QueueView,
        pkt: i64,
        ctx: &mut ExecCtx<'_>,
    ) -> Result<bool, ExecError> {
        for &(slot, pred) in &view.filters {
            self.frame[slot.0 as usize] = Value::Packet(pkt);
            if !self.eval(pred, ctx)?.as_bool() {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Iterates the visible packets of a queue view, calling `f` for each
    /// matching packet; stops early when `f` returns `false`.
    fn scan_queue<F>(
        &mut self,
        view: &QueueView,
        ctx: &mut ExecCtx<'_>,
        mut f: F,
    ) -> Result<(), ExecError>
    where
        F: FnMut(&mut ExecCtx<'_>, i64) -> bool,
    {
        let Some(kind) = view.kind else {
            return Ok(());
        };
        let len = ctx.queue_raw_len(kind);
        for i in 0..len {
            ctx.step(1)?;
            let pkt = ctx.queue_get(kind, i);
            if pkt == NULL_HANDLE {
                continue;
            }
            if self.matches(view, pkt, ctx)? && !f(ctx, pkt) {
                break;
            }
        }
        Ok(())
    }

    fn eval(&mut self, eid: ExprId, ctx: &mut ExecCtx<'_>) -> Result<Value, ExecError> {
        ctx.step(1)?;
        // Clone the node descriptor (ids only) to release the borrow.
        let node = self.prog.expr(eid).clone();
        Ok(match node {
            HExpr::Int(v) => Value::Int(v),
            HExpr::Bool(b) => Value::Bool(b),
            HExpr::NullPacket => Value::Packet(NULL_HANDLE),
            HExpr::NullSubflow => Value::Subflow(NULL_HANDLE),
            HExpr::ReadReg(r) => Value::Int(ctx.get_reg(r)),
            HExpr::ReadVar(slot) => self.frame[slot.0 as usize].clone(),
            HExpr::Subflows => {
                let n = ctx.subflow_count();
                Value::SubflowList((0..n).map(|i| ctx.subflow_at(i)).collect())
            }
            HExpr::Queue(kind) => Value::Queue(QueueView {
                kind: Some(kind),
                filters: Vec::new(),
            }),
            HExpr::SubflowProp { sbf, prop } => {
                let s = self.eval(sbf, ctx)?.as_handle();
                let v = ctx.subflow_prop(s, prop);
                if prop.is_bool() {
                    Value::Bool(v != 0)
                } else {
                    Value::Int(v)
                }
            }
            HExpr::PacketProp { pkt, prop } => {
                let p = self.eval(pkt, ctx)?.as_handle();
                Value::Int(ctx.packet_prop(p, prop))
            }
            HExpr::SentOn { pkt, sbf } => {
                let p = self.eval(pkt, ctx)?.as_handle();
                let s = self.eval(sbf, ctx)?.as_handle();
                Value::Bool(ctx.sent_on(p, s) != 0)
            }
            HExpr::HasWindowFor { sbf, pkt } => {
                let s = self.eval(sbf, ctx)?.as_handle();
                let p = self.eval(pkt, ctx)?.as_handle();
                Value::Bool(ctx.has_window_for(s, p) != 0)
            }
            HExpr::ListFilter { list, var, pred } => {
                let elems = match self.eval(list, ctx)? {
                    Value::SubflowList(v) => v,
                    _ => Vec::new(),
                };
                let mut out = Vec::with_capacity(elems.len());
                for e in elems {
                    ctx.step(1)?;
                    self.frame[var.0 as usize] = Value::Subflow(e);
                    if self.eval(pred, ctx)?.as_bool() {
                        out.push(e);
                    }
                }
                Value::SubflowList(out)
            }
            HExpr::QueueFilter { queue, var, pred } => {
                let mut view = match self.eval(queue, ctx)? {
                    Value::Queue(v) => v,
                    _ => QueueView::default(),
                };
                view.filters.push((var, pred));
                Value::Queue(view)
            }
            HExpr::ListMinMax {
                list,
                var,
                key,
                is_max,
            } => {
                let elems = match self.eval(list, ctx)? {
                    Value::SubflowList(v) => v,
                    _ => Vec::new(),
                };
                let mut best: Option<(i64, i64)> = None;
                for e in elems {
                    ctx.step(1)?;
                    self.frame[var.0 as usize] = Value::Subflow(e);
                    let k = self.eval(key, ctx)?.as_int();
                    let better = match best {
                        None => true,
                        Some((bk, _)) => {
                            if is_max {
                                k > bk
                            } else {
                                k < bk
                            }
                        }
                    };
                    if better {
                        best = Some((k, e));
                    }
                }
                Value::Subflow(best.map(|(_, e)| e).unwrap_or(NULL_HANDLE))
            }
            HExpr::QueueMinMax {
                queue,
                var,
                key,
                is_max,
            } => {
                let view = match self.eval(queue, ctx)? {
                    Value::Queue(v) => v,
                    _ => QueueView::default(),
                };
                let mut matching = Vec::new();
                self.scan_queue(&view, ctx, |_, pkt| {
                    matching.push(pkt);
                    true
                })?;
                let mut best: Option<(i64, i64)> = None;
                for pkt in matching {
                    ctx.step(1)?;
                    self.frame[var.0 as usize] = Value::Packet(pkt);
                    let k = self.eval(key, ctx)?.as_int();
                    let better = match best {
                        None => true,
                        Some((bk, _)) => {
                            if is_max {
                                k > bk
                            } else {
                                k < bk
                            }
                        }
                    };
                    if better {
                        best = Some((k, pkt));
                    }
                }
                Value::Packet(best.map(|(_, p)| p).unwrap_or(NULL_HANDLE))
            }
            HExpr::ListSum { list, var, key } => {
                let elems = match self.eval(list, ctx)? {
                    Value::SubflowList(v) => v,
                    _ => Vec::new(),
                };
                let mut total: i64 = 0;
                for e in elems {
                    ctx.step(1)?;
                    self.frame[var.0 as usize] = Value::Subflow(e);
                    total = total.wrapping_add(self.eval(key, ctx)?.as_int());
                }
                Value::Int(total)
            }
            HExpr::QueueSum { queue, var, key } => {
                let view = match self.eval(queue, ctx)? {
                    Value::Queue(v) => v,
                    _ => QueueView::default(),
                };
                let mut matching = Vec::new();
                self.scan_queue(&view, ctx, |_, pkt| {
                    matching.push(pkt);
                    true
                })?;
                let mut total: i64 = 0;
                for pkt in matching {
                    ctx.step(1)?;
                    self.frame[var.0 as usize] = Value::Packet(pkt);
                    total = total.wrapping_add(self.eval(key, ctx)?.as_int());
                }
                Value::Int(total)
            }
            HExpr::ListCount(list) => {
                let elems = match self.eval(list, ctx)? {
                    Value::SubflowList(v) => v,
                    _ => Vec::new(),
                };
                Value::Int(elems.len() as i64)
            }
            HExpr::QueueCount(queue) => {
                let view = match self.eval(queue, ctx)? {
                    Value::Queue(v) => v,
                    _ => QueueView::default(),
                };
                let mut n = 0i64;
                self.scan_queue(&view, ctx, |_, _| {
                    n += 1;
                    true
                })?;
                Value::Int(n)
            }
            HExpr::ListEmpty(list) => {
                let elems = match self.eval(list, ctx)? {
                    Value::SubflowList(v) => v,
                    _ => Vec::new(),
                };
                Value::Bool(elems.is_empty())
            }
            HExpr::QueueEmpty(queue) => {
                let view = match self.eval(queue, ctx)? {
                    Value::Queue(v) => v,
                    _ => QueueView::default(),
                };
                let mut any = false;
                self.scan_queue(&view, ctx, |_, _| {
                    any = true;
                    false
                })?;
                Value::Bool(!any)
            }
            HExpr::ListGet { list, index } => {
                let elems = match self.eval(list, ctx)? {
                    Value::SubflowList(v) => v,
                    _ => Vec::new(),
                };
                let i = self.eval(index, ctx)?.as_int();
                let h = if i >= 0 {
                    elems.get(i as usize).copied().unwrap_or(NULL_HANDLE)
                } else {
                    NULL_HANDLE
                };
                Value::Subflow(h)
            }
            HExpr::QueueTop(queue) => {
                let view = match self.eval(queue, ctx)? {
                    Value::Queue(v) => v,
                    _ => QueueView::default(),
                };
                let mut top = NULL_HANDLE;
                self.scan_queue(&view, ctx, |_, pkt| {
                    top = pkt;
                    false
                })?;
                Value::Packet(top)
            }
            HExpr::QueuePop(queue) => {
                let view = match self.eval(queue, ctx)? {
                    Value::Queue(v) => v,
                    _ => QueueView::default(),
                };
                let mut top = NULL_HANDLE;
                self.scan_queue(&view, ctx, |_, pkt| {
                    top = pkt;
                    false
                })?;
                ctx.pop(top);
                Value::Packet(top)
            }
            HExpr::Unary { op, expr } => {
                let v = self.eval(expr, ctx)?;
                match op {
                    UnOp::Not => Value::Bool(!v.as_bool()),
                    UnOp::Neg => Value::Int(v.as_int().wrapping_neg()),
                }
            }
            HExpr::Binary {
                op,
                lhs,
                rhs,
                operand_ty,
            } => {
                // AND/OR short-circuit (predicates are pure, so this is
                // purely an efficiency matter and unobservable).
                if op == BinOp::And {
                    let l = self.eval(lhs, ctx)?.as_bool();
                    return Ok(Value::Bool(l && self.eval(rhs, ctx)?.as_bool()));
                }
                if op == BinOp::Or {
                    let l = self.eval(lhs, ctx)?.as_bool();
                    return Ok(Value::Bool(l || self.eval(rhs, ctx)?.as_bool()));
                }
                let l = self.eval(lhs, ctx)?;
                let r = self.eval(rhs, ctx)?;
                match op {
                    BinOp::Add => Value::Int(l.as_int().wrapping_add(r.as_int())),
                    BinOp::Sub => Value::Int(l.as_int().wrapping_sub(r.as_int())),
                    BinOp::Mul => Value::Int(l.as_int().wrapping_mul(r.as_int())),
                    BinOp::Div => {
                        let d = r.as_int();
                        // Division by zero yields 0, as in eBPF.
                        Value::Int(if d == 0 {
                            0
                        } else {
                            l.as_int().wrapping_div(d)
                        })
                    }
                    BinOp::Rem => {
                        let d = r.as_int();
                        Value::Int(if d == 0 {
                            0
                        } else {
                            l.as_int().wrapping_rem(d)
                        })
                    }
                    BinOp::Eq | BinOp::Ne => {
                        let equal = if operand_ty.is_nullable() {
                            l.as_handle() == r.as_handle()
                        } else {
                            match (&l, &r) {
                                (Value::Bool(a), Value::Bool(b)) => a == b,
                                _ => l.as_int() == r.as_int(),
                            }
                        };
                        Value::Bool(if op == BinOp::Eq { equal } else { !equal })
                    }
                    BinOp::Lt => Value::Bool(l.as_int() < r.as_int()),
                    BinOp::Le => Value::Bool(l.as_int() <= r.as_int()),
                    BinOp::Gt => Value::Bool(l.as_int() > r.as_int()),
                    BinOp::Ge => Value::Bool(l.as_int() >= r.as_int()),
                    // Short-circuited above; surface a structured trap
                    // instead of panicking if control ever reaches here.
                    BinOp::And | BinOp::Or => {
                        return Err(ExecError::Trap {
                            origin: "interp",
                            detail: "short-circuit operator reached strict evaluation".into(),
                        })
                    }
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{QueueKind, RegId, SchedulerEnv, SubflowProp};
    use crate::exec::ExecCtx;
    use crate::parser::parse;
    use crate::sema::lower;
    use crate::testenv::MockEnv;

    fn run(src: &str, env: &mut MockEnv) -> crate::exec::ExecStats {
        let prog = lower(&parse(src).unwrap()).unwrap();
        let mut ctx = ExecCtx::new(env, 100_000);
        execute(&prog, &mut ctx).unwrap();
        let (regs, actions, stats) = ctx.finish();
        env.apply(&regs, &actions);
        stats
    }

    fn two_subflow_env() -> MockEnv {
        let mut env = MockEnv::new();
        env.add_subflow(0);
        env.set_subflow_prop(0, SubflowProp::Rtt, 10_000);
        env.set_subflow_prop(0, SubflowProp::Cwnd, 10);
        env.add_subflow(1);
        env.set_subflow_prop(1, SubflowProp::Rtt, 40_000);
        env.set_subflow_prop(1, SubflowProp::Cwnd, 10);
        env
    }

    #[test]
    fn min_rtt_scheduler_picks_lowest_rtt() {
        let mut env = two_subflow_env();
        env.push_packet(QueueKind::SendQueue, 100, 0, 1400);
        run(
            "IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) { SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP()); }",
            &mut env,
        );
        assert_eq!(env.transmissions.len(), 1);
        assert_eq!(env.transmissions[0].0 .0, 0, "lower-RTT subflow chosen");
    }

    #[test]
    fn redundant_scheduler_pushes_on_all_subflows() {
        let mut env = two_subflow_env();
        env.push_packet(QueueKind::SendQueue, 100, 0, 1400);
        run(
            "IF (!Q.EMPTY) { VAR skb = Q.POP(); FOREACH(VAR sbf IN SUBFLOWS) { sbf.PUSH(skb); } }",
            &mut env,
        );
        assert_eq!(env.transmissions.len(), 2);
    }

    #[test]
    fn round_robin_advances_register() {
        let mut env = two_subflow_env();
        env.push_packet(QueueKind::SendQueue, 100, 0, 1400);
        env.push_packet(QueueKind::SendQueue, 101, 1, 1400);
        let src = "
            VAR sbfs = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY);
            IF (R1 >= sbfs.COUNT) { SET(R1, 0); }
            IF (!Q.EMPTY) {
                VAR sbf = sbfs.GET(R1);
                IF (sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED) { sbf.PUSH(Q.POP()); }
                SET(R1, R1 + 1); }";
        run(src, &mut env);
        assert_eq!(env.transmissions.last().unwrap().0 .0, 0);
        run(src, &mut env);
        assert_eq!(env.transmissions.last().unwrap().0 .0, 1);
        // Register wrapped state persists.
        assert_eq!(env.register(RegId::R1), 2);
    }

    #[test]
    fn filtered_pop_removes_from_middle() {
        let mut env = two_subflow_env();
        env.push_packet(QueueKind::SendQueue, 100, 0, 100);
        env.push_packet(QueueKind::SendQueue, 101, 1, 2000);
        env.push_packet(QueueKind::SendQueue, 102, 2, 100);
        // Pop the first packet larger than 1000 bytes: the middle one.
        run(
            "SUBFLOWS.GET(0).PUSH(Q.FILTER(p => p.SIZE > 1000).POP());",
            &mut env,
        );
        assert_eq!(env.transmissions[0].1 .0, 101);
        let remaining: Vec<u64> = env
            .queue_contents(QueueKind::SendQueue)
            .iter()
            .map(|p| p.0)
            .collect();
        assert_eq!(remaining, vec![100, 102]);
    }

    #[test]
    fn pop_without_push_keeps_packet_in_queue() {
        let mut env = two_subflow_env();
        env.push_packet(QueueKind::SendQueue, 100, 0, 100);
        run("VAR skb = Q.POP();", &mut env);
        assert_eq!(
            env.queue_contents(QueueKind::SendQueue).len(),
            1,
            "popped-but-unpushed packet is retained (no loss by design)"
        );
    }

    #[test]
    fn push_to_null_subflow_is_noop_and_packet_retained() {
        let mut env = MockEnv::new(); // no subflows at all
        env.push_packet(QueueKind::SendQueue, 100, 0, 100);
        run("SUBFLOWS.MIN(s => s.RTT).PUSH(Q.POP());", &mut env);
        assert!(env.transmissions.is_empty());
        assert_eq!(env.queue_contents(QueueKind::SendQueue).len(), 1);
    }

    #[test]
    fn drop_discards_packet() {
        let mut env = two_subflow_env();
        env.push_packet(QueueKind::SendQueue, 100, 0, 100);
        run("DROP(Q.POP());", &mut env);
        assert!(env.queue_contents(QueueKind::SendQueue).is_empty());
        assert_eq!(env.dropped.len(), 1);
    }

    #[test]
    fn sequential_pops_return_distinct_packets() {
        let mut env = two_subflow_env();
        env.push_packet(QueueKind::SendQueue, 100, 0, 100);
        env.push_packet(QueueKind::SendQueue, 101, 1, 100);
        run(
            "SUBFLOWS.GET(0).PUSH(Q.POP()); SUBFLOWS.GET(1).PUSH(Q.POP());",
            &mut env,
        );
        assert_eq!(env.transmissions[0].1 .0, 100);
        assert_eq!(env.transmissions[1].1 .0, 101);
    }

    #[test]
    fn top_does_not_remove() {
        let mut env = two_subflow_env();
        env.push_packet(QueueKind::SendQueue, 100, 0, 100);
        run(
            "SUBFLOWS.GET(0).PUSH(Q.TOP); SUBFLOWS.GET(1).PUSH(Q.TOP);",
            &mut env,
        );
        // Same packet transmitted twice (redundant push via TOP).
        assert_eq!(env.transmissions.len(), 2);
        assert_eq!(env.transmissions[0].1, env.transmissions[1].1);
    }

    #[test]
    fn empty_list_min_yields_null_and_graceful_push() {
        let mut env = MockEnv::new();
        env.push_packet(QueueKind::SendQueue, 100, 0, 100);
        // FILTER everything away; MIN of empty is NULL; PUSH is a no-op.
        run(
            "SUBFLOWS.FILTER(s => s.RTT < 0).MIN(s => s.RTT).PUSH(Q.POP());",
            &mut env,
        );
        assert!(env.transmissions.is_empty());
    }

    #[test]
    fn get_out_of_range_yields_null() {
        let mut env = two_subflow_env();
        env.push_packet(QueueKind::SendQueue, 100, 0, 100);
        run("SUBFLOWS.GET(7).PUSH(Q.POP());", &mut env);
        assert!(env.transmissions.is_empty());
    }

    #[test]
    fn division_by_zero_yields_zero() {
        let mut env = MockEnv::new();
        run("SET(R1, 10 / 0); SET(R2, 10 % 0);", &mut env);
        assert_eq!(env.register(RegId::R1), 0);
        assert_eq!(env.register(RegId::R2), 0);
    }

    #[test]
    fn arithmetic_and_comparison() {
        let mut env = MockEnv::new();
        run(
            "SET(R1, (2 + 3) * 4 - 10 / 2); IF (R1 == 15) { SET(R2, 1); } ELSE { SET(R2, 2); }",
            &mut env,
        );
        assert_eq!(env.register(RegId::R1), 15);
        assert_eq!(env.register(RegId::R2), 1);
    }

    #[test]
    fn return_stops_execution() {
        let mut env = MockEnv::new();
        run("SET(R1, 1); RETURN; SET(R1, 2);", &mut env);
        assert_eq!(env.register(RegId::R1), 1);
    }

    #[test]
    fn return_stops_inside_foreach() {
        let mut env = two_subflow_env();
        run(
            "FOREACH(VAR s IN SUBFLOWS) { SET(R1, R1 + 1); RETURN; }",
            &mut env,
        );
        assert_eq!(env.register(RegId::R1), 1);
    }

    #[test]
    fn sent_on_filter_excludes_sent_packets() {
        let mut env = two_subflow_env();
        env.push_packet(QueueKind::Unacked, 100, 0, 100);
        env.push_packet(QueueKind::Unacked, 101, 1, 100);
        env.mark_sent_on(100, 0);
        run(
            "VAR sbf = SUBFLOWS.GET(0);
             VAR skb = QU.FILTER(s => !s.SENT_ON(sbf)).TOP;
             IF (skb != NULL) { sbf.PUSH(skb); }",
            &mut env,
        );
        assert_eq!(env.transmissions.len(), 1);
        assert_eq!(env.transmissions[0].1 .0, 101);
    }

    #[test]
    fn queue_min_finds_oldest_seq() {
        let mut env = two_subflow_env();
        env.push_packet(QueueKind::Unacked, 102, 5, 100);
        env.push_packet(QueueKind::Unacked, 100, 1, 100);
        env.push_packet(QueueKind::Unacked, 101, 3, 100);
        run("SUBFLOWS.GET(0).PUSH(QU.MIN(p => p.SEQ));", &mut env);
        assert_eq!(env.transmissions[0].1 .0, 100);
    }

    #[test]
    fn sum_over_subflows() {
        let mut env = two_subflow_env();
        env.set_subflow_prop(0, SubflowProp::Bw, 1000);
        env.set_subflow_prop(1, SubflowProp::Bw, 500);
        run("SET(R1, SUBFLOWS.SUM(s => s.BW));", &mut env);
        assert_eq!(env.register(RegId::R1), 1500);
    }

    #[test]
    fn chained_filters_apply_conjunctively() {
        let mut env = two_subflow_env();
        env.push_packet(QueueKind::SendQueue, 100, 0, 500);
        env.push_packet(QueueKind::SendQueue, 101, 1, 1500);
        env.push_packet(QueueKind::SendQueue, 102, 2, 2500);
        run(
            "SET(R1, Q.FILTER(p => p.SIZE > 1000).FILTER(p => p.SIZE < 2000).COUNT);",
            &mut env,
        );
        assert_eq!(env.register(RegId::R1), 1);
    }

    #[test]
    fn step_budget_enforced() {
        let mut env = MockEnv::new();
        for i in 0..100 {
            env.push_packet(QueueKind::SendQueue, i, i as i64, 100);
        }
        let prog = lower(&parse("SET(R1, Q.COUNT + Q.COUNT + Q.COUNT);").unwrap()).unwrap();
        let mut ctx = ExecCtx::new(&env, 50);
        assert!(matches!(
            execute(&prog, &mut ctx),
            Err(ExecError::StepBudgetExhausted { .. })
        ));
    }

    #[test]
    fn has_window_for_gates_push() {
        let mut env = two_subflow_env();
        env.push_packet(QueueKind::SendQueue, 100, 0, 100);
        env.set_has_window(0, false);
        run(
            "VAR sbf = SUBFLOWS.GET(0);
             IF (sbf.HAS_WINDOW_FOR(Q.TOP)) { sbf.PUSH(Q.POP()); } ELSE { SET(R3, 99); }",
            &mut env,
        );
        assert!(env.transmissions.is_empty());
        assert_eq!(env.register(RegId::R3), 99);
    }

    #[test]
    fn backup_semantics_filter() {
        let mut env = two_subflow_env();
        env.set_subflow_prop(1, SubflowProp::IsBackup, 1);
        env.push_packet(QueueKind::SendQueue, 100, 0, 100);
        run(
            "VAR nonBackup = SUBFLOWS.FILTER(sbf => !sbf.IS_BACKUP);
             IF (!nonBackup.EMPTY) { nonBackup.MIN(s => s.RTT).PUSH(Q.POP()); }
             ELSE { SUBFLOWS.MIN(s => s.RTT).PUSH(Q.POP()); }",
            &mut env,
        );
        assert_eq!(env.transmissions[0].0 .0, 0);
    }
}
