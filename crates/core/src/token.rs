//! Tokens of the ProgMP scheduler specification language.

use crate::error::Pos;
use std::fmt;

/// A lexical token together with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Source position of the first character of the token.
    pub pos: Pos,
}

/// The kinds of tokens produced by the lexer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Integer literal, e.g. `42`.
    Int(i64),
    /// Identifier or keyword-like name, e.g. `sbf`, `RTT`, `FILTER`.
    ///
    /// The language reserves upper-case names for builtins but the lexer
    /// does not distinguish; the parser resolves names contextually.
    Ident(String),
    /// `VAR`
    Var,
    /// `IF`
    If,
    /// `ELSE`
    Else,
    /// `FOREACH`
    Foreach,
    /// `IN`
    In,
    /// `SET`
    Set,
    /// `DROP`
    Drop,
    /// `RETURN`
    Return,
    /// `NULL`
    Null,
    /// `TRUE`
    True,
    /// `FALSE`
    False,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `NOT` (keyword form of `!`)
    Not,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `.`
    Dot,
    /// `=>` (lambda arrow)
    Arrow,
    /// `=`
    Assign,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `!`
    Bang,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Var => f.write_str("VAR"),
            TokenKind::If => f.write_str("IF"),
            TokenKind::Else => f.write_str("ELSE"),
            TokenKind::Foreach => f.write_str("FOREACH"),
            TokenKind::In => f.write_str("IN"),
            TokenKind::Set => f.write_str("SET"),
            TokenKind::Drop => f.write_str("DROP"),
            TokenKind::Return => f.write_str("RETURN"),
            TokenKind::Null => f.write_str("NULL"),
            TokenKind::True => f.write_str("TRUE"),
            TokenKind::False => f.write_str("FALSE"),
            TokenKind::And => f.write_str("AND"),
            TokenKind::Or => f.write_str("OR"),
            TokenKind::Not => f.write_str("NOT"),
            TokenKind::LParen => f.write_str("("),
            TokenKind::RParen => f.write_str(")"),
            TokenKind::LBrace => f.write_str("{"),
            TokenKind::RBrace => f.write_str("}"),
            TokenKind::Comma => f.write_str(","),
            TokenKind::Semicolon => f.write_str(";"),
            TokenKind::Dot => f.write_str("."),
            TokenKind::Arrow => f.write_str("=>"),
            TokenKind::Assign => f.write_str("="),
            TokenKind::Eq => f.write_str("=="),
            TokenKind::Ne => f.write_str("!="),
            TokenKind::Lt => f.write_str("<"),
            TokenKind::Le => f.write_str("<="),
            TokenKind::Gt => f.write_str(">"),
            TokenKind::Ge => f.write_str(">="),
            TokenKind::Plus => f.write_str("+"),
            TokenKind::Minus => f.write_str("-"),
            TokenKind::Star => f.write_str("*"),
            TokenKind::Slash => f.write_str("/"),
            TokenKind::Percent => f.write_str("%"),
            TokenKind::Bang => f.write_str("!"),
            TokenKind::Eof => f.write_str("<eof>"),
        }
    }
}

impl TokenKind {
    /// Returns the keyword token for `word`, if `word` is a reserved word.
    pub(crate) fn keyword(word: &str) -> Option<TokenKind> {
        Some(match word {
            "VAR" => TokenKind::Var,
            "IF" => TokenKind::If,
            "ELSE" => TokenKind::Else,
            "FOREACH" => TokenKind::Foreach,
            "IN" => TokenKind::In,
            "SET" => TokenKind::Set,
            "DROP" => TokenKind::Drop,
            "RETURN" => TokenKind::Return,
            "NULL" => TokenKind::Null,
            "TRUE" => TokenKind::True,
            "FALSE" => TokenKind::False,
            "AND" => TokenKind::And,
            "OR" => TokenKind::Or,
            "NOT" => TokenKind::Not,
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert_eq!(TokenKind::keyword("VAR"), Some(TokenKind::Var));
        assert_eq!(TokenKind::keyword("FOREACH"), Some(TokenKind::Foreach));
        assert_eq!(TokenKind::keyword("RTT"), None);
        assert_eq!(
            TokenKind::keyword("var"),
            None,
            "keywords are case-sensitive"
        );
    }

    #[test]
    fn display_round_trip_samples() {
        assert_eq!(TokenKind::Arrow.to_string(), "=>");
        assert_eq!(TokenKind::Int(7).to_string(), "7");
        assert_eq!(TokenKind::Ident("sbf".into()).to_string(), "sbf");
    }
}
