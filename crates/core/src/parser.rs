//! Recursive-descent parser for the scheduler specification language.
//!
//! Grammar (see DESIGN.md §3 for the full listing):
//!
//! ```text
//! program := stmt*
//! stmt    := "VAR" ident "=" expr ";"
//!          | "IF" "(" expr ")" block ("ELSE" block)?
//!          | "FOREACH" "(" "VAR" ident "IN" expr ")" block
//!          | "SET" "(" Rn "," expr ")" ";"
//!          | expr "." "PUSH" "(" expr ")" ";"
//!          | "DROP" "(" expr ")" ";"
//!          | "RETURN" ";"
//! block   := "{" stmt* "}"
//! ```
//!
//! `PUSH` is only recognized in statement position: the expression
//! grammar never consumes `.PUSH`, which is how the language syntactically
//! confines side effects to statements (paper Table 1, "Side effects:
//! restricted to PUSH operations").

use crate::ast::{BinOp, Expr, ExprKind, Program, Stmt, StmtKind, UnOp};
use crate::env::{QueueKind, RegId};
use crate::error::{CompileError, Pos, Stage};
use crate::lexer::lex;
use crate::token::{Token, TokenKind};

/// Parses scheduler source text into an untyped [`Program`].
pub fn parse(source: &str) -> Result<Program, CompileError> {
    let tokens = lex(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    let body = parser.parse_stmts_until(TokenKind::Eof)?;
    Ok(Program { body })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// Parses `R1` .. `R8` register names.
fn reg_from_ident(name: &str) -> Option<RegId> {
    let rest = name.strip_prefix('R')?;
    let n: u8 = rest.parse().ok()?;
    // Reject names like `R01`.
    if rest.len() != 1 {
        return None;
    }
    RegId::new(n)
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &TokenKind) -> bool {
        &self.peek().kind == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, CompileError> {
        if self.at(kind) {
            Ok(self.bump())
        } else {
            Err(self.err(format!("expected `{}`, found `{}`", kind, self.peek().kind)))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Pos), CompileError> {
        let tok = self.peek().clone();
        match tok.kind {
            TokenKind::Ident(name) => {
                self.bump();
                Ok((name, tok.pos))
            }
            other => Err(self.err(format!("expected identifier, found `{other}`"))),
        }
    }

    fn err(&self, msg: impl Into<String>) -> CompileError {
        CompileError::new(Stage::Parse, self.peek().pos, msg)
    }

    fn parse_stmts_until(&mut self, end: TokenKind) -> Result<Vec<Stmt>, CompileError> {
        let mut stmts = Vec::new();
        while !self.at(&end) {
            if self.at(&TokenKind::Eof) {
                return Err(self.err(format!("expected `{end}`, found end of input")));
            }
            stmts.push(self.parse_stmt()?);
        }
        Ok(stmts)
    }

    fn parse_block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(&TokenKind::LBrace)?;
        let body = self.parse_stmts_until(TokenKind::RBrace)?;
        self.expect(&TokenKind::RBrace)?;
        Ok(body)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.peek().pos;
        match &self.peek().kind {
            TokenKind::Var => {
                self.bump();
                let (name, _) = self.expect_ident()?;
                self.expect(&TokenKind::Assign)?;
                let init = self.parse_expr()?;
                self.expect(&TokenKind::Semicolon)?;
                Ok(Stmt {
                    pos,
                    kind: StmtKind::VarDecl { name, init },
                })
            }
            TokenKind::If => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                let then_body = self.parse_block()?;
                let else_body = if self.eat(&TokenKind::Else) {
                    if self.at(&TokenKind::If) {
                        // `ELSE IF` chains parse as a single-statement else-block.
                        vec![self.parse_stmt()?]
                    } else {
                        self.parse_block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt {
                    pos,
                    kind: StmtKind::If {
                        cond,
                        then_body,
                        else_body,
                    },
                })
            }
            TokenKind::Foreach => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                self.expect(&TokenKind::Var)?;
                let (var, _) = self.expect_ident()?;
                self.expect(&TokenKind::In)?;
                let list = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                let body = self.parse_block()?;
                Ok(Stmt {
                    pos,
                    kind: StmtKind::Foreach { var, list, body },
                })
            }
            TokenKind::Set => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let (name, rpos) = self.expect_ident()?;
                let reg = reg_from_ident(&name).ok_or_else(|| {
                    CompileError::new(
                        Stage::Parse,
                        rpos,
                        format!("`{name}` is not a register (R1..R8)"),
                    )
                })?;
                self.expect(&TokenKind::Comma)?;
                let value = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::Semicolon)?;
                Ok(Stmt {
                    pos,
                    kind: StmtKind::SetReg { reg, value },
                })
            }
            TokenKind::Drop => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let packet = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::Semicolon)?;
                Ok(Stmt {
                    pos,
                    kind: StmtKind::Drop { packet },
                })
            }
            TokenKind::Return => {
                self.bump();
                self.expect(&TokenKind::Semicolon)?;
                Ok(Stmt {
                    pos,
                    kind: StmtKind::Return,
                })
            }
            _ => {
                // Must be a `expr.PUSH(expr);` statement.
                let target = self.parse_expr()?;
                if !self.eat(&TokenKind::Dot) {
                    return Err(
                        self.err("expected statement (VAR/IF/FOREACH/SET/DROP/RETURN or `.PUSH`)")
                    );
                }
                let (name, npos) = self.expect_ident()?;
                if name != "PUSH" {
                    return Err(CompileError::new(
                        Stage::Parse,
                        npos,
                        format!("expected `PUSH`, found `{name}` (PUSH is the only statement-level method)"),
                    ));
                }
                self.expect(&TokenKind::LParen)?;
                let packet = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::Semicolon)?;
                Ok(Stmt {
                    pos,
                    kind: StmtKind::Push { target, packet },
                })
            }
        }
    }

    // ----- expressions, precedence climbing -----

    fn parse_expr(&mut self) -> Result<Expr, CompileError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.parse_and()?;
        while self.at(&TokenKind::Or) {
            let pos = self.bump().pos;
            let rhs = self.parse_and()?;
            lhs = Expr {
                pos,
                kind: ExprKind::Binary {
                    op: BinOp::Or,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
            };
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.parse_cmp()?;
        while self.at(&TokenKind::And) {
            let pos = self.bump().pos;
            let rhs = self.parse_cmp()?;
            lhs = Expr {
                pos,
                kind: ExprKind::Binary {
                    op: BinOp::And,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
            };
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<Expr, CompileError> {
        let lhs = self.parse_add()?;
        let op = match self.peek().kind {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        let pos = self.bump().pos;
        let rhs = self.parse_add()?;
        Ok(Expr {
            pos,
            kind: ExprKind::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            },
        })
    }

    fn parse_add(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            let pos = self.bump().pos;
            let rhs = self.parse_mul()?;
            lhs = Expr {
                pos,
                kind: ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
            };
        }
        Ok(lhs)
    }

    fn parse_mul(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => break,
            };
            let pos = self.bump().pos;
            let rhs = self.parse_unary()?;
            lhs = Expr {
                pos,
                kind: ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
            };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, CompileError> {
        let pos = self.peek().pos;
        match self.peek().kind {
            TokenKind::Bang | TokenKind::Not => {
                self.bump();
                let expr = self.parse_unary()?;
                Ok(Expr {
                    pos,
                    kind: ExprKind::Unary {
                        op: UnOp::Not,
                        expr: Box::new(expr),
                    },
                })
            }
            TokenKind::Minus => {
                self.bump();
                let expr = self.parse_unary()?;
                Ok(Expr {
                    pos,
                    kind: ExprKind::Unary {
                        op: UnOp::Neg,
                        expr: Box::new(expr),
                    },
                })
            }
            _ => self.parse_postfix(),
        }
    }

    /// Parses a primary expression followed by a chain of `.name` /
    /// `.method(...)` postfix operations. Stops before `.PUSH`, which only
    /// the statement grammar may consume.
    fn parse_postfix(&mut self) -> Result<Expr, CompileError> {
        let mut expr = self.parse_primary()?;
        loop {
            // Peek for `.PUSH` without consuming: PUSH is statement-only.
            if self.at(&TokenKind::Dot) {
                if let Some(next) = self.peek2() {
                    if matches!(&next.kind, TokenKind::Ident(n) if n == "PUSH") {
                        break;
                    }
                }
            } else {
                break;
            }
            self.bump(); // the dot
            let (name, npos) = self.expect_ident()?;
            expr = self.parse_postfix_op(expr, name, npos)?;
        }
        Ok(expr)
    }

    fn parse_postfix_op(
        &mut self,
        obj: Expr,
        name: String,
        pos: Pos,
    ) -> Result<Expr, CompileError> {
        let make = |kind| Expr { pos, kind };
        match name.as_str() {
            "FILTER" => {
                let (var, pred) = self.parse_lambda()?;
                Ok(make(ExprKind::Filter {
                    obj: Box::new(obj),
                    var,
                    pred: Box::new(pred),
                }))
            }
            "MIN" | "MAX" => {
                let (var, key) = self.parse_lambda()?;
                Ok(make(ExprKind::MinMax {
                    obj: Box::new(obj),
                    var,
                    key: Box::new(key),
                    is_max: name == "MAX",
                }))
            }
            "SUM" => {
                let (var, key) = self.parse_lambda()?;
                Ok(make(ExprKind::Sum {
                    obj: Box::new(obj),
                    var,
                    key: Box::new(key),
                }))
            }
            "GET" => {
                self.expect(&TokenKind::LParen)?;
                let index = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(make(ExprKind::Get {
                    obj: Box::new(obj),
                    index: Box::new(index),
                }))
            }
            "POP" => {
                self.expect(&TokenKind::LParen)?;
                self.expect(&TokenKind::RParen)?;
                Ok(make(ExprKind::Pop { obj: Box::new(obj) }))
            }
            "SENT_ON" => {
                self.expect(&TokenKind::LParen)?;
                let sbf = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(make(ExprKind::SentOn {
                    pkt: Box::new(obj),
                    sbf: Box::new(sbf),
                }))
            }
            "HAS_WINDOW_FOR" => {
                self.expect(&TokenKind::LParen)?;
                let pkt = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(make(ExprKind::HasWindowFor {
                    sbf: Box::new(obj),
                    pkt: Box::new(pkt),
                }))
            }
            _ => {
                if self.at(&TokenKind::LParen) {
                    return Err(CompileError::new(
                        Stage::Parse,
                        pos,
                        format!("unknown method `{name}`"),
                    ));
                }
                Ok(make(ExprKind::Prop {
                    obj: Box::new(obj),
                    name,
                }))
            }
        }
    }

    fn parse_lambda(&mut self) -> Result<(String, Expr), CompileError> {
        self.expect(&TokenKind::LParen)?;
        let (var, _) = self.expect_ident()?;
        self.expect(&TokenKind::Arrow)?;
        let body = self.parse_expr()?;
        self.expect(&TokenKind::RParen)?;
        Ok((var, body))
    }

    fn parse_primary(&mut self) -> Result<Expr, CompileError> {
        let tok = self.peek().clone();
        let pos = tok.pos;
        let make = |kind| Expr { pos, kind };
        match tok.kind {
            TokenKind::Int(v) => {
                self.bump();
                Ok(make(ExprKind::Int(v)))
            }
            TokenKind::True => {
                self.bump();
                Ok(make(ExprKind::Bool(true)))
            }
            TokenKind::False => {
                self.bump();
                Ok(make(ExprKind::Bool(false)))
            }
            TokenKind::Null => {
                self.bump();
                Ok(make(ExprKind::Null))
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(make(match name.as_str() {
                    "SUBFLOWS" => ExprKind::Subflows,
                    "Q" => ExprKind::Queue(QueueKind::SendQueue),
                    "QU" => ExprKind::Queue(QueueKind::Unacked),
                    "RQ" => ExprKind::Queue(QueueKind::Reinject),
                    _ => match reg_from_ident(&name) {
                        Some(reg) => ExprKind::Reg(reg),
                        None => ExprKind::Var(name),
                    },
                }))
            }
            other => Err(CompileError::new(
                Stage::Parse,
                pos,
                format!("expected expression, found `{other}`"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig3_min_rtt_scheduler() {
        let src =
            "IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) {\n  SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP()); }";
        let prog = parse(src).unwrap();
        assert_eq!(prog.body.len(), 1);
        let StmtKind::If {
            then_body,
            else_body,
            ..
        } = &prog.body[0].kind
        else {
            panic!("expected IF");
        };
        assert_eq!(then_body.len(), 1);
        assert!(else_body.is_empty());
        assert!(matches!(then_body[0].kind, StmtKind::Push { .. }));
    }

    #[test]
    fn parses_fig5_round_robin() {
        let src = "
            VAR sbfs = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY);
            IF (R1 >= sbfs.COUNT) { SET(R1, 0); }
            IF (!Q.EMPTY) {
                VAR sbf = sbfs.GET(R1);
                IF (sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED) {
                    sbf.PUSH(Q.POP()); }
                SET(R1, R1 + 1); }";
        let prog = parse(src).unwrap();
        assert_eq!(prog.body.len(), 3);
        assert!(matches!(prog.body[0].kind, StmtKind::VarDecl { .. }));
    }

    #[test]
    fn parses_foreach_redundant() {
        let src = "
            VAR skb = Q.POP();
            FOREACH(VAR sbf IN SUBFLOWS) { sbf.PUSH(skb); }";
        let prog = parse(src).unwrap();
        assert!(matches!(prog.body[1].kind, StmtKind::Foreach { .. }));
    }

    #[test]
    fn parses_else_if_chain() {
        let src =
            "IF (R1 > 0) { SET(R2, 1); } ELSE IF (R1 < 0) { SET(R2, 2); } ELSE { SET(R2, 3); }";
        let prog = parse(src).unwrap();
        let StmtKind::If { else_body, .. } = &prog.body[0].kind else {
            panic!()
        };
        assert_eq!(else_body.len(), 1);
        assert!(matches!(else_body[0].kind, StmtKind::If { .. }));
    }

    #[test]
    fn push_is_statement_only() {
        // PUSH inside a condition must not parse.
        let err = parse("IF (SUBFLOWS.GET(0).PUSH(Q.POP())) { RETURN; }").unwrap_err();
        assert_eq!(err.stage, Stage::Parse);
    }

    #[test]
    fn parses_drop_and_return() {
        let prog = parse("DROP(Q.POP()); RETURN;").unwrap();
        assert!(matches!(prog.body[0].kind, StmtKind::Drop { .. }));
        assert!(matches!(prog.body[1].kind, StmtKind::Return));
    }

    #[test]
    fn parses_sent_on_and_has_window_for() {
        let src = "
            VAR sbf = SUBFLOWS.GET(0);
            VAR skb = QU.FILTER(s => !s.SENT_ON(sbf)).TOP;
            IF (skb != NULL AND sbf.HAS_WINDOW_FOR(skb)) { sbf.PUSH(skb); }";
        parse(src).unwrap();
    }

    #[test]
    fn register_names_resolve() {
        let prog = parse("SET(R3, R1 + R2);").unwrap();
        let StmtKind::SetReg { reg, .. } = &prog.body[0].kind else {
            panic!()
        };
        assert_eq!(*reg, RegId::R3);
    }

    #[test]
    fn r0_and_r9_are_not_registers() {
        assert!(parse("SET(R0, 1);").is_err());
        assert!(parse("SET(R9, 1);").is_err());
        // As an expression, R9 is just a variable name (and will fail sema).
        let prog = parse("VAR x = R9;").unwrap();
        let StmtKind::VarDecl { init, .. } = &prog.body[0].kind else {
            panic!()
        };
        assert!(matches!(&init.kind, ExprKind::Var(n) if n == "R9"));
    }

    #[test]
    fn operator_precedence() {
        let prog = parse("VAR x = 1 + 2 * 3;").unwrap();
        let StmtKind::VarDecl { init, .. } = &prog.body[0].kind else {
            panic!()
        };
        let ExprKind::Binary { op, rhs, .. } = &init.kind else {
            panic!()
        };
        assert_eq!(*op, BinOp::Add);
        assert!(matches!(&rhs.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let prog = parse("VAR x = TRUE OR TRUE AND FALSE;").unwrap();
        let StmtKind::VarDecl { init, .. } = &prog.body[0].kind else {
            panic!()
        };
        assert!(matches!(&init.kind, ExprKind::Binary { op: BinOp::Or, .. }));
    }

    #[test]
    fn unknown_method_is_error() {
        let err = parse("VAR x = Q.FROBNICATE(1);").unwrap_err();
        assert!(err.message.contains("FROBNICATE"));
    }

    #[test]
    fn missing_semicolon_is_error() {
        assert!(parse("VAR x = 1").is_err());
    }

    #[test]
    fn unbalanced_brace_is_error() {
        assert!(parse("IF (TRUE) { RETURN;").is_err());
    }

    #[test]
    fn queue_builtins_resolve() {
        let prog = parse("VAR a = Q.COUNT + QU.COUNT + RQ.COUNT;").unwrap();
        assert_eq!(prog.body.len(), 1);
    }

    #[test]
    fn comparison_is_non_associative() {
        // `1 < 2 < 3` parses as `(1 < 2) < 3`? No: cmp is single-shot, so the
        // second `<` terminates the expression and the parser errors on it.
        assert!(parse("VAR x = 1 < 2 < 3;").is_err());
    }
}
