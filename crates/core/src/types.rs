//! The static type system of the programming model (paper Table 1):
//! `int`, `bool`, `packet`, `subflow`, `subflow list`, `packet queue`.

use std::fmt;

/// A surface-language type.
///
/// Variables receive the implicit type of their initial assignment and
/// are immutable; there are no dynamic type errors by design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// 64-bit signed integer.
    Int,
    /// Boolean.
    Bool,
    /// A packet reference, possibly `NULL`.
    Packet,
    /// A subflow reference, possibly `NULL`.
    Subflow,
    /// An ordered list of subflows (e.g. `SUBFLOWS` or a `FILTER` result).
    SubflowList,
    /// A packet queue view (`Q`, `QU`, `RQ`, or a `FILTER` result).
    PacketQueue,
}

impl Type {
    /// True for the two nullable reference types.
    pub fn is_nullable(self) -> bool {
        matches!(self, Type::Packet | Type::Subflow)
    }

    /// True for the two aggregate types that never materialize at runtime
    /// in the compiled backends (they are fused into loops).
    pub fn is_aggregate(self) -> bool {
        matches!(self, Type::SubflowList | Type::PacketQueue)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Type::Int => "int",
            Type::Bool => "bool",
            Type::Packet => "packet",
            Type::Subflow => "subflow",
            Type::SubflowList => "subflow list",
            Type::PacketQueue => "packet queue",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nullability() {
        assert!(Type::Packet.is_nullable());
        assert!(Type::Subflow.is_nullable());
        assert!(!Type::Int.is_nullable());
        assert!(!Type::SubflowList.is_nullable());
    }

    #[test]
    fn aggregates() {
        assert!(Type::SubflowList.is_aggregate());
        assert!(Type::PacketQueue.is_aggregate());
        assert!(!Type::Packet.is_aggregate());
    }

    #[test]
    fn display() {
        assert_eq!(Type::PacketQueue.to_string(), "packet queue");
    }
}
