//! eBPF-style dataflow verifier over compiled bytecode, with translation
//! validation against the HIR admission certificate.
//!
//! The HIR verifier ([`crate::verify`]) certifies programs *before*
//! codegen; nothing so far checked the artifact the VM actually executes.
//! This module closes that gap the way the kernel eBPF verifier does:
//! an independent worklist-based abstract interpretation over the
//! [`BytecodeProgram`] itself, tracking per-register and per-slot
//! abstract values (uninitialized / scalar interval / null-tagged
//! subflow- and packet-handle kinds), enforcing the typed helper-call
//! signatures (argument kinds, the `r1`–`r5` clobber set, result kind),
//! flagging unreachable instructions, and deriving a closed-form
//! bytecode-level step bound from recognized loop shapes.
//!
//! [`validate_translation`] then cross-checks the bytecode-level result
//! against the HIR certificate: the bytecode bound must not exceed the
//! certified HIR bound (modulo the fixed granularity slack below), and
//! the helper calls the bytecode performs must match the HIR's static
//! audit ([`crate::analysis`]) — same property/queue/register codes,
//! same `PUSH`/`DROP`/`POP` site counts, same feature set. Any
//! disagreement is a [`Lint::Miscompile`] diagnostic: the two verifiers
//! form a translation-validation pair, so a codegen or register-allocator
//! bug that changes observable behaviour is caught at load time instead
//! of at runtime.
//!
//! # Bound model
//!
//! The bytecode bound mirrors the HIR cost model's charging discipline
//! so the two are comparable: loops realizing O(1)-charged queue/list
//! operations (unfiltered `COUNT`/`EMPTY`/`TOP`/`POP`, plain `GET` —
//! recognized as filter-free loops whose body performs no helper work
//! beyond the element fetch) are charged a single iteration, exactly as
//! `super::cost` charges the construct they were compiled from. Scan
//! realizations (filtered views, `MIN`/`MAX`/`SUM`, `FOREACH`, any
//! call-bearing body) are charged their full inferred trip count. The
//! bound is the longest path through the back-edge-free CFG (so `IF`
//! branches contribute their maximum, matching the HIR model), with each
//! instruction weighted by the trip counts of its enclosing loops.
//!
//! Because the two models count different atoms (machine instructions vs
//! HIR cost units pre-multiplied by the safety factor), the translation
//! check tolerates a [`TRANSLATION_SLACK`]× granularity gap. That is far
//! below the smallest cardinality disagreement a miscompile can cause
//! (wiring a loop to the wrong cap changes the bound by 64× or more), so
//! the check still pins the compiled loop structure to the certificate.

use std::collections::BTreeSet;
use std::collections::VecDeque;

use super::diag::{Diagnostic, Lint, Severity};
use super::domain::{Interval, Nullability, Tri};
use super::VerifyConfig;
use crate::analysis;
use crate::bytecode::{AluOp, MAX_STACK_SLOTS};
use crate::bytecode::{BytecodeProgram, Cond, DebugTable, Helper, Insn, NUM_MACH_REGS};
use crate::env::{PacketProp, QueueKind, SubflowProp};
use crate::error::Pos;
use crate::exec::NULL_HANDLE;
use crate::hir::{ExprId, HExpr, HProgram, HStmt, StmtId};

/// Granularity slack of the step-bound cross-check: the bytecode-level
/// bound may exceed the certified HIR bound by at most this factor
/// before the disagreement is reported as a miscompile.
pub const TRANSLATION_SLACK: u64 = 2;

/// Joins at one program point beyond which scalar intervals are widened.
const WIDEN_AFTER: u32 = 8;

/// The bytecode verifier's result: diagnostics, the model step bound
/// (when every reachable loop was proved bounded), and the annotated
/// listing surfaced by `progmp-lint --bytecode`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BytecodeVerdict {
    /// All findings, sorted by pc then lint.
    pub diagnostics: Vec<Diagnostic>,
    /// Bytecode-level model step bound; `None` when the verifier could
    /// not establish termination of some reachable loop.
    pub step_bound: Option<u64>,
    /// Disassembly annotated with source spans and the abstract register
    /// state each instruction executes under.
    pub annotated: String,
}

impl BytecodeVerdict {
    /// True iff no diagnostic has [`Severity::Error`].
    pub fn admitted(&self) -> bool {
        !self
            .diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Number of diagnostics at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Multi-line human-readable report (header + findings).
    pub fn render_human(&self, name: &str) -> String {
        let mut out = String::new();
        let bound = match self.step_bound {
            Some(b) => b.to_string(),
            None => "unbounded".to_string(),
        };
        out.push_str(&format!(
            "{name}: bytecode {} (model step bound: {bound})\n",
            if self.admitted() {
                "ADMITTED"
            } else {
                "REJECTED"
            },
        ));
        for d in &self.diagnostics {
            out.push_str(&format!("  {d}\n"));
        }
        if self.diagnostics.is_empty() {
            out.push_str("  no findings\n");
        }
        out
    }
}

/// Runs the bytecode verifier alone (no HIR cross-check): structural
/// checks, abstract interpretation, helper-signature enforcement,
/// unreachable-code detection, and loop-bound inference.
///
/// Used directly for hand-built images and for re-verifying the output
/// of [`crate::vm::specialize_subflow_count`]; the compile pipeline goes
/// through [`validate_translation`] instead.
pub fn verify_bytecode(
    prog: &BytecodeProgram,
    debug: Option<&DebugTable>,
    cfg: &VerifyConfig,
) -> BytecodeVerdict {
    run(prog, debug, cfg).into_verdict()
}

/// Runs [`verify_bytecode`] and cross-checks the result against the HIR
/// admission certificate (`hir` + its `certified_bound`): the
/// translation-validation half of the pair. Every disagreement — a
/// bytecode-level error on generated code, a helper call outside the
/// HIR's static audit, or a step bound exceeding the certificate — is a
/// [`Lint::Miscompile`] error anchored to the source span of the
/// offending instruction.
pub fn validate_translation(
    prog: &BytecodeProgram,
    debug: &DebugTable,
    hir: &HProgram,
    certified_bound: u64,
    cfg: &VerifyConfig,
) -> BytecodeVerdict {
    let analyzer = run(prog, Some(debug), cfg);
    let audit_diags = audit_helpers(&analyzer, prog, debug, hir);
    let mut verdict = analyzer.into_verdict();

    // Any error-severity bytecode finding on code that came out of our
    // own compiler is by definition a compiler bug: pair it with a
    // miscompile diagnostic at the same span.
    let echoes: Vec<Diagnostic> = verdict
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error && d.lint != Lint::Miscompile)
        .map(|d| Diagnostic {
            lint: Lint::Miscompile,
            severity: Severity::Error,
            pos: d.pos,
            message: format!(
                "translation validation: generated bytecode failed verification: [{}] {}",
                d.lint, d.message
            ),
        })
        .collect();
    verdict.diagnostics.extend(echoes);
    verdict.diagnostics.extend(audit_diags);

    if let Some(bc_bound) = verdict.step_bound {
        if bc_bound > certified_bound.saturating_mul(TRANSLATION_SLACK) {
            verdict.diagnostics.push(Diagnostic {
                lint: Lint::Miscompile,
                severity: Severity::Error,
                pos: Pos { line: 0, col: 0 },
                message: format!(
                    "translation validation: bytecode step bound {bc_bound} exceeds the \
                     certified HIR bound {certified_bound} (slack {TRANSLATION_SLACK}x): \
                     the compiled loop structure disagrees with the certificate"
                ),
            });
        }
    }
    verdict
        .diagnostics
        .sort_by_key(|d| (d.pos.line, d.pos.col, d.lint));
    verdict
}

/// Which handle family an abstract reference belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HandleKind {
    Subflow,
    Packet,
}

impl HandleKind {
    fn name(self) -> &'static str {
        match self {
            HandleKind::Subflow => "subflow",
            HandleKind::Packet => "packet",
        }
    }
}

/// Abstract value of one register or stack slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AbsVal {
    /// Never written on some path reaching here.
    Uninit,
    /// An integer in the interval.
    Scalar(Interval),
    /// Exactly `NULL_HANDLE`: the polymorphic NULL literal, usable as a
    /// (null) handle of either kind or as the scalar `-1`.
    Null,
    /// A subflow/packet handle with the given nullability.
    Handle(HandleKind, Nullability),
}

impl AbsVal {
    /// Least upper bound. `Uninit` is absorbing: a location written on
    /// only one incoming path must not be read after the merge.
    fn join(self, other: AbsVal) -> AbsVal {
        use AbsVal::{Handle, Null, Scalar, Uninit};
        match (self, other) {
            (Uninit, _) | (_, Uninit) => Uninit,
            (Null, Null) => Null,
            (Null, Handle(k, n)) | (Handle(k, n), Null) => Handle(k, n.join(Nullability::Null)),
            (Null, Scalar(iv)) | (Scalar(iv), Null) => {
                Scalar(iv.join(Interval::exact(NULL_HANDLE)))
            }
            (Handle(k1, n1), Handle(k2, n2)) if k1 == k2 => Handle(k1, n1.join(n2)),
            // Kind confusion: degrade to an unknown scalar; any later use
            // as a handle is then a signature violation.
            (Handle(..), Handle(..)) | (Handle(..), Scalar(_)) | (Scalar(_), Handle(..)) => {
                Scalar(Interval::TOP)
            }
            (Scalar(a), Scalar(b)) => Scalar(a.join(b)),
        }
    }

    /// Join with widening on the scalar payload (called once a program
    /// point has been joined more than [`WIDEN_AFTER`] times).
    fn widen_join(self, other: AbsVal) -> AbsVal {
        match (self, self.join(other)) {
            (AbsVal::Scalar(old), AbsVal::Scalar(joined)) => AbsVal::Scalar(old.widen(joined)),
            (_, joined) => joined,
        }
    }

    fn render(self) -> String {
        let endpoint = |v: i64| -> String {
            if v == i64::MIN {
                "-inf".to_string()
            } else if v == i64::MAX {
                "+inf".to_string()
            } else {
                v.to_string()
            }
        };
        match self {
            AbsVal::Uninit => "uninit".to_string(),
            AbsVal::Scalar(iv) if iv == Interval::TOP => "i64".to_string(),
            AbsVal::Scalar(iv) => match iv.as_exact() {
                Some(v) => v.to_string(),
                None => format!("[{},{}]", endpoint(iv.lo), endpoint(iv.hi)),
            },
            AbsVal::Null => "null".to_string(),
            AbsVal::Handle(k, n) => {
                let base = match k {
                    HandleKind::Subflow => "sbf",
                    HandleKind::Packet => "pkt",
                };
                match n {
                    Nullability::NonNull => base.to_string(),
                    Nullability::MaybeNull => format!("{base}?"),
                    Nullability::Null => format!("{base}(null)"),
                }
            }
        }
    }
}

/// Abstract machine state at one program point.
#[derive(Debug, Clone, PartialEq, Eq)]
struct State {
    regs: [AbsVal; NUM_MACH_REGS],
    slots: Vec<AbsVal>,
}

impl State {
    fn entry(stack_slots: u16) -> State {
        let mut regs = [AbsVal::Uninit; NUM_MACH_REGS];
        // r10 is the (read-only) frame pointer; model it as the concrete
        // zero the VM initializes registers to.
        regs[10] = AbsVal::Scalar(Interval::exact(0));
        State {
            regs,
            slots: vec![AbsVal::Uninit; usize::from(stack_slots).min(MAX_STACK_SLOTS)],
        }
    }

    fn join_into(&mut self, other: &State, widen: bool) -> bool {
        let mut changed = false;
        for i in 0..NUM_MACH_REGS {
            let merged = if widen {
                self.regs[i].widen_join(other.regs[i])
            } else {
                self.regs[i].join(other.regs[i])
            };
            if merged != self.regs[i] {
                self.regs[i] = merged;
                changed = true;
            }
        }
        for i in 0..self.slots.len() {
            let o = other.slots.get(i).copied().unwrap_or(AbsVal::Uninit);
            let merged = if widen {
                self.slots[i].widen_join(o)
            } else {
                self.slots[i].join(o)
            };
            if merged != self.slots[i] {
                self.slots[i] = merged;
                changed = true;
            }
        }
        changed
    }
}

/// Argument kind of one helper parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ArgKind {
    Scalar,
    Sbf,
    Pkt,
}

/// Typed helper signatures: argument kinds for `r1..`.
fn helper_sig(h: Helper) -> &'static [ArgKind] {
    use ArgKind::{Pkt, Sbf, Scalar};
    match h {
        Helper::SubflowCount => &[],
        Helper::GetReg => &[Scalar],
        Helper::SetReg => &[Scalar, Scalar],
        Helper::SubflowAt => &[Scalar],
        Helper::SubflowProp => &[Sbf, Scalar],
        Helper::QueueLen => &[Scalar],
        Helper::QueueGet => &[Scalar, Scalar],
        Helper::PacketProp => &[Pkt, Scalar],
        Helper::SentOn => &[Pkt, Sbf],
        Helper::HasWindowFor => &[Sbf, Pkt],
        Helper::Pop => &[Pkt],
        Helper::Push => &[Sbf, Pkt],
        Helper::DropPkt => &[Pkt],
    }
}

/// Abstract result of a helper, under the verifier's environment caps.
fn helper_ret(h: Helper, cfg: &VerifyConfig) -> AbsVal {
    let cap = |c: u64| i64::try_from(c).unwrap_or(i64::MAX);
    match h {
        Helper::SubflowCount => AbsVal::Scalar(Interval::new(0, cap(cfg.max_subflows))),
        Helper::QueueLen => AbsVal::Scalar(Interval::new(0, cap(cfg.max_queue_len))),
        Helper::SubflowAt => AbsVal::Handle(HandleKind::Subflow, Nullability::MaybeNull),
        Helper::QueueGet => AbsVal::Handle(HandleKind::Packet, Nullability::MaybeNull),
        Helper::SentOn | Helper::HasWindowFor => AbsVal::Scalar(Interval::BOOL),
        Helper::GetReg | Helper::SubflowProp | Helper::PacketProp => AbsVal::Scalar(Interval::TOP),
        // Void helpers leave no defined result; r0 is clobbered.
        Helper::SetReg | Helper::Pop | Helper::Push | Helper::DropPkt => AbsVal::Uninit,
    }
}

/// Registers an instruction reads (entry-state, for checks + annotation).
fn insn_reads(insn: &Insn) -> Vec<u8> {
    match insn {
        Insn::MovImm { .. } | Insn::Ja { .. } | Insn::Ld { .. } | Insn::Exit => Vec::new(),
        Insn::Mov { src, .. } | Insn::St { src, .. } => vec![*src],
        Insn::Alu { dst, src, .. } => vec![*dst, *src],
        Insn::AluImm { dst, .. } | Insn::Neg { dst } => vec![*dst],
        Insn::Jmp { lhs, rhs, .. } => vec![*lhs, *rhs],
        Insn::JmpImm { lhs, .. } => vec![*lhs],
        Insn::Call { helper } => (1..=helper.arg_count() as u8).collect(),
    }
}

/// Jump target of `insn` at `pc`, if it is a (conditional or not) jump.
fn jump_target(pc: usize, insn: &Insn) -> Option<usize> {
    let off = match insn {
        Insn::Ja { off } => *off,
        Insn::Jmp { off, .. } => *off,
        Insn::JmpImm { off, .. } => *off,
        _ => return None,
    };
    usize::try_from(pc as i64 + 1 + i64::from(off)).ok()
}

/// One recognized natural loop: the interval `[head, back]`.
#[derive(Debug, Clone)]
struct LoopInfo {
    head: usize,
    back: usize,
    /// Model trip count (see module docs); `None` = unbounded.
    trip: Option<u64>,
}

/// Internal analysis output shared by both public entry points.
struct Analyzer<'a> {
    prog: &'a BytecodeProgram,
    debug: Option<&'a DebugTable>,
    cfg: &'a VerifyConfig,
    /// Entry state per pc; `None` = not reachable.
    states: Vec<Option<State>>,
    /// Findings, keyed for dedup across fixpoint iterations.
    findings: BTreeSet<(usize, Lint, String)>,
    loops: Vec<LoopInfo>,
    step_bound: Option<u64>,
    /// Set when the structural pre-check already failed.
    structural_error: Option<(Pos, String)>,
}

fn run<'a>(
    prog: &'a BytecodeProgram,
    debug: Option<&'a DebugTable>,
    cfg: &'a VerifyConfig,
) -> Analyzer<'a> {
    let mut a = Analyzer {
        prog,
        debug,
        cfg,
        states: vec![None; prog.code.len()],
        findings: BTreeSet::new(),
        loops: Vec::new(),
        step_bound: None,
        structural_error: None,
    };
    // Structural verification first: the abstract interpreter relies on
    // in-bounds branch targets, register/slot ranges, and a trailing
    // exit. A failure here on generated code is itself a miscompile.
    if let Err(e) = crate::vm::verify_with_debug(prog, debug) {
        a.structural_error = Some((e.pos, e.message));
        return a;
    }
    a.fixpoint();
    a.analyze_loops();
    a.report_unreachable();
    a.compute_bound();
    a
}

impl<'a> Analyzer<'a> {
    fn pos_at(&self, pc: usize) -> Pos {
        self.debug
            .map(|d| d.pos(pc))
            .unwrap_or(Pos { line: 0, col: 0 })
    }

    fn severity_of(lint: Lint) -> Severity {
        match lint {
            Lint::UnreachableCode => Severity::Warning,
            _ => Severity::Error,
        }
    }

    fn report(&mut self, pc: usize, lint: Lint, message: String) {
        self.findings.insert((pc, lint, message));
    }

    // ---- abstract interpretation -------------------------------------

    fn fixpoint(&mut self) {
        let n = self.prog.code.len();
        if n == 0 {
            return;
        }
        let mut joins = vec![0u32; n];
        let mut work = VecDeque::new();
        self.states[0] = Some(State::entry(self.prog.stack_slots));
        work.push_back(0usize);
        // Far above any real fixpoint; a runaway here is a verifier bug.
        let mut guard = (n + 1).saturating_mul(1024);
        while let Some(pc) = work.pop_front() {
            if guard == 0 {
                self.report(
                    pc,
                    Lint::Miscompile,
                    "abstract interpretation did not converge".to_string(),
                );
                return;
            }
            guard -= 1;
            let st = match &self.states[pc] {
                Some(s) => s.clone(),
                None => continue,
            };
            for (succ, succ_state) in self.transfer(pc, &st) {
                if succ >= n {
                    continue; // structural verify makes this unreachable
                }
                match &mut self.states[succ] {
                    slot @ None => {
                        *slot = Some(succ_state);
                        work.push_back(succ);
                    }
                    Some(existing) => {
                        joins[succ] += 1;
                        if existing.join_into(&succ_state, joins[succ] > WIDEN_AFTER) {
                            work.push_back(succ);
                        }
                    }
                }
            }
        }
    }

    /// Reads a register, flagging uninitialized reads.
    fn read_reg(&mut self, pc: usize, st: &State, r: u8) -> AbsVal {
        let v = st.regs[usize::from(r)];
        if v == AbsVal::Uninit {
            self.report(
                pc,
                Lint::UninitRead,
                format!("read of uninitialized register r{r}"),
            );
            return AbsVal::Scalar(Interval::TOP);
        }
        v
    }

    /// Coerces a value into a scalar interval for arithmetic, flagging
    /// handle arithmetic.
    fn as_scalar(&mut self, pc: usize, v: AbsVal, what: &str) -> Interval {
        match v {
            AbsVal::Scalar(iv) => iv,
            AbsVal::Null => Interval::exact(NULL_HANDLE),
            AbsVal::Handle(k, _) => {
                self.report(
                    pc,
                    Lint::HandleArith,
                    format!("{what} on a {} handle", k.name()),
                );
                Interval::TOP
            }
            AbsVal::Uninit => Interval::TOP, // read_reg already flagged it
        }
    }

    fn alu_result(op: AluOp, a: Interval, b: Interval) -> Interval {
        let in_bool = |iv: Interval| iv.lo >= 0 && iv.hi <= 1;
        match op {
            AluOp::Add => a.add(b),
            AluOp::Sub => a.sub(b),
            AluOp::Mul => a.mul(b),
            AluOp::Div => a.div(b),
            AluOp::Rem => a.rem(b),
            AluOp::And | AluOp::Or | AluOp::Xor => {
                if let (Some(x), Some(y)) = (a.as_exact(), b.as_exact()) {
                    Interval::exact(match op {
                        AluOp::And => x & y,
                        AluOp::Or => x | y,
                        _ => x ^ y,
                    })
                } else if in_bool(a) && in_bool(b) {
                    Interval::BOOL
                } else {
                    Interval::TOP
                }
            }
        }
    }

    /// Abstract successors of `pc` executed under entry state `st`.
    fn transfer(&mut self, pc: usize, st: &State) -> Vec<(usize, State)> {
        let insn = self.prog.code[pc];
        let mut next = st.clone();
        match insn {
            Insn::MovImm { dst, imm } => {
                next.regs[usize::from(dst)] = if imm == NULL_HANDLE {
                    AbsVal::Null
                } else {
                    AbsVal::Scalar(Interval::exact(imm))
                };
                vec![(pc + 1, next)]
            }
            Insn::Mov { dst, src } => {
                next.regs[usize::from(dst)] = self.read_reg(pc, st, src);
                vec![(pc + 1, next)]
            }
            Insn::Alu { op, dst, src } => {
                let a = self.read_reg(pc, st, dst);
                let b = self.read_reg(pc, st, src);
                let a = self.as_scalar(pc, a, "arithmetic");
                let b = self.as_scalar(pc, b, "arithmetic");
                next.regs[usize::from(dst)] = AbsVal::Scalar(Self::alu_result(op, a, b));
                vec![(pc + 1, next)]
            }
            Insn::AluImm { op, dst, imm } => {
                let a = self.read_reg(pc, st, dst);
                let a = self.as_scalar(pc, a, "arithmetic");
                next.regs[usize::from(dst)] =
                    AbsVal::Scalar(Self::alu_result(op, a, Interval::exact(imm)));
                vec![(pc + 1, next)]
            }
            Insn::Neg { dst } => {
                let a = self.read_reg(pc, st, dst);
                let a = self.as_scalar(pc, a, "arithmetic");
                next.regs[usize::from(dst)] = AbsVal::Scalar(a.neg());
                vec![(pc + 1, next)]
            }
            Insn::Ja { .. } => {
                let t = jump_target(pc, &insn).unwrap_or(pc + 1);
                vec![(t, next)]
            }
            Insn::Jmp {
                cond,
                lhs,
                rhs,
                off: _,
            } => {
                let t = jump_target(pc, &insn).unwrap_or(pc + 1);
                let rv = self.read_reg(pc, st, rhs);
                self.branch(pc, st, cond, lhs, rv, Some(rhs), t)
            }
            Insn::JmpImm {
                cond,
                lhs,
                imm,
                off: _,
            } => {
                let t = jump_target(pc, &insn).unwrap_or(pc + 1);
                let rv = if imm == NULL_HANDLE {
                    AbsVal::Null
                } else {
                    AbsVal::Scalar(Interval::exact(imm))
                };
                self.branch(pc, st, cond, lhs, rv, None, t)
            }
            Insn::Call { helper } => {
                self.check_call(pc, st, helper);
                next.regs[0] = helper_ret(helper, self.cfg);
                for r in 1..=5 {
                    // Strict clobber discipline: stale argument registers
                    // must never be read after a call.
                    next.regs[r] = AbsVal::Uninit;
                }
                vec![(pc + 1, next)]
            }
            Insn::Ld { dst, slot } => {
                let v = st
                    .slots
                    .get(usize::from(slot))
                    .copied()
                    .unwrap_or(AbsVal::Uninit);
                if v == AbsVal::Uninit {
                    self.report(
                        pc,
                        Lint::UninitRead,
                        format!("read of uninitialized stack slot {slot}"),
                    );
                    next.regs[usize::from(dst)] = AbsVal::Scalar(Interval::TOP);
                } else {
                    next.regs[usize::from(dst)] = v;
                }
                vec![(pc + 1, next)]
            }
            Insn::St { slot, src } => {
                let v = self.read_reg(pc, st, src);
                if let Some(s) = next.slots.get_mut(usize::from(slot)) {
                    *s = v;
                }
                vec![(pc + 1, next)]
            }
            Insn::Exit => Vec::new(),
        }
    }

    /// Checks one helper call's arguments against its typed signature.
    fn check_call(&mut self, pc: usize, st: &State, helper: Helper) {
        for (i, kind) in helper_sig(helper).iter().enumerate() {
            let reg = (i + 1) as u8;
            let v = self.read_reg(pc, st, reg);
            let bad = |expected: &str, got: String| {
                format!("call {helper:?}: argument r{reg} expects {expected}, got {got}")
            };
            match (kind, v) {
                (ArgKind::Scalar, AbsVal::Handle(k, _)) => {
                    self.report(
                        pc,
                        Lint::HelperSignature,
                        bad("a scalar", format!("a {} handle", k.name())),
                    );
                }
                (ArgKind::Sbf, AbsVal::Scalar(_)) => {
                    self.report(
                        pc,
                        Lint::HelperSignature,
                        bad("a subflow handle", "a scalar".into()),
                    );
                }
                (ArgKind::Sbf, AbsVal::Handle(HandleKind::Packet, _)) => {
                    self.report(
                        pc,
                        Lint::HelperSignature,
                        bad("a subflow handle", "a packet handle".into()),
                    );
                }
                (ArgKind::Pkt, AbsVal::Scalar(_)) => {
                    self.report(
                        pc,
                        Lint::HelperSignature,
                        bad("a packet handle", "a scalar".into()),
                    );
                }
                (ArgKind::Pkt, AbsVal::Handle(HandleKind::Subflow, _)) => {
                    self.report(
                        pc,
                        Lint::HelperSignature,
                        bad("a packet handle", "a subflow handle".into()),
                    );
                }
                // NULL is a legal (graceful no-op) handle argument, and
                // uninitialized reads were already flagged.
                _ => {}
            }
        }
    }

    /// Conditional-branch transfer with path-sensitive refinement.
    #[allow(clippy::too_many_arguments)]
    fn branch(
        &mut self,
        pc: usize,
        st: &State,
        cond: Cond,
        lhs: u8,
        rhs_val: AbsVal,
        rhs_reg: Option<u8>,
        target: usize,
    ) -> Vec<(usize, State)> {
        let lhs_val = self.read_reg(pc, st, lhs);
        let ordered = matches!(cond, Cond::Lt | Cond::Le | Cond::Gt | Cond::Ge);

        // Handle-vs-NULL equality refines nullability; everything else
        // involving a handle is either opaque (Eq/Ne) or flagged
        // (ordered comparison).
        let handle_side = |v: AbsVal| matches!(v, AbsVal::Handle(..));
        if handle_side(lhs_val) || handle_side(rhs_val) {
            if ordered {
                self.report(
                    pc,
                    Lint::HandleArith,
                    format!("ordered comparison ({cond:?}) on a handle"),
                );
                // Degrade: both edges feasible, no refinement.
                return vec![(target, st.clone()), (pc + 1, st.clone())];
            }
            return self.branch_handle_eq(pc, st, cond, lhs, lhs_val, rhs_val, rhs_reg, target);
        }

        // Pure scalar comparison.
        let a = self.as_scalar(pc, lhs_val, "comparison");
        let b = self.as_scalar(pc, rhs_val, "comparison");
        let tri = match cond {
            Cond::Eq => a.eq_ab(b),
            Cond::Ne => a.eq_ab(b).not(),
            Cond::Lt => a.lt(b),
            Cond::Le => a.le(b),
            Cond::Gt => b.lt(a),
            Cond::Ge => b.le(a),
        };
        let assume = |c: Cond| -> Option<(Interval, Interval)> {
            match c {
                Cond::Eq => a.assume_eq(b),
                Cond::Ne => a.assume_ne(b),
                Cond::Lt => a.assume_lt(b),
                Cond::Le => a.assume_le(b),
                Cond::Gt => b.assume_lt(a).map(|(y, x)| (x, y)),
                Cond::Ge => b.assume_le(a).map(|(y, x)| (x, y)),
            }
        };
        let negated = match cond {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
        };
        let mut out = Vec::new();
        let mut push_edge = |to: usize, refined: Option<(Interval, Interval)>| {
            if let Some((ra, rb)) = refined {
                let mut s = st.clone();
                // Only refine locations that were scalars to begin with;
                // NULL stays the polymorphic literal.
                if matches!(lhs_val, AbsVal::Scalar(_)) {
                    s.regs[usize::from(lhs)] = AbsVal::Scalar(ra);
                }
                if let (Some(r), AbsVal::Scalar(_)) = (rhs_reg, rhs_val) {
                    s.regs[usize::from(r)] = AbsVal::Scalar(rb);
                }
                out.push((to, s));
            }
        };
        if tri != Tri::False {
            push_edge(target, assume(cond));
        }
        if tri != Tri::True {
            push_edge(pc + 1, assume(negated));
        }
        out
    }

    /// Eq/Ne branch where at least one side is a handle.
    #[allow(clippy::too_many_arguments)]
    fn branch_handle_eq(
        &mut self,
        pc: usize,
        st: &State,
        cond: Cond,
        lhs: u8,
        lhs_val: AbsVal,
        rhs_val: AbsVal,
        rhs_reg: Option<u8>,
        target: usize,
    ) -> Vec<(usize, State)> {
        // Is one side the NULL literal (or the exact -1 scalar)?
        let is_null_lit = |v: AbsVal| match v {
            AbsVal::Null => true,
            AbsVal::Scalar(iv) => iv.as_exact() == Some(NULL_HANDLE),
            _ => false,
        };
        // (handle register, its kind+nullability) when testing vs NULL.
        let vs_null = if let (AbsVal::Handle(k, n), true) = (lhs_val, is_null_lit(rhs_val)) {
            Some((lhs, k, n))
        } else if let (true, Some(r), AbsVal::Handle(k, n)) =
            (is_null_lit(lhs_val), rhs_reg, rhs_val)
        {
            Some((r, k, n))
        } else {
            None
        };
        let eq_tri = match (lhs_val, rhs_val) {
            (AbsVal::Handle(_, Nullability::Null), v)
            | (v, AbsVal::Handle(_, Nullability::Null))
                if is_null_lit(v) =>
            {
                Tri::True
            }
            (AbsVal::Handle(_, Nullability::NonNull), v)
            | (v, AbsVal::Handle(_, Nullability::NonNull))
                if is_null_lit(v) =>
            {
                Tri::False
            }
            _ => Tri::Unknown,
        };
        let tri = if cond == Cond::Eq {
            eq_tri
        } else {
            eq_tri.not()
        };
        let refine = |s: &mut State, null_side: bool| {
            if let Some((r, k, _)) = vs_null {
                s.regs[usize::from(r)] = AbsVal::Handle(
                    k,
                    if null_side {
                        Nullability::Null
                    } else {
                        Nullability::NonNull
                    },
                );
            }
        };
        let mut out = Vec::new();
        if tri != Tri::False {
            let mut s = st.clone();
            refine(&mut s, cond == Cond::Eq);
            out.push((target, s));
        }
        if tri != Tri::True {
            let mut s = st.clone();
            refine(&mut s, cond == Cond::Ne);
            out.push((pc + 1, s));
        }
        out
    }

    // ---- loop-bound inference ----------------------------------------

    /// Block leaders for the whole program.
    fn leaders(&self) -> Vec<usize> {
        let mut set = BTreeSet::new();
        set.insert(0usize);
        for (pc, insn) in self.prog.code.iter().enumerate() {
            if let Some(t) = jump_target(pc, insn) {
                set.insert(t);
                set.insert(pc + 1);
            }
        }
        set.into_iter()
            .filter(|&l| l < self.prog.code.len())
            .collect()
    }

    fn analyze_loops(&mut self) {
        if self.structural_error.is_some() {
            return;
        }
        // Back edges: jumps whose target does not lie forward.
        let mut loops = Vec::new();
        for (pc, insn) in self.prog.code.iter().enumerate() {
            if let Some(t) = jump_target(pc, insn) {
                if t <= pc {
                    loops.push((t, pc));
                }
            }
        }
        // Proper nesting: intervals must be disjoint or nested.
        for (i, &(h1, b1)) in loops.iter().enumerate() {
            for &(h2, b2) in &loops[i + 1..] {
                let disjoint = b1 < h2 || b2 < h1;
                let nested = (h1 <= h2 && b2 <= b1) || (h2 <= h1 && b1 <= b2);
                if !disjoint && !nested {
                    self.report(
                        h1.max(h2),
                        Lint::UnboundedLoop,
                        format!(
                            "irreducible loop structure: intervals [{h1},{b1}] and \
                             [{h2},{b2}] overlap without nesting"
                        ),
                    );
                }
            }
        }
        let leaders = self.leaders();
        let loop_list: Vec<(usize, usize)> = loops.clone();
        for (head, back) in loops {
            let trip = self.loop_trip(head, back, &leaders, &loop_list);
            self.loops.push(LoopInfo { head, back, trip });
        }
    }

    /// Model trip count for the loop `[head, back]`; `None` = unbounded
    /// (a diagnostic has been emitted).
    fn loop_trip(
        &mut self,
        head: usize,
        back: usize,
        leaders: &[usize],
        all_loops: &[(usize, usize)],
    ) -> Option<u64> {
        // A loop the abstract interpretation proved unreachable can never
        // run; charge it like the HIR model charges dead branches (full
        // cap for the element fetch when it realizes a scan, one trip
        // when it realizes an O(1)-charged construct) and skip the
        // monotonicity obligations no state can discharge.
        if self.states[head].is_none() {
            let cap = self.prog.code[head..=back]
                .iter()
                .find_map(|i| match i {
                    Insn::Call {
                        helper: Helper::SubflowAt,
                    } => Some(self.cfg.max_subflows),
                    Insn::Call {
                        helper: Helper::QueueGet,
                    } => Some(self.cfg.max_queue_len),
                    _ => None,
                })
                .unwrap_or(1);
            let trip = if self.o1_equivalent(head, back, all_loops) {
                cap.min(1)
            } else {
                cap
            };
            return Some(trip);
        }

        // Find the exit test: the first conditional jump in the interval
        // whose taken edge leaves it.
        let exit_test = (head..=back).find(|&p| {
            matches!(self.prog.code[p], Insn::Jmp { .. } | Insn::JmpImm { .. })
                && jump_target(p, &self.prog.code[p])
                    .map(|t| t < head || t > back)
                    .unwrap_or(false)
        });

        let unbounded = |me: &mut Self, msg: String| {
            me.report(head, Lint::UnboundedLoop, msg);
            None
        };

        let (test_pc, raw_trip, idx_reg, n_src) = if let Some(p) = exit_test {
            // Top-test shape: `if idx >= n goto out` must execute on every
            // iteration, so nothing between head and the test may branch
            // or be branched into.
            let head_block_ok = (head..p).all(|q| {
                jump_target(q, &self.prog.code[q]).is_none() && (q == head || !leaders.contains(&q))
            }) && (p == head || !leaders.contains(&p));
            let head_block_ok = head_block_ok && !(head + 1..=p).any(|q| leaders.contains(&q));
            if !head_block_ok {
                return unbounded(
                    self,
                    "loop exit test is not executed on every iteration".to_string(),
                );
            }
            match self.prog.code[p] {
                Insn::Jmp {
                    cond: cond @ (Cond::Ge | Cond::Gt),
                    lhs,
                    rhs,
                    ..
                } => {
                    let st = self.states[p].clone();
                    let n_iv = match st.as_ref().map(|s| s.regs[usize::from(rhs)]) {
                        Some(AbsVal::Scalar(iv)) => iv,
                        Some(AbsVal::Null) => Interval::exact(NULL_HANDLE),
                        _ => {
                            return unbounded(
                                self,
                                format!("loop bound register r{rhs} has no scalar value"),
                            )
                        }
                    };
                    let hi = n_iv.hi.max(0) as u64;
                    let trip = if cond == Cond::Ge {
                        hi
                    } else {
                        hi.saturating_add(1)
                    };
                    (p, trip, lhs, Some(LoopVar::from_reg(rhs)))
                }
                Insn::JmpImm {
                    cond: cond @ (Cond::Ge | Cond::Gt),
                    lhs,
                    imm,
                    ..
                } => {
                    let hi = imm.max(0) as u64;
                    let trip = if cond == Cond::Ge {
                        hi
                    } else {
                        hi.saturating_add(1)
                    };
                    (p, trip, lhs, None)
                }
                _ => {
                    return unbounded(
                        self,
                        "loop exit test is not an upper-bound comparison".to_string(),
                    )
                }
            }
        } else {
            // No exit inside the interval: accept the bottom-test shape
            // where the back edge itself is `if idx < n goto head`.
            match self.prog.code[back] {
                Insn::Jmp {
                    cond: cond @ (Cond::Lt | Cond::Le),
                    lhs,
                    rhs,
                    ..
                } => {
                    let st = self.states[back].clone();
                    let n_hi = match st.as_ref().map(|s| s.regs[usize::from(rhs)]) {
                        Some(AbsVal::Scalar(iv)) => iv.hi,
                        _ => {
                            return unbounded(
                                self,
                                format!("loop bound register r{rhs} has no scalar value"),
                            )
                        }
                    };
                    let lo = self.loop_var_lo(head, lhs);
                    let span = n_hi.saturating_sub(lo).max(0) as u64;
                    let trip = if cond == Cond::Le {
                        span.saturating_add(1)
                    } else {
                        span
                    };
                    (back, trip, lhs, Some(LoopVar::from_reg(rhs)))
                }
                Insn::JmpImm {
                    cond: cond @ (Cond::Lt | Cond::Le),
                    lhs,
                    imm,
                    ..
                } => {
                    let lo = self.loop_var_lo(head, lhs);
                    let span = imm.saturating_sub(lo).max(0) as u64;
                    let trip = if cond == Cond::Le {
                        span.saturating_add(1)
                    } else {
                        span
                    };
                    (back, trip, lhs, None)
                }
                _ => return unbounded(self, "loop has no recognizable exit test".to_string()),
            }
        };

        // Resolve the induction variable's home location: an allocatable
        // register directly, or the spill slot a scratch register was
        // loaded from just before the test.
        let idx_loc = match self.resolve_loc(head, test_pc, idx_reg) {
            Some(l) => l,
            None => {
                return unbounded(
                    self,
                    format!("cannot resolve loop induction variable r{idx_reg}"),
                )
            }
        };
        let n_loc = match n_src {
            Some(LoopVar::Reg(r)) => self.resolve_loc(head, test_pc, r),
            _ => None,
        };

        // The bound must be loop-invariant.
        if let Some(nl) = n_loc {
            if (head..=back).any(|q| q != test_pc && self.writes_loc(q, nl)) {
                return unbounded(self, "loop bound is modified inside the loop".to_string());
            }
        }

        // Monotonicity: every write to the induction variable inside the
        // interval is a positive-constant increment (or an identity
        // rewrite), and the block performing the back edge increments it.
        if !self.check_monotone(head, back, idx_loc, leaders) {
            return None; // diagnostic emitted inside
        }

        let trip = if self.o1_equivalent(head, back, all_loops) {
            raw_trip.min(1)
        } else {
            raw_trip
        };
        Some(trip)
    }

    /// O(1)-equivalence (see module docs): filter-free, fetch-only loops
    /// with no nested loop realize the HIR's constant-charged constructs
    /// (unfiltered `COUNT`/`EMPTY`/`TOP`/`POP`, plain `GET`) and are
    /// charged one trip, mirroring the certificate's charging discipline.
    fn o1_equivalent(&self, head: usize, back: usize, all_loops: &[(usize, usize)]) -> bool {
        let has_filter_skip = (head..=back).any(|q| {
            matches!(
                self.prog.code[q],
                Insn::JmpImm {
                    cond: Cond::Eq,
                    imm: 0,
                    ..
                }
            ) && jump_target(q, &self.prog.code[q])
                .map(|t| t >= head && t <= back)
                .unwrap_or(false)
        });
        let mut calls = (head..=back).filter_map(|q| match self.prog.code[q] {
            Insn::Call { helper } => Some(helper),
            _ => None,
        });
        let fetch_only = match (calls.next(), calls.next()) {
            (None, _) => true,
            (Some(h), None) => matches!(h, Helper::SubflowAt | Helper::QueueGet),
            _ => false,
        };
        let has_nested = all_loops
            .iter()
            .any(|&(h, b)| (h, b) != (head, back) && h >= head && b <= back);
        !has_filter_skip && fetch_only && !has_nested
    }

    /// Lower bound of the value at `reg`'s home location in the head
    /// state (for bottom-test trip counting).
    fn loop_var_lo(&self, head: usize, reg: u8) -> i64 {
        match self.states[head].as_ref().map(|s| s.regs[usize::from(reg)]) {
            Some(AbsVal::Scalar(iv)) => iv.lo,
            _ => 0,
        }
    }

    /// Home location of `reg` as observed at `test_pc`: allocatable
    /// registers are their own home; scratch registers trace back to the
    /// `Ld` that filled them within the head block.
    fn resolve_loc(&self, head: usize, test_pc: usize, reg: u8) -> Option<Loc> {
        if (6..=9).contains(&reg) {
            return Some(Loc::Reg(reg));
        }
        for q in (head..test_pc).rev() {
            match self.prog.code[q] {
                Insn::Ld { dst, slot } if dst == reg => return Some(Loc::Slot(slot)),
                insn if insn_writes_reg(&insn, reg) => return None,
                _ => {}
            }
        }
        None
    }

    /// Whether the instruction at `pc` writes `loc`.
    fn writes_loc(&self, pc: usize, loc: Loc) -> bool {
        match (loc, self.prog.code[pc]) {
            (Loc::Slot(s), Insn::St { slot, .. }) => slot == s,
            (Loc::Slot(_), _) => false,
            (Loc::Reg(r), insn) => insn_writes_reg(&insn, r),
        }
    }

    /// Verifies that the induction variable only ever increases inside
    /// `[head, back]` and that the back-edge block increments it.
    fn check_monotone(&mut self, head: usize, back: usize, idx: Loc, leaders: &[usize]) -> bool {
        let block_starts: Vec<usize> = leaders
            .iter()
            .copied()
            .filter(|&l| l >= head && l <= back)
            .collect();
        let mut back_block_increments = false;
        for (bi, &start) in block_starts.iter().enumerate() {
            let end = block_starts
                .get(bi + 1)
                .map(|&n| n - 1)
                .unwrap_or(back)
                .min(back);
            let mut sym = BlockSyms::new(idx);
            let mut incremented = false;
            for pc in start..=end {
                match sym.step(self.prog.code[pc], idx) {
                    StepClass::Ok => {}
                    StepClass::Increment => incremented = true,
                    StepClass::NonMonotone => {
                        self.report(
                            head,
                            Lint::UnboundedLoop,
                            format!(
                                "loop induction variable is modified non-monotonically at pc {pc}"
                            ),
                        );
                        return false;
                    }
                }
            }
            if end == back && incremented {
                back_block_increments = true;
            }
        }
        if !back_block_increments {
            self.report(
                head,
                Lint::UnboundedLoop,
                "back edge can be taken without incrementing the induction variable".to_string(),
            );
            return false;
        }
        true
    }

    // ---- unreachable code + bound ------------------------------------

    fn report_unreachable(&mut self) {
        if self.structural_error.is_some() {
            return;
        }
        let n = self.prog.code.len();
        let mut pc = 0;
        while pc < n {
            if self.states[pc].is_some() {
                pc += 1;
                continue;
            }
            let start = pc;
            while pc < n && self.states[pc].is_none() {
                pc += 1;
            }
            let end = pc - 1;
            if self.suppress_unreachable(start, end) {
                continue;
            }
            self.report(
                start,
                Lint::UnreachableCode,
                if start == end {
                    format!("instruction {start} can never execute")
                } else {
                    format!("instructions {start}..{end} can never execute")
                },
            );
        }
    }

    /// Structurally expected unreachable runs that carry no information:
    /// bare exits, and the continue block of loops whose every body path
    /// breaks out early (codegen keeps the increment for shape
    /// uniformity).
    fn suppress_unreachable(&self, start: usize, end: usize) -> bool {
        let run = &self.prog.code[start..=end];
        if run.iter().all(|i| matches!(i, Insn::Exit)) {
            return true;
        }
        let ends_in_back_ja = matches!(run.last(), Some(Insn::Ja { off }) if *off < 0)
            && jump_target(end, &self.prog.code[end]).is_some_and(|t| t <= end);
        ends_in_back_ja
            && run[..run.len() - 1].iter().all(|i| {
                matches!(
                    i,
                    Insn::Ld { .. }
                        | Insn::Mov { .. }
                        | Insn::St { .. }
                        | Insn::AluImm { op: AluOp::Add, .. }
                )
            })
    }

    /// Longest path through the back-edge-free CFG, each instruction
    /// weighted by the trip counts of its enclosing loops.
    fn compute_bound(&mut self) {
        if self.structural_error.is_some() {
            return;
        }
        let n = self.prog.code.len();
        if n == 0 {
            return;
        }
        if self.loops.iter().any(|l| l.trip.is_none()) {
            return; // unbounded; diagnostics already emitted
        }
        let mut weight = vec![1u64; n];
        for l in &self.loops {
            let mult = l.trip.unwrap_or(0).saturating_add(1);
            for w in &mut weight[l.head..=l.back] {
                *w = w.saturating_mul(mult);
            }
        }
        let mut dist: Vec<Option<u64>> = vec![None; n];
        dist[0] = Some(weight[0]);
        let mut best = 0u64;
        for pc in 0..n {
            let d = match dist[pc] {
                Some(d) => d,
                None => continue,
            };
            let insn = self.prog.code[pc];
            if matches!(insn, Insn::Exit) {
                best = best.max(d);
                continue;
            }
            let mut relax = |succ: usize| {
                if succ > pc && succ < n {
                    let nd = d.saturating_add(weight[succ]);
                    if dist[succ].is_none_or(|old| nd > old) {
                        dist[succ] = Some(nd);
                    }
                }
            };
            match insn {
                Insn::Ja { .. } => {
                    if let Some(t) = jump_target(pc, &insn) {
                        relax(t);
                    }
                }
                Insn::Jmp { .. } | Insn::JmpImm { .. } => {
                    if let Some(t) = jump_target(pc, &insn) {
                        relax(t);
                    }
                    relax(pc + 1);
                }
                _ => relax(pc + 1),
            }
        }
        self.step_bound = Some(best);
    }

    // ---- rendering ----------------------------------------------------

    fn annotate(&self) -> String {
        let mut out = String::new();
        for (pc, insn) in self.prog.code.iter().enumerate() {
            let text = format!("{pc:4}: {insn}");
            let mut notes = Vec::new();
            if self.debug.is_some() {
                let p = self.pos_at(pc);
                notes.push(format!("{}:{}", p.line, p.col));
            }
            match &self.states[pc] {
                None => notes.push("unreachable".to_string()),
                Some(st) => {
                    for r in insn_reads(insn) {
                        notes.push(format!("r{r}={}", st.regs[usize::from(r)].render()));
                    }
                    if let Insn::Ld { slot, .. } = insn {
                        let v = st
                            .slots
                            .get(usize::from(*slot))
                            .copied()
                            .unwrap_or(AbsVal::Uninit);
                        notes.push(format!("s{slot}={}", v.render()));
                    }
                }
            }
            if notes.is_empty() {
                out.push_str(&format!("{text}\n"));
            } else {
                out.push_str(&format!("{text:<40} ; {}\n", notes.join(" ")));
            }
        }
        out
    }

    fn into_verdict(self) -> BytecodeVerdict {
        if let Some((pos, msg)) = &self.structural_error {
            return BytecodeVerdict {
                diagnostics: vec![Diagnostic {
                    lint: Lint::Miscompile,
                    severity: Severity::Error,
                    pos: *pos,
                    message: format!("structural bytecode verification failed: {msg}"),
                }],
                step_bound: None,
                annotated: self.prog.disassemble(),
            };
        }
        let annotated = self.annotate();
        let mut diagnostics: Vec<Diagnostic> = self
            .findings
            .iter()
            .map(|(pc, lint, message)| Diagnostic {
                lint: *lint,
                severity: Self::severity_of(*lint),
                pos: self.pos_at(*pc),
                message: format!("pc {pc}: {message}"),
            })
            .collect();
        diagnostics.sort_by(|a, b| {
            (a.pos.line, a.pos.col, a.lint, &a.message)
                .cmp(&(b.pos.line, b.pos.col, b.lint, &b.message))
        });
        BytecodeVerdict {
            diagnostics,
            step_bound: self.step_bound,
            annotated,
        }
    }
}

/// Loop-variable source operand of an exit test.
enum LoopVar {
    Reg(u8),
}

impl LoopVar {
    fn from_reg(r: u8) -> LoopVar {
        LoopVar::Reg(r)
    }
}

/// Home location of a loop variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    Reg(u8),
    Slot(u16),
}

/// Whether `insn` writes register `r` (including the call clobber set).
fn insn_writes_reg(insn: &Insn, r: u8) -> bool {
    match insn {
        Insn::MovImm { dst, .. }
        | Insn::Mov { dst, .. }
        | Insn::Alu { dst, .. }
        | Insn::AluImm { dst, .. }
        | Insn::Neg { dst }
        | Insn::Ld { dst, .. } => *dst == r,
        Insn::Call { .. } => r <= 5,
        _ => false,
    }
}

/// Per-block symbolic values for the monotonicity check: which registers
/// currently hold `idx + c` for the tracked induction location.
struct BlockSyms {
    /// `Some(c)` = register holds the induction value plus `c`.
    regs: [Option<i64>; NUM_MACH_REGS],
}

/// Classification of one instruction by the symbolic scan.
enum StepClass {
    Ok,
    Increment,
    NonMonotone,
}

impl BlockSyms {
    fn new(idx: Loc) -> BlockSyms {
        let mut regs = [None; NUM_MACH_REGS];
        if let Loc::Reg(r) = idx {
            regs[usize::from(r)] = Some(0);
        }
        BlockSyms { regs }
    }

    /// After the induction location was advanced, every symbolic copy is
    /// stale; rebase the given register (if any) to the fresh value.
    fn rebase(&mut self, keep: Option<u8>) {
        self.regs = [None; NUM_MACH_REGS];
        if let Some(r) = keep {
            self.regs[usize::from(r)] = Some(0);
        }
    }

    /// Classify a write of symbolic value `sym` into the induction
    /// location itself.
    fn classify_idx_write(sym: Option<i64>) -> StepClass {
        match sym {
            Some(c) if c > 0 => StepClass::Increment,
            Some(0) => StepClass::Ok,
            _ => StepClass::NonMonotone,
        }
    }

    fn step(&mut self, insn: Insn, idx: Loc) -> StepClass {
        let idx_reg = match idx {
            Loc::Reg(r) => Some(r),
            Loc::Slot(_) => None,
        };
        match insn {
            Insn::Ld { dst, slot } => {
                self.regs[usize::from(dst)] = match idx {
                    Loc::Slot(s) if s == slot => Some(0),
                    Loc::Reg(r) if r == dst => return StepClass::NonMonotone,
                    _ => None,
                };
                StepClass::Ok
            }
            Insn::MovImm { dst, .. } => {
                if idx_reg == Some(dst) {
                    return StepClass::NonMonotone;
                }
                self.regs[usize::from(dst)] = None;
                StepClass::Ok
            }
            Insn::Mov { dst, src } => {
                let s = self.regs[usize::from(src)];
                if idx_reg == Some(dst) {
                    let class = Self::classify_idx_write(s);
                    match class {
                        StepClass::Increment => self.rebase(Some(dst)),
                        StepClass::Ok => self.regs[usize::from(dst)] = Some(0),
                        StepClass::NonMonotone => {}
                    }
                    return class;
                }
                self.regs[usize::from(dst)] = s;
                StepClass::Ok
            }
            Insn::AluImm { op, dst, imm } => {
                let new = match (op, self.regs[usize::from(dst)]) {
                    (AluOp::Add, Some(c)) => c.checked_add(imm),
                    _ => None,
                };
                if idx_reg == Some(dst) {
                    let class = Self::classify_idx_write(new);
                    match class {
                        StepClass::Increment => self.rebase(Some(dst)),
                        StepClass::Ok => self.regs[usize::from(dst)] = Some(0),
                        StepClass::NonMonotone => {}
                    }
                    return class;
                }
                self.regs[usize::from(dst)] = new;
                StepClass::Ok
            }
            Insn::Alu { dst, .. } | Insn::Neg { dst } => {
                if idx_reg == Some(dst) {
                    return StepClass::NonMonotone;
                }
                self.regs[usize::from(dst)] = None;
                StepClass::Ok
            }
            Insn::Call { .. } => {
                for r in 0..=5 {
                    self.regs[r] = None;
                }
                StepClass::Ok
            }
            Insn::St { slot, src } => {
                if let Loc::Slot(s) = idx {
                    if s == slot {
                        let class = Self::classify_idx_write(self.regs[usize::from(src)]);
                        if !matches!(class, StepClass::NonMonotone) {
                            // Every register copy now refers to the old
                            // value; drop them all.
                            self.rebase(None);
                        }
                        return class;
                    }
                }
                StepClass::Ok
            }
            Insn::Ja { .. } | Insn::Jmp { .. } | Insn::JmpImm { .. } | Insn::Exit => StepClass::Ok,
        }
    }
}

// ---- HIR cross-check (helper audit) ----------------------------------

/// Compares the helper calls the bytecode performs against the HIR's
/// static audit ([`crate::analysis::analyze`]).
fn audit_helpers(
    analyzer: &Analyzer<'_>,
    prog: &BytecodeProgram,
    debug: &DebugTable,
    hir: &HProgram,
) -> Vec<Diagnostic> {
    if analyzer.structural_error.is_some() {
        return Vec::new();
    }
    let hir_audit = analysis::analyze(hir);
    let mut diags = Vec::new();
    let mut miscompile = |pc: usize, message: String| {
        diags.push(Diagnostic {
            lint: Lint::Miscompile,
            severity: Severity::Error,
            pos: debug.pos(pc),
            message: format!("pc {pc}: translation validation: {message}"),
        });
    };

    let mut push_calls = 0usize;
    let mut drop_calls = 0usize;
    let mut pop_calls = 0usize;
    let mut first_site = [None::<usize>; 3]; // push, drop, pop
    let mut uses_sent_on = false;
    let mut uses_window = false;

    for (pc, insn) in prog.code.iter().enumerate() {
        let helper = match insn {
            Insn::Call { helper } => *helper,
            _ => continue,
        };
        match helper {
            Helper::Push => {
                push_calls += 1;
                first_site[0].get_or_insert(pc);
            }
            Helper::DropPkt => {
                drop_calls += 1;
                first_site[1].get_or_insert(pc);
            }
            Helper::Pop => {
                pop_calls += 1;
                first_site[2].get_or_insert(pc);
            }
            Helper::SentOn => uses_sent_on = true,
            Helper::HasWindowFor => uses_window = true,
            _ => {}
        }
        // Enum-code arguments must be compile-time constants matching the
        // audit sets. Statically unreachable call sites keep their static
        // counts above but have no state to extract codes from.
        let code_arg = match helper {
            Helper::GetReg | Helper::SetReg | Helper::QueueLen | Helper::QueueGet => Some(1u8),
            Helper::SubflowProp | Helper::PacketProp => Some(2u8),
            _ => None,
        };
        let Some(arg_reg) = code_arg else { continue };
        let Some(state) = analyzer.states.get(pc).and_then(|s| s.as_ref()) else {
            continue;
        };
        let code = match state.regs[usize::from(arg_reg)] {
            AbsVal::Scalar(iv) => iv.as_exact(),
            AbsVal::Null => Some(NULL_HANDLE),
            _ => None,
        };
        let Some(code) = code else {
            miscompile(
                pc,
                format!(
                    "call {helper:?}: enum-code argument r{arg_reg} is not a compile-time constant"
                ),
            );
            continue;
        };
        match helper {
            Helper::GetReg => {
                let reg = code.checked_add(1).and_then(|c| u8::try_from(c).ok());
                if !reg.is_some_and(|r| hir_audit.registers_read.contains(&r)) {
                    miscompile(
                        pc,
                        format!("GetReg code {code} is outside the audited register-read set"),
                    );
                }
            }
            Helper::SetReg => {
                let reg = code.checked_add(1).and_then(|c| u8::try_from(c).ok());
                if !reg.is_some_and(|r| hir_audit.registers_written.contains(&r)) {
                    miscompile(
                        pc,
                        format!("SetReg code {code} is outside the audited register-write set"),
                    );
                }
            }
            Helper::QueueLen | Helper::QueueGet => {
                let name = QueueKind::from_code(code).map(QueueKind::name);
                if !name.is_some_and(|n| hir_audit.queues_read.contains(n)) {
                    miscompile(
                        pc,
                        format!("queue code {code} is outside the audited queue set"),
                    );
                }
            }
            Helper::SubflowProp => {
                let name = SubflowProp::from_code(code).map(SubflowProp::name);
                if !name.is_some_and(|n| hir_audit.subflow_props.contains(n)) {
                    miscompile(
                        pc,
                        format!("subflow property code {code} is outside the audited property set"),
                    );
                }
            }
            Helper::PacketProp => {
                let name = PacketProp::from_code(code).map(PacketProp::name);
                if !name.is_some_and(|n| hir_audit.packet_props.contains(n)) {
                    miscompile(
                        pc,
                        format!("packet property code {code} is outside the audited property set"),
                    );
                }
            }
            _ => {}
        }
    }

    let hir_pops = count_hir_pops(hir);
    let counts = [
        ("Push", push_calls, hir_audit.push_sites, first_site[0]),
        ("DropPkt", drop_calls, hir_audit.drop_sites, first_site[1]),
        ("Pop", pop_calls, hir_pops, first_site[2]),
    ];
    for (name, got, want, site) in counts {
        if got != want {
            miscompile(
                site.unwrap_or(0),
                format!("bytecode performs {got} {name} call(s) but the HIR certificate audits {want} site(s)"),
            );
        }
    }
    // Presence checks are one-directional: the bytecode must not call a
    // capability the audit never granted. The converse (audited but not
    // compiled) is legal — predicates of unused lazy views are audited
    // by the HIR walk but never materialized by codegen.
    if uses_sent_on && !hir_audit.uses_sent_on {
        miscompile(
            0,
            "bytecode calls SENT_ON but the HIR certificate never audits it".to_string(),
        );
    }
    if uses_window && !hir_audit.uses_window_check {
        miscompile(
            0,
            "bytecode calls HAS_WINDOW_FOR but the HIR certificate never audits it".to_string(),
        );
    }
    diags
}

/// Number of `QueuePop` nodes reachable from the program body: each one
/// compiles to exactly one `Pop` helper call (side-effect isolation
/// keeps predicates pop-free, so filter re-expansion never duplicates
/// them).
fn count_hir_pops(prog: &HProgram) -> usize {
    let mut n = 0;
    for &sid in &prog.body {
        pops_in_stmt(prog, sid, &mut n);
    }
    n
}

fn pops_in_stmt(prog: &HProgram, sid: StmtId, n: &mut usize) {
    match prog.stmt(sid) {
        HStmt::VarDecl { init, .. } => pops_in_expr(prog, *init, n),
        HStmt::If {
            cond,
            then_body,
            else_body,
        } => {
            pops_in_expr(prog, *cond, n);
            for &s in then_body.iter().chain(else_body) {
                pops_in_stmt(prog, s, n);
            }
        }
        HStmt::Foreach { list, body, .. } => {
            pops_in_expr(prog, *list, n);
            for &s in body {
                pops_in_stmt(prog, s, n);
            }
        }
        HStmt::SetReg { value, .. } => pops_in_expr(prog, *value, n),
        HStmt::Push { target, packet } => {
            pops_in_expr(prog, *target, n);
            pops_in_expr(prog, *packet, n);
        }
        HStmt::Drop { packet } => pops_in_expr(prog, *packet, n),
        HStmt::Return => {}
    }
}

fn pops_in_expr(prog: &HProgram, eid: ExprId, n: &mut usize) {
    match prog.expr(eid) {
        HExpr::QueuePop(e) => {
            *n += 1;
            pops_in_expr(prog, *e, n);
        }
        HExpr::Int(_)
        | HExpr::Bool(_)
        | HExpr::NullPacket
        | HExpr::NullSubflow
        | HExpr::ReadReg(_)
        | HExpr::ReadVar(_)
        | HExpr::Subflows
        | HExpr::Queue(_) => {}
        HExpr::SubflowProp { sbf: e, .. }
        | HExpr::PacketProp { pkt: e, .. }
        | HExpr::ListCount(e)
        | HExpr::ListEmpty(e)
        | HExpr::QueueCount(e)
        | HExpr::QueueEmpty(e)
        | HExpr::QueueTop(e)
        | HExpr::Unary { expr: e, .. } => pops_in_expr(prog, *e, n),
        HExpr::SentOn { pkt: a, sbf: b } | HExpr::HasWindowFor { sbf: a, pkt: b } => {
            pops_in_expr(prog, *a, n);
            pops_in_expr(prog, *b, n);
        }
        HExpr::ListFilter {
            list: a, pred: b, ..
        }
        | HExpr::QueueFilter {
            queue: a, pred: b, ..
        }
        | HExpr::ListMinMax {
            list: a, key: b, ..
        }
        | HExpr::QueueMinMax {
            queue: a, key: b, ..
        }
        | HExpr::ListSum {
            list: a, key: b, ..
        }
        | HExpr::QueueSum {
            queue: a, key: b, ..
        }
        | HExpr::ListGet { list: a, index: b }
        | HExpr::Binary { lhs: a, rhs: b, .. } => {
            pops_in_expr(prog, *a, n);
            pops_in_expr(prog, *b, n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{AluOp, Cond};
    use crate::optimizer;
    use crate::parser;
    use crate::regalloc;
    use crate::sema;

    fn compile_parts(src: &str) -> (HProgram, BytecodeProgram, DebugTable, u64) {
        let ast = parser::parse(src).expect("parse");
        let mut hir = sema::lower(&ast).expect("sema");
        optimizer::optimize(&mut hir);
        let verdict = super::super::verify(&hir);
        let vcode = crate::codegen::generate(&hir).expect("codegen");
        let (prog, debug) = regalloc::allocate_with_debug(&vcode).expect("regalloc");
        (hir, prog, debug, verdict.certified_step_bound)
    }

    fn validated(src: &str) -> BytecodeVerdict {
        let (hir, prog, debug, bound) = compile_parts(src);
        validate_translation(&prog, &debug, &hir, bound, &VerifyConfig::default())
    }

    const MIN_RTT: &str =
        "IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) { SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP()); }";

    #[test]
    fn min_rtt_bytecode_validates_against_certificate() {
        let v = validated(MIN_RTT);
        assert!(v.admitted(), "diags: {:?}", v.diagnostics);
        let bound = v.step_bound.expect("all loops bounded");
        assert!(bound > 0);
        let (_, _, _, hir_bound) = compile_parts(MIN_RTT);
        assert!(
            bound <= hir_bound.saturating_mul(TRANSLATION_SLACK),
            "{bound} vs {hir_bound}"
        );
        assert!(v.annotated.contains("call"));
    }

    #[test]
    fn generated_schedulers_carry_spans_in_annotation() {
        let v = validated("SET(R1, SUBFLOWS.COUNT);");
        assert!(v.admitted(), "diags: {:?}", v.diagnostics);
        // Every line carries a `line:col` annotation from the side table.
        assert!(
            v.annotated.lines().all(|l| l.contains("; 1:")),
            "{}",
            v.annotated
        );
    }

    #[test]
    fn uninitialized_register_read_is_rejected() {
        let prog = BytecodeProgram {
            code: vec![Insn::Mov { dst: 6, src: 7 }, Insn::Exit],
            stack_slots: 0,
        };
        let v = verify_bytecode(&prog, None, &VerifyConfig::default());
        assert!(!v.admitted());
        assert!(v
            .diagnostics
            .iter()
            .any(|d| d.lint == Lint::UninitRead && d.message.contains("r7")));
    }

    #[test]
    fn uninitialized_slot_read_is_rejected() {
        let prog = BytecodeProgram {
            code: vec![Insn::Ld { dst: 6, slot: 0 }, Insn::Exit],
            stack_slots: 1,
        };
        let v = verify_bytecode(&prog, None, &VerifyConfig::default());
        assert!(!v.admitted());
        assert!(v
            .diagnostics
            .iter()
            .any(|d| d.lint == Lint::UninitRead && d.message.contains("slot 0")));
    }

    #[test]
    fn conditionally_initialized_register_is_rejected_at_the_merge() {
        // r6 is written only on the fall-through path; the read after the
        // merge must be flagged (Uninit is absorbing under join). The
        // branch condition is a helper result, so both edges are feasible.
        let prog = BytecodeProgram {
            code: vec![
                Insn::MovImm { dst: 1, imm: 0 },
                Insn::Call {
                    helper: Helper::GetReg,
                },
                Insn::Mov { dst: 7, src: 0 },
                Insn::JmpImm {
                    cond: Cond::Eq,
                    lhs: 7,
                    imm: 1,
                    off: 1,
                },
                Insn::MovImm { dst: 6, imm: 5 },
                Insn::Mov { dst: 8, src: 6 },
                Insn::Exit,
            ],
            stack_slots: 0,
        };
        let v = verify_bytecode(&prog, None, &VerifyConfig::default());
        assert!(!v.admitted());
        assert!(
            v.diagnostics
                .iter()
                .any(|d| d.lint == Lint::UninitRead && d.message.contains("pc 5")),
            "{:?}",
            v.diagnostics
        );
    }

    #[test]
    fn stale_helper_argument_register_is_flagged() {
        // r1 is dead after the call (clobber set): reading it is an error.
        let prog = BytecodeProgram {
            code: vec![
                Insn::MovImm { dst: 1, imm: 0 },
                Insn::Call {
                    helper: Helper::GetReg,
                },
                Insn::Mov { dst: 6, src: 1 },
                Insn::Exit,
            ],
            stack_slots: 0,
        };
        let v = verify_bytecode(&prog, None, &VerifyConfig::default());
        assert!(!v.admitted());
        assert!(v
            .diagnostics
            .iter()
            .any(|d| d.lint == Lint::UninitRead && d.message.contains("pc 2")));
    }

    #[test]
    fn helper_signature_violations_are_rejected() {
        // Push expects (subflow, packet); a scalar subflow argument and a
        // subflow-typed packet argument are both violations.
        let prog = BytecodeProgram {
            code: vec![
                Insn::MovImm { dst: 1, imm: 0 },
                Insn::Call {
                    helper: Helper::SubflowAt,
                },
                Insn::Mov { dst: 2, src: 0 },    // r2 = subflow handle
                Insn::MovImm { dst: 1, imm: 7 }, // r1 = scalar
                Insn::Call {
                    helper: Helper::Push,
                },
                Insn::Exit,
            ],
            stack_slots: 0,
        };
        let v = verify_bytecode(&prog, None, &VerifyConfig::default());
        assert!(!v.admitted());
        let sigs: Vec<_> = v
            .diagnostics
            .iter()
            .filter(|d| d.lint == Lint::HelperSignature)
            .collect();
        assert_eq!(sigs.len(), 2, "{sigs:?}");
    }

    #[test]
    fn handle_arithmetic_is_rejected() {
        let prog = BytecodeProgram {
            code: vec![
                Insn::MovImm { dst: 1, imm: 0 },
                Insn::Call {
                    helper: Helper::SubflowAt,
                },
                Insn::Mov { dst: 6, src: 0 },
                Insn::AluImm {
                    op: AluOp::Add,
                    dst: 6,
                    imm: 1,
                },
                Insn::Exit,
            ],
            stack_slots: 0,
        };
        let v = verify_bytecode(&prog, None, &VerifyConfig::default());
        assert!(!v.admitted());
        assert!(v.diagnostics.iter().any(|d| d.lint == Lint::HandleArith));
    }

    #[test]
    fn unreachable_code_is_warned_not_rejected() {
        let prog = BytecodeProgram {
            code: vec![
                Insn::MovImm { dst: 6, imm: 1 },
                Insn::Ja { off: 1 },
                Insn::MovImm { dst: 6, imm: 2 }, // skipped forever
                Insn::Exit,
            ],
            stack_slots: 0,
        };
        let v = verify_bytecode(&prog, None, &VerifyConfig::default());
        assert!(v.admitted(), "warnings do not block: {:?}", v.diagnostics);
        assert!(v
            .diagnostics
            .iter()
            .any(|d| d.lint == Lint::UnreachableCode && d.severity == Severity::Warning));
    }

    #[test]
    fn counted_loop_is_bounded_and_admitted() {
        // for r6 in 0..10 { two helper calls } — bottom-test shape. The
        // two calls make this a "scan" loop, charged per trip.
        let prog = BytecodeProgram {
            code: vec![
                Insn::MovImm { dst: 6, imm: 0 },
                Insn::Call {
                    helper: Helper::SubflowCount,
                },
                Insn::Call {
                    helper: Helper::SubflowCount,
                },
                Insn::AluImm {
                    op: AluOp::Add,
                    dst: 6,
                    imm: 1,
                },
                Insn::JmpImm {
                    cond: Cond::Lt,
                    lhs: 6,
                    imm: 10,
                    off: -4,
                },
                Insn::Exit,
            ],
            stack_slots: 0,
        };
        let v = verify_bytecode(&prog, None, &VerifyConfig::default());
        assert!(v.admitted(), "diags: {:?}", v.diagnostics);
        let bound = v.step_bound.expect("bounded");
        assert!(bound >= 10, "loop body charged per trip: {bound}");
    }

    #[test]
    fn pure_counted_loop_collapses_to_constant_charge() {
        // A call-free loop realizes an O(1)-charged construct under the
        // HIR cost model's charging discipline: one trip in the bound.
        let prog = BytecodeProgram {
            code: vec![
                Insn::MovImm { dst: 6, imm: 0 },
                Insn::AluImm {
                    op: AluOp::Add,
                    dst: 6,
                    imm: 1,
                },
                Insn::JmpImm {
                    cond: Cond::Lt,
                    lhs: 6,
                    imm: 1000,
                    off: -2,
                },
                Insn::Exit,
            ],
            stack_slots: 0,
        };
        let v = verify_bytecode(&prog, None, &VerifyConfig::default());
        assert!(v.admitted(), "diags: {:?}", v.diagnostics);
        let bound = v.step_bound.expect("bounded");
        assert!(bound < 100, "O(1)-equivalent loop charged once: {bound}");
    }

    #[test]
    fn loop_without_increment_is_unbounded() {
        let prog = BytecodeProgram {
            code: vec![
                Insn::MovImm { dst: 6, imm: 0 },
                Insn::MovImm { dst: 7, imm: 0 },
                Insn::JmpImm {
                    cond: Cond::Lt,
                    lhs: 6,
                    imm: 10,
                    off: -2,
                },
                Insn::Exit,
            ],
            stack_slots: 0,
        };
        let v = verify_bytecode(&prog, None, &VerifyConfig::default());
        assert!(!v.admitted());
        assert!(v.diagnostics.iter().any(|d| d.lint == Lint::UnboundedLoop));
        assert_eq!(v.step_bound, None);
    }

    #[test]
    fn decrementing_induction_variable_is_unbounded() {
        let prog = BytecodeProgram {
            code: vec![
                Insn::MovImm { dst: 6, imm: 0 },
                Insn::AluImm {
                    op: AluOp::Add,
                    dst: 6,
                    imm: -1,
                },
                Insn::JmpImm {
                    cond: Cond::Lt,
                    lhs: 6,
                    imm: 10,
                    off: -2,
                },
                Insn::Exit,
            ],
            stack_slots: 0,
        };
        let v = verify_bytecode(&prog, None, &VerifyConfig::default());
        assert!(!v.admitted());
        assert!(v.diagnostics.iter().any(|d| d.lint == Lint::UnboundedLoop));
    }

    #[test]
    fn all_generated_loop_shapes_validate() {
        for src in [
            "SET(R1, SUBFLOWS.COUNT);",
            "SET(R1, Q.COUNT);",
            "IF (!Q.EMPTY) { SET(R1, 1); }",
            "SET(R1, SUBFLOWS.FILTER(s => s.RTT > 0).COUNT);",
            "SET(R1, SUBFLOWS.SUM(s => s.CWND));",
            "FOREACH (VAR s IN SUBFLOWS) { SET(R1, R1 + 1); }",
            "VAR s = SUBFLOWS.GET(0); IF (s != NULL) { SET(R1, s.RTT); }",
            "VAR best = SUBFLOWS.MIN(s => s.RTT); IF (best != NULL) { SET(R1, best.RTT); }",
            "VAR t = Q.TOP; IF (t != NULL) { SET(R1, t.SIZE); }",
            "FOREACH (VAR s IN SUBFLOWS.FILTER(x => x.CWND > 0)) { SET(R2, R2 + s.RTT); }",
        ] {
            let v = validated(src);
            assert!(v.admitted(), "{src}: {:?}", v.diagnostics);
            assert!(v.step_bound.is_some(), "{src}: loops not bounded");
        }
    }

    #[test]
    fn mutated_helper_code_is_a_miscompile() {
        // Swap the subflow-property read for a packet-property read: the
        // call site now violates both the typed signature (subflow handle
        // in a packet slot) and the certificate's property audit.
        let (hir, mut prog, debug, bound) = compile_parts(MIN_RTT);
        let mut mutated = false;
        for insn in &mut prog.code {
            if matches!(
                insn,
                Insn::Call {
                    helper: Helper::SubflowProp
                }
            ) {
                *insn = Insn::Call {
                    helper: Helper::PacketProp,
                };
                mutated = true;
                break;
            }
        }
        assert!(mutated, "min-rtt reads a subflow property");
        let v = validate_translation(&prog, &debug, &hir, bound, &VerifyConfig::default());
        assert!(!v.admitted());
        assert!(
            v.diagnostics
                .iter()
                .any(|d| d.lint == Lint::Miscompile && d.message.contains("property")),
            "{:?}",
            v.diagnostics
        );
    }

    #[test]
    fn mutated_loop_increment_is_a_miscompile_with_span() {
        // Turn a loop increment into a no-op: the loop no longer
        // terminates, which translation validation must catch, anchored
        // to a real source span.
        let (hir, prog, debug, bound) = compile_parts(MIN_RTT);
        let mut found = false;
        for pc in 0..prog.code.len() {
            let mut mutated = prog.clone();
            if let Insn::AluImm {
                op: AluOp::Add,
                imm: imm @ 1,
                ..
            } = &mut mutated.code[pc]
            {
                *imm = 0;
            } else {
                continue;
            }
            let v = validate_translation(&mutated, &debug, &hir, bound, &VerifyConfig::default());
            if !v.admitted() {
                let mis = v
                    .diagnostics
                    .iter()
                    .find(|d| d.lint == Lint::Miscompile)
                    .expect("rejection is paired with a miscompile diagnostic");
                assert!(
                    mis.pos.line > 0,
                    "miscompile carries a source span: {mis:?}"
                );
                found = true;
            }
        }
        assert!(found, "at least one increment nop is caught");
    }

    #[test]
    fn extra_pop_call_is_a_miscompile() {
        let (hir, prog, debug, bound) = compile_parts("SET(R1, SUBFLOWS.COUNT);");
        let mut mutated = prog.clone();
        // Replace the trailing exit's predecessor chain: inject a Pop on
        // a fresh packet-producing call sequence at the end by rewriting
        // the final Exit into Call Pop is invalid (arity); instead swap a
        // SubflowCount call for Pop-like DropPkt to disturb counts.
        for insn in &mut mutated.code {
            if matches!(
                insn,
                Insn::Call {
                    helper: Helper::SubflowCount
                }
            ) {
                *insn = Insn::Call {
                    helper: Helper::DropPkt,
                };
                break;
            }
        }
        let v = validate_translation(&mutated, &debug, &hir, bound, &VerifyConfig::default());
        assert!(!v.admitted());
        assert!(
            v.diagnostics
                .iter()
                .any(|d| d.lint == Lint::Miscompile && d.message.contains("DropPkt")),
            "{:?}",
            v.diagnostics
        );
    }

    #[test]
    fn structural_failure_surfaces_as_miscompile() {
        let prog = BytecodeProgram {
            code: vec![Insn::Ja { off: 99 }, Insn::Exit],
            stack_slots: 0,
        };
        let v = verify_bytecode(&prog, None, &VerifyConfig::default());
        assert!(!v.admitted());
        assert!(v
            .diagnostics
            .iter()
            .any(|d| d.lint == Lint::Miscompile && d.message.contains("structural")));
        assert_eq!(v.step_bound, None);
    }

    #[test]
    fn null_refinement_tracks_handle_nullability() {
        // `VAR s = SUBFLOWS.GET(0); IF (s != NULL) { s.PUSH(Q.POP()); }`
        // The push target is NonNull on the guarded path: no signature
        // issues, admitted.
        let v = validated(
            "VAR s = SUBFLOWS.GET(0);
             IF (s != NULL AND !Q.EMPTY) { s.PUSH(Q.POP()); }",
        );
        assert!(v.admitted(), "diags: {:?}", v.diagnostics);
        assert!(v.annotated.contains("sbf"), "{}", v.annotated);
    }
}
