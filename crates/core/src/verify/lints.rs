//! Syntactic lint pass (no abstract state needed).
//!
//! Covers the catalogue entries that fall out of reachability and
//! def-use structure rather than value ranges: registers written but
//! never read, `POP` results that are never scheduled or dropped, and
//! scan nesting over the admission threshold (delegated to
//! [`crate::analysis`], the single source of truth for scan depth).

use std::collections::BTreeSet;

use crate::error::Pos;
use crate::hir::{ExprId, HExpr, HProgram, HStmt, StmtId};

use super::diag::{Diagnostic, Lint, Severity};
use super::VerifyConfig;

/// Runs the syntactic lints over `prog`.
pub(super) fn run(prog: &HProgram, cfg: &VerifyConfig) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let audit = crate::analysis::analyze(prog);

    for &reg in audit.registers_written.difference(&audit.registers_read) {
        diags.push(Diagnostic {
            lint: Lint::RegisterNeverRead,
            severity: Severity::Info,
            pos: first_set_reg_pos(prog, reg).unwrap_or(Pos { line: 1, col: 1 }),
            message: format!(
                "register R{reg} is written but never read by the scheduler (it stays \
                 visible to the application through the register interface)"
            ),
        });
    }

    if audit.max_scan_depth > cfg.max_scan_depth {
        diags.push(Diagnostic {
            lint: Lint::ScanDepth,
            severity: Severity::Error,
            pos: Pos { line: 1, col: 1 },
            message: format!(
                "scan nesting depth {} exceeds the admission threshold {}",
                audit.max_scan_depth, cfg.max_scan_depth
            ),
        });
    }

    pop_without_push(prog, &mut diags);
    diags
}

/// Source position of the first `SET` writing 1-based register `reg`.
fn first_set_reg_pos(prog: &HProgram, reg: u8) -> Option<Pos> {
    fn find(prog: &HProgram, body: &[StmtId], reg: u8) -> Option<Pos> {
        for &sid in body {
            match prog.stmt(sid) {
                HStmt::SetReg { reg: r, .. } if (r.index() + 1) as u8 == reg => {
                    return Some(prog.stmt_pos(sid));
                }
                HStmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    if let Some(p) =
                        find(prog, then_body, reg).or_else(|| find(prog, else_body, reg))
                    {
                        return Some(p);
                    }
                }
                HStmt::Foreach { body, .. } => {
                    if let Some(p) = find(prog, body, reg) {
                        return Some(p);
                    }
                }
                _ => {}
            }
        }
        None
    }
    find(prog, &prog.body, reg)
}

/// Flags `POP()` results that are neither `PUSH`ed nor `DROP`ped: the
/// packet is hidden from every later queue view for the rest of the
/// execution without being scheduled, which is almost always a logic bug.
///
/// A pop counts as consumed when it is directly the packet operand of a
/// `PUSH`/`DROP`, or when it initializes a variable that is read
/// somewhere in the program.
fn pop_without_push(prog: &HProgram, diags: &mut Vec<Diagnostic>) {
    let mut w = PopWalk {
        prog,
        pops: Vec::new(),
        consumed: BTreeSet::new(),
        decl_of: Vec::new(),
        slots_read: BTreeSet::new(),
    };
    w.walk_block(&prog.body);
    for pop in &w.pops {
        if w.consumed.contains(&pop.0) {
            continue;
        }
        let consumed_via_var = w
            .decl_of
            .iter()
            .any(|&(expr, slot)| expr == *pop && w.slots_read.contains(&slot));
        if !consumed_via_var {
            diags.push(Diagnostic {
                lint: Lint::PopWithoutPush,
                severity: Severity::Error,
                pos: prog.expr_pos(*pop),
                message: "popped packet is never pushed or dropped: it disappears from \
                          every queue view without being scheduled"
                    .into(),
            });
        }
    }
}

struct PopWalk<'a> {
    prog: &'a HProgram,
    /// Every reachable `POP` expression.
    pops: Vec<ExprId>,
    /// Pops that are directly a `PUSH`/`DROP` packet operand.
    consumed: BTreeSet<u32>,
    /// Pops that are the root initializer of a variable slot.
    decl_of: Vec<(ExprId, u32)>,
    /// Slots read anywhere in the program.
    slots_read: BTreeSet<u32>,
}

impl<'a> PopWalk<'a> {
    fn walk_block(&mut self, body: &[StmtId]) {
        for &sid in body {
            match self.prog.stmt(sid).clone() {
                HStmt::VarDecl { slot, init } => {
                    if matches!(self.prog.expr(init), HExpr::QueuePop(_)) {
                        self.decl_of.push((init, slot.0));
                    }
                    self.walk_expr(init);
                }
                HStmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    self.walk_expr(cond);
                    self.walk_block(&then_body);
                    self.walk_block(&else_body);
                }
                HStmt::Foreach { list, body, .. } => {
                    self.walk_expr(list);
                    self.walk_block(&body);
                }
                HStmt::SetReg { value, .. } => self.walk_expr(value),
                HStmt::Push { target, packet } => {
                    self.walk_expr(target);
                    if matches!(self.prog.expr(packet), HExpr::QueuePop(_)) {
                        self.consumed.insert(packet.0);
                    }
                    self.walk_expr(packet);
                }
                HStmt::Drop { packet } => {
                    if matches!(self.prog.expr(packet), HExpr::QueuePop(_)) {
                        self.consumed.insert(packet.0);
                    }
                    self.walk_expr(packet);
                }
                HStmt::Return => {}
            }
        }
    }

    fn walk_expr(&mut self, id: ExprId) {
        match self.prog.expr(id).clone() {
            HExpr::Int(_)
            | HExpr::Bool(_)
            | HExpr::NullPacket
            | HExpr::NullSubflow
            | HExpr::ReadReg(_)
            | HExpr::Subflows
            | HExpr::Queue(_) => {}
            HExpr::ReadVar(slot) => {
                self.slots_read.insert(slot.0);
            }
            HExpr::SubflowProp { sbf: e, .. } | HExpr::PacketProp { pkt: e, .. } => {
                self.walk_expr(e);
            }
            HExpr::SentOn { pkt: a, sbf: b } | HExpr::HasWindowFor { sbf: a, pkt: b } => {
                self.walk_expr(a);
                self.walk_expr(b);
            }
            HExpr::ListFilter {
                list: base,
                pred: e,
                ..
            }
            | HExpr::QueueFilter {
                queue: base,
                pred: e,
                ..
            }
            | HExpr::ListMinMax {
                list: base, key: e, ..
            }
            | HExpr::QueueMinMax {
                queue: base,
                key: e,
                ..
            }
            | HExpr::ListSum {
                list: base, key: e, ..
            }
            | HExpr::QueueSum {
                queue: base,
                key: e,
                ..
            }
            | HExpr::ListGet {
                list: base,
                index: e,
            } => {
                self.walk_expr(base);
                self.walk_expr(e);
            }
            HExpr::ListCount(e)
            | HExpr::QueueCount(e)
            | HExpr::ListEmpty(e)
            | HExpr::QueueEmpty(e)
            | HExpr::QueueTop(e) => self.walk_expr(e),
            HExpr::QueuePop(e) => {
                self.pops.push(id);
                self.walk_expr(e);
            }
            HExpr::Unary { expr, .. } => self.walk_expr(expr),
            HExpr::Binary { lhs, rhs, .. } => {
                self.walk_expr(lhs);
                self.walk_expr(rhs);
            }
        }
    }
}
