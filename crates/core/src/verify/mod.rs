//! Static admission verifier for scheduler programs.
//!
//! Inspired by the eBPF verifier's admit-or-reject discipline, this
//! module runs a forward abstract interpretation over the optimized HIR
//! (interval × nullability × queue-emptiness domain) plus a syntactic
//! lint pass, and certifies a closed-form worst-case step bound. The
//! [`Verdict`] it produces gates compilation: programs with any
//! [`Severity::Error`] diagnostic are rejected before reaching a
//! backend, and admitted programs run under their certified per-program
//! step bound instead of the blanket default budget.
//!
//! The pipeline is `parse → sema → optimize → verify → codegen`; the
//! verifier sees exactly the HIR the backends execute, so its proofs
//! transfer. Soundness is fuzz-checked by the conformance crate: over
//! hundreds of generated programs, admitted ones must never raise a
//! runtime error class the verifier claims to exclude, and must finish
//! within the certified bound on all three backends.

mod cost;
mod dataflow;
pub(crate) mod diag;
pub(crate) mod domain;
mod lints;
pub mod props;
pub mod vm;

pub use diag::{Diagnostic, Lint, Severity, Verdict};
pub use domain::IdSet;
pub use props::{verify_properties, PropStatus, PropertyCertificate};

use crate::hir::HProgram;

/// Environment cardinality caps and thresholds the verifier assumes.
///
/// The certified step bound is only valid while the runtime environment
/// honours these caps; the defaults comfortably exceed anything the
/// bundled simulator or conformance harness produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyConfig {
    /// Maximum number of subflows one connection may have.
    pub max_subflows: u64,
    /// Maximum number of packets visible in one queue view.
    pub max_queue_len: u64,
    /// Maximum admitted scan nesting depth (deeper programs are rejected).
    pub max_scan_depth: usize,
    /// Multiplier applied to the closed-form cost total to absorb
    /// step-accounting differences between backends.
    pub cost_safety_factor: u64,
    /// Run the relational octagon domain alongside the intervals. Off,
    /// the verifier falls back to the projection-only (pure interval)
    /// analysis — used by the differential soundness sweeps.
    pub relational_domain: bool,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            max_subflows: 64,
            max_queue_len: 65_536,
            max_scan_depth: 8,
            cost_safety_factor: 16,
            relational_domain: true,
        }
    }
}

/// Verifies `prog` under the default [`VerifyConfig`].
pub fn verify(prog: &HProgram) -> Verdict {
    verify_with_config(prog, &VerifyConfig::default())
}

/// Verifies `prog` under explicit caps, returning the full [`Verdict`].
pub fn verify_with_config(prog: &HProgram, cfg: &VerifyConfig) -> Verdict {
    let mut diagnostics = dataflow::run(prog, cfg.relational_domain);
    diagnostics.extend(lints::run(prog, cfg));
    diagnostics.sort_by(|a, b| {
        (a.pos.line, a.pos.col, a.lint, &a.message)
            .cmp(&(b.pos.line, b.pos.col, b.lint, &b.message))
    });
    diagnostics.dedup();
    Verdict {
        diagnostics,
        certified_step_bound: cost::certified_step_bound(prog, cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer;
    use crate::parser;
    use crate::sema;

    fn verdict_of(src: &str) -> Verdict {
        let ast = parser::parse(src).expect("parse");
        let mut hir = sema::lower(&ast).expect("sema");
        optimizer::optimize(&mut hir);
        verify(&hir)
    }

    fn has(v: &Verdict, lint: Lint, severity: Severity) -> bool {
        v.diagnostics
            .iter()
            .any(|d| d.lint == lint && d.severity == severity)
    }

    #[test]
    fn min_rtt_guarded_is_clean() {
        let v = verdict_of(
            "IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) {
                 SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP());
             }",
        );
        assert!(v.admitted(), "diags: {:?}", v.diagnostics);
        assert_eq!(v.count(Severity::Warning), 0);
        assert_eq!(v.count(Severity::Info), 0, "diags: {:?}", v.diagnostics);
        assert!(v.certified_step_bound >= 1024);
    }

    #[test]
    fn unguarded_pop_and_push_are_flagged_info() {
        let v = verdict_of("SUBFLOWS.GET(0).PUSH(Q.POP());");
        assert!(v.admitted());
        assert!(has(&v, Lint::PopMaybeEmpty, Severity::Info));
        assert!(has(&v, Lint::PushMaybeNull, Severity::Info));
    }

    #[test]
    fn provable_null_push_is_rejected() {
        let v = verdict_of(
            "VAR s = SUBFLOWS.GET(0);
             IF (s == NULL) {
                 s.PUSH(Q.POP());
             }",
        );
        assert!(!v.admitted());
        assert!(has(&v, Lint::PushNull, Severity::Error));
    }

    #[test]
    fn pop_from_provably_empty_queue_is_rejected() {
        let v = verdict_of(
            "IF (Q.EMPTY) {
                 SUBFLOWS.GET(0).PUSH(Q.POP());
             }",
        );
        assert!(!v.admitted());
        assert!(has(&v, Lint::PopEmpty, Severity::Error));
    }

    #[test]
    fn division_by_provably_zero_register_is_rejected() {
        // Written through a register so the optimizer cannot fold it away:
        // only the abstract interpreter can prove the divisor is zero.
        let v = verdict_of("SET(R1, 0); SET(R2, 10 / R1);");
        assert!(!v.admitted());
        assert!(has(&v, Lint::DivByZero, Severity::Error));
    }

    #[test]
    fn division_by_guarded_nonzero_is_clean() {
        let v = verdict_of(
            "IF (SUBFLOWS.COUNT > 0) {
                 SET(R1, 100 / SUBFLOWS.COUNT);
             }",
        );
        assert!(v.admitted());
        assert!(!has(&v, Lint::DivMaybeZero, Severity::Info));
        assert!(!has(&v, Lint::DivByZero, Severity::Error));
    }

    #[test]
    fn division_by_possibly_zero_count_is_info() {
        let v = verdict_of("SET(R1, 100 / SUBFLOWS.COUNT);");
        assert!(v.admitted());
        assert!(has(&v, Lint::DivMaybeZero, Severity::Info));
    }

    #[test]
    fn dead_branch_from_infeasible_range_is_warned() {
        let v = verdict_of(
            "VAR n = SUBFLOWS.COUNT;
             IF (n < 0) {
                 SET(R1, 1);
             }",
        );
        assert!(v.admitted());
        assert!(has(&v, Lint::DeadBranch, Severity::Warning));
    }

    #[test]
    fn contradictory_nested_guard_is_dead() {
        let v = verdict_of(
            "IF (R1 > 10) {
                 IF (R1 < 5) {
                     SET(R2, R1);
                 }
             }",
        );
        assert!(has(&v, Lint::DeadBranch, Severity::Warning));
    }

    #[test]
    fn register_written_never_read_is_info() {
        let v = verdict_of("SET(R3, SUBFLOWS.COUNT);");
        assert!(v.admitted());
        assert!(has(&v, Lint::RegisterNeverRead, Severity::Info));
        let v = verdict_of("SET(R3, SUBFLOWS.COUNT); SET(R4, R3 + 1); SET(R5, R4);");
        assert!(!v
            .diagnostics
            .iter()
            .any(|d| d.lint == Lint::RegisterNeverRead && d.message.contains("R3")));
    }

    #[test]
    fn pop_without_push_is_rejected() {
        let v = verdict_of("VAR p = Q.POP(); SET(R1, 1);");
        assert!(!v.admitted());
        assert!(has(&v, Lint::PopWithoutPush, Severity::Error));
        // Consumed via a variable read: fine.
        let v = verdict_of("VAR p = Q.POP(); IF (p != NULL) { DROP(p); }");
        assert!(v.admitted(), "diags: {:?}", v.diagnostics);
    }

    #[test]
    fn null_check_refines_top_origin_queue() {
        // `t != NULL` proves Q non-empty, so the POP is clean.
        let v = verdict_of(
            "VAR t = Q.TOP;
             IF (t != NULL) {
                 SUBFLOWS.MIN(s => s.RTT).PUSH(Q.POP());
             }",
        );
        assert!(v.admitted(), "diags: {:?}", v.diagnostics);
        assert!(!has(&v, Lint::PopMaybeEmpty, Severity::Info));
        // But SUBFLOWS was never guarded, so MIN may be NULL.
        assert!(has(&v, Lint::PushMaybeNull, Severity::Info));
    }

    #[test]
    fn stale_top_origin_does_not_survive_a_pop() {
        // The guard on `t` is evaluated after an intervening POP removed a
        // packet, so Q may be empty again: the second POP must be flagged.
        let v = verdict_of(
            "VAR t = Q.TOP;
             VAR p = Q.POP();
             IF (t != NULL AND p != NULL) {
                 DROP(p);
                 SUBFLOWS.GET(0).PUSH(Q.POP());
             }",
        );
        assert!(has(&v, Lint::PopMaybeEmpty, Severity::Info));
    }

    #[test]
    fn filtered_view_guard_refines_base_queue() {
        let v = verdict_of(
            "VAR urgent = Q.FILTER(p => p.PROP == 1);
             IF (!urgent.EMPTY AND !SUBFLOWS.EMPTY) {
                 SUBFLOWS.GET(0).PUSH(urgent.POP());
             }",
        );
        assert!(v.admitted(), "diags: {:?}", v.diagnostics);
        assert!(!has(&v, Lint::PopMaybeEmpty, Severity::Info));
    }

    #[test]
    fn scan_depth_over_threshold_is_rejected() {
        // Chained filters share one fused scan; only *nesting* inside a
        // predicate deepens the scan depth.
        let v = verdict_of(&nested_filter_src(9));
        assert!(!v.admitted(), "diags: {:?}", v.diagnostics);
        assert!(has(&v, Lint::ScanDepth, Severity::Error));
        assert!(verdict_of(&nested_filter_src(3)).admitted());
    }

    /// `SET(R1, F.COUNT)` where `F` nests `depth` filters inside each
    /// other's predicates.
    fn nested_filter_src(depth: usize) -> String {
        fn view(level: usize, depth: usize) -> String {
            if level > depth {
                return "SUBFLOWS".into();
            }
            format!(
                "SUBFLOWS.FILTER(v{level} => {}.COUNT > 0)",
                view(level + 1, depth)
            )
        }
        format!("SET(R1, {}.COUNT);", view(1, depth))
    }

    #[test]
    fn foreach_body_reaches_fixpoint_without_duplicate_diags() {
        let v = verdict_of(
            "FOREACH (VAR sbf IN SUBFLOWS) {
                 SET(R1, R1 + 1);
                 IF (sbf.HAS_WINDOW_FOR(Q.TOP) AND !Q.EMPTY) {
                     sbf.PUSH(Q.POP());
                 }
             }",
        );
        assert!(v.admitted(), "diags: {:?}", v.diagnostics);
        let pop_infos = v
            .diagnostics
            .iter()
            .filter(|d| d.lint == Lint::PopMaybeEmpty)
            .count();
        assert_eq!(pop_infos, 0, "diags: {:?}", v.diagnostics);
    }

    #[test]
    fn certified_bound_scales_with_scan_nesting() {
        let flat = verdict_of("SET(R1, SUBFLOWS.COUNT);").certified_step_bound;
        let scan =
            verdict_of("SET(R1, SUBFLOWS.FILTER(s => s.RTT < 50).COUNT);").certified_step_bound;
        let nested = verdict_of(
            "FOREACH (VAR s IN SUBFLOWS) { SET(R1, R1 + Q.FILTER(p => p.SIZE > 0).COUNT); }",
        )
        .certified_step_bound;
        assert!(flat < scan, "{flat} vs {scan}");
        assert!(scan < nested, "{scan} vs {nested}");
    }

    #[test]
    fn unfiltered_queue_ops_cost_constant() {
        let a = verdict_of("SET(R1, Q.COUNT);").certified_step_bound;
        let b = verdict_of("SET(R1, Q.FILTER(p => p.SIZE > 0).COUNT);").certified_step_bound;
        // The filtered variant must charge a full queue scan.
        assert!(b > a.saturating_mul(100), "{a} vs {b}");
    }

    #[test]
    fn diagnostics_are_sorted_and_deduped() {
        let v = verdict_of(
            "SET(R1, 1 / 0);
             SET(R2, 2 / 0);",
        );
        let mut sorted = v.diagnostics.clone();
        sorted.sort_by_key(|d| (d.pos.line, d.pos.col));
        assert_eq!(v.diagnostics, sorted);
        let mut deduped = v.diagnostics.clone();
        deduped.dedup();
        assert_eq!(v.diagnostics, deduped);
    }

    #[test]
    fn return_branches_are_ignored_in_joins() {
        // On the fall-through path Q is proven non-empty by the guard.
        let v = verdict_of(
            "IF (Q.EMPTY OR SUBFLOWS.EMPTY) {
                 RETURN;
             }
             SUBFLOWS.MIN(s => s.RTT).PUSH(Q.POP());",
        );
        assert!(v.admitted(), "diags: {:?}", v.diagnostics);
        assert_eq!(v.count(Severity::Info), 0, "diags: {:?}", v.diagnostics);
    }
}
