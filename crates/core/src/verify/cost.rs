//! Closed-form worst-case step-cost certification.
//!
//! Computes an upper bound on the number of accounting steps one
//! execution can take on *any* backend, assuming the environment stays
//! within the configured cardinality caps ([`VerifyConfig::max_subflows`]
//! subflows, [`VerifyConfig::max_queue_len`] packets per queue view). The
//! model charges one abstract unit per statement and expression node and
//! a full scan (`elements × per-element work`) for every aggregate
//! consumption: filtered `COUNT`/`EMPTY`/`TOP`/`POP`, any
//! `MIN`/`MAX`/`SUM`/`GET`, and `FOREACH` iteration. Aggregate variables
//! are resolved through their initializer chains, and every consumption
//! site re-charges the full re-expansion — exactly how the compiled
//! backends execute fused aggregates. The result is multiplied by
//! [`VerifyConfig::cost_safety_factor`] to absorb differences between the
//! three backends' step-accounting granularities; the conformance
//! soundness sweep checks the certified bound empirically.

use crate::hir::{ExprId, HExpr, HProgram, HStmt, StmtId};
use crate::types::Type;

use super::VerifyConfig;

/// Minimum certified bound, so trivial programs keep headroom for
/// per-execution bookkeeping steps.
const MIN_BOUND: u64 = 1024;

/// The certified worst-case step bound for `prog` under `cfg`'s caps.
pub(super) fn certified_step_bound(prog: &HProgram, cfg: &VerifyConfig) -> u64 {
    let c = Coster { prog, cfg };
    let total = c.block_cost(&prog.body);
    total.saturating_mul(cfg.cost_safety_factor).max(MIN_BOUND)
}

/// Worst-case shape of one aggregate view chain.
struct ViewInfo {
    /// Cap on the number of elements a scan of the view visits.
    elems: u64,
    /// Per-element cost of evaluating the accumulated filter predicates.
    pred_cost: u64,
    /// True when the chain contains at least one `FILTER`.
    filtered: bool,
}

struct Coster<'a> {
    prog: &'a HProgram,
    cfg: &'a VerifyConfig,
}

impl<'a> Coster<'a> {
    fn block_cost(&self, body: &[StmtId]) -> u64 {
        body.iter()
            .fold(0u64, |acc, &s| acc.saturating_add(self.stmt_cost(s)))
    }

    fn stmt_cost(&self, sid: StmtId) -> u64 {
        match self.prog.stmt(sid) {
            HStmt::VarDecl { init, .. } => 1u64.saturating_add(self.expr_cost(*init)),
            HStmt::If {
                cond,
                then_body,
                else_body,
            } => {
                // Never prune branches here, even ones the dataflow pass
                // proves dead: the bound must hold for the program as
                // compiled.
                1u64.saturating_add(self.expr_cost(*cond))
                    .saturating_add(self.block_cost(then_body).max(self.block_cost(else_body)))
            }
            HStmt::Foreach { list, body, .. } => {
                let view = self.view_info(*list);
                let per_elem = view
                    .pred_cost
                    .saturating_add(1)
                    .saturating_add(self.block_cost(body));
                1u64.saturating_add(self.expr_cost(*list))
                    .saturating_add(view.elems.saturating_mul(per_elem))
            }
            HStmt::SetReg { value, .. } => 1u64.saturating_add(self.expr_cost(*value)),
            HStmt::Push { target, packet } => 1u64
                .saturating_add(self.expr_cost(*target))
                .saturating_add(self.expr_cost(*packet)),
            HStmt::Drop { packet } => 1u64.saturating_add(self.expr_cost(*packet)),
            HStmt::Return => 1,
        }
    }

    /// Cost of evaluating the expression at its appearance site. Scans are
    /// charged at the consuming node.
    fn expr_cost(&self, id: ExprId) -> u64 {
        match self.prog.expr(id) {
            HExpr::Int(_)
            | HExpr::Bool(_)
            | HExpr::NullPacket
            | HExpr::NullSubflow
            | HExpr::ReadReg(_)
            | HExpr::ReadVar(_)
            | HExpr::Subflows
            | HExpr::Queue(_) => 1,
            HExpr::SubflowProp { sbf: e, .. } | HExpr::PacketProp { pkt: e, .. } => {
                1u64.saturating_add(self.expr_cost(*e))
            }
            HExpr::SentOn { pkt: a, sbf: b } | HExpr::HasWindowFor { sbf: a, pkt: b } => 1u64
                .saturating_add(self.expr_cost(*a))
                .saturating_add(self.expr_cost(*b)),
            // A FILTER node by itself builds a lazy view; the predicate is
            // charged once here (loosely) and per element at consumers.
            HExpr::ListFilter { list, pred, .. } => 1u64
                .saturating_add(self.expr_cost(*list))
                .saturating_add(self.expr_cost(*pred)),
            HExpr::QueueFilter { queue, pred, .. } => 1u64
                .saturating_add(self.expr_cost(*queue))
                .saturating_add(self.expr_cost(*pred)),
            HExpr::ListMinMax { list, key, .. } => self.scan_cost(*list, Some(*key)),
            HExpr::QueueMinMax { queue, key, .. } => self.scan_cost(*queue, Some(*key)),
            HExpr::ListSum { list, key, .. } => self.scan_cost(*list, Some(*key)),
            HExpr::QueueSum { queue, key, .. } => self.scan_cost(*queue, Some(*key)),
            // O(1) on an unfiltered view; a full scan through filters.
            HExpr::ListCount(e)
            | HExpr::QueueCount(e)
            | HExpr::ListEmpty(e)
            | HExpr::QueueEmpty(e)
            | HExpr::QueueTop(e)
            | HExpr::QueuePop(e) => {
                let view = self.view_info(*e);
                if view.filtered {
                    self.scan_cost(*e, None)
                } else {
                    1u64.saturating_add(self.expr_cost(*e))
                }
            }
            // GET is charged as a scan even unfiltered (index walk).
            HExpr::ListGet { list, index } => self
                .scan_cost(*list, None)
                .saturating_add(self.expr_cost(*index)),
            HExpr::Unary { expr, .. } => 1u64.saturating_add(self.expr_cost(*expr)),
            HExpr::Binary { lhs, rhs, .. } => 1u64
                .saturating_add(self.expr_cost(*lhs))
                .saturating_add(self.expr_cost(*rhs)),
        }
    }

    /// Cost of one full scan over the view `e`, optionally evaluating a
    /// per-element `key` expression.
    fn scan_cost(&self, e: ExprId, key: Option<ExprId>) -> u64 {
        let view = self.view_info(e);
        let key_cost = key.map_or(0, |k| self.expr_cost(k));
        let per_elem = view.pred_cost.saturating_add(key_cost).saturating_add(1);
        1u64.saturating_add(self.expr_cost(e))
            .saturating_add(view.elems.saturating_mul(per_elem))
    }

    /// Resolves the worst-case shape of a view chain, following aggregate
    /// variables to their initializers.
    fn view_info(&self, e: ExprId) -> ViewInfo {
        match self.prog.expr(e) {
            HExpr::Subflows => ViewInfo {
                elems: self.cfg.max_subflows,
                pred_cost: 0,
                filtered: false,
            },
            HExpr::Queue(_) => ViewInfo {
                elems: self.cfg.max_queue_len,
                pred_cost: 0,
                filtered: false,
            },
            HExpr::ListFilter { list, pred, .. } => {
                let mut v = self.view_info(*list);
                v.pred_cost = v.pred_cost.saturating_add(self.expr_cost(*pred));
                v.filtered = true;
                v
            }
            HExpr::QueueFilter { queue, pred, .. } => {
                let mut v = self.view_info(*queue);
                v.pred_cost = v.pred_cost.saturating_add(self.expr_cost(*pred));
                v.filtered = true;
                v
            }
            HExpr::ReadVar(slot) => match self.prog.aggregate_init[slot.0 as usize] {
                Some(init) => self.view_info(init),
                None => self.fallback_view(e),
            },
            _ => self.fallback_view(e),
        }
    }

    fn fallback_view(&self, e: ExprId) -> ViewInfo {
        let elems = match self.prog.ty(e) {
            Type::PacketQueue => self.cfg.max_queue_len,
            _ => self.cfg.max_subflows,
        };
        ViewInfo {
            elems,
            pred_cost: 0,
            filtered: false,
        }
    }
}
