//! The forward abstract interpreter over the HIR.
//!
//! One abstract state per program point tracks an interval per register
//! and integer slot, a [`Nullability`] per reference slot, an
//! [`Emptiness`] per builtin queue and per aggregate-typed slot view, and
//! an interval for the subflow count. `IF` conditions refine the
//! branch-local states (null checks, emptiness guards, integer
//! comparisons — including through `NOT`/`AND`/`OR` and across
//! variable-held queue views); `FOREACH` bodies run to a join/widen
//! fixpoint. Diagnostics are collected in a single final pass over the
//! stable states so fixpoint iteration never duplicates findings.
//!
//! Soundness conventions: any `POP`/`DROP` downgrades every `NonEmpty`
//! fact to `Unknown` and clears reference origins (a removal may empty
//! any view); `Empty` facts persist because executions never add packets
//! to views; `RETURN` makes the state unreachable so joins ignore
//! returned branches.

use crate::ast::{BinOp, UnOp};
use crate::env::{QueueKind, SubflowProp, NUM_REGISTERS};
use crate::hir::{ExprId, HExpr, HProgram, HStmt, StmtId, VarSlot};
use crate::types::Type;

use super::diag::{Diagnostic, Lint, Severity};
use super::domain::{Emptiness, Interval, Nullability, Octagon, Tri};

/// Where a reference value was drawn from, for guard back-propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) struct Origin {
    /// The aggregate expression the reference came out of.
    agg: ExprId,
    /// True when `NULL`-ness is equivalent to view emptiness
    /// (`TOP`/`MIN`/`MAX`); false when only non-`NULL` implies non-empty
    /// (`GET`, whose `NULL` can also mean out-of-range).
    iff_empty: bool,
}

/// Abstract value of one expression.
#[derive(Debug, Clone, Copy)]
pub(super) enum AbsVal {
    Int(Interval),
    Ref {
        null: Nullability,
        origin: Option<Origin>,
    },
    Agg,
}

impl AbsVal {
    pub(super) fn interval(self) -> Interval {
        match self {
            AbsVal::Int(iv) => iv,
            _ => Interval::TOP,
        }
    }

    pub(super) fn nullability(self) -> Nullability {
        match self {
            AbsVal::Ref { null, .. } => null,
            _ => Nullability::MaybeNull,
        }
    }

    fn origin(self) -> Option<Origin> {
        match self {
            AbsVal::Ref { origin, .. } => origin,
            _ => None,
        }
    }
}

/// Per-slot abstract facts; which fields are meaningful depends on the
/// slot's static type.
#[derive(Debug, Clone, PartialEq)]
pub(super) struct SlotAbs {
    /// Int/bool slots: value range (bools as `[0, 1]`).
    int: Interval,
    /// Reference slots: nullability.
    null: Nullability,
    /// Reference slots: provenance for guard back-propagation.
    origin: Option<Origin>,
    /// Aggregate slots: tracked emptiness of the view.
    empty: Emptiness,
}

impl Default for SlotAbs {
    fn default() -> Self {
        SlotAbs {
            int: Interval::TOP,
            null: Nullability::MaybeNull,
            origin: None,
            empty: Emptiness::Unknown,
        }
    }
}

impl SlotAbs {
    fn join(&self, other: &SlotAbs) -> SlotAbs {
        SlotAbs {
            int: self.int.join(other.int),
            null: self.null.join(other.null),
            origin: if self.origin == other.origin {
                self.origin
            } else {
                None
            },
            empty: self.empty.join(other.empty),
        }
    }
}

/// The relational half of the reduced product: a DBM [`Octagon`] plus
/// the slot→variable mapping. Octagon variables are registers
/// (`0..NUM_REGISTERS`), then `SUBFLOWS.COUNT` at [`OCT_SUBFLOW_VAR`],
/// then int/bool slots in declaration order.
#[derive(Debug, Clone, PartialEq)]
pub(super) struct Oct {
    dbm: Octagon,
    /// Slot index → octagon variable, `-1` for untracked (ref/agg) slots.
    slot_var: Vec<i32>,
}

/// Octagon variable holding `SUBFLOWS.COUNT`.
const OCT_SUBFLOW_VAR: usize = NUM_REGISTERS;

/// Programs tracking more variables than this run interval-only: the
/// cubic DBM closure would dominate analysis time.
const MAX_OCT_VARS: usize = 48;

impl Oct {
    fn new(prog: &HProgram) -> Option<Oct> {
        let mut slot_var = vec![-1i32; prog.n_slots];
        let mut next = NUM_REGISTERS + 1;
        for (i, ty) in prog.slot_ty.iter().enumerate() {
            if matches!(ty, Type::Int | Type::Bool) {
                slot_var[i] = next as i32;
                next += 1;
            }
        }
        if next > MAX_OCT_VARS {
            return None;
        }
        let mut dbm = Octagon::top(next);
        dbm.clamp(OCT_SUBFLOW_VAR, Interval::new(0, i64::MAX));
        dbm.close();
        Some(Oct { dbm, slot_var })
    }
}

/// The interval currently stored (outside the octagon) for octagon
/// variable `v`.
fn oct_var_interval(st: &AbsState, v: usize) -> Interval {
    if v < NUM_REGISTERS {
        return st.regs[v];
    }
    if v == OCT_SUBFLOW_VAR {
        return st.subflow_count;
    }
    match &st.oct {
        Some(oct) => oct
            .slot_var
            .iter()
            .position(|&sv| sv == v as i32)
            .map(|slot| st.slots[slot].int)
            .unwrap_or(Interval::TOP),
        None => Interval::TOP,
    }
}

fn oct_set_var_interval(st: &mut AbsState, v: usize, iv: Interval) {
    if v < NUM_REGISTERS {
        st.regs[v] = iv;
        return;
    }
    if v == OCT_SUBFLOW_VAR {
        st.subflow_count = iv;
        return;
    }
    let slot = st
        .oct
        .as_ref()
        .and_then(|o| o.slot_var.iter().position(|&sv| sv == v as i32));
    if let Some(slot) = slot {
        st.slots[slot].int = iv;
    }
}

/// The abstract machine state at one program point.
#[derive(Debug, Clone, PartialEq)]
pub(super) struct AbsState {
    /// False once every path to this point has returned.
    pub(super) reachable: bool,
    pub(super) regs: [Interval; NUM_REGISTERS],
    pub(super) slots: Vec<SlotAbs>,
    pub(super) queues: [Emptiness; 3],
    /// Range of `SUBFLOWS.COUNT` (constant during one execution).
    pub(super) subflow_count: Interval,
    /// Relational octagon over registers, the subflow count, and
    /// int/bool slots; `None` when the relational domain is disabled
    /// (or the program tracks too many variables).
    pub(super) oct: Option<Oct>,
}

impl AbsState {
    pub(super) fn initial_with(prog: &HProgram, relational: bool) -> AbsState {
        AbsState {
            reachable: true,
            regs: [Interval::TOP; NUM_REGISTERS],
            slots: vec![SlotAbs::default(); prog.n_slots],
            queues: [Emptiness::Unknown; 3],
            subflow_count: Interval::new(0, i64::MAX),
            oct: if relational { Oct::new(prog) } else { None },
        }
    }

    /// The octagon variable tracking int/bool slot `slot`, if any.
    fn oct_slot_var(&self, slot: usize) -> Option<usize> {
        let v = *self.oct.as_ref()?.slot_var.get(slot)?;
        (v >= 0).then_some(v as usize)
    }

    pub(super) fn join(&self, other: &AbsState) -> AbsState {
        if !self.reachable {
            return other.clone();
        }
        if !other.reachable {
            return self.clone();
        }
        let mut regs = [Interval::TOP; NUM_REGISTERS];
        for (i, r) in regs.iter_mut().enumerate() {
            *r = self.regs[i].join(other.regs[i]);
        }
        AbsState {
            reachable: true,
            regs,
            slots: self
                .slots
                .iter()
                .zip(&other.slots)
                .map(|(a, b)| a.join(b))
                .collect(),
            queues: [
                self.queues[0].join(other.queues[0]),
                self.queues[1].join(other.queues[1]),
                self.queues[2].join(other.queues[2]),
            ],
            subflow_count: self.subflow_count.join(other.subflow_count),
            oct: match (&self.oct, &other.oct) {
                (Some(a), Some(b)) => Some(Oct {
                    dbm: a.dbm.join(&b.dbm),
                    slot_var: a.slot_var.clone(),
                }),
                _ => None,
            },
        }
    }

    /// Widens `next` relative to `self` (applied after a few fixpoint
    /// iterations so interval growth terminates).
    fn widen(&self, next: &AbsState) -> AbsState {
        if !self.reachable || !next.reachable {
            return next.clone();
        }
        let mut out = next.clone();
        for i in 0..NUM_REGISTERS {
            out.regs[i] = self.regs[i].widen(next.regs[i]);
        }
        for (o, (a, b)) in out.slots.iter_mut().zip(self.slots.iter().zip(&next.slots)) {
            o.int = a.int.widen(b.int);
        }
        out.subflow_count = self.subflow_count.widen(next.subflow_count);
        out.oct = match (&self.oct, &next.oct) {
            (Some(a), Some(b)) => Some(Oct {
                dbm: a.dbm.widen(&b.dbm),
                slot_var: a.slot_var.clone(),
            }),
            _ => None,
        };
        out
    }

    /// A `POP` or `DROP` happened: any view may have lost its last packet.
    /// `Empty` persists (views never gain packets); `NonEmpty` facts and
    /// reference origins are no longer trustworthy. Subflow facts survive
    /// (the subflow set is constant during an execution).
    pub(super) fn invalidate_removal(&mut self, prog: &HProgram) {
        for q in &mut self.queues {
            if *q == Emptiness::NonEmpty {
                *q = Emptiness::Unknown;
            }
        }
        for (i, s) in self.slots.iter_mut().enumerate() {
            if prog.slot_ty[i] == Type::PacketQueue && s.empty == Emptiness::NonEmpty {
                s.empty = Emptiness::Unknown;
            }
            s.origin = None;
        }
    }
}

const WIDEN_AFTER: usize = 4;
const MAX_LOOP_ITERS: usize = 1000;

/// Runs the abstract interpreter and returns the collected diagnostics.
pub(super) fn run(prog: &HProgram, relational: bool) -> Vec<Diagnostic> {
    let mut a = Analyzer {
        prog,
        diags: Vec::new(),
        collect: true,
        assume_avail: false,
        avail_relational: false,
    };
    let mut st = AbsState::initial_with(prog, relational);
    a.exec_block(&mut st, &prog.body);
    a.diags
}

pub(super) struct Analyzer<'a> {
    prog: &'a HProgram,
    diags: Vec<Diagnostic>,
    collect: bool,
    /// Assume at least one *available* subflow exists (`!TSQ_THROTTLED`,
    /// `!LOSSY`, and congestion-window room): the work-conservation
    /// precondition witness, set by `super::props`.
    pub(super) assume_avail: bool,
    /// Whether the availability witness may match the relational
    /// cwnd-room conjunct (`CWND > SKBS_IN_FLIGHT + QUEUED`); tied to
    /// the octagon domain being enabled.
    pub(super) avail_relational: bool,
}

impl<'a> Analyzer<'a> {
    /// A muted analyzer for the property verifier (`super::props`): it
    /// reuses the transfer functions and guard refinement but never
    /// collects diagnostics of its own.
    pub(super) fn quiet(prog: &'a HProgram) -> Analyzer<'a> {
        Analyzer {
            prog,
            diags: Vec::new(),
            collect: false,
            assume_avail: false,
            avail_relational: false,
        }
    }

    fn emit(&mut self, lint: Lint, severity: Severity, at: ExprId, message: String) {
        if self.collect {
            self.diags.push(Diagnostic {
                lint,
                severity,
                pos: self.prog.expr_pos(at),
                message,
            });
        }
    }

    fn emit_stmt(&mut self, lint: Lint, severity: Severity, at: StmtId, message: String) {
        if self.collect {
            self.diags.push(Diagnostic {
                lint,
                severity,
                pos: self.prog.stmt_pos(at),
                message,
            });
        }
    }

    pub(super) fn exec_block(&mut self, st: &mut AbsState, body: &[StmtId]) {
        for &sid in body {
            if !st.reachable {
                return;
            }
            self.exec_stmt(st, sid);
        }
    }

    pub(super) fn exec_stmt(&mut self, st: &mut AbsState, sid: StmtId) {
        match self.prog.stmt(sid).clone() {
            HStmt::VarDecl { slot, init } => {
                let v = self.eval(st, init);
                let ty = self.prog.slot_ty[slot.0 as usize];
                match v {
                    AbsVal::Int(iv) => {
                        let iv = match st.oct_slot_var(slot.0 as usize) {
                            Some(var) => self.oct_assign(st, var, init, iv),
                            None => iv,
                        };
                        st.slots[slot.0 as usize].int = iv;
                    }
                    AbsVal::Ref { null, origin } => {
                        let s = &mut st.slots[slot.0 as usize];
                        s.null = null;
                        s.origin = origin;
                    }
                    AbsVal::Agg => {}
                }
                if ty.is_aggregate() {
                    st.slots[slot.0 as usize].empty = self.view_emptiness(st, init);
                }
            }
            HStmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let _ = self.eval(st, cond); // collect condition lints once
                let mut then_st = st.clone();
                self.refine(&mut then_st, cond, true);
                if !then_st.reachable && !then_body.is_empty() {
                    self.emit_stmt(
                        Lint::DeadBranch,
                        Severity::Warning,
                        sid,
                        "then-branch can never execute: the condition is provably false".into(),
                    );
                }
                self.exec_block(&mut then_st, &then_body);
                let mut else_st = st.clone();
                self.refine(&mut else_st, cond, false);
                if !else_st.reachable && !else_body.is_empty() {
                    self.emit_stmt(
                        Lint::DeadBranch,
                        Severity::Warning,
                        sid,
                        "else-branch can never execute: the condition is provably true".into(),
                    );
                }
                self.exec_block(&mut else_st, &else_body);
                *st = then_st.join(&else_st);
            }
            HStmt::Foreach { slot, list, body } => {
                let _ = self.eval(st, list);
                // Fixpoint over 0..n iterations, lints muted.
                let was_collecting = self.collect;
                self.collect = false;
                let mut cur = st.clone();
                for i in 0..MAX_LOOP_ITERS {
                    let mut s = cur.clone();
                    s.slots[slot.0 as usize] = SlotAbs {
                        null: Nullability::NonNull,
                        ..SlotAbs::default()
                    };
                    self.exec_block(&mut s, &body);
                    let joined = cur.join(&s);
                    let next = if i >= WIDEN_AFTER {
                        cur.widen(&joined)
                    } else {
                        joined
                    };
                    if next == cur {
                        break;
                    }
                    cur = next;
                }
                self.collect = was_collecting;
                // One collecting pass over the stable pre-state.
                let mut s = cur.clone();
                s.slots[slot.0 as usize] = SlotAbs {
                    null: Nullability::NonNull,
                    ..SlotAbs::default()
                };
                self.exec_block(&mut s, &body);
                *st = cur.join(&s);
            }
            HStmt::SetReg { reg, value } => {
                let v = self.eval(st, value).interval();
                let v = self.oct_assign(st, reg.index(), value, v);
                st.regs[reg.index()] = v;
            }
            HStmt::Push { target, packet } => {
                let t = self.eval(st, target);
                match t.nullability() {
                    Nullability::Null => self.emit(
                        Lint::PushNull,
                        Severity::Error,
                        target,
                        "PUSH target subflow is provably NULL: the statement can never \
                         schedule anything"
                            .into(),
                    ),
                    Nullability::MaybeNull => self.emit(
                        Lint::PushMaybeNull,
                        Severity::Info,
                        target,
                        "PUSH target subflow may be NULL (the push becomes a no-op)".into(),
                    ),
                    Nullability::NonNull => {}
                }
                let p = self.eval(st, packet);
                match p.nullability() {
                    Nullability::Null => self.emit(
                        Lint::PushNull,
                        Severity::Error,
                        packet,
                        "pushed packet is provably NULL: the statement can never schedule \
                         anything"
                            .into(),
                    ),
                    Nullability::MaybeNull => self.emit(
                        Lint::PushMaybeNull,
                        Severity::Info,
                        packet,
                        "pushed packet may be NULL (the push becomes a no-op)".into(),
                    ),
                    Nullability::NonNull => {}
                }
            }
            HStmt::Drop { packet } => {
                let p = self.eval(st, packet);
                if p.nullability() != Nullability::Null {
                    st.invalidate_removal(self.prog);
                }
            }
            HStmt::Return => st.reachable = false,
        }
    }

    /// Evaluates `id` abstractly, collecting lints and applying `POP`
    /// side effects to `st`.
    fn eval(&mut self, st: &mut AbsState, id: ExprId) -> AbsVal {
        match self.prog.expr(id).clone() {
            HExpr::Int(v) => AbsVal::Int(Interval::exact(v)),
            HExpr::Bool(b) => AbsVal::Int(Interval::exact(i64::from(b))),
            HExpr::NullPacket | HExpr::NullSubflow => AbsVal::Ref {
                null: Nullability::Null,
                origin: None,
            },
            HExpr::ReadReg(r) => AbsVal::Int(st.regs[r.index()]),
            HExpr::ReadVar(slot) => {
                let s = &st.slots[slot.0 as usize];
                match self.prog.slot_ty[slot.0 as usize] {
                    Type::Int | Type::Bool => AbsVal::Int(s.int),
                    Type::Packet | Type::Subflow => AbsVal::Ref {
                        null: s.null,
                        origin: s.origin,
                    },
                    Type::SubflowList | Type::PacketQueue => AbsVal::Agg,
                }
            }
            HExpr::Subflows | HExpr::Queue(_) => AbsVal::Agg,
            HExpr::SubflowProp { sbf, prop } => {
                let v = self.eval(st, sbf);
                self.lint_null_access(sbf, v.nullability(), &format!("property {}", prop.name()));
                if prop.is_bool() {
                    AbsVal::Int(Interval::BOOL)
                } else {
                    AbsVal::Int(Interval::TOP)
                }
            }
            HExpr::PacketProp { pkt, prop } => {
                let v = self.eval(st, pkt);
                self.lint_null_access(pkt, v.nullability(), &format!("property {}", prop.name()));
                AbsVal::Int(Interval::TOP)
            }
            HExpr::SentOn { pkt, sbf } => {
                let p = self.eval(st, pkt);
                self.lint_null_access(pkt, p.nullability(), "SENT_ON");
                let s = self.eval(st, sbf);
                self.lint_null_access(sbf, s.nullability(), "SENT_ON");
                AbsVal::Int(Interval::BOOL)
            }
            HExpr::HasWindowFor { sbf, pkt } => {
                let s = self.eval(st, sbf);
                self.lint_null_access(sbf, s.nullability(), "HAS_WINDOW_FOR");
                let p = self.eval(st, pkt);
                self.lint_null_access(pkt, p.nullability(), "HAS_WINDOW_FOR");
                AbsVal::Int(Interval::BOOL)
            }
            HExpr::ListFilter { list, var, pred }
            | HExpr::QueueFilter {
                queue: list,
                var,
                pred,
            } => {
                let _ = self.eval(st, list);
                self.eval_lambda(st, var, pred);
                AbsVal::Agg
            }
            HExpr::ListMinMax { list, var, key, .. } => {
                let _ = self.eval(st, list);
                self.eval_lambda(st, var, key);
                self.ref_from_view(st, id, list, true)
            }
            HExpr::QueueMinMax {
                queue, var, key, ..
            } => {
                let _ = self.eval(st, queue);
                self.eval_lambda(st, var, key);
                self.ref_from_view(st, id, queue, true)
            }
            HExpr::ListSum { list, var, key }
            | HExpr::QueueSum {
                queue: list,
                var,
                key,
            } => {
                let _ = self.eval(st, list);
                self.eval_lambda(st, var, key);
                AbsVal::Int(Interval::TOP)
            }
            HExpr::ListCount(e) | HExpr::QueueCount(e) => {
                let _ = self.eval(st, e);
                AbsVal::Int(self.count_interval(st, e))
            }
            HExpr::ListEmpty(e) | HExpr::QueueEmpty(e) => {
                let _ = self.eval(st, e);
                let tri = match self.view_emptiness(st, e) {
                    Emptiness::Empty => Tri::True,
                    Emptiness::NonEmpty => Tri::False,
                    Emptiness::Unknown => Tri::Unknown,
                };
                AbsVal::Int(tri.interval())
            }
            HExpr::ListGet { list, index } => {
                let _ = self.eval(st, list);
                let _ = self.eval(st, index);
                let null = match self.view_emptiness(st, list) {
                    Emptiness::Empty => Nullability::Null,
                    // A non-empty list still yields NULL out of range.
                    _ => Nullability::MaybeNull,
                };
                AbsVal::Ref {
                    null,
                    origin: Some(Origin {
                        agg: list,
                        iff_empty: false,
                    }),
                }
            }
            HExpr::QueueTop(e) => {
                let _ = self.eval(st, e);
                self.ref_from_view(st, id, e, true)
            }
            HExpr::QueuePop(e) => {
                let _ = self.eval(st, e);
                let emptiness = self.view_emptiness(st, e);
                match emptiness {
                    Emptiness::Empty => self.emit(
                        Lint::PopEmpty,
                        Severity::Error,
                        id,
                        "POP from a provably-empty queue view always yields NULL".into(),
                    ),
                    Emptiness::Unknown => self.emit(
                        Lint::PopMaybeEmpty,
                        Severity::Info,
                        id,
                        "POP from a possibly-empty queue view (yields NULL when empty)".into(),
                    ),
                    Emptiness::NonEmpty => {}
                }
                let null = match emptiness {
                    Emptiness::Empty => Nullability::Null,
                    Emptiness::NonEmpty => Nullability::NonNull,
                    Emptiness::Unknown => Nullability::MaybeNull,
                };
                st.invalidate_removal(self.prog);
                // No origin: after the removal the view may be empty even
                // though the popped packet was non-NULL.
                AbsVal::Ref { null, origin: None }
            }
            HExpr::Unary { op, expr } => {
                let v = self.eval(st, expr).interval();
                match op {
                    UnOp::Not => AbsVal::Int(Tri::from_interval(v).not().interval()),
                    UnOp::Neg => AbsVal::Int(v.neg()),
                }
            }
            HExpr::Binary {
                op,
                lhs,
                rhs,
                operand_ty,
            } => self.eval_binary(st, op, lhs, rhs, operand_ty),
        }
    }

    /// Binds a lambda slot to a non-`NULL` element and evaluates its body
    /// once (for lint collection inside predicates and keys).
    fn eval_lambda(&mut self, st: &mut AbsState, var: VarSlot, body: ExprId) {
        st.slots[var.0 as usize] = SlotAbs {
            null: Nullability::NonNull,
            ..SlotAbs::default()
        };
        let _ = self.eval(st, body);
    }

    /// The reference produced by drawing an element out of view `view`
    /// (`TOP`/`MIN`/`MAX`): `NULL` iff the view is empty.
    fn ref_from_view(
        &mut self,
        st: &AbsState,
        _at: ExprId,
        view: ExprId,
        iff_empty: bool,
    ) -> AbsVal {
        let null = match self.view_emptiness(st, view) {
            Emptiness::Empty => Nullability::Null,
            Emptiness::NonEmpty => Nullability::NonNull,
            Emptiness::Unknown => Nullability::MaybeNull,
        };
        AbsVal::Ref {
            null,
            origin: Some(Origin {
                agg: view,
                iff_empty,
            }),
        }
    }

    fn lint_null_access(&mut self, at: ExprId, null: Nullability, what: &str) {
        match null {
            Nullability::Null => self.emit(
                Lint::NullPropAccess,
                Severity::Warning,
                at,
                format!("{what} is read from a provably-NULL reference (always yields 0/false)"),
            ),
            Nullability::MaybeNull => self.emit(
                Lint::NullPropAccess,
                Severity::Info,
                at,
                format!("{what} is read from a possibly-NULL reference (NULL reads yield 0)"),
            ),
            Nullability::NonNull => {}
        }
    }

    fn eval_binary(
        &mut self,
        st: &mut AbsState,
        op: BinOp,
        lhs: ExprId,
        rhs: ExprId,
        operand_ty: Type,
    ) -> AbsVal {
        let l = self.eval(st, lhs);
        let r = self.eval(st, rhs);
        if op.is_arith() {
            let (a, b) = (l.interval(), r.interval());
            if matches!(op, BinOp::Div | BinOp::Rem) {
                let what = if op == BinOp::Div {
                    "division"
                } else {
                    "modulo"
                };
                if b == Interval::exact(0) {
                    self.emit(
                        Lint::DivByZero,
                        Severity::Error,
                        rhs,
                        format!("{what} by a provably-zero divisor (always yields 0)"),
                    );
                } else if b.contains(0) {
                    self.emit(
                        Lint::DivMaybeZero,
                        Severity::Info,
                        rhs,
                        format!("{what} divisor may be zero (yields 0 in that case)"),
                    );
                }
            }
            let out = match op {
                BinOp::Add => a.add(b),
                BinOp::Sub => a.sub(b),
                BinOp::Mul => a.mul(b),
                BinOp::Div => a.div(b),
                BinOp::Rem => a.rem(b),
                _ => unreachable!("arith ops covered"),
            };
            return AbsVal::Int(out);
        }
        if op.is_logic() {
            let (a, b) = (
                Tri::from_interval(l.interval()),
                Tri::from_interval(r.interval()),
            );
            let out = match (op, a, b) {
                (BinOp::And, Tri::False, _) | (BinOp::And, _, Tri::False) => Tri::False,
                (BinOp::And, Tri::True, Tri::True) => Tri::True,
                (BinOp::Or, Tri::True, _) | (BinOp::Or, _, Tri::True) => Tri::True,
                (BinOp::Or, Tri::False, Tri::False) => Tri::False,
                _ => Tri::Unknown,
            };
            return AbsVal::Int(out.interval());
        }
        // Comparison.
        if operand_ty.is_nullable() {
            let tri = match (l.nullability(), r.nullability()) {
                (Nullability::Null, Nullability::Null) => Tri::True,
                (Nullability::Null, Nullability::NonNull)
                | (Nullability::NonNull, Nullability::Null) => Tri::False,
                _ => Tri::Unknown,
            };
            let tri = if op == BinOp::Ne { tri.not() } else { tri };
            return AbsVal::Int(tri.interval());
        }
        let (a, b) = (l.interval(), r.interval());
        let tri = match op {
            BinOp::Eq => a.eq_ab(b),
            BinOp::Ne => a.eq_ab(b).not(),
            BinOp::Lt => a.lt(b),
            BinOp::Le => a.le(b),
            BinOp::Gt => b.lt(a),
            BinOp::Ge => b.le(a),
            _ => unreachable!("comparison ops covered"),
        };
        AbsVal::Int(tri.interval())
    }

    /// Evaluates without collecting lints (used inside refinements so the
    /// same source construct is not reported twice).
    pub(super) fn eval_quiet(&mut self, st: &mut AbsState, id: ExprId) -> AbsVal {
        let was = self.collect;
        self.collect = false;
        let v = self.eval(st, id);
        self.collect = was;
        v
    }

    /// Emptiness of a queue- or list-view expression, combining tracked
    /// per-queue and per-slot facts through `FILTER` chains and aggregate
    /// variable reads.
    pub(super) fn view_emptiness(&self, st: &AbsState, e: ExprId) -> Emptiness {
        if self.assume_avail && self.avail_view(e) {
            // The availability witness is a member of every view filtered
            // only by conjuncts each available subflow satisfies.
            return Emptiness::NonEmpty;
        }
        match self.prog.expr(e) {
            HExpr::Queue(k) => st.queues[queue_index(*k)],
            HExpr::Subflows => {
                if st.subflow_count.hi == 0 {
                    Emptiness::Empty
                } else if st.subflow_count.lo >= 1 {
                    Emptiness::NonEmpty
                } else {
                    Emptiness::Unknown
                }
            }
            HExpr::QueueFilter { queue, .. } => match self.view_emptiness(st, *queue) {
                Emptiness::Empty => Emptiness::Empty,
                _ => Emptiness::Unknown,
            },
            HExpr::ListFilter { list, .. } => match self.view_emptiness(st, *list) {
                Emptiness::Empty => Emptiness::Empty,
                _ => Emptiness::Unknown,
            },
            HExpr::ReadVar(slot) => {
                let tracked = st.slots[slot.0 as usize].empty;
                let from_chain = self.prog.aggregate_init[slot.0 as usize]
                    .map(|init| self.view_emptiness(st, init))
                    .unwrap_or(Emptiness::Unknown);
                match (tracked, from_chain) {
                    (Emptiness::Empty, _) | (_, Emptiness::Empty) => Emptiness::Empty,
                    (Emptiness::NonEmpty, _) | (_, Emptiness::NonEmpty) => Emptiness::NonEmpty,
                    _ => Emptiness::Unknown,
                }
            }
            _ => Emptiness::Unknown,
        }
    }

    /// Range of `COUNT` over a view expression.
    fn count_interval(&self, st: &AbsState, e: ExprId) -> Interval {
        let base = match self.prog.expr(e) {
            HExpr::Subflows => st.subflow_count,
            HExpr::Queue(_) => Interval::new(0, i64::MAX),
            HExpr::ListFilter { list, .. } => {
                let inner = self.count_interval(st, *list);
                Interval::new(0, inner.hi)
            }
            HExpr::QueueFilter { queue, .. } => {
                let inner = self.count_interval(st, *queue);
                Interval::new(0, inner.hi)
            }
            HExpr::ReadVar(slot) => self.prog.aggregate_init[slot.0 as usize]
                .map(|init| self.count_interval(st, init))
                .unwrap_or(Interval::new(0, i64::MAX)),
            _ => Interval::new(0, i64::MAX),
        };
        // Tracked emptiness sharpens the bounds.
        match self.view_emptiness(st, e) {
            Emptiness::Empty => Interval::exact(0),
            Emptiness::NonEmpty => base.meet(Interval::new(1, i64::MAX)).unwrap_or(base),
            Emptiness::Unknown => base,
        }
    }

    /// Marks the view `e` (and whatever its non-emptiness implies) as
    /// non-empty.
    fn refine_view_nonempty(&mut self, st: &mut AbsState, e: ExprId) {
        match self.prog.expr(e).clone() {
            HExpr::Queue(k) => st.queues[queue_index(k)] = Emptiness::NonEmpty,
            HExpr::Subflows => match st.subflow_count.meet(Interval::new(1, i64::MAX)) {
                Some(iv) => st.subflow_count = iv,
                None => st.reachable = false,
            },
            // A non-empty filtered view implies a non-empty base.
            HExpr::QueueFilter { queue, .. } => self.refine_view_nonempty(st, queue),
            HExpr::ListFilter { list, .. } => self.refine_view_nonempty(st, list),
            HExpr::ReadVar(slot) => {
                if st.slots[slot.0 as usize].empty == Emptiness::Empty {
                    st.reachable = false;
                    return;
                }
                st.slots[slot.0 as usize].empty = Emptiness::NonEmpty;
                if let Some(init) = self.prog.aggregate_init[slot.0 as usize] {
                    self.refine_view_nonempty(st, init);
                }
            }
            _ => {}
        }
    }

    /// Marks the view `e` as empty. Does not propagate through filters
    /// (an empty filtered view says nothing about its base).
    fn refine_view_empty(&mut self, st: &mut AbsState, e: ExprId) {
        if self.assume_avail && self.avail_view(e) {
            // Contradiction with the availability witness.
            st.reachable = false;
            return;
        }
        match self.prog.expr(e).clone() {
            HExpr::Queue(k) => {
                if st.queues[queue_index(k)] == Emptiness::NonEmpty {
                    st.reachable = false;
                    return;
                }
                st.queues[queue_index(k)] = Emptiness::Empty;
            }
            HExpr::Subflows => match st.subflow_count.meet(Interval::exact(0)) {
                Some(iv) => st.subflow_count = iv,
                None => st.reachable = false,
            },
            HExpr::ReadVar(slot) => {
                if st.slots[slot.0 as usize].empty == Emptiness::NonEmpty {
                    st.reachable = false;
                    return;
                }
                st.slots[slot.0 as usize].empty = Emptiness::Empty;
                // The init chain is only refined when it has no filter: an
                // empty filtered view says nothing about the base.
                if let Some(init) = self.prog.aggregate_init[slot.0 as usize] {
                    if matches!(
                        self.prog.expr(init),
                        HExpr::Queue(_) | HExpr::Subflows | HExpr::ReadVar(_)
                    ) {
                        self.refine_view_empty(st, init);
                    }
                }
            }
            _ => {}
        }
    }

    /// Assumes the boolean expression `id` evaluates to `truth`, tightening
    /// `st` (or marking it unreachable on contradiction).
    pub(super) fn refine(&mut self, st: &mut AbsState, id: ExprId, truth: bool) {
        if !st.reachable {
            return;
        }
        // Contradiction with the abstract evaluation?
        match Tri::from_interval(self.eval_quiet(st, id).interval()) {
            Tri::True if !truth => {
                st.reachable = false;
                return;
            }
            Tri::False if truth => {
                st.reachable = false;
                return;
            }
            _ => {}
        }
        match self.prog.expr(id).clone() {
            HExpr::Unary {
                op: UnOp::Not,
                expr,
            } => self.refine(st, expr, !truth),
            HExpr::QueueEmpty(e) | HExpr::ListEmpty(e) => {
                if truth {
                    self.refine_view_empty(st, e);
                } else {
                    self.refine_view_nonempty(st, e);
                }
            }
            HExpr::ReadVar(slot) if self.prog.slot_ty[slot.0 as usize] == Type::Bool => {
                let want = Interval::exact(i64::from(truth));
                match st.slots[slot.0 as usize].int.meet(want) {
                    Some(iv) => {
                        st.slots[slot.0 as usize].int = iv;
                        if let Some(var) = st.oct_slot_var(slot.0 as usize) {
                            if let Some(oct) = st.oct.as_mut() {
                                oct.dbm.clamp(var, iv);
                            }
                        }
                    }
                    None => st.reachable = false,
                }
            }
            HExpr::Binary {
                op,
                lhs,
                rhs,
                operand_ty,
            } => self.refine_binary(st, op, lhs, rhs, operand_ty, truth),
            _ => {}
        }
    }

    fn refine_binary(
        &mut self,
        st: &mut AbsState,
        op: BinOp,
        lhs: ExprId,
        rhs: ExprId,
        operand_ty: Type,
        truth: bool,
    ) {
        match op {
            BinOp::And => {
                if truth {
                    self.refine(st, lhs, true);
                    self.refine(st, rhs, true);
                } else {
                    // `!(a AND b)` pins a side only when the other is true.
                    if Tri::from_interval(self.eval_quiet(st, lhs).interval()) == Tri::True {
                        self.refine(st, rhs, false);
                    } else if Tri::from_interval(self.eval_quiet(st, rhs).interval()) == Tri::True {
                        self.refine(st, lhs, false);
                    }
                }
            }
            BinOp::Or => {
                if !truth {
                    self.refine(st, lhs, false);
                    self.refine(st, rhs, false);
                } else {
                    if Tri::from_interval(self.eval_quiet(st, lhs).interval()) == Tri::False {
                        self.refine(st, rhs, true);
                    } else if Tri::from_interval(self.eval_quiet(st, rhs).interval()) == Tri::False
                    {
                        self.refine(st, lhs, true);
                    }
                }
            }
            BinOp::Eq | BinOp::Ne if operand_ty.is_nullable() => {
                let lhs_is_null =
                    matches!(self.prog.expr(lhs), HExpr::NullPacket | HExpr::NullSubflow);
                let rhs_is_null =
                    matches!(self.prog.expr(rhs), HExpr::NullPacket | HExpr::NullSubflow);
                let other = match (lhs_is_null, rhs_is_null) {
                    (true, false) => rhs,
                    (false, true) => lhs,
                    _ => return,
                };
                let want_null = (op == BinOp::Eq) == truth;
                self.refine_ref_nullness(st, other, want_null);
            }
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
                if operand_ty == Type::Int =>
            {
                let a = self.eval_quiet(st, lhs).interval();
                let b = self.eval_quiet(st, rhs).interval();
                // Normalize to one of <, <=, ==, != that holds.
                let (op, flip) = match (op, truth) {
                    (BinOp::Lt, true) | (BinOp::Ge, false) => (BinOp::Lt, false),
                    (BinOp::Le, true) | (BinOp::Gt, false) => (BinOp::Le, false),
                    (BinOp::Gt, true) | (BinOp::Le, false) => (BinOp::Lt, true),
                    (BinOp::Ge, true) | (BinOp::Lt, false) => (BinOp::Le, true),
                    (BinOp::Eq, true) | (BinOp::Ne, false) => (BinOp::Eq, false),
                    (BinOp::Ne, true) | (BinOp::Eq, false) => (BinOp::Ne, false),
                    _ => return,
                };
                let (a, b) = if flip { (b, a) } else { (a, b) };
                let refined = match op {
                    BinOp::Lt => a.assume_lt(b),
                    BinOp::Le => a.assume_le(b),
                    BinOp::Eq => a.assume_eq(b),
                    BinOp::Ne => a.assume_ne(b),
                    _ => unreachable!("normalized above"),
                };
                let Some((ra, rb)) = refined else {
                    st.reachable = false;
                    return;
                };
                let (ra, rb) = if flip { (rb, ra) } else { (ra, rb) };
                self.write_back_interval(st, lhs, ra);
                self.write_back_interval(st, rhs, rb);
                let (le, re) = if flip { (rhs, lhs) } else { (lhs, rhs) };
                self.oct_assume(st, op, le, re);
            }
            _ => {}
        }
    }

    /// Stores a refined interval back into the place `e` denotes, when it
    /// denotes one (register, int slot, or a view count).
    fn write_back_interval(&mut self, st: &mut AbsState, e: ExprId, iv: Interval) {
        match self.prog.expr(e).clone() {
            HExpr::ReadReg(r) => st.regs[r.index()] = iv,
            HExpr::ReadVar(slot)
                if matches!(self.prog.slot_ty[slot.0 as usize], Type::Int | Type::Bool) =>
            {
                st.slots[slot.0 as usize].int = iv;
            }
            HExpr::ListCount(view) | HExpr::QueueCount(view) => {
                if matches!(self.prog.expr(view), HExpr::Subflows) {
                    match st.subflow_count.meet(iv) {
                        Some(m) => st.subflow_count = m,
                        None => {
                            st.reachable = false;
                            return;
                        }
                    }
                }
                if iv.lo >= 1 {
                    self.refine_view_nonempty(st, view);
                } else if iv.hi <= 0 {
                    self.refine_view_empty(st, view);
                }
            }
            _ => {}
        }
    }

    /// The octagon variable denoted by `e` when it reads a tracked place
    /// directly (register, int/bool slot, or `SUBFLOWS.COUNT`).
    fn oct_place_base(&self, st: &AbsState, e: ExprId) -> Option<usize> {
        match self.prog.expr(e) {
            HExpr::ReadReg(r) => Some(r.index()),
            HExpr::ReadVar(slot)
                if matches!(self.prog.slot_ty[slot.0 as usize], Type::Int | Type::Bool) =>
            {
                st.oct_slot_var(slot.0 as usize)
            }
            HExpr::ListCount(v) | HExpr::QueueCount(v)
                if matches!(self.prog.expr(*v), HExpr::Subflows) =>
            {
                Some(OCT_SUBFLOW_VAR)
            }
            _ => None,
        }
    }

    /// `e` as octagon variable + constant offset, when `e` is a tracked
    /// place or `place ± c`. Offset forms resolve only when the base's
    /// current interval proves the concrete (wrapping) addition cannot
    /// overflow — otherwise the syntactic `v + c` is not the
    /// mathematical sum and no relation may be recorded.
    fn oct_place(&self, st: &AbsState, e: ExprId) -> Option<(usize, i64)> {
        st.oct.as_ref()?;
        if let Some(v) = self.oct_place_base(st, e) {
            return Some((v, 0));
        }
        let HExpr::Binary {
            op,
            lhs,
            rhs,
            operand_ty: Type::Int,
        } = self.prog.expr(e)
        else {
            return None;
        };
        let (base, off) = match op {
            BinOp::Add => match (self.prog.expr(*lhs), self.prog.expr(*rhs)) {
                (_, HExpr::Int(c)) => (*lhs, *c),
                (HExpr::Int(c), _) => (*rhs, *c),
                _ => return None,
            },
            BinOp::Sub => match self.prog.expr(*rhs) {
                HExpr::Int(c) => (*lhs, c.checked_neg()?),
                _ => return None,
            },
            _ => return None,
        };
        let v = self.oct_place_base(st, base)?;
        let iv = oct_var_interval(st, v);
        iv.lo.checked_add(off)?;
        iv.hi.checked_add(off)?;
        Some((v, off))
    }

    /// Octagon transfer for `var := value` (already evaluated to `iv`):
    /// records an exact relation when `value` is a tracked place ± const
    /// (no-overflow proved), forgets `var` otherwise, and returns `iv`
    /// narrowed by the relational projection.
    fn oct_assign(
        &mut self,
        st: &mut AbsState,
        var: usize,
        value: ExprId,
        iv: Interval,
    ) -> Interval {
        if st.oct.is_none() {
            return iv;
        }
        let place = self.oct_place(st, value);
        let oct = st.oct.as_mut().unwrap();
        match place {
            Some((src, off)) => oct.dbm.assign_offset(var, src, off),
            None => oct.dbm.forget(var),
        }
        oct.dbm.clamp(var, iv);
        oct.dbm.close();
        if oct.dbm.is_bottom() {
            st.reachable = false;
            return iv;
        }
        match oct.dbm.project(var).and_then(|p| p.meet(iv)) {
            Some(m) => m,
            None => {
                st.reachable = false;
                iv
            }
        }
    }

    /// Octagon refinement for an assumed integer relation `le ⟨op⟩ re`
    /// (`op` normalized to `Lt`/`Le`/`Eq`/`Ne`): syncs the freshly
    /// refined unary intervals into the DBM, records the joint
    /// constraint when both sides are tracked places, then closes and
    /// reduces every projection back into the interval stores.
    fn oct_assume(&mut self, st: &mut AbsState, op: BinOp, le: ExprId, re: ExprId) {
        if st.oct.is_none() || !st.reachable {
            return;
        }
        let pa = self.oct_place(st, le);
        let pb = self.oct_place(st, re);
        if pa.is_none() && pb.is_none() {
            return;
        }
        for (v, off) in [pa, pb].into_iter().flatten() {
            if off == 0 {
                let iv = oct_var_interval(st, v);
                st.oct.as_mut().unwrap().dbm.clamp(v, iv);
            }
        }
        if let (Some((a, oa)), Some((b, ob))) = (pa, pb) {
            // Normalized: (v_a + oa) ⟨op⟩ (v_b + ob)  ⇒  v_a - v_b ≤ c.
            let c = match op {
                BinOp::Lt => ob.checked_sub(oa).and_then(|d| d.checked_sub(1)),
                BinOp::Le | BinOp::Eq => ob.checked_sub(oa),
                _ => None, // Ne carries no octagon constraint
            };
            if let Some(c) = c {
                let oct = st.oct.as_mut().unwrap();
                oct.dbm.add_diff_le(a, b, c);
                if op == BinOp::Eq {
                    if let Some(neg) = c.checked_neg() {
                        oct.dbm.add_diff_le(b, a, neg);
                    }
                }
            }
        }
        self.oct_close_reduce(st);
    }

    /// Closes the octagon and reduces every variable's projection back
    /// into its interval store (the reduced-product step). Marks the
    /// state unreachable when the constraint system is infeasible.
    fn oct_close_reduce(&mut self, st: &mut AbsState) {
        let dim = {
            let Some(oct) = st.oct.as_mut() else { return };
            oct.dbm.close();
            if oct.dbm.is_bottom() {
                st.reachable = false;
                return;
            }
            oct.dbm.dim()
        };
        for v in 0..dim {
            let Some(proj) = st.oct.as_ref().unwrap().dbm.project(v) else {
                st.reachable = false;
                return;
            };
            let cur = oct_var_interval(st, v);
            match cur.meet(proj) {
                Some(m) => oct_set_var_interval(st, v, m),
                None => {
                    st.reachable = false;
                    return;
                }
            }
        }
    }

    /// True when `e` denotes a view the work-conservation availability
    /// witness guarantees non-empty: `SUBFLOWS` filtered only by
    /// conjuncts every *available* subflow satisfies.
    fn avail_view(&self, e: ExprId) -> bool {
        match self.prog.expr(e) {
            HExpr::Subflows => true,
            HExpr::ListFilter { list, var, pred } => {
                self.avail_view(*list) && self.avail_conjuncts(*var, *pred)
            }
            HExpr::ReadVar(slot) => self.prog.aggregate_init[slot.0 as usize]
                .map(|init| self.avail_view(init))
                .unwrap_or(false),
            _ => false,
        }
    }

    /// True when every conjunct of the filter predicate `e` (over lambda
    /// variable `var`) is satisfied by an available subflow:
    /// `!TSQ_THROTTLED`, `!LOSSY`, and — only when the relational domain
    /// backs the claim — `CWND > SKBS_IN_FLIGHT + QUEUED`.
    fn avail_conjuncts(&self, var: VarSlot, e: ExprId) -> bool {
        match self.prog.expr(e) {
            HExpr::Binary {
                op: BinOp::And,
                lhs,
                rhs,
                ..
            } => self.avail_conjuncts(var, *lhs) && self.avail_conjuncts(var, *rhs),
            HExpr::Unary {
                op: UnOp::Not,
                expr,
            } => match self.prog.expr(*expr) {
                HExpr::SubflowProp {
                    sbf,
                    prop: SubflowProp::TsqThrottled | SubflowProp::Lossy,
                } => self.is_lambda_var(*sbf, var),
                _ => false,
            },
            HExpr::Binary {
                op: BinOp::Gt,
                lhs,
                rhs,
                ..
            } if self.avail_relational => {
                self.is_cwnd(var, *lhs) && self.is_inflight_sum(var, *rhs)
            }
            HExpr::Binary {
                op: BinOp::Lt,
                lhs,
                rhs,
                ..
            } if self.avail_relational => {
                self.is_inflight_sum(var, *lhs) && self.is_cwnd(var, *rhs)
            }
            _ => false,
        }
    }

    fn is_lambda_var(&self, e: ExprId, var: VarSlot) -> bool {
        matches!(self.prog.expr(e), HExpr::ReadVar(s) if s.0 == var.0)
    }

    fn is_cwnd(&self, var: VarSlot, e: ExprId) -> bool {
        matches!(
            self.prog.expr(e),
            HExpr::SubflowProp { sbf, prop: SubflowProp::Cwnd } if self.is_lambda_var(*sbf, var)
        )
    }

    /// `sbf.SKBS_IN_FLIGHT + sbf.QUEUED` in either operand order.
    fn is_inflight_sum(&self, var: VarSlot, e: ExprId) -> bool {
        let HExpr::Binary {
            op: BinOp::Add,
            lhs,
            rhs,
            ..
        } = self.prog.expr(e)
        else {
            return false;
        };
        let part = |e: ExprId| match self.prog.expr(e) {
            HExpr::SubflowProp { sbf, prop }
                if matches!(prop, SubflowProp::SkbsInFlight | SubflowProp::Queued)
                    && self.is_lambda_var(*sbf, var) =>
            {
                Some(*prop)
            }
            _ => None,
        };
        matches!((part(*lhs), part(*rhs)), (Some(x), Some(y)) if x != y)
    }

    /// Assumes a reference expression is (non-)`NULL`, refining the slot it
    /// reads and the view it was drawn from.
    fn refine_ref_nullness(&mut self, st: &mut AbsState, e: ExprId, want_null: bool) {
        let v = self.eval_quiet(st, e);
        match (want_null, v.nullability()) {
            (true, Nullability::NonNull) | (false, Nullability::Null) => {
                st.reachable = false;
                return;
            }
            _ => {}
        }
        if let HExpr::ReadVar(slot) = self.prog.expr(e) {
            if self.prog.slot_ty[slot.0 as usize].is_nullable() {
                st.slots[slot.0 as usize].null = if want_null {
                    Nullability::Null
                } else {
                    Nullability::NonNull
                };
            }
        }
        if let Some(origin) = v.origin() {
            if want_null {
                // TOP/MIN/MAX yield NULL iff their view is empty; views
                // never regain packets, so the fact persists.
                if origin.iff_empty {
                    self.refine_view_empty(st, origin.agg);
                }
            } else {
                self.refine_view_nonempty(st, origin.agg);
            }
        }
    }
}

/// Binds `slot` the way `FOREACH` binds its loop variable: a fresh
/// non-`NULL` element with no other facts (for `super::props`).
pub(super) fn bind_loop_slot(st: &mut AbsState, slot: VarSlot) {
    st.slots[slot.0 as usize] = SlotAbs {
        null: Nullability::NonNull,
        ..SlotAbs::default()
    };
}

pub(super) fn queue_index(k: QueueKind) -> usize {
    match k {
        QueueKind::SendQueue => 0,
        QueueKind::Unacked => 1,
        QueueKind::Reinject => 2,
    }
}

/// Precision-regression tier for the relational domain: the reduced
/// product with the octagon must never be *less* precise than the pure
/// interval analysis (randomized over straight-line register programs),
/// and on a curated corpus of `a < b`-guarded programs it must be
/// *strictly* tighter, with the improved bounds pinned so regressions
/// show up as exact-value diffs.
#[cfg(test)]
mod precision_tests {
    use super::*;
    use crate::optimizer;
    use crate::parser;
    use crate::sema;
    use proptest::prelude::*;

    /// Final abstract register file (and exit reachability) after
    /// analyzing `src` with the relational domain on or off.
    fn final_regs(src: &str, relational: bool) -> ([Interval; NUM_REGISTERS], bool) {
        let ast = parser::parse(src).expect("parse");
        let mut hir = sema::lower(&ast).expect("sema");
        optimizer::optimize(&mut hir);
        let mut az = Analyzer::quiet(&hir);
        let mut st = AbsState::initial_with(&hir, relational);
        az.exec_block(&mut st, &hir.body);
        (st.regs, st.reachable)
    }

    fn subset(inner: Interval, outer: Interval) -> bool {
        outer.lo <= inner.lo && inner.hi <= outer.hi
    }

    #[test]
    fn lt_guard_bounds_the_smaller_operand() {
        // R1 < R2 and R2 ≤ 50 pin R1 ≤ 49; intervals alone only learn
        // R1 ≤ i64::MAX - 1 from the strict comparison.
        let src = "IF (R1 >= R2) { RETURN; }
                   IF (R2 > 50) { RETURN; }
                   SET(R3, R1);";
        let (rel, _) = final_regs(src, true);
        let (off, _) = final_regs(src, false);
        assert_eq!(rel[2].hi, 49);
        assert_eq!(off[2].hi, i64::MAX - 1);
        assert!(rel[2].hi < off[2].hi, "octagon must be strictly tighter");
    }

    #[test]
    fn lt_chain_is_transitive_through_closure() {
        // R1 < R2 < R3 ≤ 10 pins R1 ≤ 8 — the canonical fact only a
        // relational domain can see.
        let src = "IF (R1 >= R2) { RETURN; }
                   IF (R2 >= R3) { RETURN; }
                   IF (R3 > 10) { RETURN; }
                   SET(R4, R1);";
        let (rel, _) = final_regs(src, true);
        let (off, _) = final_regs(src, false);
        assert_eq!(rel[3].hi, 8);
        assert_eq!(off[3].hi, i64::MAX - 1);
    }

    #[test]
    fn equality_guard_transfers_later_narrowing() {
        // R1 == R2 lets the later R2 ∈ [3, 7] narrowing flow to R1.
        let src = "IF (R1 != R2) { RETURN; }
                   IF (R2 < 3) { RETURN; }
                   IF (R2 > 7) { RETURN; }
                   SET(R5, R1);";
        let (rel, _) = final_regs(src, true);
        let (off, _) = final_regs(src, false);
        assert_eq!(rel[4], Interval::new(3, 7));
        assert_eq!(off[4], Interval::TOP);
    }

    #[test]
    fn assignment_offset_relation_survives_later_guards() {
        // R3 := R2 - 1 records an exact difference, so the later
        // R2 ≤ 20 guard retroactively bounds R3 (and thus R4) at 19.
        let src = "IF (R1 >= R2) { RETURN; }
                   SET(R3, R2 - 1);
                   IF (R2 > 20) { RETURN; }
                   SET(R4, R3);";
        let (rel, _) = final_regs(src, true);
        let (off, _) = final_regs(src, false);
        assert_eq!(rel[3].hi, 19);
        assert_eq!(off[3].hi, i64::MAX - 1);
    }

    /// One statement of a generated straight-line register program.
    #[derive(Debug, Clone)]
    enum Op {
        /// `SET(Rr, c);`
        SetConst(u8, i64),
        /// `SET(Rd, Rs + c);`
        SetOffset(u8, u8, i64),
        /// `IF (Ra >= Rb) { RETURN; }` — fallthrough knows `Ra < Rb`.
        GuardLt(u8, u8),
        /// `IF (Rr > c) { RETURN; }` — fallthrough knows `Rr ≤ c`.
        GuardLeConst(u8, i64),
    }

    fn render(ops: &[Op]) -> String {
        let mut src = String::new();
        for op in ops {
            match op {
                Op::SetConst(r, c) => src.push_str(&format!("SET(R{r}, {c});\n")),
                Op::SetOffset(d, s, c) => src.push_str(&format!("SET(R{d}, R{s} + {c});\n")),
                Op::GuardLt(a, b) => src.push_str(&format!("IF (R{a} >= R{b}) {{ RETURN; }}\n")),
                Op::GuardLeConst(r, c) => src.push_str(&format!("IF (R{r} > {c}) {{ RETURN; }}\n")),
            }
        }
        src
    }

    fn op_strategy() -> BoxedStrategy<Op> {
        let reg = 1u8..=4u8;
        let small = 0i64..=100i64;
        prop_oneof![
            (reg.clone(), small.clone()).prop_map(|(r, c)| Op::SetConst(r, c)),
            (reg.clone(), reg.clone(), small.clone()).prop_map(|(d, s, c)| Op::SetOffset(d, s, c)),
            (reg.clone(), reg.clone()).prop_map(|(a, b)| Op::GuardLt(a, b)),
            (reg, small).prop_map(|(r, c)| Op::GuardLeConst(r, c)),
        ]
        .boxed()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn octagon_projection_refines_pure_intervals(
            ops in proptest::collection::vec(op_strategy(), 1..8),
        ) {
            let src = render(&ops);
            let (rel, rel_reach) = final_regs(&src, true);
            let (off, off_reach) = final_regs(&src, false);
            // Reachability is monotone: anything the weaker analysis
            // proves dead, the stronger one must too.
            if rel_reach {
                prop_assert!(off_reach, "octagon revived a dead exit:\n{src}");
                for r in 0..NUM_REGISTERS {
                    prop_assert!(
                        subset(rel[r], off[r]),
                        "R{} widened from {:?} to {:?} with the octagon on:\n{}",
                        r + 1,
                        off[r],
                        rel[r],
                        src
                    );
                }
            }
        }
    }
}
