//! Abstract domains: integer intervals, reference nullability, and queue
//! emptiness.
//!
//! The interval transfer functions mirror the runtime's *wrapping*
//! arithmetic: when both operands are exact the abstract result is the
//! exact wrapped value, and when a range endpoint computation would
//! overflow the result widens to [`Interval::TOP`] — saturating would be
//! unsound because the concrete semantics wrap.

/// A non-empty closed integer interval `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

impl Interval {
    /// The full `i64` range (no information).
    pub const TOP: Interval = Interval {
        lo: i64::MIN,
        hi: i64::MAX,
    };

    /// The boolean range `[0, 1]`.
    pub const BOOL: Interval = Interval { lo: 0, hi: 1 };

    /// A single value.
    pub const fn exact(v: i64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// `[lo, hi]`; callers must keep `lo <= hi`.
    pub const fn new(lo: i64, hi: i64) -> Interval {
        Interval { lo, hi }
    }

    /// The single value, if the interval is a point.
    pub fn as_exact(self) -> Option<i64> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// Whether `v` is inside the interval.
    pub fn contains(self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Least upper bound.
    pub fn join(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Greatest lower bound; `None` when the intervals are disjoint
    /// (an infeasible state).
    pub fn meet(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Standard widening: bounds that moved since `self` jump to infinity.
    pub fn widen(self, next: Interval) -> Interval {
        Interval {
            lo: if next.lo < self.lo { i64::MIN } else { self.lo },
            hi: if next.hi > self.hi { i64::MAX } else { self.hi },
        }
    }

    fn lift2(self, rhs: Interval, f: impl Fn(i64, i64) -> Option<i64>) -> Interval {
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        for a in [self.lo, self.hi] {
            for b in [rhs.lo, rhs.hi] {
                match f(a, b) {
                    Some(v) => {
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                    None => return Interval::TOP,
                }
            }
        }
        Interval { lo, hi }
    }

    /// Abstract `+` under wrapping semantics.
    pub fn add(self, rhs: Interval) -> Interval {
        if let (Some(a), Some(b)) = (self.as_exact(), rhs.as_exact()) {
            return Interval::exact(a.wrapping_add(b));
        }
        self.lift2(rhs, i64::checked_add)
    }

    /// Abstract `-` under wrapping semantics.
    pub fn sub(self, rhs: Interval) -> Interval {
        if let (Some(a), Some(b)) = (self.as_exact(), rhs.as_exact()) {
            return Interval::exact(a.wrapping_sub(b));
        }
        self.lift2(rhs, i64::checked_sub)
    }

    /// Abstract `*` under wrapping semantics.
    pub fn mul(self, rhs: Interval) -> Interval {
        if let (Some(a), Some(b)) = (self.as_exact(), rhs.as_exact()) {
            return Interval::exact(a.wrapping_mul(b));
        }
        self.lift2(rhs, i64::checked_mul)
    }

    /// Abstract `/`; division by zero yields 0 (the runtime semantics).
    pub fn div(self, rhs: Interval) -> Interval {
        if rhs == Interval::exact(0) {
            return Interval::exact(0);
        }
        if let (Some(a), Some(b)) = (self.as_exact(), rhs.as_exact()) {
            return Interval::exact(a.wrapping_div(b));
        }
        if rhs.contains(0) {
            // The result mixes real quotients with the by-zero 0 case.
            return Interval::TOP;
        }
        // rhs has one sign throughout, so endpoint quotients bound the
        // result; i64::MIN / -1 overflows (wraps at runtime) -> TOP.
        self.lift2(rhs, i64::checked_div)
    }

    /// Abstract `%`; modulo by zero yields 0.
    pub fn rem(self, rhs: Interval) -> Interval {
        if rhs == Interval::exact(0) {
            return Interval::exact(0);
        }
        if let (Some(a), Some(b)) = (self.as_exact(), rhs.as_exact()) {
            return Interval::exact(a.wrapping_rem(b));
        }
        // |a % b| < max(|b.lo|, |b.hi|); 0 included for the by-zero case.
        let m = rhs.lo.unsigned_abs().max(rhs.hi.unsigned_abs());
        let m = i64::try_from(m.saturating_sub(1)).unwrap_or(i64::MAX);
        Interval::new(-m, m)
    }

    /// Abstract unary negation under wrapping semantics.
    pub fn neg(self) -> Interval {
        if let Some(v) = self.as_exact() {
            return Interval::exact(v.wrapping_neg());
        }
        match (self.hi.checked_neg(), self.lo.checked_neg()) {
            (Some(lo), Some(hi)) => Interval { lo, hi },
            _ => Interval::TOP,
        }
    }
}

/// Three-valued truth of an abstract comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tri {
    /// Holds in every concretization.
    True,
    /// Holds in no concretization.
    False,
    /// Indeterminate.
    Unknown,
}

impl Tri {
    /// As a boolean interval.
    pub fn interval(self) -> Interval {
        match self {
            Tri::True => Interval::exact(1),
            Tri::False => Interval::exact(0),
            Tri::Unknown => Interval::BOOL,
        }
    }

    /// Logical negation.
    pub fn not(self) -> Tri {
        match self {
            Tri::True => Tri::False,
            Tri::False => Tri::True,
            Tri::Unknown => Tri::Unknown,
        }
    }

    /// From an exact-bool interval.
    pub fn from_interval(iv: Interval) -> Tri {
        match iv.as_exact() {
            Some(0) => Tri::False,
            Some(_) => Tri::True,
            None => Tri::Unknown,
        }
    }
}

impl Interval {
    /// Abstract `<`.
    pub fn lt(self, rhs: Interval) -> Tri {
        if self.hi < rhs.lo {
            Tri::True
        } else if self.lo >= rhs.hi {
            Tri::False
        } else {
            Tri::Unknown
        }
    }

    /// Abstract `<=`.
    pub fn le(self, rhs: Interval) -> Tri {
        if self.hi <= rhs.lo {
            Tri::True
        } else if self.lo > rhs.hi {
            Tri::False
        } else {
            Tri::Unknown
        }
    }

    /// Abstract `==`.
    pub fn eq_ab(self, rhs: Interval) -> Tri {
        match (self.as_exact(), rhs.as_exact()) {
            (Some(a), Some(b)) if a == b => Tri::True,
            _ if self.meet(rhs).is_none() => Tri::False,
            _ => Tri::Unknown,
        }
    }

    /// Refines `(self, rhs)` under the assumption `self < rhs`; `None`
    /// when the assumption is infeasible.
    pub fn assume_lt(self, rhs: Interval) -> Option<(Interval, Interval)> {
        if rhs.hi == i64::MIN || self.lo == i64::MAX {
            return None;
        }
        let a = self.meet(Interval::new(i64::MIN, rhs.hi - 1))?;
        let b = rhs.meet(Interval::new(self.lo + 1, i64::MAX))?;
        Some((a, b))
    }

    /// Refines `(self, rhs)` under `self <= rhs`.
    pub fn assume_le(self, rhs: Interval) -> Option<(Interval, Interval)> {
        let a = self.meet(Interval::new(i64::MIN, rhs.hi))?;
        let b = rhs.meet(Interval::new(self.lo, i64::MAX))?;
        Some((a, b))
    }

    /// Refines `(self, rhs)` under `self == rhs`.
    pub fn assume_eq(self, rhs: Interval) -> Option<(Interval, Interval)> {
        let m = self.meet(rhs)?;
        Some((m, m))
    }

    /// Refines `(self, rhs)` under `self != rhs` (only exact operands can
    /// shave an endpoint).
    pub fn assume_ne(self, rhs: Interval) -> Option<(Interval, Interval)> {
        let shave = |iv: Interval, v: i64| -> Option<Interval> {
            if iv.as_exact() == Some(v) {
                None
            } else if iv.lo == v {
                Some(Interval::new(v + 1, iv.hi))
            } else if iv.hi == v {
                Some(Interval::new(iv.lo, v - 1))
            } else {
                Some(iv)
            }
        };
        let a = match rhs.as_exact() {
            Some(v) => shave(self, v)?,
            None => self,
        };
        let b = match self.as_exact() {
            Some(v) => shave(rhs, v)?,
            None => rhs,
        };
        Some((a, b))
    }
}

/// A set of `i64` values represented as normalized disjoint inclusive
/// ranges — the relational extension of the plain interval domain used by
/// the property verifier (`super::props`) to solve guard satisfiability
/// over subflow identities.
///
/// Unlike `Interval`, an `IdSet` can have *holes* (`sbf.ID != 2`
/// excludes exactly one value), can be empty (an infeasible guard), and
/// supports exact complement/union/intersection, so conjunctions and
/// disjunctions of identity predicates solve precisely instead of
/// collapsing to `TOP`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdSet {
    /// Sorted, disjoint, non-adjacent inclusive ranges.
    ranges: Vec<(i64, i64)>,
}

impl IdSet {
    /// The empty set (no identity satisfies the guard).
    pub fn none() -> IdSet {
        IdSet { ranges: Vec::new() }
    }

    /// The universal set (every identity satisfies the guard).
    pub fn any() -> IdSet {
        IdSet {
            ranges: vec![(i64::MIN, i64::MAX)],
        }
    }

    /// The single identity `v`.
    pub fn singleton(v: i64) -> IdSet {
        IdSet {
            ranges: vec![(v, v)],
        }
    }

    /// The inclusive range `[lo, hi]`; empty when `lo > hi`.
    pub fn range(lo: i64, hi: i64) -> IdSet {
        if lo > hi {
            IdSet::none()
        } else {
            IdSet {
                ranges: vec![(lo, hi)],
            }
        }
    }

    /// True when no identity is in the set.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// True when every identity is in the set.
    pub fn is_any(&self) -> bool {
        self.ranges == [(i64::MIN, i64::MAX)]
    }

    /// Membership test.
    pub fn contains(&self, v: i64) -> bool {
        self.ranges.iter().any(|&(lo, hi)| lo <= v && v <= hi)
    }

    /// Re-establishes the sorted/disjoint/non-adjacent invariant.
    fn normalize(mut ranges: Vec<(i64, i64)>) -> IdSet {
        ranges.retain(|&(lo, hi)| lo <= hi);
        ranges.sort_unstable();
        let mut out: Vec<(i64, i64)> = Vec::with_capacity(ranges.len());
        for (lo, hi) in ranges {
            match out.last_mut() {
                // Merge overlapping or adjacent ranges (hi + 1 == lo).
                Some(last) if lo <= last.1.saturating_add(1) => last.1 = last.1.max(hi),
                _ => out.push((lo, hi)),
            }
        }
        IdSet { ranges: out }
    }

    /// Set union (`OR` of identity guards).
    pub fn union(&self, other: &IdSet) -> IdSet {
        let mut ranges = self.ranges.clone();
        ranges.extend_from_slice(&other.ranges);
        IdSet::normalize(ranges)
    }

    /// Set intersection (`AND` of identity guards).
    pub fn intersect(&self, other: &IdSet) -> IdSet {
        let mut out = Vec::new();
        for &(alo, ahi) in &self.ranges {
            for &(blo, bhi) in &other.ranges {
                let lo = alo.max(blo);
                let hi = ahi.min(bhi);
                if lo <= hi {
                    out.push((lo, hi));
                }
            }
        }
        IdSet::normalize(out)
    }

    /// Set complement (`NOT` of an identity guard).
    pub fn complement(&self) -> IdSet {
        let mut out = Vec::new();
        let mut next = i64::MIN;
        let mut exhausted = false;
        for &(lo, hi) in &self.ranges {
            if lo > next {
                out.push((next, lo - 1));
            }
            if hi == i64::MAX {
                exhausted = true;
                break;
            }
            next = hi + 1;
        }
        if !exhausted {
            out.push((next, i64::MAX));
        }
        IdSet { ranges: out }
    }

    /// The smallest value in `[0, limit)` *not* in the set — a concrete
    /// starved-identity witness under the verifier's subflow cap.
    pub fn excluded_below(&self, limit: i64) -> Option<i64> {
        (0..limit).find(|&v| !self.contains(v))
    }

    /// Compact human-readable form, e.g. `{0}`, `{0-2, 5}`, `all`, `none`.
    pub fn render(&self) -> String {
        if self.is_any() {
            return "all".into();
        }
        if self.is_empty() {
            return "none".into();
        }
        let parts: Vec<String> = self
            .ranges
            .iter()
            .map(|&(lo, hi)| {
                if lo == hi {
                    format!("{lo}")
                } else if lo == i64::MIN {
                    format!("<={hi}")
                } else if hi == i64::MAX {
                    format!(">={lo}")
                } else {
                    format!("{lo}-{hi}")
                }
            })
            .collect();
        format!("{{{}}}", parts.join(", "))
    }
}

/// Whether a packet/subflow reference is `NULL`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Nullability {
    /// Provably `NULL`.
    Null,
    /// Provably not `NULL`.
    NonNull,
    /// Either.
    MaybeNull,
}

impl Nullability {
    /// Least upper bound.
    pub fn join(self, other: Nullability) -> Nullability {
        if self == other {
            self
        } else {
            Nullability::MaybeNull
        }
    }
}

/// Whether a queue view holds any packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Emptiness {
    /// Provably empty (stays empty: executions never add packets to views).
    Empty,
    /// Provably non-empty (invalidated by any `POP`/`DROP`).
    NonEmpty,
    /// Either.
    Unknown,
}

impl Emptiness {
    /// Least upper bound.
    pub fn join(self, other: Emptiness) -> Emptiness {
        if self == other {
            self
        } else {
            Emptiness::Unknown
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_arithmetic_mirrors_wrapping() {
        assert_eq!(
            Interval::exact(i64::MAX).add(Interval::exact(1)),
            Interval::exact(i64::MIN)
        );
        assert_eq!(
            Interval::exact(i64::MIN).div(Interval::exact(-1)),
            Interval::exact(i64::MIN)
        );
        assert_eq!(
            Interval::exact(7).rem(Interval::exact(0)),
            Interval::exact(0)
        );
    }

    #[test]
    fn range_overflow_goes_to_top() {
        let near_max = Interval::new(i64::MAX - 1, i64::MAX);
        assert_eq!(near_max.add(Interval::new(0, 5)), Interval::TOP);
        assert_eq!(
            Interval::new(0, 10).add(Interval::new(1, 2)),
            Interval::new(1, 12)
        );
    }

    #[test]
    fn division_semantics() {
        assert_eq!(
            Interval::new(10, 100).div(Interval::new(2, 5)),
            Interval::new(2, 50)
        );
        // Divisor range containing zero mixes quotients with the 0 case.
        assert_eq!(
            Interval::new(10, 100).div(Interval::new(-1, 1)),
            Interval::TOP
        );
        assert_eq!(
            Interval::new(1, 5).rem(Interval::new(1, 10)),
            Interval::new(-9, 9)
        );
    }

    #[test]
    fn comparisons_and_refinement() {
        assert_eq!(Interval::new(0, 3).lt(Interval::new(5, 9)), Tri::True);
        assert_eq!(Interval::new(5, 9).lt(Interval::new(0, 3)), Tri::False);
        assert_eq!(Interval::new(0, 9).lt(Interval::new(3, 5)), Tri::Unknown);
        let (a, b) = Interval::new(0, 10).assume_lt(Interval::new(0, 5)).unwrap();
        assert_eq!(a, Interval::new(0, 4));
        assert_eq!(b, Interval::new(1, 5));
        assert!(Interval::exact(9).assume_lt(Interval::exact(3)).is_none());
        let (a, _) = Interval::new(0, 10).assume_ne(Interval::exact(0)).unwrap();
        assert_eq!(a, Interval::new(1, 10));
        assert!(Interval::exact(4).assume_ne(Interval::exact(4)).is_none());
    }

    #[test]
    fn idset_algebra_is_exact() {
        let a = IdSet::range(0, 4);
        let b = IdSet::singleton(2).complement();
        let c = a.intersect(&b);
        assert!(c.contains(0) && c.contains(1) && c.contains(3) && c.contains(4));
        assert!(!c.contains(2));
        assert_eq!(c.render(), "{0-1, 3-4}");
        assert_eq!(c.excluded_below(8), Some(2));
        // Union heals the hole back to the original range.
        assert_eq!(c.union(&IdSet::singleton(2)), a);
        // Complement round-trips.
        assert_eq!(b.complement(), IdSet::singleton(2));
        assert!(IdSet::any().complement().is_empty());
        assert!(IdSet::none().complement().is_any());
        // Adjacent ranges merge under normalization.
        assert_eq!(
            IdSet::range(0, 1).union(&IdSet::range(2, 3)),
            IdSet::range(0, 3)
        );
        // Intersection with none is none; empty ranges are empty.
        assert!(a.intersect(&IdSet::none()).is_empty());
        assert!(IdSet::range(5, 3).is_empty());
        assert_eq!(IdSet::any().excluded_below(64), None);
    }

    #[test]
    fn idset_complement_at_extremes() {
        let low = IdSet::range(i64::MIN, 0);
        let c = low.complement();
        assert!(!c.contains(i64::MIN) && !c.contains(0));
        assert!(c.contains(1) && c.contains(i64::MAX));
        assert_eq!(c.complement(), low);
        let hi = IdSet::singleton(i64::MAX);
        assert!(hi.complement().contains(i64::MAX - 1));
        assert!(!hi.complement().contains(i64::MAX));
    }

    #[test]
    fn joins_meets_widen() {
        assert_eq!(
            Interval::new(0, 3).join(Interval::new(7, 9)),
            Interval::new(0, 9)
        );
        assert!(Interval::new(0, 3).meet(Interval::new(7, 9)).is_none());
        let w = Interval::new(0, 3).widen(Interval::new(0, 4));
        assert_eq!(w, Interval::new(0, i64::MAX));
        assert_eq!(
            Nullability::Null.join(Nullability::NonNull),
            Nullability::MaybeNull
        );
        assert_eq!(Emptiness::Empty.join(Emptiness::Empty), Emptiness::Empty);
    }
}

/// Randomized soundness checks for the interval transfer functions at the
/// `i64` boundary, where wrapping, saturation, and endpoint-overflow
/// widening interact: every concrete value drawn from the operand
/// intervals must land inside the abstract result, and refinement under a
/// satisfied guard must keep the satisfying pair.
#[cfg(test)]
mod boundary_props {
    use super::*;
    use proptest::prelude::*;

    /// `i64` values heavily biased toward the overflow-prone extremes.
    fn boundary_i64() -> BoxedStrategy<i64> {
        prop_oneof![
            Just(i64::MIN),
            Just(i64::MIN + 1),
            Just(i64::MIN + 2),
            Just(-2i64),
            Just(-1i64),
            Just(0i64),
            Just(1i64),
            Just(2i64),
            Just(i64::MAX - 2),
            Just(i64::MAX - 1),
            Just(i64::MAX),
            any::<i64>(),
        ]
        .boxed()
    }

    /// An interval together with one concrete member of it.
    fn interval_and_member() -> BoxedStrategy<(Interval, i64)> {
        (boundary_i64(), boundary_i64(), boundary_i64())
            .prop_map(|(a, b, m)| {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                (Interval::new(lo, hi), m.clamp(lo, hi))
            })
            .boxed()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        #[test]
        fn add_sub_mul_are_sound_at_extremes(
            (a, x) in interval_and_member(),
            (b, y) in interval_and_member(),
        ) {
            prop_assert!(a.add(b).contains(x.wrapping_add(y)), "{a:?}+{b:?} vs {x}+{y}");
            prop_assert!(a.sub(b).contains(x.wrapping_sub(y)), "{a:?}-{b:?} vs {x}-{y}");
            prop_assert!(a.mul(b).contains(x.wrapping_mul(y)), "{a:?}*{b:?} vs {x}*{y}");
            prop_assert!(a.neg().contains(x.wrapping_neg()), "-{a:?} vs -{x}");
        }

        #[test]
        fn div_rem_are_sound_at_extremes(
            (a, x) in interval_and_member(),
            (b, y) in interval_and_member(),
        ) {
            // Runtime semantics: by-zero yields 0, i64::MIN / -1 wraps.
            let q = if y == 0 { 0 } else { x.wrapping_div(y) };
            let r = if y == 0 { 0 } else { x.wrapping_rem(y) };
            prop_assert!(a.div(b).contains(q), "{a:?}/{b:?} vs {x}/{y}");
            prop_assert!(a.rem(b).contains(r), "{a:?}%{b:?} vs {x}%{y}");
        }

        #[test]
        fn widening_is_an_upper_bound_that_pins_or_escapes(
            (a, _) in interval_and_member(),
            (b, _) in interval_and_member(),
        ) {
            let w = a.widen(b);
            prop_assert!(w.lo <= a.lo && w.hi >= a.hi, "covers self");
            prop_assert!(w.lo <= b.lo && w.hi >= b.hi, "covers next");
            // Termination: each widened bound is either self's bound
            // (unchanged) or jumped straight to infinity — a bound can
            // move at most once across the whole fixpoint.
            prop_assert!(w.lo == a.lo || w.lo == i64::MIN);
            prop_assert!(w.hi == a.hi || w.hi == i64::MAX);
        }

        #[test]
        fn guard_refinement_keeps_satisfying_pairs(
            (a, x) in interval_and_member(),
            (b, y) in interval_and_member(),
        ) {
            if x < y {
                let (ra, rb) = a.assume_lt(b).expect("x < y is witnessed");
                prop_assert!(ra.contains(x) && rb.contains(y), "lt {a:?} {b:?} {x} {y}");
            }
            if x <= y {
                let (ra, rb) = a.assume_le(b).expect("x <= y is witnessed");
                prop_assert!(ra.contains(x) && rb.contains(y), "le {a:?} {b:?} {x} {y}");
            }
            if x == y {
                let (ra, rb) = a.assume_eq(b).expect("x == y is witnessed");
                prop_assert!(ra.contains(x) && rb.contains(y), "eq {a:?} {b:?} {x} {y}");
            }
            if x != y {
                let (ra, rb) = a.assume_ne(b).expect("x != y is witnessed");
                prop_assert!(ra.contains(x) && rb.contains(y), "ne {a:?} {b:?} {x} {y}");
            }
        }

        #[test]
        fn idset_operations_agree_with_membership(
            (a_lo, a_hi) in (boundary_i64(), boundary_i64()),
            v in boundary_i64(),
            probe in boundary_i64(),
        ) {
            let (lo, hi) = if a_lo <= a_hi { (a_lo, a_hi) } else { (a_hi, a_lo) };
            let a = IdSet::range(lo, hi);
            let b = IdSet::singleton(v).complement();
            for p in [probe, lo, hi, v] {
                prop_assert_eq!(
                    a.union(&b).contains(p),
                    a.contains(p) || b.contains(p)
                );
                prop_assert_eq!(
                    a.intersect(&b).contains(p),
                    a.contains(p) && b.contains(p)
                );
                prop_assert_eq!(a.complement().contains(p), !a.contains(p));
            }
        }
    }
}
