//! Abstract domains: integer intervals, reference nullability, and queue
//! emptiness.
//!
//! The interval transfer functions mirror the runtime's *wrapping*
//! arithmetic: when both operands are exact the abstract result is the
//! exact wrapped value, and when a range endpoint computation would
//! overflow the result widens to [`Interval::TOP`] — saturating would be
//! unsound because the concrete semantics wrap.

/// A non-empty closed integer interval `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

impl Interval {
    /// The full `i64` range (no information).
    pub const TOP: Interval = Interval {
        lo: i64::MIN,
        hi: i64::MAX,
    };

    /// The boolean range `[0, 1]`.
    pub const BOOL: Interval = Interval { lo: 0, hi: 1 };

    /// A single value.
    pub const fn exact(v: i64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// `[lo, hi]`; callers must keep `lo <= hi`.
    pub const fn new(lo: i64, hi: i64) -> Interval {
        Interval { lo, hi }
    }

    /// The single value, if the interval is a point.
    pub fn as_exact(self) -> Option<i64> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// Whether `v` is inside the interval.
    pub fn contains(self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Least upper bound.
    pub fn join(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Greatest lower bound; `None` when the intervals are disjoint
    /// (an infeasible state).
    pub fn meet(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Standard widening: bounds that moved since `self` jump to infinity.
    pub fn widen(self, next: Interval) -> Interval {
        Interval {
            lo: if next.lo < self.lo { i64::MIN } else { self.lo },
            hi: if next.hi > self.hi { i64::MAX } else { self.hi },
        }
    }

    fn lift2(self, rhs: Interval, f: impl Fn(i64, i64) -> Option<i64>) -> Interval {
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        for a in [self.lo, self.hi] {
            for b in [rhs.lo, rhs.hi] {
                match f(a, b) {
                    Some(v) => {
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                    None => return Interval::TOP,
                }
            }
        }
        Interval { lo, hi }
    }

    /// Abstract `+` under wrapping semantics.
    pub fn add(self, rhs: Interval) -> Interval {
        if let (Some(a), Some(b)) = (self.as_exact(), rhs.as_exact()) {
            return Interval::exact(a.wrapping_add(b));
        }
        self.lift2(rhs, i64::checked_add)
    }

    /// Abstract `-` under wrapping semantics.
    pub fn sub(self, rhs: Interval) -> Interval {
        if let (Some(a), Some(b)) = (self.as_exact(), rhs.as_exact()) {
            return Interval::exact(a.wrapping_sub(b));
        }
        self.lift2(rhs, i64::checked_sub)
    }

    /// Abstract `*` under wrapping semantics.
    pub fn mul(self, rhs: Interval) -> Interval {
        if let (Some(a), Some(b)) = (self.as_exact(), rhs.as_exact()) {
            return Interval::exact(a.wrapping_mul(b));
        }
        self.lift2(rhs, i64::checked_mul)
    }

    /// Abstract `/`; division by zero yields 0 (the runtime semantics).
    pub fn div(self, rhs: Interval) -> Interval {
        if rhs == Interval::exact(0) {
            return Interval::exact(0);
        }
        if let (Some(a), Some(b)) = (self.as_exact(), rhs.as_exact()) {
            return Interval::exact(a.wrapping_div(b));
        }
        if rhs.contains(0) {
            // The result mixes real quotients with the by-zero 0 case.
            return Interval::TOP;
        }
        // rhs has one sign throughout, so endpoint quotients bound the
        // result; i64::MIN / -1 overflows (wraps at runtime) -> TOP.
        self.lift2(rhs, i64::checked_div)
    }

    /// Abstract `%`; modulo by zero yields 0.
    pub fn rem(self, rhs: Interval) -> Interval {
        if rhs == Interval::exact(0) {
            return Interval::exact(0);
        }
        if let (Some(a), Some(b)) = (self.as_exact(), rhs.as_exact()) {
            return Interval::exact(a.wrapping_rem(b));
        }
        // |a % b| < max(|b.lo|, |b.hi|); 0 included for the by-zero case.
        let m = rhs.lo.unsigned_abs().max(rhs.hi.unsigned_abs());
        let m = i64::try_from(m.saturating_sub(1)).unwrap_or(i64::MAX);
        Interval::new(-m, m)
    }

    /// Abstract unary negation under wrapping semantics.
    pub fn neg(self) -> Interval {
        if let Some(v) = self.as_exact() {
            return Interval::exact(v.wrapping_neg());
        }
        match (self.hi.checked_neg(), self.lo.checked_neg()) {
            (Some(lo), Some(hi)) => Interval { lo, hi },
            _ => Interval::TOP,
        }
    }
}

/// Three-valued truth of an abstract comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tri {
    /// Holds in every concretization.
    True,
    /// Holds in no concretization.
    False,
    /// Indeterminate.
    Unknown,
}

impl Tri {
    /// As a boolean interval.
    pub fn interval(self) -> Interval {
        match self {
            Tri::True => Interval::exact(1),
            Tri::False => Interval::exact(0),
            Tri::Unknown => Interval::BOOL,
        }
    }

    /// Logical negation.
    pub fn not(self) -> Tri {
        match self {
            Tri::True => Tri::False,
            Tri::False => Tri::True,
            Tri::Unknown => Tri::Unknown,
        }
    }

    /// From an exact-bool interval.
    pub fn from_interval(iv: Interval) -> Tri {
        match iv.as_exact() {
            Some(0) => Tri::False,
            Some(_) => Tri::True,
            None => Tri::Unknown,
        }
    }
}

impl Interval {
    /// Abstract `<`.
    pub fn lt(self, rhs: Interval) -> Tri {
        if self.hi < rhs.lo {
            Tri::True
        } else if self.lo >= rhs.hi {
            Tri::False
        } else {
            Tri::Unknown
        }
    }

    /// Abstract `<=`.
    pub fn le(self, rhs: Interval) -> Tri {
        if self.hi <= rhs.lo {
            Tri::True
        } else if self.lo > rhs.hi {
            Tri::False
        } else {
            Tri::Unknown
        }
    }

    /// Abstract `==`.
    pub fn eq_ab(self, rhs: Interval) -> Tri {
        match (self.as_exact(), rhs.as_exact()) {
            (Some(a), Some(b)) if a == b => Tri::True,
            _ if self.meet(rhs).is_none() => Tri::False,
            _ => Tri::Unknown,
        }
    }

    /// Refines `(self, rhs)` under the assumption `self < rhs`; `None`
    /// when the assumption is infeasible.
    pub fn assume_lt(self, rhs: Interval) -> Option<(Interval, Interval)> {
        if rhs.hi == i64::MIN || self.lo == i64::MAX {
            return None;
        }
        let a = self.meet(Interval::new(i64::MIN, rhs.hi - 1))?;
        let b = rhs.meet(Interval::new(self.lo + 1, i64::MAX))?;
        Some((a, b))
    }

    /// Refines `(self, rhs)` under `self <= rhs`.
    pub fn assume_le(self, rhs: Interval) -> Option<(Interval, Interval)> {
        let a = self.meet(Interval::new(i64::MIN, rhs.hi))?;
        let b = rhs.meet(Interval::new(self.lo, i64::MAX))?;
        Some((a, b))
    }

    /// Refines `(self, rhs)` under `self == rhs`.
    pub fn assume_eq(self, rhs: Interval) -> Option<(Interval, Interval)> {
        let m = self.meet(rhs)?;
        Some((m, m))
    }

    /// Refines `(self, rhs)` under `self != rhs` (only exact operands can
    /// shave an endpoint).
    pub fn assume_ne(self, rhs: Interval) -> Option<(Interval, Interval)> {
        let shave = |iv: Interval, v: i64| -> Option<Interval> {
            if iv.as_exact() == Some(v) {
                None
            } else if iv.lo == v {
                Some(Interval::new(v + 1, iv.hi))
            } else if iv.hi == v {
                Some(Interval::new(iv.lo, v - 1))
            } else {
                Some(iv)
            }
        };
        let a = match rhs.as_exact() {
            Some(v) => shave(self, v)?,
            None => self,
        };
        let b = match self.as_exact() {
            Some(v) => shave(rhs, v)?,
            None => rhs,
        };
        Some((a, b))
    }
}

/// A set of `i64` values represented as normalized disjoint inclusive
/// ranges — the relational extension of the plain interval domain used by
/// the property verifier (`super::props`) to solve guard satisfiability
/// over subflow identities.
///
/// Unlike `Interval`, an `IdSet` can have *holes* (`sbf.ID != 2`
/// excludes exactly one value), can be empty (an infeasible guard), and
/// supports exact complement/union/intersection, so conjunctions and
/// disjunctions of identity predicates solve precisely instead of
/// collapsing to `TOP`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdSet {
    /// Sorted, disjoint, non-adjacent inclusive ranges.
    ranges: Vec<(i64, i64)>,
}

impl IdSet {
    /// The empty set (no identity satisfies the guard).
    pub fn none() -> IdSet {
        IdSet { ranges: Vec::new() }
    }

    /// The universal set (every identity satisfies the guard).
    pub fn any() -> IdSet {
        IdSet {
            ranges: vec![(i64::MIN, i64::MAX)],
        }
    }

    /// The single identity `v`.
    pub fn singleton(v: i64) -> IdSet {
        IdSet {
            ranges: vec![(v, v)],
        }
    }

    /// The inclusive range `[lo, hi]`; empty when `lo > hi`.
    pub fn range(lo: i64, hi: i64) -> IdSet {
        if lo > hi {
            IdSet::none()
        } else {
            IdSet {
                ranges: vec![(lo, hi)],
            }
        }
    }

    /// True when no identity is in the set.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// True when every identity is in the set.
    pub fn is_any(&self) -> bool {
        self.ranges == [(i64::MIN, i64::MAX)]
    }

    /// Membership test.
    pub fn contains(&self, v: i64) -> bool {
        self.ranges.iter().any(|&(lo, hi)| lo <= v && v <= hi)
    }

    /// Re-establishes the sorted/disjoint/non-adjacent invariant.
    fn normalize(mut ranges: Vec<(i64, i64)>) -> IdSet {
        ranges.retain(|&(lo, hi)| lo <= hi);
        ranges.sort_unstable();
        let mut out: Vec<(i64, i64)> = Vec::with_capacity(ranges.len());
        for (lo, hi) in ranges {
            match out.last_mut() {
                // Merge overlapping or adjacent ranges (hi + 1 == lo).
                Some(last) if lo <= last.1.saturating_add(1) => last.1 = last.1.max(hi),
                _ => out.push((lo, hi)),
            }
        }
        IdSet { ranges: out }
    }

    /// Set union (`OR` of identity guards).
    pub fn union(&self, other: &IdSet) -> IdSet {
        let mut ranges = self.ranges.clone();
        ranges.extend_from_slice(&other.ranges);
        IdSet::normalize(ranges)
    }

    /// Set intersection (`AND` of identity guards).
    pub fn intersect(&self, other: &IdSet) -> IdSet {
        let mut out = Vec::new();
        for &(alo, ahi) in &self.ranges {
            for &(blo, bhi) in &other.ranges {
                let lo = alo.max(blo);
                let hi = ahi.min(bhi);
                if lo <= hi {
                    out.push((lo, hi));
                }
            }
        }
        IdSet::normalize(out)
    }

    /// Set complement (`NOT` of an identity guard).
    pub fn complement(&self) -> IdSet {
        let mut out = Vec::new();
        let mut next = i64::MIN;
        let mut exhausted = false;
        for &(lo, hi) in &self.ranges {
            if lo > next {
                out.push((next, lo - 1));
            }
            if hi == i64::MAX {
                exhausted = true;
                break;
            }
            next = hi + 1;
        }
        if !exhausted {
            out.push((next, i64::MAX));
        }
        IdSet { ranges: out }
    }

    /// The smallest value in `[0, limit)` *not* in the set — a concrete
    /// starved-identity witness under the verifier's subflow cap.
    pub fn excluded_below(&self, limit: i64) -> Option<i64> {
        (0..limit).find(|&v| !self.contains(v))
    }

    /// Compact human-readable form, e.g. `{0}`, `{0-2, 5}`, `all`, `none`.
    pub fn render(&self) -> String {
        if self.is_any() {
            return "all".into();
        }
        if self.is_empty() {
            return "none".into();
        }
        let parts: Vec<String> = self
            .ranges
            .iter()
            .map(|&(lo, hi)| {
                if lo == hi {
                    format!("{lo}")
                } else if lo == i64::MIN {
                    format!("<={hi}")
                } else if hi == i64::MAX {
                    format!(">={lo}")
                } else {
                    format!("{lo}-{hi}")
                }
            })
            .collect();
        format!("{{{}}}", parts.join(", "))
    }
}

/// Whether a packet/subflow reference is `NULL`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Nullability {
    /// Provably `NULL`.
    Null,
    /// Provably not `NULL`.
    NonNull,
    /// Either.
    MaybeNull,
}

impl Nullability {
    /// Least upper bound.
    pub fn join(self, other: Nullability) -> Nullability {
        if self == other {
            self
        } else {
            Nullability::MaybeNull
        }
    }
}

/// Whether a queue view holds any packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Emptiness {
    /// Provably empty (stays empty: executions never add packets to views).
    Empty,
    /// Provably non-empty (invalidated by any `POP`/`DROP`).
    NonEmpty,
    /// Either.
    Unknown,
}

impl Emptiness {
    /// Least upper bound.
    pub fn join(self, other: Emptiness) -> Emptiness {
        if self == other {
            self
        } else {
            Emptiness::Unknown
        }
    }
}

/// Absent-constraint sentinel for [`Octagon`] bounds (`+∞`).
const OCT_INF: i64 = i64::MAX;

/// Adds two DBM bounds with `+∞` absorbing. Finite sums saturate, which
/// stays sound in both directions: saturating high lands on `OCT_INF`
/// (the constraint is dropped), saturating low rounds an upper bound *up*
/// toward the representable range (a weaker constraint than the real
/// path sum implies).
fn oct_add(a: i64, b: i64) -> i64 {
    if a == OCT_INF || b == OCT_INF {
        OCT_INF
    } else {
        a.saturating_add(b)
    }
}

/// An octagon abstract element: conjunctions of `±x ± y ≤ c` constraints
/// over `n` integer variables, stored as a difference-bound matrix in
/// Miné's encoding — variable `k` contributes the positive form `V_2k =
/// +v_k` and the negative form `V_2k+1 = -v_k`, and entry `m[i][j]`
/// bounds `V_j - V_i`. Unary bounds ride along as `v ≤ c ⇔ 2v ≤ 2c`.
///
/// The element is the relational half of the verifier's reduced product:
/// intervals are recovered from it by [`Octagon::project`] and every
/// non-relational consumer keeps reading plain [`Interval`]s. All
/// operations saturate at the `i64` rim (see [`oct_add`]) so constraints
/// near `Interval::TOP`'s endpoints degrade to "unconstrained" instead of
/// wrapping.
///
/// Every operation except [`Octagon::widen`] leaves the matrix strongly
/// closed; widening must not close its result or termination breaks, so
/// equality comparison re-closes clones (strong closure is a normal form
/// for non-empty octagons).
#[derive(Debug, Clone)]
pub struct Octagon {
    /// Number of program variables (the matrix is `2n × 2n`).
    n: usize,
    /// Row-major bound matrix; `m[i * 2n + j]` bounds `V_j - V_i`.
    m: Vec<i64>,
    /// True once a negative cycle proved the constraint system empty.
    bottom: bool,
    /// True while the matrix is known strongly closed (perf only).
    closed: bool,
}

impl Octagon {
    /// The unconstrained octagon over `n` variables.
    pub fn top(n: usize) -> Octagon {
        let d = 2 * n;
        let mut m = vec![OCT_INF; d * d];
        for i in 0..d {
            m[i * d + i] = 0;
        }
        Octagon {
            n,
            m,
            bottom: false,
            closed: true,
        }
    }

    /// The empty octagon over `n` variables. Analysis states reach `⊥`
    /// through [`Octagon::close`] instead, so this constructor is
    /// exercised by the lattice test suite only.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn bottom(n: usize) -> Octagon {
        let mut o = Octagon::top(n);
        o.bottom = true;
        o
    }

    /// True when no valuation satisfies the constraints.
    pub fn is_bottom(&self) -> bool {
        self.bottom
    }

    /// Number of tracked variables.
    pub fn dim(&self) -> usize {
        self.n
    }

    fn d(&self) -> usize {
        2 * self.n
    }

    fn get(&self, i: usize, j: usize) -> i64 {
        self.m[i * self.d() + j]
    }

    fn tighten(&mut self, i: usize, j: usize, c: i64) {
        let d = self.d();
        if c < self.m[i * d + j] {
            self.m[i * d + j] = c;
            self.closed = false;
        }
    }

    /// Records `v_a - v_b ≤ c` (with its coherent mirror). No closure.
    pub fn add_diff_le(&mut self, a: usize, b: usize, c: i64) {
        if a == b {
            if c < 0 {
                self.bottom = true;
            }
            return;
        }
        self.tighten(2 * b, 2 * a, c);
        self.tighten(2 * a + 1, 2 * b + 1, c);
    }

    /// Intersects variable `k` with `iv` (unary bounds; skipped at the
    /// rim where doubling would overflow). No closure.
    pub fn clamp(&mut self, k: usize, iv: Interval) {
        if let Some(two_hi) = iv.hi.checked_mul(2) {
            self.tighten(2 * k + 1, 2 * k, two_hi);
        }
        if let Some(neg_two_lo) = iv.lo.checked_mul(-2) {
            self.tighten(2 * k, 2 * k + 1, neg_two_lo);
        }
    }

    /// The interval implied for variable `k`; `None` when the bounds are
    /// contradictory (callers should treat the state as unreachable).
    /// Precise on strongly-closed matrices, sound on any matrix.
    pub fn project(&self, k: usize) -> Option<Interval> {
        if self.bottom {
            return None;
        }
        let up = self.get(2 * k + 1, 2 * k); // 2v ≤ c
        let dn = self.get(2 * k, 2 * k + 1); // -2v ≤ c
        let hi = if up == OCT_INF {
            i64::MAX
        } else {
            up.div_euclid(2)
        };
        let lo = if dn == OCT_INF {
            i64::MIN
        } else {
            dn.div_euclid(2).checked_neg()?
        };
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Drops every constraint mentioning variable `k` (closure is
    /// restored first so facts implied *through* `k` survive).
    pub fn forget(&mut self, k: usize) {
        if self.bottom {
            return;
        }
        self.close();
        let d = self.d();
        for row in [2 * k, 2 * k + 1] {
            for j in 0..d {
                self.m[row * d + j] = OCT_INF;
                self.m[j * d + row] = OCT_INF;
            }
            self.m[row * d + row] = 0;
        }
        // Removing rows/columns from a closed matrix keeps it closed.
        self.closed = true;
    }

    /// `v_k := c` (exact constant assignment). The caller closes. The
    /// analyzer's assignment transfer inlines this as forget + clamp
    /// with the evaluated interval, so this is test-suite surface.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn assign_const(&mut self, k: usize, c: i64) {
        self.forget(k);
        self.clamp(k, Interval::exact(c));
    }

    /// `v_dest := v_src + c` where the caller has proved the concrete
    /// (wrapping) addition cannot overflow. `dest == src` shifts in
    /// place; otherwise the old `dest` constraints are forgotten. The
    /// caller closes.
    pub fn assign_offset(&mut self, dest: usize, src: usize, c: i64) {
        if self.bottom {
            return;
        }
        if dest == src {
            self.shift(dest, c);
            return;
        }
        self.forget(dest);
        self.add_diff_le(dest, src, c);
        if let Some(neg) = c.checked_neg() {
            self.add_diff_le(src, dest, neg);
        }
    }

    /// `v_k := v_k + c` (no-overflow proved by the caller): bounds
    /// through `+v_k` rise by `c`, bounds through `-v_k` fall by `c`.
    /// Adjusted bounds are computed exactly in `i128`; where the result
    /// leaves the representable range it is weakened (dropped to `+∞`
    /// above, pinned to `i64::MIN` below — both are `≥` the true bound,
    /// so upper-bound semantics stay sound).
    fn shift(&mut self, k: usize, c: i64) {
        let d = self.d();
        let (pos, neg) = (2 * k, 2 * k + 1);
        let c = c as i128;
        let mut saturated = false;
        let mut adjust = |m: &mut Vec<i64>, i: usize, j: usize, delta: i128| {
            let v = m[i * d + j];
            if v == OCT_INF {
                return;
            }
            let s = v as i128 + delta;
            m[i * d + j] = if s >= OCT_INF as i128 {
                saturated = true;
                OCT_INF
            } else if s < i64::MIN as i128 {
                saturated = true;
                i64::MIN
            } else {
                s as i64
            };
        };
        for j in 0..d {
            if j == pos || j == neg {
                continue;
            }
            // m[pos][j] bounds V_j - v_k: after the shift it loosens by -c.
            adjust(&mut self.m, pos, j, -c);
            adjust(&mut self.m, j, pos, c);
            adjust(&mut self.m, neg, j, c);
            adjust(&mut self.m, j, neg, -c);
        }
        adjust(&mut self.m, neg, pos, 2 * c);
        adjust(&mut self.m, pos, neg, -2 * c);
        // An exact uniform shift of one variable preserves strong
        // closure; weakened entries may leave slack for re-closing.
        if saturated {
            self.closed = false;
        }
    }

    /// Strong closure: Floyd–Warshall shortest paths, integer tightening
    /// of unary bounds, then the octagonal strengthening step
    /// `m[i][j] ← min(m[i][j], (m[i][ī] + m[j̄][j]) / 2)`. Detects
    /// emptiness via negative diagonals (including the unary parity
    /// case).
    pub fn close(&mut self) {
        if self.bottom || self.closed {
            return;
        }
        let d = self.d();
        for k in 0..d {
            for i in 0..d {
                let ik = self.m[i * d + k];
                if ik == OCT_INF {
                    continue;
                }
                for j in 0..d {
                    let kj = self.m[k * d + j];
                    if kj == OCT_INF {
                        continue;
                    }
                    let sum = oct_add(ik, kj);
                    if sum < self.m[i * d + j] {
                        self.m[i * d + j] = sum;
                    }
                }
            }
        }
        // Integer tightening: 2v ≤ c ⇒ 2v ≤ 2⌊c/2⌋.
        for i in 0..d {
            let b = self.m[i * d + (i ^ 1)];
            if b != OCT_INF {
                self.m[i * d + (i ^ 1)] = b.div_euclid(2).saturating_mul(2);
            }
        }
        // Strengthening: combine the two unary chains through i and j.
        for i in 0..d {
            let a = self.m[i * d + (i ^ 1)];
            if a == OCT_INF {
                continue;
            }
            for j in 0..d {
                let b = self.m[(j ^ 1) * d + j];
                if b == OCT_INF {
                    continue;
                }
                let half = oct_add(a, b);
                let half = if half == OCT_INF {
                    OCT_INF
                } else {
                    half.div_euclid(2)
                };
                if half < self.m[i * d + j] {
                    self.m[i * d + j] = half;
                }
            }
        }
        for i in 0..d {
            if self.m[i * d + i] < 0
                || oct_add(self.m[i * d + (i ^ 1)], self.m[(i ^ 1) * d + i]) < 0
            {
                self.bottom = true;
                return;
            }
        }
        self.closed = true;
    }

    /// Least upper bound (pointwise max of strongly-closed matrices,
    /// which is itself strongly closed).
    pub fn join(&self, other: &Octagon) -> Octagon {
        debug_assert_eq!(self.n, other.n);
        if self.bottom {
            return other.clone();
        }
        if other.bottom {
            return self.clone();
        }
        let mut a = self.clone();
        a.close();
        let mut b = other.clone();
        b.close();
        if a.bottom {
            return b;
        }
        if b.bottom {
            return a;
        }
        for (x, y) in a.m.iter_mut().zip(&b.m) {
            *x = (*x).max(*y);
        }
        a.closed = true;
        a
    }

    /// Greatest lower bound (pointwise min, then closure). The reduced
    /// product refines through [`Octagon::clamp`] + [`Octagon::close`]
    /// instead, so this is exercised by the lattice test suite only.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn meet(&self, other: &Octagon) -> Octagon {
        debug_assert_eq!(self.n, other.n);
        if self.bottom || other.bottom {
            let mut o = self.clone();
            o.bottom = true;
            return o;
        }
        let mut out = self.clone();
        for (x, y) in out.m.iter_mut().zip(&other.m) {
            *x = (*x).min(*y);
        }
        out.closed = false;
        out.close();
        out
    }

    /// Standard octagon widening: every bound `next` fails to keep is
    /// dropped to `+∞`. The result is deliberately *not* closed —
    /// closing a widened matrix can resurrect dropped bounds and break
    /// termination. Each entry either stays or jumps to `+∞`, so a
    /// widening chain stabilizes after finitely many steps.
    pub fn widen(&self, next: &Octagon) -> Octagon {
        debug_assert_eq!(self.n, next.n);
        if self.bottom {
            return next.clone();
        }
        if next.bottom {
            return self.clone();
        }
        let mut out = self.clone();
        for (x, y) in out.m.iter_mut().zip(&next.m) {
            if *y > *x {
                *x = OCT_INF;
            }
        }
        out.closed = false;
        out
    }
}

/// Semantic equality: strong closure is a normal form for non-empty
/// octagons, so clones are closed before the matrices are compared.
impl PartialEq for Octagon {
    fn eq(&self, other: &Octagon) -> bool {
        if self.n != other.n {
            return false;
        }
        let mut a = self.clone();
        a.close();
        let mut b = other.clone();
        b.close();
        if a.bottom || b.bottom {
            return a.bottom == b.bottom;
        }
        a.m == b.m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_arithmetic_mirrors_wrapping() {
        assert_eq!(
            Interval::exact(i64::MAX).add(Interval::exact(1)),
            Interval::exact(i64::MIN)
        );
        assert_eq!(
            Interval::exact(i64::MIN).div(Interval::exact(-1)),
            Interval::exact(i64::MIN)
        );
        assert_eq!(
            Interval::exact(7).rem(Interval::exact(0)),
            Interval::exact(0)
        );
    }

    #[test]
    fn range_overflow_goes_to_top() {
        let near_max = Interval::new(i64::MAX - 1, i64::MAX);
        assert_eq!(near_max.add(Interval::new(0, 5)), Interval::TOP);
        assert_eq!(
            Interval::new(0, 10).add(Interval::new(1, 2)),
            Interval::new(1, 12)
        );
    }

    #[test]
    fn division_semantics() {
        assert_eq!(
            Interval::new(10, 100).div(Interval::new(2, 5)),
            Interval::new(2, 50)
        );
        // Divisor range containing zero mixes quotients with the 0 case.
        assert_eq!(
            Interval::new(10, 100).div(Interval::new(-1, 1)),
            Interval::TOP
        );
        assert_eq!(
            Interval::new(1, 5).rem(Interval::new(1, 10)),
            Interval::new(-9, 9)
        );
    }

    #[test]
    fn comparisons_and_refinement() {
        assert_eq!(Interval::new(0, 3).lt(Interval::new(5, 9)), Tri::True);
        assert_eq!(Interval::new(5, 9).lt(Interval::new(0, 3)), Tri::False);
        assert_eq!(Interval::new(0, 9).lt(Interval::new(3, 5)), Tri::Unknown);
        let (a, b) = Interval::new(0, 10).assume_lt(Interval::new(0, 5)).unwrap();
        assert_eq!(a, Interval::new(0, 4));
        assert_eq!(b, Interval::new(1, 5));
        assert!(Interval::exact(9).assume_lt(Interval::exact(3)).is_none());
        let (a, _) = Interval::new(0, 10).assume_ne(Interval::exact(0)).unwrap();
        assert_eq!(a, Interval::new(1, 10));
        assert!(Interval::exact(4).assume_ne(Interval::exact(4)).is_none());
    }

    #[test]
    fn idset_algebra_is_exact() {
        let a = IdSet::range(0, 4);
        let b = IdSet::singleton(2).complement();
        let c = a.intersect(&b);
        assert!(c.contains(0) && c.contains(1) && c.contains(3) && c.contains(4));
        assert!(!c.contains(2));
        assert_eq!(c.render(), "{0-1, 3-4}");
        assert_eq!(c.excluded_below(8), Some(2));
        // Union heals the hole back to the original range.
        assert_eq!(c.union(&IdSet::singleton(2)), a);
        // Complement round-trips.
        assert_eq!(b.complement(), IdSet::singleton(2));
        assert!(IdSet::any().complement().is_empty());
        assert!(IdSet::none().complement().is_any());
        // Adjacent ranges merge under normalization.
        assert_eq!(
            IdSet::range(0, 1).union(&IdSet::range(2, 3)),
            IdSet::range(0, 3)
        );
        // Intersection with none is none; empty ranges are empty.
        assert!(a.intersect(&IdSet::none()).is_empty());
        assert!(IdSet::range(5, 3).is_empty());
        assert_eq!(IdSet::any().excluded_below(64), None);
    }

    #[test]
    fn idset_complement_at_extremes() {
        let low = IdSet::range(i64::MIN, 0);
        let c = low.complement();
        assert!(!c.contains(i64::MIN) && !c.contains(0));
        assert!(c.contains(1) && c.contains(i64::MAX));
        assert_eq!(c.complement(), low);
        let hi = IdSet::singleton(i64::MAX);
        assert!(hi.complement().contains(i64::MAX - 1));
        assert!(!hi.complement().contains(i64::MAX));
    }

    #[test]
    fn joins_meets_widen() {
        assert_eq!(
            Interval::new(0, 3).join(Interval::new(7, 9)),
            Interval::new(0, 9)
        );
        assert!(Interval::new(0, 3).meet(Interval::new(7, 9)).is_none());
        let w = Interval::new(0, 3).widen(Interval::new(0, 4));
        assert_eq!(w, Interval::new(0, i64::MAX));
        assert_eq!(
            Nullability::Null.join(Nullability::NonNull),
            Nullability::MaybeNull
        );
        assert_eq!(Emptiness::Empty.join(Emptiness::Empty), Emptiness::Empty);
    }
}

/// Randomized soundness checks for the interval transfer functions at the
/// `i64` boundary, where wrapping, saturation, and endpoint-overflow
/// widening interact: every concrete value drawn from the operand
/// intervals must land inside the abstract result, and refinement under a
/// satisfied guard must keep the satisfying pair.
#[cfg(test)]
mod boundary_props {
    use super::*;
    use proptest::prelude::*;

    /// `i64` values heavily biased toward the overflow-prone extremes.
    pub(super) fn boundary_i64() -> BoxedStrategy<i64> {
        prop_oneof![
            Just(i64::MIN),
            Just(i64::MIN + 1),
            Just(i64::MIN + 2),
            Just(-2i64),
            Just(-1i64),
            Just(0i64),
            Just(1i64),
            Just(2i64),
            Just(i64::MAX - 2),
            Just(i64::MAX - 1),
            Just(i64::MAX),
            any::<i64>(),
        ]
        .boxed()
    }

    /// An interval together with one concrete member of it.
    pub(super) fn interval_and_member() -> BoxedStrategy<(Interval, i64)> {
        (boundary_i64(), boundary_i64(), boundary_i64())
            .prop_map(|(a, b, m)| {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                (Interval::new(lo, hi), m.clamp(lo, hi))
            })
            .boxed()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        #[test]
        fn add_sub_mul_are_sound_at_extremes(
            (a, x) in interval_and_member(),
            (b, y) in interval_and_member(),
        ) {
            prop_assert!(a.add(b).contains(x.wrapping_add(y)), "{a:?}+{b:?} vs {x}+{y}");
            prop_assert!(a.sub(b).contains(x.wrapping_sub(y)), "{a:?}-{b:?} vs {x}-{y}");
            prop_assert!(a.mul(b).contains(x.wrapping_mul(y)), "{a:?}*{b:?} vs {x}*{y}");
            prop_assert!(a.neg().contains(x.wrapping_neg()), "-{a:?} vs -{x}");
        }

        #[test]
        fn div_rem_are_sound_at_extremes(
            (a, x) in interval_and_member(),
            (b, y) in interval_and_member(),
        ) {
            // Runtime semantics: by-zero yields 0, i64::MIN / -1 wraps.
            let q = if y == 0 { 0 } else { x.wrapping_div(y) };
            let r = if y == 0 { 0 } else { x.wrapping_rem(y) };
            prop_assert!(a.div(b).contains(q), "{a:?}/{b:?} vs {x}/{y}");
            prop_assert!(a.rem(b).contains(r), "{a:?}%{b:?} vs {x}%{y}");
        }

        #[test]
        fn widening_is_an_upper_bound_that_pins_or_escapes(
            (a, _) in interval_and_member(),
            (b, _) in interval_and_member(),
        ) {
            let w = a.widen(b);
            prop_assert!(w.lo <= a.lo && w.hi >= a.hi, "covers self");
            prop_assert!(w.lo <= b.lo && w.hi >= b.hi, "covers next");
            // Termination: each widened bound is either self's bound
            // (unchanged) or jumped straight to infinity — a bound can
            // move at most once across the whole fixpoint.
            prop_assert!(w.lo == a.lo || w.lo == i64::MIN);
            prop_assert!(w.hi == a.hi || w.hi == i64::MAX);
        }

        #[test]
        fn guard_refinement_keeps_satisfying_pairs(
            (a, x) in interval_and_member(),
            (b, y) in interval_and_member(),
        ) {
            if x < y {
                let (ra, rb) = a.assume_lt(b).expect("x < y is witnessed");
                prop_assert!(ra.contains(x) && rb.contains(y), "lt {a:?} {b:?} {x} {y}");
            }
            if x <= y {
                let (ra, rb) = a.assume_le(b).expect("x <= y is witnessed");
                prop_assert!(ra.contains(x) && rb.contains(y), "le {a:?} {b:?} {x} {y}");
            }
            if x == y {
                let (ra, rb) = a.assume_eq(b).expect("x == y is witnessed");
                prop_assert!(ra.contains(x) && rb.contains(y), "eq {a:?} {b:?} {x} {y}");
            }
            if x != y {
                let (ra, rb) = a.assume_ne(b).expect("x != y is witnessed");
                prop_assert!(ra.contains(x) && rb.contains(y), "ne {a:?} {b:?} {x} {y}");
            }
        }

        #[test]
        fn idset_operations_agree_with_membership(
            (a_lo, a_hi) in (boundary_i64(), boundary_i64()),
            v in boundary_i64(),
            probe in boundary_i64(),
        ) {
            let (lo, hi) = if a_lo <= a_hi { (a_lo, a_hi) } else { (a_hi, a_lo) };
            let a = IdSet::range(lo, hi);
            let b = IdSet::singleton(v).complement();
            for p in [probe, lo, hi, v] {
                prop_assert_eq!(
                    a.union(&b).contains(p),
                    a.contains(p) || b.contains(p)
                );
                prop_assert_eq!(
                    a.intersect(&b).contains(p),
                    a.contains(p) && b.contains(p)
                );
                prop_assert_eq!(a.complement().contains(p), !a.contains(p));
            }
        }
    }
}

/// Unit tests for the octagon element, mirroring the interval-domain
/// boundary tests: saturation at `Interval`'s endpoints, `⊥` propagation
/// through the lattice operations, and widening termination on a loop
/// that diverges concretely.
#[cfg(test)]
mod octagon_tests {
    use super::*;

    #[test]
    fn oct_add_saturates_and_absorbs_infinity() {
        assert_eq!(oct_add(OCT_INF, -5), OCT_INF);
        assert_eq!(oct_add(-5, OCT_INF), OCT_INF);
        assert_eq!(oct_add(OCT_INF, OCT_INF), OCT_INF);
        // A finite sum that saturates upward collides with the marker:
        // the constraint is simply dropped, which is the sound direction.
        assert_eq!(oct_add(i64::MAX - 1, i64::MAX - 1), OCT_INF);
        // Downward saturation rounds an upper bound *up*, also sound.
        assert_eq!(oct_add(i64::MIN + 1, -2), i64::MIN);
    }

    #[test]
    fn clamp_skips_doubling_overflow_at_interval_bounds() {
        // Unary bounds are stored doubled; at the rim the doubling would
        // overflow, so the constraint is dropped (sound: weaker) rather
        // than wrapped (unsound).
        let mut o = Octagon::top(2);
        o.clamp(0, Interval::new(i64::MIN, i64::MAX - 1));
        o.close();
        assert_eq!(o.project(0), Some(Interval::TOP));
        // Away from the rim the round trip is exact.
        let mut p = Octagon::top(2);
        p.clamp(1, Interval::new(-3, 7));
        p.close();
        assert_eq!(p.project(1), Some(Interval::new(-3, 7)));
    }

    #[test]
    fn shift_saturates_instead_of_wrapping() {
        // v0 = 1, then v0 := v0 + (i64::MAX - 1): the doubled unary bound
        // saturates below OCT_INF and the projection stays an
        // overapproximation instead of wrapping negative.
        let mut o = Octagon::top(1);
        o.assign_const(0, 1);
        o.close();
        o.assign_offset(0, 0, i64::MAX - 1);
        o.close();
        assert!(!o.is_bottom());
        let iv = o.project(0).expect("still satisfiable");
        assert!(iv.contains(i64::MAX), "{iv:?} must cover the true value");
    }

    #[test]
    fn contradictory_constraints_collapse_to_bottom() {
        // a < b and b < a cannot both hold.
        let mut o = Octagon::top(2);
        o.add_diff_le(0, 1, -1);
        o.add_diff_le(1, 0, -1);
        o.close();
        assert!(o.is_bottom());
        assert_eq!(o.project(0), None);
        // Unary parity emptiness: 2v ≤ 1 tightens to v ≤ 0 while
        // -2v ≤ -1 demands v ≥ 1 — no integer satisfies both.
        let mut p = Octagon::top(1);
        p.tighten(1, 0, 1);
        p.tighten(0, 1, -1);
        p.close();
        assert!(p.is_bottom(), "no integer lies in [0.5, 0.5]");
        // Self-difference with a negative bound is immediately empty.
        let mut s = Octagon::top(1);
        s.add_diff_le(0, 0, -1);
        assert!(s.is_bottom());
    }

    #[test]
    fn bottom_propagates_through_lattice_operations() {
        let bot = Octagon::bottom(2);
        assert!(bot.is_bottom());
        let mut top = Octagon::top(2);
        top.clamp(0, Interval::new(0, 9));
        top.close();
        // ⊥ is the identity of join and absorbing for meet.
        assert_eq!(top.join(&bot), top);
        assert_eq!(bot.join(&top), top);
        assert!(top.meet(&bot).is_bottom());
        assert!(bot.meet(&top).is_bottom());
        // Widening from ⊥ jumps to the next state; into ⊥ keeps self.
        assert_eq!(bot.widen(&top), top);
        assert_eq!(top.widen(&bot), top);
        // forget and assign_const keep ⊥ empty.
        let mut b = Octagon::bottom(2);
        b.forget(0);
        assert!(b.is_bottom());
        let mut c = Octagon::bottom(2);
        c.assign_const(0, 3);
        assert!(c.is_bottom());
    }

    #[test]
    fn meet_recovers_relations_join_loses_them_soundly() {
        // x ∈ [0, 10] meets x ∈ [5, 20] at [5, 10].
        let mut a = Octagon::top(2);
        a.clamp(0, Interval::new(0, 10));
        a.close();
        let mut b = Octagon::top(2);
        b.clamp(0, Interval::new(5, 20));
        b.close();
        assert_eq!(a.meet(&b).project(0), Some(Interval::new(5, 10)));
        // Disjoint boxes meet at ⊥.
        let mut c = Octagon::top(2);
        c.clamp(0, Interval::new(50, 60));
        c.close();
        assert!(a.meet(&c).is_bottom());
        // Join covers both operands.
        let j = a.join(&c);
        assert_eq!(j.project(0), Some(Interval::new(0, 60)));
    }

    #[test]
    fn relational_assume_refines_both_operands() {
        // a ∈ [0, 10], b ∈ [0, 5], a < b: closure narrows both sides
        // exactly as the interval guard refinement does.
        let mut o = Octagon::top(2);
        o.clamp(0, Interval::new(0, 10));
        o.clamp(1, Interval::new(0, 5));
        o.add_diff_le(0, 1, -1);
        o.close();
        assert_eq!(o.project(0), Some(Interval::new(0, 4)));
        assert_eq!(o.project(1), Some(Interval::new(1, 5)));
    }

    #[test]
    fn closure_is_transitive_across_variables() {
        // a < b, b < c, c ≤ 10 ⇒ a ≤ 8 — the fact the pure interval
        // domain cannot see and the reason the octagon exists.
        let mut o = Octagon::top(3);
        o.clamp(2, Interval::new(i64::MIN, 10));
        o.add_diff_le(0, 1, -1);
        o.add_diff_le(1, 2, -1);
        o.close();
        assert_eq!(o.project(0).expect("satisfiable").hi, 8);
        assert_eq!(o.project(1).expect("satisfiable").hi, 9);
    }

    #[test]
    fn assign_const_and_offset_track_exact_values() {
        let mut o = Octagon::top(2);
        o.assign_const(0, 7);
        o.close();
        o.assign_offset(1, 0, 3);
        o.close();
        assert_eq!(o.project(0), Some(Interval::exact(7)));
        assert_eq!(o.project(1), Some(Interval::exact(10)));
        // The difference constraint v1 - v0 = 3 survives forgetting
        // nothing and feeds back through closure after re-clamping v0.
        o.clamp(0, Interval::new(0, 5));
        o.close();
        assert!(o.is_bottom(), "v0 = 7 contradicts v0 ≤ 5");
    }

    #[test]
    fn widening_terminates_on_a_diverging_loop() {
        // Crafted diverging loop: every variable starts at 0 and is
        // incremented each iteration, so the concrete chain never
        // stabilizes. The widening chain must.
        let n = 3;
        let mut state = Octagon::top(n);
        for k in 0..n {
            state.clamp(k, Interval::exact(0));
        }
        state.close();
        let entries = (2 * n * 2 * n) as u32;
        let mut steps = 0u32;
        loop {
            let mut body = state.clone();
            for k in 0..n {
                body.assign_offset(k, k, 1);
            }
            body.close();
            let widened = state.widen(&body);
            if widened == state {
                break;
            }
            state = widened;
            steps += 1;
            // Each matrix entry either keeps its value or jumps to +∞
            // exactly once, so the chain length is bounded by the entry
            // count; anything longer means widening resurrected a bound.
            assert!(steps <= entries, "widening chain failed to stabilize");
        }
        // The fixpoint keeps the stable facts (v ≥ 0 and the pairwise
        // equalities, since all variables move in lockstep) and drops
        // only the diverging upper bounds.
        let iv = state.project(0).expect("satisfiable");
        assert_eq!(iv.lo, 0);
        assert_eq!(iv.hi, i64::MAX);
        let mut probe = state.clone();
        probe.add_diff_le(0, 1, -1); // v0 < v1 contradicts v0 = v1
        probe.close();
        assert!(probe.is_bottom(), "lockstep equality must survive widening");
    }
}

/// Randomized soundness and precision checks for the octagon, sharing
/// the extreme-biased generators with the interval boundary tests: a
/// concrete valuation that satisfies every recorded constraint must stay
/// inside every projection, and away from the saturation rim the
/// relational guard must be at least as tight as the interval one.
#[cfg(test)]
mod octagon_props {
    use super::boundary_props::interval_and_member;
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        #[test]
        fn octagon_projection_is_sound_at_extremes(
            (a, x) in interval_and_member(),
            (b, y) in interval_and_member(),
        ) {
            let mut o = Octagon::top(2);
            o.clamp(0, a);
            o.clamp(1, b);
            if x < y {
                o.add_diff_le(0, 1, -1);
            }
            o.close();
            // (x, y) satisfies every constraint fed in, so the octagon
            // must stay non-empty and each projection must contain its
            // coordinate even where clamping saturated.
            prop_assert!(!o.is_bottom(), "{a:?} {b:?} {x} {y}");
            prop_assert!(o.project(0).expect("non-empty").contains(x));
            prop_assert!(o.project(1).expect("non-empty").contains(y));
        }

        #[test]
        fn octagon_guard_is_at_least_as_tight_as_intervals(
            (al, ah) in (-10_000i64..10_000, -10_000i64..10_000),
            (bl, bh) in (-10_000i64..10_000, -10_000i64..10_000),
        ) {
            // Away from the rim nothing saturates, so the projected
            // octagon after `a < b` must refute at least everything the
            // interval refinement refutes (this is the domain-level core
            // of the precision-regression tier).
            let a = Interval::new(al.min(ah), al.max(ah));
            let b = Interval::new(bl.min(bh), bl.max(bh));
            if let Some((ra, rb)) = a.assume_lt(b) {
                let mut o = Octagon::top(2);
                o.clamp(0, a);
                o.clamp(1, b);
                o.add_diff_le(0, 1, -1);
                o.close();
                prop_assert!(!o.is_bottom(), "{a:?} < {b:?} is satisfiable");
                let pa = o.project(0).expect("non-empty");
                let pb = o.project(1).expect("non-empty");
                prop_assert!(
                    ra.lo <= pa.lo && pa.hi <= ra.hi,
                    "lhs {pa:?} wider than interval {ra:?}"
                );
                prop_assert!(
                    rb.lo <= pb.lo && pb.hi <= rb.hi,
                    "rhs {pb:?} wider than interval {rb:?}"
                );
            }
        }

        #[test]
        fn octagon_join_and_widen_cover_both_arguments(
            (a, x) in interval_and_member(),
            (b, y) in interval_and_member(),
        ) {
            let mut oa = Octagon::top(1);
            oa.clamp(0, a);
            oa.close();
            let mut ob = Octagon::top(1);
            ob.clamp(0, b);
            ob.close();
            let j = oa.join(&ob);
            let w = oa.widen(&ob);
            for v in [x, y] {
                prop_assert!(j.project(0).expect("non-empty").contains(v));
                prop_assert!(w.project(0).expect("non-empty").contains(v));
            }
            // Meet keeps every shared member (it may keep more where
            // clamping saturated at the rim, which is the sound side).
            let m = oa.meet(&ob);
            if a.contains(x) && b.contains(x) {
                prop_assert!(!m.is_bottom());
                prop_assert!(m.project(0).expect("non-empty").contains(x));
            }
        }
    }
}
