//! Abstract domains: integer intervals, reference nullability, and queue
//! emptiness.
//!
//! The interval transfer functions mirror the runtime's *wrapping*
//! arithmetic: when both operands are exact the abstract result is the
//! exact wrapped value, and when a range endpoint computation would
//! overflow the result widens to [`Interval::TOP`] — saturating would be
//! unsound because the concrete semantics wrap.

/// A non-empty closed integer interval `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

impl Interval {
    /// The full `i64` range (no information).
    pub const TOP: Interval = Interval {
        lo: i64::MIN,
        hi: i64::MAX,
    };

    /// The boolean range `[0, 1]`.
    pub const BOOL: Interval = Interval { lo: 0, hi: 1 };

    /// A single value.
    pub const fn exact(v: i64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// `[lo, hi]`; callers must keep `lo <= hi`.
    pub const fn new(lo: i64, hi: i64) -> Interval {
        Interval { lo, hi }
    }

    /// The single value, if the interval is a point.
    pub fn as_exact(self) -> Option<i64> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// Whether `v` is inside the interval.
    pub fn contains(self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Least upper bound.
    pub fn join(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Greatest lower bound; `None` when the intervals are disjoint
    /// (an infeasible state).
    pub fn meet(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Standard widening: bounds that moved since `self` jump to infinity.
    pub fn widen(self, next: Interval) -> Interval {
        Interval {
            lo: if next.lo < self.lo { i64::MIN } else { self.lo },
            hi: if next.hi > self.hi { i64::MAX } else { self.hi },
        }
    }

    fn lift2(self, rhs: Interval, f: impl Fn(i64, i64) -> Option<i64>) -> Interval {
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        for a in [self.lo, self.hi] {
            for b in [rhs.lo, rhs.hi] {
                match f(a, b) {
                    Some(v) => {
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                    None => return Interval::TOP,
                }
            }
        }
        Interval { lo, hi }
    }

    /// Abstract `+` under wrapping semantics.
    pub fn add(self, rhs: Interval) -> Interval {
        if let (Some(a), Some(b)) = (self.as_exact(), rhs.as_exact()) {
            return Interval::exact(a.wrapping_add(b));
        }
        self.lift2(rhs, i64::checked_add)
    }

    /// Abstract `-` under wrapping semantics.
    pub fn sub(self, rhs: Interval) -> Interval {
        if let (Some(a), Some(b)) = (self.as_exact(), rhs.as_exact()) {
            return Interval::exact(a.wrapping_sub(b));
        }
        self.lift2(rhs, i64::checked_sub)
    }

    /// Abstract `*` under wrapping semantics.
    pub fn mul(self, rhs: Interval) -> Interval {
        if let (Some(a), Some(b)) = (self.as_exact(), rhs.as_exact()) {
            return Interval::exact(a.wrapping_mul(b));
        }
        self.lift2(rhs, i64::checked_mul)
    }

    /// Abstract `/`; division by zero yields 0 (the runtime semantics).
    pub fn div(self, rhs: Interval) -> Interval {
        if rhs == Interval::exact(0) {
            return Interval::exact(0);
        }
        if let (Some(a), Some(b)) = (self.as_exact(), rhs.as_exact()) {
            return Interval::exact(a.wrapping_div(b));
        }
        if rhs.contains(0) {
            // The result mixes real quotients with the by-zero 0 case.
            return Interval::TOP;
        }
        // rhs has one sign throughout, so endpoint quotients bound the
        // result; i64::MIN / -1 overflows (wraps at runtime) -> TOP.
        self.lift2(rhs, i64::checked_div)
    }

    /// Abstract `%`; modulo by zero yields 0.
    pub fn rem(self, rhs: Interval) -> Interval {
        if rhs == Interval::exact(0) {
            return Interval::exact(0);
        }
        if let (Some(a), Some(b)) = (self.as_exact(), rhs.as_exact()) {
            return Interval::exact(a.wrapping_rem(b));
        }
        // |a % b| < max(|b.lo|, |b.hi|); 0 included for the by-zero case.
        let m = rhs.lo.unsigned_abs().max(rhs.hi.unsigned_abs());
        let m = i64::try_from(m.saturating_sub(1)).unwrap_or(i64::MAX);
        Interval::new(-m, m)
    }

    /// Abstract unary negation under wrapping semantics.
    pub fn neg(self) -> Interval {
        if let Some(v) = self.as_exact() {
            return Interval::exact(v.wrapping_neg());
        }
        match (self.hi.checked_neg(), self.lo.checked_neg()) {
            (Some(lo), Some(hi)) => Interval { lo, hi },
            _ => Interval::TOP,
        }
    }
}

/// Three-valued truth of an abstract comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tri {
    /// Holds in every concretization.
    True,
    /// Holds in no concretization.
    False,
    /// Indeterminate.
    Unknown,
}

impl Tri {
    /// As a boolean interval.
    pub fn interval(self) -> Interval {
        match self {
            Tri::True => Interval::exact(1),
            Tri::False => Interval::exact(0),
            Tri::Unknown => Interval::BOOL,
        }
    }

    /// Logical negation.
    pub fn not(self) -> Tri {
        match self {
            Tri::True => Tri::False,
            Tri::False => Tri::True,
            Tri::Unknown => Tri::Unknown,
        }
    }

    /// From an exact-bool interval.
    pub fn from_interval(iv: Interval) -> Tri {
        match iv.as_exact() {
            Some(0) => Tri::False,
            Some(_) => Tri::True,
            None => Tri::Unknown,
        }
    }
}

impl Interval {
    /// Abstract `<`.
    pub fn lt(self, rhs: Interval) -> Tri {
        if self.hi < rhs.lo {
            Tri::True
        } else if self.lo >= rhs.hi {
            Tri::False
        } else {
            Tri::Unknown
        }
    }

    /// Abstract `<=`.
    pub fn le(self, rhs: Interval) -> Tri {
        if self.hi <= rhs.lo {
            Tri::True
        } else if self.lo > rhs.hi {
            Tri::False
        } else {
            Tri::Unknown
        }
    }

    /// Abstract `==`.
    pub fn eq_ab(self, rhs: Interval) -> Tri {
        match (self.as_exact(), rhs.as_exact()) {
            (Some(a), Some(b)) if a == b => Tri::True,
            _ if self.meet(rhs).is_none() => Tri::False,
            _ => Tri::Unknown,
        }
    }

    /// Refines `(self, rhs)` under the assumption `self < rhs`; `None`
    /// when the assumption is infeasible.
    pub fn assume_lt(self, rhs: Interval) -> Option<(Interval, Interval)> {
        if rhs.hi == i64::MIN || self.lo == i64::MAX {
            return None;
        }
        let a = self.meet(Interval::new(i64::MIN, rhs.hi - 1))?;
        let b = rhs.meet(Interval::new(self.lo + 1, i64::MAX))?;
        Some((a, b))
    }

    /// Refines `(self, rhs)` under `self <= rhs`.
    pub fn assume_le(self, rhs: Interval) -> Option<(Interval, Interval)> {
        let a = self.meet(Interval::new(i64::MIN, rhs.hi))?;
        let b = rhs.meet(Interval::new(self.lo, i64::MAX))?;
        Some((a, b))
    }

    /// Refines `(self, rhs)` under `self == rhs`.
    pub fn assume_eq(self, rhs: Interval) -> Option<(Interval, Interval)> {
        let m = self.meet(rhs)?;
        Some((m, m))
    }

    /// Refines `(self, rhs)` under `self != rhs` (only exact operands can
    /// shave an endpoint).
    pub fn assume_ne(self, rhs: Interval) -> Option<(Interval, Interval)> {
        let shave = |iv: Interval, v: i64| -> Option<Interval> {
            if iv.as_exact() == Some(v) {
                None
            } else if iv.lo == v {
                Some(Interval::new(v + 1, iv.hi))
            } else if iv.hi == v {
                Some(Interval::new(iv.lo, v - 1))
            } else {
                Some(iv)
            }
        };
        let a = match rhs.as_exact() {
            Some(v) => shave(self, v)?,
            None => self,
        };
        let b = match self.as_exact() {
            Some(v) => shave(rhs, v)?,
            None => rhs,
        };
        Some((a, b))
    }
}

/// Whether a packet/subflow reference is `NULL`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Nullability {
    /// Provably `NULL`.
    Null,
    /// Provably not `NULL`.
    NonNull,
    /// Either.
    MaybeNull,
}

impl Nullability {
    /// Least upper bound.
    pub fn join(self, other: Nullability) -> Nullability {
        if self == other {
            self
        } else {
            Nullability::MaybeNull
        }
    }
}

/// Whether a queue view holds any packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Emptiness {
    /// Provably empty (stays empty: executions never add packets to views).
    Empty,
    /// Provably non-empty (invalidated by any `POP`/`DROP`).
    NonEmpty,
    /// Either.
    Unknown,
}

impl Emptiness {
    /// Least upper bound.
    pub fn join(self, other: Emptiness) -> Emptiness {
        if self == other {
            self
        } else {
            Emptiness::Unknown
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_arithmetic_mirrors_wrapping() {
        assert_eq!(
            Interval::exact(i64::MAX).add(Interval::exact(1)),
            Interval::exact(i64::MIN)
        );
        assert_eq!(
            Interval::exact(i64::MIN).div(Interval::exact(-1)),
            Interval::exact(i64::MIN)
        );
        assert_eq!(
            Interval::exact(7).rem(Interval::exact(0)),
            Interval::exact(0)
        );
    }

    #[test]
    fn range_overflow_goes_to_top() {
        let near_max = Interval::new(i64::MAX - 1, i64::MAX);
        assert_eq!(near_max.add(Interval::new(0, 5)), Interval::TOP);
        assert_eq!(
            Interval::new(0, 10).add(Interval::new(1, 2)),
            Interval::new(1, 12)
        );
    }

    #[test]
    fn division_semantics() {
        assert_eq!(
            Interval::new(10, 100).div(Interval::new(2, 5)),
            Interval::new(2, 50)
        );
        // Divisor range containing zero mixes quotients with the 0 case.
        assert_eq!(
            Interval::new(10, 100).div(Interval::new(-1, 1)),
            Interval::TOP
        );
        assert_eq!(
            Interval::new(1, 5).rem(Interval::new(1, 10)),
            Interval::new(-9, 9)
        );
    }

    #[test]
    fn comparisons_and_refinement() {
        assert_eq!(Interval::new(0, 3).lt(Interval::new(5, 9)), Tri::True);
        assert_eq!(Interval::new(5, 9).lt(Interval::new(0, 3)), Tri::False);
        assert_eq!(Interval::new(0, 9).lt(Interval::new(3, 5)), Tri::Unknown);
        let (a, b) = Interval::new(0, 10).assume_lt(Interval::new(0, 5)).unwrap();
        assert_eq!(a, Interval::new(0, 4));
        assert_eq!(b, Interval::new(1, 5));
        assert!(Interval::exact(9).assume_lt(Interval::exact(3)).is_none());
        let (a, _) = Interval::new(0, 10).assume_ne(Interval::exact(0)).unwrap();
        assert_eq!(a, Interval::new(1, 10));
        assert!(Interval::exact(4).assume_ne(Interval::exact(4)).is_none());
    }

    #[test]
    fn joins_meets_widen() {
        assert_eq!(
            Interval::new(0, 3).join(Interval::new(7, 9)),
            Interval::new(0, 9)
        );
        assert!(Interval::new(0, 3).meet(Interval::new(7, 9)).is_none());
        let w = Interval::new(0, 3).widen(Interval::new(0, 4));
        assert_eq!(w, Interval::new(0, i64::MAX));
        assert_eq!(
            Nullability::Null.join(Nullability::NonNull),
            Nullability::MaybeNull
        );
        assert_eq!(Emptiness::Empty.join(Emptiness::Empty), Emptiness::Empty);
    }
}
