//! The scheduler-property verifier: semantic certificates on top of the
//! machine-level admission pipeline.
//!
//! Machine-level admission (termination, handle safety, step bounds) says
//! nothing about whether a scheduler is *behaviorally* sane: a program
//! that never services subflow 2, duplicates every segment onto all
//! paths, or refuses to send despite an open window passes every check in
//! `super::dataflow`. This module derives, per program, a
//! [`PropertyCertificate`] over four semantic properties:
//!
//! 1. **Work-conservation** — under the assumption that the send queue is
//!    non-empty and at least one *available* subflow exists (not
//!    TSQ-throttled, not lossy, and — when the relational domain is on —
//!    with congestion-window room above its in-flight bytes), every
//!    execution path reaches a `PUSH` whose operands are provably
//!    non-`NULL`. Proofs are sound (and dynamically validated by the
//!    conformance sweep, which samples the same availability predicate
//!    pre-round); refutations carry a best-effort witness path and may be
//!    abstractly feasible but concretely dead.
//! 2. **Per-subflow starvation** — the set of subflow identities that can
//!    ever be the target of a `PUSH`, derived from guard satisfiability
//!    of `FILTER` predicates over the [`IdSet`] domain. When some id
//!    below the admission cap is structurally excluded, the property is
//!    refuted with the push sites as witness. The allowed set is an
//!    over-approximation of every runtime push target, which is exactly
//!    the invariant the runtime oracle checks.
//! 3. **Redundancy bound** — a closed-form polynomial in `n_subflows`
//!    bounding how many times one packet can be pushed during a single
//!    upcall, mirroring the per-loop multiplicities of the certified
//!    step-bound machinery in `super::cost`. Push sites are grouped by
//!    the base queue their packet was drawn from (packets in distinct
//!    queues cannot alias), and loop multiplicity is charged only for
//!    packet sources that can yield the same packet twice (`TOP`, `MIN`,
//!    `MAX`, `GET`, or a variable bound outside the loop) — an inline
//!    `POP` yields a fresh packet per evaluation.
//! 4. **Reinjection safety** — every `POP` from the reinjection queue is
//!    dominated by an emptiness guard already tracked by the queue
//!    domain. The per-program flag [`PropertyCertificate::pops_fully_guarded`]
//!    additionally records whether *every* pop (any queue) is guarded,
//!    which arms the `null_pops == 0` dynamic check.
//!
//! Property findings never feed the admission verdict: a refuted property
//! is a warning-severity lint surfaced through `progmp-lint --properties`,
//! not a rejection. The conformance sweep (`conformance-fuzz
//! --prop-soundness`) cross-validates every *proved* certificate against
//! the runtime oracle on all three backends, with
//! [`PropWeakening`]-sabotaged analyses as the mutation control group.

use crate::ast::{BinOp, UnOp};
use crate::env::{QueueKind, SubflowProp};
use crate::error::Pos;
use crate::hir::{ExprId, HExpr, HProgram, HStmt, StmtId};
use crate::types::Type;

use super::dataflow::{self, AbsState, Analyzer};
use super::diag::{json_string, Diagnostic, Lint, Severity};
use super::domain::{Emptiness, IdSet, Nullability};
use super::VerifyConfig;

/// Outcome of one property analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropStatus {
    /// The property holds on every execution under the verifier's
    /// environment assumptions; dynamically validated by the soundness
    /// sweep.
    Proved,
    /// A witness (path or site set) shows the property does not hold.
    Refuted,
    /// The analysis could not decide (imprecision or path-budget
    /// exhaustion) — never treated as a proof.
    Unknown,
}

impl PropStatus {
    /// Lower-case display name.
    pub fn name(self) -> &'static str {
        match self {
            PropStatus::Proved => "proved",
            PropStatus::Refuted => "refuted",
            PropStatus::Unknown => "unknown",
        }
    }
}

/// One step of a refutation witness, anchored to a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WitnessStep {
    /// Source position of the branch decision or offending site.
    pub pos: Pos,
    /// What the step assumes or exhibits.
    pub desc: String,
}

/// One property's verdict: status, explanation, and (for refutations)
/// the witness path or site list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropOutcome {
    /// Proved / refuted / unknown.
    pub status: PropStatus,
    /// One-line human-readable explanation.
    pub detail: String,
    /// Spanned witness steps (refutations only; empty otherwise).
    pub witness: Vec<WitnessStep>,
}

impl PropOutcome {
    fn proved(detail: impl Into<String>) -> PropOutcome {
        PropOutcome {
            status: PropStatus::Proved,
            detail: detail.into(),
            witness: Vec::new(),
        }
    }

    fn refuted(detail: impl Into<String>, witness: Vec<WitnessStep>) -> PropOutcome {
        PropOutcome {
            status: PropStatus::Refuted,
            detail: detail.into(),
            witness,
        }
    }

    fn unknown(detail: impl Into<String>) -> PropOutcome {
        PropOutcome {
            status: PropStatus::Unknown,
            detail: detail.into(),
            witness: Vec::new(),
        }
    }
}

/// A degree-≤2 polynomial `c + n·N + n2·N²` in `N = n_subflows`, with
/// saturating coefficients. Degree-3 products (triply-nested subflow
/// loops) saturate the quadratic coefficient, which stays a sound upper
/// bound because every evaluation also saturates at `u64::MAX`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Poly {
    /// Constant coefficient.
    pub c: u64,
    /// Linear (`n_subflows`) coefficient.
    pub n: u64,
    /// Quadratic (`n_subflows^2`) coefficient.
    pub n2: u64,
}

impl Poly {
    /// The zero polynomial.
    pub const ZERO: Poly = Poly { c: 0, n: 0, n2: 0 };
    /// The constant 1.
    pub const ONE: Poly = Poly { c: 1, n: 0, n2: 0 };
    /// The identity `n_subflows`.
    pub const N: Poly = Poly { c: 0, n: 1, n2: 0 };

    /// A constant polynomial.
    pub fn constant(c: u64) -> Poly {
        Poly { c, n: 0, n2: 0 }
    }

    /// Coefficient-wise saturating sum.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Poly) -> Poly {
        Poly {
            c: self.c.saturating_add(rhs.c),
            n: self.n.saturating_add(rhs.n),
            n2: self.n2.saturating_add(rhs.n2),
        }
    }

    /// Saturating product; any degree-3 term saturates `n2` (sound:
    /// evaluation saturates too).
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Poly) -> Poly {
        let mut out = Poly::ZERO;
        out.c = self.c.saturating_mul(rhs.c);
        out.n = (self.c.saturating_mul(rhs.n)).saturating_add(self.n.saturating_mul(rhs.c));
        out.n2 = (self.c.saturating_mul(rhs.n2))
            .saturating_add(self.n.saturating_mul(rhs.n))
            .saturating_add(self.n2.saturating_mul(rhs.c));
        let cubic = (self.n != 0 && rhs.n2 != 0)
            || (self.n2 != 0 && rhs.n != 0)
            || (self.n2 != 0 && rhs.n2 != 0);
        if cubic {
            out.n2 = u64::MAX;
        }
        out
    }

    /// Coefficient-wise max (a sound upper bound for the pointwise max).
    pub fn join(self, rhs: Poly) -> Poly {
        Poly {
            c: self.c.max(rhs.c),
            n: self.n.max(rhs.n),
            n2: self.n2.max(rhs.n2),
        }
    }

    /// Saturating evaluation at `n` subflows.
    pub fn eval(self, n: u64) -> u64 {
        let lin = self.n.saturating_mul(n);
        let quad = self.n2.saturating_mul(n).saturating_mul(n);
        self.c.saturating_add(lin).saturating_add(quad)
    }

    /// Coefficient-wise `self <= rhs` (implies pointwise for all n ≥ 0).
    fn le_everywhere(self, rhs: Poly) -> bool {
        self.c <= rhs.c && self.n <= rhs.n && self.n2 <= rhs.n2
    }

    /// Pointwise `self(n) <= rhs(n)` for all n ≥ 1. Writing the
    /// difference as `Δ2(n²−n) + (Δ2+Δ1)(n−1) + (Δ2+Δ1+Δ0)` shows the
    /// three prefix-sum conditions are sufficient.
    fn le_for_positive_n(self, rhs: Poly) -> bool {
        rhs.n2 >= self.n2
            && rhs.n2.saturating_add(rhs.n) >= self.n2.saturating_add(self.n)
            && rhs.n2.saturating_add(rhs.n).saturating_add(rhs.c)
                >= self.n2.saturating_add(self.n).saturating_add(self.c)
    }

    /// Symbolic rendering, e.g. `"1"`, `"n_subflows"`, `"2*n_subflows + 1"`.
    pub fn render(self) -> String {
        let mut parts = Vec::new();
        match self.n2 {
            0 => {}
            1 => parts.push("n_subflows^2".to_string()),
            k => parts.push(format!("{k}*n_subflows^2")),
        }
        match self.n {
            0 => {}
            1 => parts.push("n_subflows".to_string()),
            k => parts.push(format!("{k}*n_subflows")),
        }
        if self.c != 0 || parts.is_empty() {
            parts.push(self.c.to_string());
        }
        parts.join(" + ")
    }
}

/// One component of the duplication bound: a polynomial plus whether
/// every contributing push site sits inside a subflow loop (in which
/// case the component only applies for `n_subflows >= 1`, letting it be
/// dominated by a linear component).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DupTerm {
    /// The per-packet push-count bound of this component.
    pub poly: Poly,
    /// True when every contributing site is inside a `FOREACH` over a
    /// subflow view (no pushes happen at `n_subflows == 0`).
    pub loop_gated: bool,
}

/// The certified per-packet duplication bound: the pointwise max of its
/// components (one per base queue family that survived domination
/// pruning).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DupBound {
    /// Surviving components; empty means the program never pushes.
    pub terms: Vec<DupTerm>,
}

impl DupBound {
    /// Evaluates the bound at `n` subflows (0 when the program never
    /// pushes).
    pub fn eval(&self, n: u64) -> u64 {
        self.terms.iter().map(|t| t.poly.eval(n)).max().unwrap_or(0)
    }

    /// Symbolic rendering: `"0"`, a single polynomial, or
    /// `"max(a, b)"` when the components are incomparable.
    pub fn render(&self) -> String {
        match self.terms.len() {
            0 => "0".to_string(),
            1 => self.terms[0].poly.render(),
            _ => {
                let mut parts: Vec<String> = self.terms.iter().map(|t| t.poly.render()).collect();
                parts.sort();
                format!("max({})", parts.join(", "))
            }
        }
    }

    /// Drops every component dominated by another: coefficient-wise for
    /// unconditional components, for-all-`n ≥ 1` for loop-gated ones
    /// (a gated component contributes nothing at `n = 0`).
    fn simplify(mut terms: Vec<DupTerm>) -> DupBound {
        terms.retain(|t| t.poly != Poly::ZERO);
        let mut keep: Vec<DupTerm> = Vec::new();
        for t in terms {
            let dominated = keep.iter().any(|k| dominates(*k, t));
            if dominated {
                continue;
            }
            keep.retain(|k| !dominates(t, *k));
            keep.push(t);
        }
        return DupBound { terms: keep };

        fn dominates(big: DupTerm, small: DupTerm) -> bool {
            if small.poly.le_everywhere(big.poly) {
                return true;
            }
            small.loop_gated && small.poly.le_for_positive_n(big.poly)
        }
    }
}

/// The per-program semantic certificate stamped into
/// [`crate::program::SchedulerProgram`] and consumed by the runtime
/// oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyCertificate {
    /// Work-conservation verdict.
    pub work_conservation: PropOutcome,
    /// Per-subflow starvation verdict.
    pub starvation: PropOutcome,
    /// Redundancy-bound verdict (always proved; the bound is the claim).
    pub redundancy: PropOutcome,
    /// Reinjection-safety verdict.
    pub reinjection: PropOutcome,
    /// The certified per-packet duplication bound.
    pub dup_bound: DupBound,
    /// `dup_bound` evaluated at the admission subflow cap — the concrete
    /// number the dynamic check enforces when the environment honors the
    /// cap.
    pub dup_cap: u64,
    /// Over-approximation of every subflow id a `PUSH` can target.
    pub allowed_ids: IdSet,
    /// True when every `POP` site (any queue) is provably guarded by an
    /// emptiness check; arms the `null_pops == 0` dynamic check.
    pub pops_fully_guarded: bool,
}

impl PropertyCertificate {
    /// The four outcomes with their lint classes, in catalogue order.
    pub fn outcomes(&self) -> [(Lint, &PropOutcome); 4] {
        [
            (Lint::WorkConservation, &self.work_conservation),
            (Lint::SubflowStarvation, &self.starvation),
            (Lint::RedundancyBound, &self.redundancy),
            (Lint::ReinjectionSafety, &self.reinjection),
        ]
    }

    /// True when no property is refuted.
    pub fn clean(&self) -> bool {
        self.outcomes()
            .iter()
            .all(|(_, o)| o.status != PropStatus::Refuted)
    }

    /// The certificate as spanned diagnostics: refutations are warnings
    /// (they never block admission), proofs and unknowns are
    /// informational. Witness steps are folded into the message.
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        self.outcomes()
            .iter()
            .map(|(lint, o)| {
                let severity = match o.status {
                    PropStatus::Refuted => Severity::Warning,
                    _ => Severity::Info,
                };
                let pos = o
                    .witness
                    .first()
                    .map(|w| w.pos)
                    .unwrap_or(Pos { line: 1, col: 1 });
                Diagnostic {
                    lint: *lint,
                    severity,
                    pos,
                    message: format!("{}: {}", o.status.name(), o.detail),
                }
            })
            .collect()
    }

    /// Multi-line human-readable certificate.
    pub fn render_human(&self, name: &str) -> String {
        let mut out = format!("{name}: property certificate\n");
        for (lint, o) in self.outcomes() {
            out.push_str(&format!(
                "  {}: {} — {}\n",
                lint.name(),
                o.status.name().to_uppercase(),
                o.detail
            ));
            for w in &o.witness {
                out.push_str(&format!("    witness at {}: {}\n", w.pos, w.desc));
            }
        }
        out.push_str(&format!(
            "  dup-bound: {} (<= {} at the {}-subflow admission cap)\n",
            self.dup_bound.render(),
            self.dup_cap,
            VerifyConfig::default().max_subflows,
        ));
        out.push_str(&format!("  allowed-ids: {}\n", self.allowed_ids.render()));
        out.push_str(&format!(
            "  pops-fully-guarded: {}\n",
            if self.pops_fully_guarded { "yes" } else { "no" }
        ));
        out
    }

    /// The certificate as one JSON object (hand-rolled; no serde).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (lint, o)) in self.outcomes().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"status\":\"{}\",\"detail\":",
                lint.name().replace('-', "_"),
                o.status.name()
            ));
            json_string(&mut out, &o.detail);
            out.push_str(",\"witness\":[");
            for (j, w) in o.witness.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"line\":{},\"col\":{},\"desc\":",
                    w.pos.line, w.pos.col
                ));
                json_string(&mut out, &w.desc);
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str(",\"dup_bound\":");
        json_string(&mut out, &self.dup_bound.render());
        out.push_str(&format!(",\"dup_cap\":{}", self.dup_cap));
        out.push_str(",\"allowed_ids\":");
        json_string(&mut out, &self.allowed_ids.render());
        out.push_str(&format!(
            ",\"pops_fully_guarded\":{}}}",
            self.pops_fully_guarded
        ));
        out
    }
}

/// Deliberate analysis weakenings for the property-soundness mutation
/// sweep: each makes exactly one analysis unsound in a way the runtime
/// oracle must catch. Never used outside the conformance harness.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropWeakening {
    /// Work-conservation: treat every `FOREACH` body as executing at
    /// least once, even when the list may be empty.
    AssumeLoopsRun,
    /// Work-conservation: count a `PUSH` with possibly-`NULL` operands
    /// as a definite push.
    IgnoreNullableOperands,
    /// Redundancy: charge no loop multiplicity — every site contributes
    /// 1 regardless of enclosing `FOREACH` nesting.
    IgnoreLoopMultiplicity,
    /// Starvation: treat transient-property predicates (`RTT`, `CWND`,
    /// …) as if they constrained the stable `ID`, wrongly narrowing the
    /// allowed set.
    TreatTransientAsId,
    /// Reinjection: report every `POP` site as emptiness-guarded.
    AssumePopsGuarded,
    /// Work-conservation: drop the octagon relational state (and the
    /// relational congestion-window availability conjunct), falling back
    /// to the projection-only interval analysis. Not unsound by itself —
    /// the sweep proves the relational information is load-bearing by
    /// requiring the weakened run to lose a PROVED (or be caught
    /// dynamically).
    OctagonDropRelations,
}

#[doc(hidden)]
impl PropWeakening {
    /// All weakenings, for the mutation sweep.
    pub const ALL: [PropWeakening; 6] = [
        PropWeakening::AssumeLoopsRun,
        PropWeakening::IgnoreNullableOperands,
        PropWeakening::IgnoreLoopMultiplicity,
        PropWeakening::TreatTransientAsId,
        PropWeakening::AssumePopsGuarded,
        PropWeakening::OctagonDropRelations,
    ];

    /// Stable name for harness output.
    pub fn name(self) -> &'static str {
        match self {
            PropWeakening::AssumeLoopsRun => "assume-loops-run",
            PropWeakening::IgnoreNullableOperands => "ignore-nullable-operands",
            PropWeakening::IgnoreLoopMultiplicity => "ignore-loop-multiplicity",
            PropWeakening::TreatTransientAsId => "treat-transient-as-id",
            PropWeakening::AssumePopsGuarded => "assume-pops-guarded",
            PropWeakening::OctagonDropRelations => "octagon-drop-relations",
        }
    }
}

/// Derives the property certificate for `prog` (production entry point).
pub fn verify_properties(prog: &HProgram) -> PropertyCertificate {
    verify_properties_with(prog, None, true)
}

/// Like [`verify_properties`] with an optional sabotage weakening
/// (conformance harness only).
#[doc(hidden)]
pub fn verify_properties_weakened(
    prog: &HProgram,
    weaken: Option<PropWeakening>,
) -> PropertyCertificate {
    verify_properties_with(prog, weaken, true)
}

/// Full-control entry point: optional weakening plus the relational
/// (octagon) domain toggle used by the differential soundness sweeps.
#[doc(hidden)]
pub fn verify_properties_with(
    prog: &HProgram,
    weaken: Option<PropWeakening>,
    relational: bool,
) -> PropertyCertificate {
    let config = VerifyConfig::default();
    let relational = relational && weaken != Some(PropWeakening::OctagonDropRelations);
    let work_conservation = analyze_work_conservation(prog, weaken, relational);
    let (starvation, allowed_ids) = analyze_starvation(prog, weaken);
    let (redundancy, dup_bound) = analyze_redundancy(prog, weaken, &config);
    let (reinjection, pops_fully_guarded) = analyze_reinjection(prog, weaken, relational);
    let dup_cap = dup_bound.eval(config.max_subflows);
    PropertyCertificate {
        work_conservation,
        starvation,
        redundancy,
        reinjection,
        dup_bound,
        dup_cap,
        allowed_ids,
        pops_fully_guarded,
    }
}

// ---------------------------------------------------------------------
// Property (a): work-conservation.
// ---------------------------------------------------------------------

/// Path budget for the branch-enumeration DFS; beyond it the analysis
/// answers `Unknown`.
const MAX_WC_PATHS: usize = 4096;

struct WcAnalysis<'a> {
    prog: &'a HProgram,
    az: Analyzer<'a>,
    weaken: Option<PropWeakening>,
    paths: usize,
    overflowed: bool,
    /// First feasible path that ends without any push at all.
    refutation: Option<Vec<WitnessStep>>,
    /// Some path ends with only possibly-no-op pushes.
    saw_undecided: bool,
    /// At least one path completed (satisfied or not).
    saw_path: bool,
}

fn analyze_work_conservation(
    prog: &HProgram,
    weaken: Option<PropWeakening>,
    relational: bool,
) -> PropOutcome {
    // Assumption environment: send queue non-empty, >= 1 *available*
    // subflow (not TSQ-throttled, not lossy, and — relationally — with
    // congestion-window room). The availability witness is consulted by
    // the analyzer when it classifies view emptiness.
    let mut st = AbsState::initial_with(prog, relational);
    st.queues[dataflow::queue_index(QueueKind::SendQueue)] = Emptiness::NonEmpty;
    st.subflow_count = st
        .subflow_count
        .meet(super::domain::Interval::new(1, i64::MAX))
        .expect("initial subflow range contains [1, MAX]");
    let mut az = Analyzer::quiet(prog);
    az.assume_avail = true;
    az.avail_relational = relational;
    let mut wc = WcAnalysis {
        prog,
        az,
        weaken,
        paths: 0,
        overflowed: false,
        refutation: None,
        saw_undecided: false,
        saw_path: false,
    };
    wc.walk(st, vec![(prog.body.clone(), 0)], Vec::new(), false);
    if let Some(witness) = wc.refutation {
        return PropOutcome::refuted(
            "a feasible path reaches the end of the upcall without any PUSH \
             even though the send queue is non-empty and an available subflow \
             exists",
            witness,
        );
    }
    if wc.overflowed {
        return PropOutcome::unknown(format!(
            "path enumeration exceeded the {MAX_WC_PATHS}-path budget"
        ));
    }
    if wc.saw_undecided {
        return PropOutcome::unknown(
            "some paths only reach PUSHes whose operands may be NULL (the push \
             could be a no-op)",
        );
    }
    if wc.saw_path {
        PropOutcome::proved(
            "every feasible path issues a PUSH with non-NULL operands whenever \
             the send queue is non-empty and an available subflow exists",
        )
    } else {
        // Every branch combination was infeasible; vacuously conservative.
        PropOutcome::unknown("no feasible path under the assumption environment")
    }
}

impl<'a> WcAnalysis<'a> {
    fn done(&self) -> bool {
        self.refutation.is_some() || self.overflowed
    }

    /// Explores one path suffix. `frames` is the stack of (block, next
    /// index) continuations, innermost last; `pushed_maybe` records
    /// whether the path already executed a possibly-no-op push.
    fn walk(
        &mut self,
        mut st: AbsState,
        mut frames: Vec<(Vec<StmtId>, usize)>,
        mut trail: Vec<WitnessStep>,
        mut pushed_maybe: bool,
    ) {
        if self.done() {
            return;
        }
        loop {
            let Some((body, ix)) = frames.last_mut() else {
                self.end_path(trail, pushed_maybe, None);
                return;
            };
            if *ix >= body.len() {
                frames.pop();
                continue;
            }
            let sid = body[*ix];
            *ix += 1;
            match self.prog.stmt(sid).clone() {
                HStmt::VarDecl { .. } | HStmt::SetReg { .. } | HStmt::Drop { .. } => {
                    self.az.exec_stmt(&mut st, sid);
                }
                HStmt::Return => {
                    self.end_path(trail, pushed_maybe, Some(sid));
                    return;
                }
                HStmt::Push { target, packet } => {
                    let t = self.az.eval_quiet(&mut st, target).nullability();
                    let p = self.az.eval_quiet(&mut st, packet).nullability();
                    let definite = self.weaken == Some(PropWeakening::IgnoreNullableOperands)
                        || (t == Nullability::NonNull && p == Nullability::NonNull);
                    if definite && !(t == Nullability::Null || p == Nullability::Null) {
                        self.saw_path = true;
                        return; // Path satisfied; prune.
                    }
                    if t != Nullability::Null && p != Nullability::Null {
                        pushed_maybe = true;
                    }
                }
                HStmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    for (truth, branch) in [(true, then_body), (false, else_body)] {
                        if self.done() {
                            return;
                        }
                        self.paths += 1;
                        if self.paths > MAX_WC_PATHS {
                            self.overflowed = true;
                            return;
                        }
                        let mut branch_st = st.clone();
                        self.az.refine(&mut branch_st, cond, truth);
                        if !branch_st.reachable {
                            continue;
                        }
                        let mut branch_trail = trail.clone();
                        branch_trail.push(WitnessStep {
                            pos: self.prog.expr_pos(cond),
                            desc: format!(
                                "condition assumed {}",
                                if truth { "true" } else { "false" }
                            ),
                        });
                        let mut branch_frames = frames.clone();
                        branch_frames.push((branch, 0));
                        self.walk(branch_st, branch_frames, branch_trail, pushed_maybe);
                    }
                    return;
                }
                HStmt::Foreach { slot, list, body } => {
                    let runs = self.az.view_emptiness(&st, list) == Emptiness::NonEmpty
                        || self.weaken == Some(PropWeakening::AssumeLoopsRun);
                    if runs {
                        let mut iter_st = st.clone();
                        dataflow::bind_loop_slot(&mut iter_st, slot);
                        if self.all_paths_push(iter_st, vec![(body.clone(), 0)]) {
                            self.saw_path = true;
                            return; // >=1 iteration, every iteration pushes.
                        }
                    }
                    if block_contains_push(self.prog, &body) {
                        pushed_maybe = true;
                    }
                    trail.push(WitnessStep {
                        pos: self.prog.stmt_pos(sid),
                        desc: "loop body assumed not to issue a guaranteed PUSH".into(),
                    });
                    // Post-loop join state (covers 0..n iterations).
                    self.az.exec_stmt(&mut st, sid);
                }
            }
        }
    }

    /// Does every feasible path through `frames` hit a definite push?
    fn all_paths_push(&mut self, mut st: AbsState, mut frames: Vec<(Vec<StmtId>, usize)>) -> bool {
        loop {
            if self.overflowed {
                return false;
            }
            let Some((body, ix)) = frames.last_mut() else {
                return false;
            };
            if *ix >= body.len() {
                frames.pop();
                continue;
            }
            let sid = body[*ix];
            *ix += 1;
            match self.prog.stmt(sid).clone() {
                HStmt::VarDecl { .. } | HStmt::SetReg { .. } | HStmt::Drop { .. } => {
                    self.az.exec_stmt(&mut st, sid);
                }
                HStmt::Return => return false,
                HStmt::Push { target, packet } => {
                    let t = self.az.eval_quiet(&mut st, target).nullability();
                    let p = self.az.eval_quiet(&mut st, packet).nullability();
                    if t == Nullability::Null || p == Nullability::Null {
                        continue;
                    }
                    if self.weaken == Some(PropWeakening::IgnoreNullableOperands)
                        || (t == Nullability::NonNull && p == Nullability::NonNull)
                    {
                        return true;
                    }
                }
                HStmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    for (truth, branch) in [(true, then_body), (false, else_body)] {
                        self.paths += 1;
                        if self.paths > MAX_WC_PATHS {
                            self.overflowed = true;
                            return false;
                        }
                        let mut branch_st = st.clone();
                        self.az.refine(&mut branch_st, cond, truth);
                        if !branch_st.reachable {
                            continue;
                        }
                        let mut branch_frames = frames.clone();
                        branch_frames.push((branch, 0));
                        if !self.all_paths_push(branch_st, branch_frames) {
                            return false;
                        }
                    }
                    return true;
                }
                HStmt::Foreach { slot, list, body } => {
                    let runs = self.az.view_emptiness(&st, list) == Emptiness::NonEmpty
                        || self.weaken == Some(PropWeakening::AssumeLoopsRun);
                    if runs {
                        let mut iter_st = st.clone();
                        dataflow::bind_loop_slot(&mut iter_st, slot);
                        if self.all_paths_push(iter_st, vec![(body.clone(), 0)]) {
                            return true;
                        }
                    }
                    self.az.exec_stmt(&mut st, sid);
                }
            }
        }
    }

    fn end_path(&mut self, mut trail: Vec<WitnessStep>, pushed_maybe: bool, at: Option<StmtId>) {
        self.saw_path = true;
        if pushed_maybe {
            self.saw_undecided = true;
            return;
        }
        if self.refutation.is_none() {
            let pos = at
                .map(|sid| self.prog.stmt_pos(sid))
                .unwrap_or(Pos { line: 1, col: 1 });
            trail.push(WitnessStep {
                pos,
                desc: "execution ends without any PUSH".into(),
            });
            self.refutation = Some(trail);
        }
    }
}

/// Whether any statement in `body` (recursively) is a `PUSH`.
fn block_contains_push(prog: &HProgram, body: &[StmtId]) -> bool {
    body.iter().any(|&sid| match prog.stmt(sid) {
        HStmt::Push { .. } => true,
        HStmt::If {
            then_body,
            else_body,
            ..
        } => block_contains_push(prog, then_body) || block_contains_push(prog, else_body),
        HStmt::Foreach { body, .. } => block_contains_push(prog, body),
        _ => false,
    })
}

// ---------------------------------------------------------------------
// Property (b): per-subflow starvation.
// ---------------------------------------------------------------------

struct StarvationAnalysis<'a> {
    prog: &'a HProgram,
    weaken: Option<PropWeakening>,
    /// Per-slot id-set for subflow and subflow-list variables.
    slot_ids: Vec<IdSet>,
    /// `(site position, target id-set)` for every push site.
    sites: Vec<(Pos, IdSet)>,
}

fn analyze_starvation(prog: &HProgram, weaken: Option<PropWeakening>) -> (PropOutcome, IdSet) {
    let mut sa = StarvationAnalysis {
        prog,
        weaken,
        slot_ids: vec![IdSet::any(); prog.n_slots],
        sites: Vec::new(),
    };
    sa.walk(&prog.body);
    let allowed = sa
        .sites
        .iter()
        .fold(IdSet::none(), |acc, (_, s)| acc.union(s));
    let cap = VerifyConfig::default().max_subflows as i64;
    if sa.sites.is_empty() {
        let outcome = PropOutcome::refuted(
            "the program contains no PUSH statement: every subflow starves",
            vec![WitnessStep {
                pos: Pos { line: 1, col: 1 },
                desc: "no PUSH site exists".into(),
            }],
        );
        return (outcome, allowed);
    }
    if let Some(id) = allowed.excluded_below(cap) {
        let witness = sa
            .sites
            .iter()
            .map(|(pos, s)| WitnessStep {
                pos: *pos,
                desc: format!("PUSH target is restricted to ids {}", s.render()),
            })
            .collect();
        let outcome = PropOutcome::refuted(
            format!(
                "subflow id {id} can never be the target of any PUSH \
                 (allowed ids: {})",
                allowed.render()
            ),
            witness,
        );
        return (outcome, allowed);
    }
    let outcome = PropOutcome::proved(format!(
        "no subflow id below the admission cap is structurally excluded \
         from PUSH targets (allowed ids: {})",
        allowed.render()
    ));
    (outcome, allowed)
}

impl<'a> StarvationAnalysis<'a> {
    fn walk(&mut self, body: &[StmtId]) {
        for &sid in body {
            match self.prog.stmt(sid).clone() {
                HStmt::VarDecl { slot, init } => {
                    let ty = self.prog.slot_ty[slot.0 as usize];
                    if matches!(ty, Type::Subflow | Type::SubflowList) {
                        let ids = self.view_ids(init);
                        self.slot_ids[slot.0 as usize] = ids;
                    }
                }
                HStmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    self.walk(&then_body);
                    self.walk(&else_body);
                }
                HStmt::Foreach { slot, list, body } => {
                    if self.prog.slot_ty[slot.0 as usize] == Type::Subflow {
                        let ids = self.view_ids(list);
                        self.slot_ids[slot.0 as usize] = ids;
                    }
                    self.walk(&body);
                }
                HStmt::Push { target, .. } => {
                    let ids = self.target_ids(target);
                    self.sites.push((self.prog.expr_pos(target), ids));
                }
                _ => {}
            }
        }
    }

    /// Id-set of a push-target expression.
    fn target_ids(&self, e: ExprId) -> IdSet {
        match self.prog.expr(e) {
            HExpr::NullSubflow => IdSet::none(),
            HExpr::ReadVar(slot) => self.slot_ids[slot.0 as usize].clone(),
            // Any element of the view may be the min/max/indexed one.
            HExpr::ListMinMax { list, .. } => self.view_ids(*list),
            HExpr::ListGet { list, .. } => self.view_ids(*list),
            _ => IdSet::any(),
        }
    }

    /// Id-set of a subflow-list view expression (which ids may be
    /// members).
    fn view_ids(&self, e: ExprId) -> IdSet {
        match self.prog.expr(e) {
            HExpr::Subflows => IdSet::any(),
            HExpr::ListFilter { list, var, pred } => {
                let base = self.view_ids(*list);
                base.intersect(&self.may_ids(*pred, *var))
            }
            HExpr::ReadVar(slot) => self.slot_ids[slot.0 as usize].clone(),
            HExpr::ListMinMax { list, .. } => self.view_ids(*list),
            HExpr::ListGet { list, .. } => self.view_ids(*list),
            _ => IdSet::any(),
        }
    }

    /// Ids for which some subflow *may* satisfy `pred` (over-approx).
    fn may_ids(&self, pred: ExprId, var: crate::hir::VarSlot) -> IdSet {
        match self.prog.expr(pred).clone() {
            HExpr::Binary {
                op: BinOp::And,
                lhs,
                rhs,
                ..
            } => self.may_ids(lhs, var).intersect(&self.may_ids(rhs, var)),
            HExpr::Binary {
                op: BinOp::Or,
                lhs,
                rhs,
                ..
            } => self.may_ids(lhs, var).union(&self.may_ids(rhs, var)),
            HExpr::Unary {
                op: UnOp::Not,
                expr,
            } => self.must_ids(expr, var).complement(),
            _ => self.id_atom(pred, var).unwrap_or_else(IdSet::any),
        }
    }

    /// Ids for which *every* subflow with that id satisfies `pred`
    /// (under-approx).
    fn must_ids(&self, pred: ExprId, var: crate::hir::VarSlot) -> IdSet {
        match self.prog.expr(pred).clone() {
            HExpr::Binary {
                op: BinOp::And,
                lhs,
                rhs,
                ..
            } => self.must_ids(lhs, var).intersect(&self.must_ids(rhs, var)),
            HExpr::Binary {
                op: BinOp::Or,
                lhs,
                rhs,
                ..
            } => self.must_ids(lhs, var).union(&self.must_ids(rhs, var)),
            HExpr::Unary {
                op: UnOp::Not,
                expr,
            } => self.may_ids(expr, var).complement(),
            // An ID-against-constant atom is exact: may == must.
            _ => self.id_atom(pred, var).unwrap_or_else(IdSet::none),
        }
    }

    /// Solves an atomic comparison `var.ID <op> const` (either operand
    /// order) to the exact satisfying id-set; `None` when the atom does
    /// not constrain the id (transient property, non-constant operand).
    fn id_atom(&self, pred: ExprId, var: crate::hir::VarSlot) -> Option<IdSet> {
        let HExpr::Binary { op, lhs, rhs, .. } = self.prog.expr(pred).clone() else {
            return None;
        };
        let (prop_side, const_side, flipped) =
            if self.const_of(rhs).is_some() && self.id_prop_of(lhs, var) {
                (lhs, rhs, false)
            } else if self.const_of(lhs).is_some() && self.id_prop_of(rhs, var) {
                (rhs, lhs, true)
            } else {
                return None;
            };
        let _ = prop_side;
        let k = self.const_of(const_side)?;
        // Normalize to `ID <op> k`.
        let op = if flipped {
            match op {
                BinOp::Lt => BinOp::Gt,
                BinOp::Le => BinOp::Ge,
                BinOp::Gt => BinOp::Lt,
                BinOp::Ge => BinOp::Le,
                other => other,
            }
        } else {
            op
        };
        let set = match op {
            BinOp::Eq => IdSet::singleton(k),
            BinOp::Ne => IdSet::singleton(k).complement(),
            BinOp::Lt => {
                if k == i64::MIN {
                    IdSet::none()
                } else {
                    IdSet::range(i64::MIN, k - 1)
                }
            }
            BinOp::Le => IdSet::range(i64::MIN, k),
            BinOp::Gt => {
                if k == i64::MAX {
                    IdSet::none()
                } else {
                    IdSet::range(k + 1, i64::MAX)
                }
            }
            BinOp::Ge => IdSet::range(k, i64::MAX),
            _ => return None,
        };
        Some(set)
    }

    /// Whether `e` reads `var.ID` (or, under the sabotage weakening, any
    /// subflow property of `var`).
    fn id_prop_of(&self, e: ExprId, var: crate::hir::VarSlot) -> bool {
        let HExpr::SubflowProp { sbf, prop } = self.prog.expr(e) else {
            return false;
        };
        let reads_var = matches!(self.prog.expr(*sbf), HExpr::ReadVar(s) if *s == var);
        if !reads_var {
            return false;
        }
        *prop == SubflowProp::Id || self.weaken == Some(PropWeakening::TreatTransientAsId)
    }

    /// Constant integer value of `e`, if syntactically evident.
    fn const_of(&self, e: ExprId) -> Option<i64> {
        match self.prog.expr(e) {
            HExpr::Int(v) => Some(*v),
            HExpr::Bool(b) => Some(i64::from(*b)),
            HExpr::Unary {
                op: UnOp::Neg,
                expr,
            } => match self.prog.expr(*expr) {
                HExpr::Int(v) => Some(v.wrapping_neg()),
                _ => None,
            },
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------
// Property (c): redundancy bound.
// ---------------------------------------------------------------------

/// Base-queue families packets can be drawn from. Packets in distinct
/// queues never alias within one execution, so per-packet push counts
/// are summed per family and the bound is the max across families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QFam {
    Send,
    Unacked,
    Reinject,
    /// Unresolvable source: folded into every family (may alias any).
    Other,
}

impl QFam {
    fn index(self) -> usize {
        match self {
            QFam::Send => 0,
            QFam::Unacked => 1,
            QFam::Reinject => 2,
            QFam::Other => 3,
        }
    }

    fn of(kind: QueueKind) -> QFam {
        match kind {
            QueueKind::SendQueue => QFam::Send,
            QueueKind::Unacked => QFam::Unacked,
            QueueKind::Reinject => QFam::Reinject,
        }
    }
}

/// Per-family accumulated push-count bounds along one path prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct QBounds {
    terms: [DupTerm; 4],
}

impl QBounds {
    fn zero() -> QBounds {
        QBounds {
            terms: [DupTerm {
                poly: Poly::ZERO,
                loop_gated: true, // vacuously: no site yet
            }; 4],
        }
    }

    fn add(&mut self, fam: QFam, poly: Poly, in_subflow_loop: bool) {
        let t = &mut self.terms[fam.index()];
        t.poly = t.poly.add(poly);
        t.loop_gated &= in_subflow_loop;
    }

    /// Branch join: coefficient-wise max per family (sound for the
    /// pointwise max since later additions distribute monotonically).
    fn join(self, other: QBounds) -> QBounds {
        let mut out = QBounds::zero();
        for i in 0..4 {
            out.terms[i] = DupTerm {
                poly: self.terms[i].poly.join(other.terms[i].poly),
                loop_gated: self.terms[i].loop_gated && other.terms[i].loop_gated,
            };
        }
        out
    }

    /// Sequential composition: per-family sums.
    fn seq(self, other: QBounds) -> QBounds {
        let mut out = QBounds::zero();
        for i in 0..4 {
            out.terms[i] = DupTerm {
                poly: self.terms[i].poly.add(other.terms[i].poly),
                loop_gated: self.terms[i].loop_gated && other.terms[i].loop_gated,
            };
        }
        out
    }
}

/// Where a packet-valued slot's contents came from, for multiplicity
/// accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PacketSrc {
    fam: QFam,
    /// True for `TOP`/`MIN`/`MAX`/`GET` sources: re-evaluation can yield
    /// the *same* packet, so the site is charged its full loop
    /// multiplicity. False for `POP` sources, which yield a fresh packet
    /// per evaluation.
    repeatable: bool,
    /// Loop-nesting depth at which the value was created (pops only):
    /// multiplicity is the product of loop factors entered *after* this
    /// depth.
    depth: usize,
}

struct DupAnalysis<'a> {
    prog: &'a HProgram,
    weaken: Option<PropWeakening>,
    config: &'a VerifyConfig,
    /// Enclosing loop factors, outermost first; `bool` marks a loop over
    /// a subflow-derived view (gates its sites on `n_subflows >= 1`).
    factors: Vec<(Poly, bool)>,
    slot_src: Vec<Option<PacketSrc>>,
    /// Bounds of fully-returned paths (max'd at the end).
    finished: Vec<QBounds>,
}

/// Outcome of walking one block: the fall-through accumulation (when at
/// least one path falls through).
type FallThrough = Option<QBounds>;

fn analyze_redundancy(
    prog: &HProgram,
    weaken: Option<PropWeakening>,
    config: &VerifyConfig,
) -> (PropOutcome, DupBound) {
    let mut da = DupAnalysis {
        prog,
        weaken,
        config,
        factors: Vec::new(),
        slot_src: vec![None; prog.n_slots],
        finished: Vec::new(),
    };
    let fall = da.walk_block(&prog.body, QBounds::zero());
    let mut joined = fall.unwrap_or_else(QBounds::zero);
    for f in da.finished {
        joined = joined.join(f);
    }
    // Fold the unresolvable family into every concrete one (it may alias
    // any of them), then prune dominated components.
    let other = joined.terms[QFam::Other.index()];
    let mut terms = Vec::new();
    for fam in [QFam::Send, QFam::Unacked, QFam::Reinject] {
        let t = joined.terms[fam.index()];
        terms.push(DupTerm {
            poly: t.poly.add(other.poly),
            loop_gated: t.loop_gated && (other.poly == Poly::ZERO || other.loop_gated),
        });
    }
    let bound = DupBound::simplify(terms);
    let outcome = PropOutcome::proved(format!(
        "one packet is pushed at most {} time(s) per upcall",
        bound.render()
    ));
    (outcome, bound)
}

impl<'a> DupAnalysis<'a> {
    /// Walks `body`, threading the path accumulation `acc`; returns the
    /// fall-through bounds, recording returned paths in `self.finished`.
    fn walk_block(&mut self, body: &[StmtId], mut acc: QBounds) -> FallThrough {
        for &sid in body {
            match self.prog.stmt(sid).clone() {
                HStmt::VarDecl { slot, init } => {
                    if self.prog.slot_ty[slot.0 as usize] == Type::Packet {
                        self.slot_src[slot.0 as usize] = Some(self.packet_src(init));
                    }
                }
                HStmt::SetReg { .. } | HStmt::Drop { .. } => {}
                HStmt::Return => {
                    self.finished.push(acc);
                    return None;
                }
                HStmt::Push { packet, .. } => {
                    let src = self.packet_src(packet);
                    let in_loop = self.factors.iter().any(|(_, subflow)| *subflow);
                    acc.add(src.fam, self.multiplicity(src), in_loop);
                }
                HStmt::If {
                    cond: _,
                    then_body,
                    else_body,
                } => {
                    let then_fall = self.walk_block(&then_body, acc);
                    let else_fall = self.walk_block(&else_body, acc);
                    acc = match (then_fall, else_fall) {
                        (Some(a), Some(b)) => a.join(b),
                        (Some(a), None) => a,
                        (None, Some(b)) => b,
                        (None, None) => return None,
                    };
                }
                HStmt::Foreach { slot, list, body } => {
                    let subflow_loop = self.prog.ty(list) == Type::SubflowList;
                    let factor = if self.weaken == Some(PropWeakening::IgnoreLoopMultiplicity) {
                        Poly::ONE
                    } else if subflow_loop {
                        Poly::N
                    } else {
                        // Loops over packet views are bounded by the
                        // admission queue cap, not by n_subflows.
                        Poly::constant(self.config.max_queue_len)
                    };
                    if self.prog.slot_ty[slot.0 as usize] == Type::Packet {
                        // Loop variable over a packet queue: the element
                        // is fresh per iteration, like a pop.
                        self.slot_src[slot.0 as usize] = Some(PacketSrc {
                            fam: self.base_fam(list),
                            repeatable: false,
                            depth: self.factors.len() + 1,
                        });
                    }
                    self.factors.push((factor, subflow_loop));
                    // Site multiplicities inside the body already include
                    // the loop factor, so the body contribution is added
                    // once (0 iterations contribute nothing).
                    let body_fall = self.walk_block(&body, QBounds::zero());
                    self.factors.pop();
                    if let Some(b) = body_fall {
                        acc = acc.seq(b);
                    }
                }
            }
        }
        Some(acc)
    }

    /// Per-packet multiplicity of a push site for a packet from `src`:
    /// the product of loop factors entered after the value's creation
    /// point (repeatable sources are charged every enclosing factor).
    fn multiplicity(&self, src: PacketSrc) -> Poly {
        let from = if src.repeatable { 0 } else { src.depth };
        self.factors[from.min(self.factors.len())..]
            .iter()
            .fold(Poly::ONE, |p, (f, _)| p.mul(*f))
    }

    /// Classifies the packet expression at a push or var-decl site.
    fn packet_src(&self, e: ExprId) -> PacketSrc {
        match self.prog.expr(e) {
            HExpr::QueuePop(view) => PacketSrc {
                fam: self.base_fam(*view),
                repeatable: false,
                depth: self.factors.len(),
            },
            HExpr::QueueTop(view) | HExpr::QueueMinMax { queue: view, .. } => PacketSrc {
                fam: self.base_fam(*view),
                repeatable: true,
                depth: 0,
            },
            HExpr::ReadVar(slot) => self.slot_src[slot.0 as usize].unwrap_or(PacketSrc {
                fam: QFam::Other,
                repeatable: true,
                depth: 0,
            }),
            HExpr::NullPacket => PacketSrc {
                // A NULL push is a no-op; zero contribution would be
                // tighter but Other/repeatable stays sound and simple.
                fam: QFam::Other,
                repeatable: true,
                depth: 0,
            },
            _ => PacketSrc {
                fam: QFam::Other,
                repeatable: true,
                depth: 0,
            },
        }
    }

    /// Resolves the base queue of a packet-view expression.
    fn base_fam(&self, e: ExprId) -> QFam {
        match self.prog.expr(e) {
            HExpr::Queue(k) => QFam::of(*k),
            HExpr::QueueFilter { queue, .. } => self.base_fam(*queue),
            HExpr::QueueMinMax { queue, .. } => self.base_fam(*queue),
            HExpr::ReadVar(slot) => self.prog.aggregate_init[slot.0 as usize]
                .map(|init| self.base_fam(init))
                .unwrap_or(QFam::Other),
            _ => QFam::Other,
        }
    }
}

// ---------------------------------------------------------------------
// Property (d): reinjection safety.
// ---------------------------------------------------------------------

struct PopSite {
    pos: Pos,
    fam: QFam,
    emptiness: Emptiness,
}

struct ReinjAnalysis<'a> {
    prog: &'a HProgram,
    az: Analyzer<'a>,
    sites: Vec<PopSite>,
}

fn analyze_reinjection(
    prog: &HProgram,
    weaken: Option<PropWeakening>,
    relational: bool,
) -> (PropOutcome, bool) {
    let mut ra = ReinjAnalysis {
        prog,
        az: Analyzer::quiet(prog),
        sites: Vec::new(),
    };
    let mut st = AbsState::initial_with(prog, relational);
    ra.walk(&mut st, &prog.body);
    if weaken == Some(PropWeakening::AssumePopsGuarded) {
        for s in &mut ra.sites {
            s.emptiness = Emptiness::NonEmpty;
        }
    }
    let fully_guarded = ra.sites.iter().all(|s| s.emptiness == Emptiness::NonEmpty);
    // RQ safety considers pops whose base queue is (or may be) RQ.
    let rq: Vec<&PopSite> = ra
        .sites
        .iter()
        .filter(|s| matches!(s.fam, QFam::Reinject | QFam::Other))
        .collect();
    let outcome = if rq.is_empty() {
        PropOutcome::proved("the program never pops the reinjection queue")
    } else if let Some(bad) = rq.iter().find(|s| s.emptiness == Emptiness::Empty) {
        PropOutcome::refuted(
            "a reinjection-queue POP executes on a provably-empty view",
            vec![WitnessStep {
                pos: bad.pos,
                desc: "POP from a provably-empty reinjection view".into(),
            }],
        )
    } else if rq.iter().all(|s| s.emptiness == Emptiness::NonEmpty) {
        PropOutcome::proved(format!(
            "all {} reinjection-queue POP site(s) are dominated by a \
             non-emptiness guard",
            rq.len()
        ))
    } else {
        PropOutcome::unknown(
            "some reinjection-queue POP may execute on an empty view \
             (no dominating emptiness guard)",
        )
    };
    (outcome, fully_guarded)
}

impl<'a> ReinjAnalysis<'a> {
    fn walk(&mut self, st: &mut AbsState, body: &[StmtId]) {
        for &sid in body {
            if !st.reachable {
                return;
            }
            match self.prog.stmt(sid).clone() {
                HStmt::VarDecl { init, .. } => {
                    self.scan_pops(st, init, &mut false);
                    self.az.exec_stmt(st, sid);
                }
                HStmt::SetReg { value, .. } => {
                    self.scan_pops(st, value, &mut false);
                    self.az.exec_stmt(st, sid);
                }
                HStmt::Push { target, packet } => {
                    let mut removed = false;
                    self.scan_pops(st, target, &mut removed);
                    self.scan_pops(st, packet, &mut removed);
                    self.az.exec_stmt(st, sid);
                }
                HStmt::Drop { packet } => {
                    self.scan_pops(st, packet, &mut false);
                    self.az.exec_stmt(st, sid);
                }
                HStmt::Return => {
                    st.reachable = false;
                    return;
                }
                HStmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    self.scan_pops(st, cond, &mut false);
                    let mut then_st = st.clone();
                    self.az.refine(&mut then_st, cond, true);
                    if then_st.reachable {
                        self.walk(&mut then_st, &then_body);
                    }
                    let mut else_st = st.clone();
                    self.az.refine(&mut else_st, cond, false);
                    if else_st.reachable {
                        self.walk(&mut else_st, &else_body);
                    }
                    *st = then_st.join(&else_st);
                }
                HStmt::Foreach { slot, list, body } => {
                    // Record the body's pops against a state whose
                    // pre-loop NonEmpty facts are dropped (a previous
                    // iteration may have emptied any view); guards
                    // *inside* the body re-establish their facts per
                    // iteration and are honored.
                    let mut iter_st = st.clone();
                    iter_st.invalidate_removal(self.prog);
                    dataflow::bind_loop_slot(&mut iter_st, slot);
                    let _ = list;
                    self.walk(&mut iter_st, &body);
                    // Post-loop state via the fixpoint transfer.
                    self.az.exec_stmt(st, sid);
                }
            }
        }
    }

    /// Records every `POP` site inside expression `e` in evaluation
    /// order, with the view emptiness observed at that point.
    /// `removed_before` downgrades later `NonEmpty` facts in the same
    /// statement (an earlier pop may have emptied the view).
    fn scan_pops(&mut self, st: &AbsState, e: ExprId, removed_before: &mut bool) {
        match self.prog.expr(e).clone() {
            HExpr::QueuePop(view) => {
                self.scan_pops(st, view, removed_before);
                let mut emptiness = self.az.view_emptiness(st, view);
                if *removed_before && emptiness == Emptiness::NonEmpty {
                    emptiness = Emptiness::Unknown;
                }
                self.sites.push(PopSite {
                    pos: self.prog.expr_pos(e),
                    fam: self.base_fam(view),
                    emptiness,
                });
                *removed_before = true;
            }
            HExpr::Int(_)
            | HExpr::Bool(_)
            | HExpr::NullPacket
            | HExpr::NullSubflow
            | HExpr::ReadReg(_)
            | HExpr::ReadVar(_)
            | HExpr::Subflows
            | HExpr::Queue(_) => {}
            HExpr::SubflowProp { sbf: a, .. } => self.scan_pops(st, a, removed_before),
            HExpr::PacketProp { pkt: a, .. } => self.scan_pops(st, a, removed_before),
            HExpr::SentOn { pkt, sbf } | HExpr::HasWindowFor { sbf, pkt } => {
                self.scan_pops(st, pkt, removed_before);
                self.scan_pops(st, sbf, removed_before);
            }
            HExpr::ListFilter { list, pred, .. } => {
                self.scan_pops(st, list, removed_before);
                self.scan_pops(st, pred, removed_before);
            }
            HExpr::QueueFilter { queue, pred, .. } => {
                self.scan_pops(st, queue, removed_before);
                self.scan_pops(st, pred, removed_before);
            }
            HExpr::ListMinMax { list, key, .. } => {
                self.scan_pops(st, list, removed_before);
                self.scan_pops(st, key, removed_before);
            }
            HExpr::QueueMinMax { queue, key, .. } => {
                self.scan_pops(st, queue, removed_before);
                self.scan_pops(st, key, removed_before);
            }
            HExpr::ListSum { list, key, .. } => {
                self.scan_pops(st, list, removed_before);
                self.scan_pops(st, key, removed_before);
            }
            HExpr::QueueSum { queue, key, .. } => {
                self.scan_pops(st, queue, removed_before);
                self.scan_pops(st, key, removed_before);
            }
            HExpr::ListCount(a)
            | HExpr::QueueCount(a)
            | HExpr::ListEmpty(a)
            | HExpr::QueueEmpty(a)
            | HExpr::QueueTop(a) => self.scan_pops(st, a, removed_before),
            HExpr::ListGet { list, index } => {
                self.scan_pops(st, list, removed_before);
                self.scan_pops(st, index, removed_before);
            }
            HExpr::Unary { expr, .. } => self.scan_pops(st, expr, removed_before),
            HExpr::Binary { lhs, rhs, .. } => {
                self.scan_pops(st, lhs, removed_before);
                self.scan_pops(st, rhs, removed_before);
            }
        }
    }

    fn base_fam(&self, e: ExprId) -> QFam {
        match self.prog.expr(e) {
            HExpr::Queue(k) => QFam::of(*k),
            HExpr::QueueFilter { queue, .. } => self.base_fam(*queue),
            HExpr::ReadVar(slot) => self.prog.aggregate_init[slot.0 as usize]
                .map(|init| self.base_fam(init))
                .unwrap_or(QFam::Other),
            _ => QFam::Other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{compile_with_options, CompileOptions};

    fn cert(source: &str) -> PropertyCertificate {
        cert_weakened(source, None)
    }

    fn cert_weakened(source: &str, weaken: Option<PropWeakening>) -> PropertyCertificate {
        let prog = compile_with_options(
            Some("t"),
            source,
            CompileOptions {
                enforce_admission: false,
                prop_weakening: weaken,
                ..CompileOptions::default()
            },
        )
        .expect("compiles");
        prog.property_certificate().clone()
    }

    const MIN_RTT: &str =
        "IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) { SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP()); }";

    const STARVER: &str = "VAR fast = SUBFLOWS.FILTER(sbf => sbf.ID == 0).MIN(sbf => sbf.RTT);
         IF (fast != NULL AND !Q.EMPTY) { fast.PUSH(Q.POP()); }";

    const REDUNDANT: &str = "FOREACH (VAR sbf IN SUBFLOWS) { sbf.PUSH(Q.TOP); }
         IF (!Q.EMPTY) { DROP(Q.POP()); }";

    #[test]
    fn guarded_min_rtt_proves_everything() {
        let c = cert(MIN_RTT);
        assert_eq!(c.work_conservation.status, PropStatus::Proved, "{c:?}");
        assert_eq!(c.starvation.status, PropStatus::Proved);
        assert!(c.allowed_ids.is_any());
        assert_eq!(c.dup_bound.render(), "1");
        assert_eq!(c.reinjection.status, PropStatus::Proved);
        assert!(c.pops_fully_guarded);
        assert!(c.clean());
    }

    #[test]
    fn starver_is_refuted_with_spanned_witness() {
        let c = cert(STARVER);
        assert_eq!(c.starvation.status, PropStatus::Refuted);
        assert!(!c.starvation.witness.is_empty());
        assert!(c.starvation.witness[0].pos.line >= 1);
        assert_eq!(c.allowed_ids.render(), "{0}");
        assert!(
            c.starvation.detail.contains("subflow id 1"),
            "{}",
            c.starvation.detail
        );
        // The MaybeNull filter also breaks work-conservation certainty.
        assert_ne!(c.work_conservation.status, PropStatus::Proved);
        assert!(!c.clean());
    }

    #[test]
    fn no_push_program_refutes_both_liveness_properties() {
        let c = cert("SET(R1, R1 + 1);");
        assert_eq!(c.work_conservation.status, PropStatus::Refuted);
        assert!(!c.work_conservation.witness.is_empty());
        assert_eq!(c.starvation.status, PropStatus::Refuted);
        assert_eq!(c.dup_bound.render(), "0");
        assert!(c.allowed_ids.is_empty());
    }

    #[test]
    fn redundant_broadcast_has_linear_dup_bound() {
        let c = cert(REDUNDANT);
        assert_eq!(c.dup_bound.render(), "n_subflows");
        assert_eq!(c.dup_cap, VerifyConfig::default().max_subflows);
        assert_eq!(c.redundancy.status, PropStatus::Proved);
        // The unguarded DROP-side POP is guarded here; the TOP is not a pop.
        assert!(c.pops_fully_guarded);
    }

    #[test]
    fn inline_pop_in_loop_is_not_charged_loop_multiplicity() {
        // Each iteration pops a fresh packet: per-packet dup stays 1, and
        // the loop-gated constant is dominated by nothing bigger.
        let c = cert("FOREACH (VAR sbf IN SUBFLOWS) { sbf.PUSH(Q.POP()); }");
        assert_eq!(c.dup_bound.render(), "1");
    }

    #[test]
    fn loop_invariant_packet_is_charged_loop_multiplicity() {
        let c = cert(
            "VAR skb = Q.POP();
             FOREACH (VAR sbf IN SUBFLOWS) { sbf.PUSH(skb); }",
        );
        assert_eq!(c.dup_bound.render(), "n_subflows");
    }

    #[test]
    fn rq_pop_guarded_by_top_null_check_is_proved() {
        let c = cert(
            "VAR rqSkb = RQ.TOP;
             IF (rqSkb != NULL AND !SUBFLOWS.EMPTY) {
                 SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(RQ.POP());
                 RETURN;
             }",
        );
        assert_eq!(
            c.reinjection.status,
            PropStatus::Proved,
            "{:?}",
            c.reinjection
        );
        assert!(c.pops_fully_guarded);
    }

    #[test]
    fn unguarded_rq_pop_is_not_proved() {
        let c = cert("VAR p = RQ.POP(); IF (p != NULL) { SUBFLOWS.GET(0).PUSH(p); }");
        assert_eq!(c.reinjection.status, PropStatus::Unknown);
        assert!(!c.pops_fully_guarded);
    }

    #[test]
    fn weakenings_flip_the_expected_verdicts() {
        // assume-loops-run: a loop over a possibly-empty filtered list is
        // treated as executing, wrongly proving work-conservation.
        let filtered_loop = "FOREACH (VAR sbf IN SUBFLOWS.FILTER(s => s.RTT < 0)) {
                 sbf.PUSH(Q.TOP);
             }";
        assert_ne!(
            cert(filtered_loop).work_conservation.status,
            PropStatus::Proved
        );
        assert_eq!(
            cert_weakened(filtered_loop, Some(PropWeakening::AssumeLoopsRun))
                .work_conservation
                .status,
            PropStatus::Proved
        );

        // ignore-nullable-operands: a maybe-NULL push counts as definite.
        let maybe_null_push = "VAR s = SUBFLOWS.FILTER(x => x.ID == 0).MIN(x => x.RTT);
             s.PUSH(Q.TOP);";
        assert_eq!(
            cert(maybe_null_push).work_conservation.status,
            PropStatus::Unknown
        );
        assert_eq!(
            cert_weakened(maybe_null_push, Some(PropWeakening::IgnoreNullableOperands))
                .work_conservation
                .status,
            PropStatus::Proved
        );

        // ignore-loop-multiplicity: the broadcast claims dup 1.
        assert_eq!(
            cert_weakened(REDUNDANT, Some(PropWeakening::IgnoreLoopMultiplicity))
                .dup_bound
                .render(),
            "1"
        );

        // treat-transient-as-id: an RTT filter wrongly narrows the
        // allowed-id set and refutes starvation-freedom.
        let rtt_filter = "VAR s = SUBFLOWS.FILTER(x => x.RTT == 5).MIN(x => x.RTT);
             IF (s != NULL AND !Q.EMPTY) { s.PUSH(Q.POP()); }";
        assert_eq!(cert(rtt_filter).starvation.status, PropStatus::Proved);
        let weakened = cert_weakened(rtt_filter, Some(PropWeakening::TreatTransientAsId));
        assert_eq!(weakened.starvation.status, PropStatus::Refuted);
        assert_eq!(weakened.allowed_ids.render(), "{5}");

        // assume-pops-guarded: an unguarded pop is reported guarded.
        let unguarded = "VAR p = Q.POP(); IF (p != NULL) { SUBFLOWS.GET(0).PUSH(p); }";
        assert!(!cert(unguarded).pops_fully_guarded);
        assert!(
            cert_weakened(unguarded, Some(PropWeakening::AssumePopsGuarded)).pops_fully_guarded
        );

        // octagon-drop-relations: the contradictory relational guard pair
        // (R1 < R2 then R1 >= R2) kills the no-push RETURN path only when
        // the octagon tracks the R1/R2 relation, so dropping it loses the
        // work-conservation proof.
        let relational_guard = "IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) {
                 IF (R1 < R2) {
                     IF (R1 >= R2) { RETURN; }
                     SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP());
                 } ELSE {
                     SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP());
                 }
             }";
        assert_eq!(
            cert(relational_guard).work_conservation.status,
            PropStatus::Proved
        );
        assert_ne!(
            cert_weakened(relational_guard, Some(PropWeakening::OctagonDropRelations))
                .work_conservation
                .status,
            PropStatus::Proved
        );
    }

    #[test]
    fn poly_algebra_saturates_and_renders() {
        assert_eq!(Poly::N.mul(Poly::N).render(), "n_subflows^2");
        assert_eq!(
            Poly::N.mul(Poly::N).mul(Poly::N).n2,
            u64::MAX,
            "cubic saturates"
        );
        let p = Poly { c: 1, n: 2, n2: 0 };
        assert_eq!(p.render(), "2*n_subflows + 1");
        assert_eq!(p.eval(10), 21);
        assert_eq!(Poly::constant(u64::MAX).add(Poly::ONE).c, u64::MAX);
    }

    #[test]
    fn dup_bound_domination_respects_loop_gating() {
        // A loop-gated constant 1 is dominated by n_subflows (for n >= 1
        // the linear term wins; at n = 0 the gated site cannot execute).
        let gated_one = DupTerm {
            poly: Poly::ONE,
            loop_gated: true,
        };
        let linear = DupTerm {
            poly: Poly::N,
            loop_gated: true,
        };
        let b = DupBound::simplify(vec![gated_one, linear]);
        assert_eq!(b.render(), "n_subflows");
        // An ungated constant is NOT dominated: at n = 1 it may exceed...
        let ungated_two = DupTerm {
            poly: Poly { c: 2, n: 0, n2: 0 },
            loop_gated: false,
        };
        let b = DupBound::simplify(vec![ungated_two, linear]);
        assert_eq!(b.render(), "max(2, n_subflows)");
        assert_eq!(b.eval(1), 2);
        assert_eq!(b.eval(5), 5);
    }

    #[test]
    fn certificate_renders_human_and_json() {
        let c = cert(MIN_RTT);
        let human = c.render_human("minRtt");
        assert!(human.contains("minRtt: property certificate"));
        assert!(human.contains("work-conservation: PROVED"));
        assert!(human.contains("dup-bound: 1"));
        let json = c.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"work_conservation\":{\"status\":\"proved\""));
        assert!(json.contains("\"pops_fully_guarded\":true"));
        // Refutations carry their witness in JSON too.
        let s = cert(STARVER);
        assert!(s.render_json().contains("\"witness\":[{\"line\":"));
        // And as warning-severity spanned diagnostics.
        let diags = s.diagnostics();
        assert!(diags
            .iter()
            .any(|d| d.lint == Lint::SubflowStarvation && d.severity == Severity::Warning));
    }
}
