//! Structured diagnostics and the admission verdict.
//!
//! Every finding of the abstract interpreter and the syntactic lint pass
//! is a [`Diagnostic`]: a [`Lint`] (the catalogue entry), a [`Severity`],
//! a source position, and a human-readable message. A [`Verdict`] bundles
//! the diagnostics with the certified worst-case step bound; a program is
//! *admitted* iff no diagnostic has [`Severity::Error`].

use crate::error::Pos;
use std::fmt;

/// The lint catalogue: every distinct finding the verifier can report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lint {
    /// `PUSH` with a provably-`NULL` subflow or packet operand.
    PushNull,
    /// `PUSH` with a possibly-`NULL` operand (graceful no-op at runtime).
    PushMaybeNull,
    /// Property access (or `SENT_ON`/`HAS_WINDOW_FOR`) on a reference that
    /// may be `NULL`; reads of `NULL` yield 0 at runtime.
    NullPropAccess,
    /// Division or modulo with a provably-zero divisor.
    DivByZero,
    /// Division or modulo with a possibly-zero divisor (yields 0).
    DivMaybeZero,
    /// `POP()` from a provably-empty queue view.
    PopEmpty,
    /// `POP()` from a possibly-empty queue view (yields `NULL`).
    PopMaybeEmpty,
    /// A branch that can never execute given the proven value ranges.
    DeadBranch,
    /// A register written by the program but never read by it.
    RegisterNeverRead,
    /// A popped packet that is never `PUSH`ed or `DROP`ped — it is hidden
    /// from every queue view for the rest of the execution without being
    /// scheduled.
    PopWithoutPush,
    /// Scan nesting deeper than the admission threshold.
    ScanDepth,
    /// Bytecode reads a register or stack slot on a path where it was
    /// never written (bytecode verifier).
    UninitRead,
    /// Bytecode that no execution can reach (bytecode verifier).
    UnreachableCode,
    /// A helper call whose argument kinds or result use violate the typed
    /// helper signature (bytecode verifier).
    HelperSignature,
    /// Arithmetic or ordered comparison on a subflow/packet handle
    /// (bytecode verifier).
    HandleArith,
    /// A bytecode loop whose termination the verifier cannot establish
    /// (bytecode verifier).
    UnboundedLoop,
    /// Translation validation failure: the compiled bytecode disagrees
    /// with the HIR admission certificate (step bound or helper audit),
    /// indicating a codegen/regalloc bug.
    Miscompile,
    /// An optimizer pass produced an image the re-run verifier or the
    /// translation validator rejects (or one whose certified step bound
    /// increased); the pass was rolled back (bytecode optimizer).
    Misoptimization,
    /// Work-conservation property: whether every path through the program
    /// reaches a definite `PUSH` when the send queue is non-empty and a
    /// subflow exists (property verifier; see `crate::verify::props`).
    WorkConservation,
    /// Per-subflow starvation property: some subflow identity can never be
    /// the target of any `PUSH` under any environment (property verifier).
    SubflowStarvation,
    /// Redundancy-bound property: the closed-form maximum number of times
    /// one packet can be pushed during a single upcall (property verifier).
    RedundancyBound,
    /// Reinjection-safety property: whether every reinjection-queue `POP`
    /// is guarded by an emptiness check (property verifier).
    ReinjectionSafety,
}

impl Lint {
    /// The stable kebab-case name of the lint (used in JSON output).
    pub fn name(self) -> &'static str {
        match self {
            Lint::PushNull => "push-null",
            Lint::PushMaybeNull => "push-maybe-null",
            Lint::NullPropAccess => "null-prop-access",
            Lint::DivByZero => "div-by-zero",
            Lint::DivMaybeZero => "div-maybe-zero",
            Lint::PopEmpty => "pop-empty",
            Lint::PopMaybeEmpty => "pop-maybe-empty",
            Lint::DeadBranch => "dead-branch",
            Lint::RegisterNeverRead => "register-never-read",
            Lint::PopWithoutPush => "pop-without-push",
            Lint::ScanDepth => "scan-depth",
            Lint::UninitRead => "uninit-read",
            Lint::UnreachableCode => "unreachable-code",
            Lint::HelperSignature => "helper-signature",
            Lint::HandleArith => "handle-arith",
            Lint::UnboundedLoop => "unbounded-loop",
            Lint::Miscompile => "miscompile",
            Lint::Misoptimization => "misoptimization",
            Lint::WorkConservation => "work-conservation",
            Lint::SubflowStarvation => "subflow-starvation",
            Lint::RedundancyBound => "redundancy-bound",
            Lint::ReinjectionSafety => "reinjection-safety",
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How serious a diagnostic is. Only [`Severity::Error`] blocks admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: legal and common, but worth knowing.
    Info,
    /// Suspicious: almost certainly a mistake, yet harmless at runtime.
    Warning,
    /// Rejected: the program is not admitted to the transport stack.
    Error,
}

impl Severity {
    /// Lower-case display name.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One verifier finding, anchored to a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which catalogue entry this is.
    pub lint: Lint,
    /// How serious it is.
    pub severity: Severity,
    /// Source position of the offending construct.
    pub pos: Pos,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] at {}: {}",
            self.severity, self.lint, self.pos, self.message
        )
    }
}

/// The result of verifying one program: the full diagnostic list plus the
/// certified worst-case step bound (valid for every backend under the
/// verifier's environment caps).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// All diagnostics, sorted by source position.
    pub diagnostics: Vec<Diagnostic>,
    /// Worst-case steps one execution can take on any backend, assuming
    /// the environment stays within the configured cardinality caps.
    pub certified_step_bound: u64,
}

impl Verdict {
    /// True iff no diagnostic has [`Severity::Error`]: the program may run.
    pub fn admitted(&self) -> bool {
        !self
            .diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Number of diagnostics at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Multi-line human-readable report.
    pub fn render_human(&self, name: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{name}: {} (certified step bound: {})\n",
            if self.admitted() {
                "ADMITTED"
            } else {
                "REJECTED"
            },
            self.certified_step_bound,
        ));
        for d in &self.diagnostics {
            out.push_str(&format!("  {d}\n"));
        }
        if self.diagnostics.is_empty() {
            out.push_str("  no findings\n");
        }
        out
    }

    /// Single-object JSON report (hand-rolled; the crate has no serde).
    pub fn render_json(&self, name: &str) -> String {
        let mut out = String::new();
        out.push_str("{\"name\":");
        json_string(&mut out, name);
        out.push_str(&format!(
            ",\"admitted\":{},\"certified_step_bound\":{},\"diagnostics\":[",
            self.admitted(),
            self.certified_step_bound
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"lint\":\"{}\",\"severity\":\"{}\",\"line\":{},\"col\":{},\"message\":",
                d.lint, d.severity, d.pos.line, d.pos.col
            ));
            json_string(&mut out, &d.message);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Appends `s` as a JSON string literal (quotes, escapes).
pub(crate) fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(sev: Severity) -> Diagnostic {
        Diagnostic {
            lint: Lint::PushNull,
            severity: sev,
            pos: Pos { line: 2, col: 5 },
            message: "pushed packet is provably NULL".into(),
        }
    }

    #[test]
    fn admission_requires_no_errors() {
        let v = Verdict {
            diagnostics: vec![diag(Severity::Info), diag(Severity::Warning)],
            certified_step_bound: 100,
        };
        assert!(v.admitted());
        let v = Verdict {
            diagnostics: vec![diag(Severity::Error)],
            certified_step_bound: 100,
        };
        assert!(!v.admitted());
    }

    #[test]
    fn human_rendering_includes_bound_and_findings() {
        let v = Verdict {
            diagnostics: vec![diag(Severity::Error)],
            certified_step_bound: 4096,
        };
        let text = v.render_human("bad");
        assert!(text.contains("bad: REJECTED (certified step bound: 4096)"));
        assert!(text.contains("error[push-null] at 2:5"));
    }

    #[test]
    fn json_rendering_is_wellformed() {
        let v = Verdict {
            diagnostics: vec![Diagnostic {
                lint: Lint::DivMaybeZero,
                severity: Severity::Info,
                pos: Pos { line: 1, col: 9 },
                message: "divisor \"x\" may be 0".into(),
            }],
            certified_step_bound: 64,
        };
        let json = v.render_json("t");
        assert!(json.starts_with("{\"name\":\"t\",\"admitted\":true"));
        assert!(json.contains("\"lint\":\"div-maybe-zero\""));
        assert!(json.contains("\\\"x\\\""));
        assert!(json.ends_with("]}"));
    }
}
