//! # progmp-core
//!
//! The ProgMP scheduler programming model: a Rust reproduction of the
//! language, runtime, and execution backends from *"A Programming Model
//! for Application-defined Multipath TCP Scheduling"* (Frömmgen et al.,
//! Middleware '17).
//!
//! The crate provides:
//!
//! * the **specification language** — lexer, parser, static type system,
//!   and the semantic restrictions (single assignment, side-effect
//!   isolation) that make schedulers safe by construction;
//! * the **environment model** (`Q`/`QU`/`RQ` queues, subflows, registers)
//!   as the [`env::SchedulerEnv`] trait;
//! * three **execution backends**: a tree-walking interpreter, an
//!   ahead-of-time closure compiler, and an eBPF-flavoured bytecode VM
//!   with verifier and linear-scan register allocation;
//! * the **runtime** that buffers side effects and enforces the "no lost
//!   packets" guarantee.
//!
//! ## Quick example
//!
//! ```
//! use progmp_core::{compile, Backend};
//! use progmp_core::testenv::MockEnv;
//! use progmp_core::env::{QueueKind, SubflowProp};
//!
//! // The paper's Fig. 3 scheduler: push on the subflow with minimum RTT.
//! let program = compile(
//!     "IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) {
//!          SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP()); }",
//! ).unwrap();
//! let mut instance = program.instantiate(Backend::Interpreter);
//!
//! let mut env = MockEnv::new();
//! env.add_subflow(0);
//! env.set_subflow_prop(0, SubflowProp::Rtt, 10_000);
//! env.add_subflow(1);
//! env.set_subflow_prop(1, SubflowProp::Rtt, 40_000);
//! env.push_packet(QueueKind::SendQueue, 1, 0, 1400);
//!
//! instance.execute(&mut env).unwrap();
//! assert_eq!(env.transmissions.len(), 1);
//! assert_eq!(env.transmissions[0].0.0, 0); // min-RTT subflow
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod env;
pub mod error;
pub mod exec;
pub mod hir;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod program;
pub mod sema;
pub mod testenv;
pub mod token;
pub mod types;

pub mod analysis;
pub mod aot;
pub mod bytecode;
pub mod codegen;
pub mod opt;
pub mod optimizer;
pub mod regalloc;
pub mod verify;
pub mod vm;

pub use error::{CompileError, ExecError};
pub use exec::{ExecCtx, ExecStats, DEFAULT_STEP_BUDGET};
pub use program::{
    compile, compile_named, compile_with_options, Backend, CompileOptions, InstanceStats,
    SchedulerInstance, SchedulerProgram,
};
pub use types::Type;
pub use verify::{
    Diagnostic, IdSet, Lint, PropStatus, PropertyCertificate, Severity, Verdict, VerifyConfig,
};
