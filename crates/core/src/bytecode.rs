//! The eBPF-flavoured bytecode ISA (execution environment #3, paper §4.1).
//!
//! The paper cross-compiles the scheduler IR *inside the kernel* to eBPF
//! assembly and lets the kernel JIT produce native code. We reproduce the
//! architecture with a safe register VM using the same conventions as
//! eBPF:
//!
//! * eleven 64-bit registers `r0`–`r10`;
//! * `r0` holds helper return values and scratch results;
//! * `r1`–`r5` are helper-call argument registers, clobbered by calls;
//! * `r6`–`r9` are preserved across calls and are the allocatable set for
//!   the linear-scan register allocator;
//! * `r10` is the (read-only) frame pointer; spill slots live in a
//!   bounded stack;
//! * two-address ALU ops, compare-and-jump branches, and helper calls
//!   into the scheduling runtime ([`crate::exec::ExecCtx`]).
//!
//! Division or modulo by zero yields zero, as in eBPF.

use crate::env::{PacketProp, QueueKind, SubflowProp};
use crate::error::Pos;
use std::fmt;

/// Number of machine registers (`r0` .. `r10`).
pub const NUM_MACH_REGS: usize = 11;

/// First allocatable (call-preserved) register, `r6`.
pub const FIRST_ALLOCATABLE: u8 = 6;

/// Number of allocatable registers (`r6`..`r9`).
pub const NUM_ALLOCATABLE: usize = 4;

/// Maximum stack slots (each 8 bytes). The eBPF stack is 512 bytes; we
/// keep the same budget: 64 slots.
pub const MAX_STACK_SLOTS: usize = 64;

/// Arithmetic-logic operations (two-address: `dst = dst op src`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division; by zero yields 0.
    Div,
    /// Remainder; by zero yields 0.
    Rem,
    /// Bitwise and (used for boolean `AND`).
    And,
    /// Bitwise or (used for boolean `OR`).
    Or,
    /// Bitwise xor (used for boolean `NOT` via `^ 1`).
    Xor,
}

/// Branch conditions (signed comparisons).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cond {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<` (signed)
    Lt,
    /// `<=` (signed)
    Le,
    /// `>` (signed)
    Gt,
    /// `>=` (signed)
    Ge,
}

impl Cond {
    /// Evaluates the condition on two signed values.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
            Cond::Ge => a >= b,
        }
    }
}

/// Runtime helper functions callable from bytecode.
///
/// Arguments are passed in `r1`..`r5`; the result (if any) is returned in
/// `r0`. This mirrors the eBPF helper-call convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Helper {
    /// `r0 = registers[r1]`
    GetReg,
    /// `set registers[r1] = r2`
    SetReg,
    /// `r0 = number of subflows`
    SubflowCount,
    /// `r0 = handle of subflow at index r1, or NULL_HANDLE`
    SubflowAt,
    /// `r0 = property r2 of subflow r1`
    SubflowProp,
    /// `r0 = raw length of queue r1`
    QueueLen,
    /// `r0 = packet at index r2 of queue r1 (NULL_HANDLE if removed/oob)`
    QueueGet,
    /// `r0 = property r2 of packet r1`
    PacketProp,
    /// `r0 = packet r1 sent on subflow r2`
    SentOn,
    /// `r0 = subflow r1 has window for packet r2`
    HasWindowFor,
    /// `pop packet r1 from its queue view`
    Pop,
    /// `push packet r2 on subflow r1`
    Push,
    /// `drop packet r1`
    DropPkt,
}

impl Helper {
    /// Number of argument registers the helper consumes.
    pub fn arg_count(self) -> usize {
        match self {
            Helper::SubflowCount => 0,
            Helper::GetReg
            | Helper::SubflowAt
            | Helper::QueueLen
            | Helper::Pop
            | Helper::DropPkt => 1,
            Helper::SetReg
            | Helper::SubflowProp
            | Helper::QueueGet
            | Helper::PacketProp
            | Helper::SentOn
            | Helper::HasWindowFor
            | Helper::Push => 2,
        }
    }

    /// Whether the helper produces a value in `r0`.
    pub fn has_result(self) -> bool {
        !matches!(
            self,
            Helper::SetReg | Helper::Pop | Helper::Push | Helper::DropPkt
        )
    }
}

/// One bytecode instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Insn {
    /// `dst = imm`
    MovImm {
        /// Destination register.
        dst: u8,
        /// Immediate value.
        imm: i64,
    },
    /// `dst = src`
    Mov {
        /// Destination register.
        dst: u8,
        /// Source register.
        src: u8,
    },
    /// `dst = dst op src`
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination (and left operand) register.
        dst: u8,
        /// Right operand register.
        src: u8,
    },
    /// `dst = dst op imm`
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination (and left operand) register.
        dst: u8,
        /// Immediate right operand.
        imm: i64,
    },
    /// `dst = -dst`
    Neg {
        /// Destination register.
        dst: u8,
    },
    /// Unconditional relative jump. `off` is relative to the *next*
    /// instruction (eBPF convention); `off = 0` is a no-op.
    Ja {
        /// Relative offset.
        off: i32,
    },
    /// Conditional relative jump comparing two registers.
    Jmp {
        /// Condition.
        cond: Cond,
        /// Left operand register.
        lhs: u8,
        /// Right operand register.
        rhs: u8,
        /// Relative offset (taken branch).
        off: i32,
    },
    /// Conditional relative jump comparing a register with an immediate.
    JmpImm {
        /// Condition.
        cond: Cond,
        /// Left operand register.
        lhs: u8,
        /// Immediate right operand.
        imm: i64,
        /// Relative offset (taken branch).
        off: i32,
    },
    /// Helper call: arguments in `r1`..`r5`, result in `r0`;
    /// `r1`..`r5` are clobbered.
    Call {
        /// The helper to invoke.
        helper: Helper,
    },
    /// `dst = stack[slot]`
    Ld {
        /// Destination register.
        dst: u8,
        /// Stack slot index.
        slot: u16,
    },
    /// `stack[slot] = src`
    St {
        /// Stack slot index.
        slot: u16,
        /// Source register.
        src: u8,
    },
    /// Terminate execution.
    Exit,
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Insn::MovImm { dst, imm } => write!(f, "r{dst} = {imm}"),
            Insn::Mov { dst, src } => write!(f, "r{dst} = r{src}"),
            Insn::Alu { op, dst, src } => write!(f, "r{dst} {op:?}= r{src}"),
            Insn::AluImm { op, dst, imm } => write!(f, "r{dst} {op:?}= {imm}"),
            Insn::Neg { dst } => write!(f, "r{dst} = -r{dst}"),
            Insn::Ja { off } => write!(f, "ja {off:+}"),
            Insn::Jmp {
                cond,
                lhs,
                rhs,
                off,
            } => write!(f, "if r{lhs} {cond:?} r{rhs} ja {off:+}"),
            Insn::JmpImm {
                cond,
                lhs,
                imm,
                off,
            } => write!(f, "if r{lhs} {cond:?} {imm} ja {off:+}"),
            Insn::Call { helper } => write!(f, "call {helper:?}"),
            Insn::Ld { dst, slot } => write!(f, "r{dst} = stack[{slot}]"),
            Insn::St { slot, src } => write!(f, "stack[{slot}] = r{src}"),
            Insn::Exit => write!(f, "exit"),
        }
    }
}

/// Encodings of enum operands used in helper calls.
impl SubflowProp {
    /// Stable integer code for bytecode helper calls.
    pub fn code(self) -> i64 {
        SubflowProp::ALL
            .iter()
            .position(|p| *p == self)
            .expect("property present in ALL") as i64
    }

    /// Decodes [`SubflowProp::code`].
    pub fn from_code(code: i64) -> Option<SubflowProp> {
        usize::try_from(code)
            .ok()
            .and_then(|i| SubflowProp::ALL.get(i).copied())
    }
}

/// Encodings of enum operands used in helper calls.
impl PacketProp {
    /// Stable integer code for bytecode helper calls.
    pub fn code(self) -> i64 {
        PacketProp::ALL
            .iter()
            .position(|p| *p == self)
            .expect("property present in ALL") as i64
    }

    /// Decodes [`PacketProp::code`].
    pub fn from_code(code: i64) -> Option<PacketProp> {
        usize::try_from(code)
            .ok()
            .and_then(|i| PacketProp::ALL.get(i).copied())
    }
}

/// Encodings of enum operands used in helper calls.
impl QueueKind {
    /// Stable integer code for bytecode helper calls.
    pub fn code(self) -> i64 {
        QueueKind::ALL
            .iter()
            .position(|q| *q == self)
            .expect("queue present in ALL") as i64
    }

    /// Decodes [`QueueKind::code`].
    pub fn from_code(code: i64) -> Option<QueueKind> {
        usize::try_from(code)
            .ok()
            .and_then(|i| QueueKind::ALL.get(i).copied())
    }
}

/// Instruction → source-span side table.
///
/// Parallel to [`BytecodeProgram::code`]: `spans[pc]` is the source
/// position of the construct that instruction `pc` was compiled from.
/// Kept out of [`BytecodeProgram`] itself so the executable image stays a
/// pure ISA artifact (and existing hand-built programs keep working); the
/// bytecode verifier uses this table to attach real positions to
/// diagnostics, like BTF line info attached to an eBPF object.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DebugTable {
    /// Source position per instruction, indexed by pc.
    pub spans: Vec<Pos>,
}

impl DebugTable {
    /// The source span for `pc`, or `0:0` when the table has no entry
    /// (hand-built programs, out-of-range pc).
    pub fn pos(&self, pc: usize) -> Pos {
        self.spans
            .get(pc)
            .copied()
            .unwrap_or(Pos { line: 0, col: 0 })
    }
}

/// A verified bytecode program together with its stack requirement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BytecodeProgram {
    /// The instruction stream; always ends with [`Insn::Exit`].
    pub code: Vec<Insn>,
    /// Number of stack slots used by spills.
    pub stack_slots: u16,
}

impl BytecodeProgram {
    /// Approximate in-memory size in bytes (for §4.3 accounting).
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.code.len() * std::mem::size_of::<Insn>()
    }

    /// Renders a human-readable disassembly (the proc-style debugging
    /// interface of paper §4.1 exposes the same listing).
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for (i, insn) in self.code.iter().enumerate() {
            out.push_str(&format!("{i:4}: {insn}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helper_arity() {
        assert_eq!(Helper::SubflowCount.arg_count(), 0);
        assert_eq!(Helper::Push.arg_count(), 2);
        assert!(Helper::QueueGet.has_result());
        assert!(!Helper::Push.has_result());
    }

    #[test]
    fn cond_eval() {
        assert!(Cond::Lt.eval(-1, 0), "comparisons are signed");
        assert!(Cond::Ge.eval(3, 3));
        assert!(!Cond::Gt.eval(3, 3));
        assert!(Cond::Ne.eval(1, 2));
    }

    #[test]
    fn prop_codes_round_trip() {
        for p in SubflowProp::ALL {
            assert_eq!(SubflowProp::from_code(p.code()), Some(p));
        }
        for p in PacketProp::ALL {
            assert_eq!(PacketProp::from_code(p.code()), Some(p));
        }
        for q in QueueKind::ALL {
            assert_eq!(QueueKind::from_code(q.code()), Some(q));
        }
        assert_eq!(SubflowProp::from_code(-1), None);
        assert_eq!(QueueKind::from_code(99), None);
    }

    #[test]
    fn disassembly_is_stable() {
        let prog = BytecodeProgram {
            code: vec![
                Insn::MovImm { dst: 6, imm: 3 },
                Insn::JmpImm {
                    cond: Cond::Lt,
                    lhs: 6,
                    imm: 10,
                    off: 1,
                },
                Insn::Exit,
                Insn::Call {
                    helper: Helper::SubflowCount,
                },
                Insn::Exit,
            ],
            stack_slots: 0,
        };
        let dis = prog.disassemble();
        assert!(dis.contains("r6 = 3"));
        assert!(dis.contains("call SubflowCount"));
    }
}
