//! Typed, arena-allocated intermediate representation.
//!
//! [`crate::sema`] lowers the untyped AST into this HIR after resolving
//! names, properties, and types. All three execution backends (the
//! interpreter, the AOT closure compiler, and the eBPF-flavoured bytecode
//! compiler) consume the HIR.
//!
//! Nodes reference children by arena index ([`ExprId`], [`StmtId`]) so the
//! IR is trivially cloneable and cheap to traverse without pointer chasing.

use crate::ast::{BinOp, UnOp};
use crate::env::{PacketProp, QueueKind, RegId, SubflowProp};
use crate::error::Pos;
use crate::types::Type;

/// Index of an expression node in [`HProgram::exprs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExprId(pub u32);

/// Index of a statement node in [`HProgram::stmts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StmtId(pub u32);

/// Index of a variable slot in the execution frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarSlot(pub u32);

/// A typed expression node.
#[derive(Debug, Clone, PartialEq)]
pub enum HExpr {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// `NULL` of packet type.
    NullPacket,
    /// `NULL` of subflow type.
    NullSubflow,
    /// Read a scheduler register.
    ReadReg(RegId),
    /// Read a variable slot.
    ReadVar(VarSlot),
    /// The builtin subflow set.
    Subflows,
    /// A builtin queue.
    Queue(QueueKind),
    /// Subflow property access.
    SubflowProp {
        /// Subflow operand.
        sbf: ExprId,
        /// Resolved property.
        prop: SubflowProp,
    },
    /// Packet property access.
    PacketProp {
        /// Packet operand.
        pkt: ExprId,
        /// Resolved property.
        prop: PacketProp,
    },
    /// `pkt.SENT_ON(sbf)`.
    SentOn {
        /// Packet operand.
        pkt: ExprId,
        /// Subflow operand.
        sbf: ExprId,
    },
    /// `sbf.HAS_WINDOW_FOR(pkt)`.
    HasWindowFor {
        /// Subflow operand.
        sbf: ExprId,
        /// Packet operand.
        pkt: ExprId,
    },
    /// `FILTER` over a subflow list.
    ListFilter {
        /// The list operand.
        list: ExprId,
        /// Lambda binding slot.
        var: VarSlot,
        /// Boolean predicate.
        pred: ExprId,
    },
    /// `FILTER` over a packet queue (evaluated lazily / fused).
    QueueFilter {
        /// The queue operand.
        queue: ExprId,
        /// Lambda binding slot.
        var: VarSlot,
        /// Boolean predicate.
        pred: ExprId,
    },
    /// `MIN`/`MAX` over a subflow list; `NULL` when empty.
    ListMinMax {
        /// The list operand.
        list: ExprId,
        /// Lambda binding slot.
        var: VarSlot,
        /// Integer key.
        key: ExprId,
        /// True for `MAX`.
        is_max: bool,
    },
    /// `MIN`/`MAX` over a packet queue; `NULL` when empty.
    QueueMinMax {
        /// The queue operand.
        queue: ExprId,
        /// Lambda binding slot.
        var: VarSlot,
        /// Integer key.
        key: ExprId,
        /// True for `MAX`.
        is_max: bool,
    },
    /// `SUM` over a subflow list.
    ListSum {
        /// The list operand.
        list: ExprId,
        /// Lambda binding slot.
        var: VarSlot,
        /// Integer key.
        key: ExprId,
    },
    /// `SUM` over a packet queue.
    QueueSum {
        /// The queue operand.
        queue: ExprId,
        /// Lambda binding slot.
        var: VarSlot,
        /// Integer key.
        key: ExprId,
    },
    /// `COUNT` of a subflow list.
    ListCount(ExprId),
    /// `COUNT` of a packet queue.
    QueueCount(ExprId),
    /// `EMPTY` of a subflow list.
    ListEmpty(ExprId),
    /// `EMPTY` of a packet queue.
    QueueEmpty(ExprId),
    /// `GET(i)` on a subflow list; `NULL` out of range.
    ListGet {
        /// The list operand.
        list: ExprId,
        /// Zero-based index.
        index: ExprId,
    },
    /// `TOP` of a packet queue; `NULL` when empty. Does not remove.
    QueueTop(ExprId),
    /// `POP()` of a packet queue; `NULL` when empty. Removes the packet
    /// from the queue view for the remainder of the execution.
    QueuePop(ExprId),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: ExprId,
    },
    /// Binary operation. `operand_ty` records the (common) operand type,
    /// which matters for `==`/`!=` on nullable reference types.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: ExprId,
        /// Right operand.
        rhs: ExprId,
        /// Common operand type.
        operand_ty: Type,
    },
}

/// A typed statement node.
#[derive(Debug, Clone, PartialEq)]
pub enum HStmt {
    /// Variable declaration into `slot`.
    VarDecl {
        /// Destination slot.
        slot: VarSlot,
        /// Initializer.
        init: ExprId,
    },
    /// Conditional.
    If {
        /// Boolean condition.
        cond: ExprId,
        /// Then-branch statements.
        then_body: Vec<StmtId>,
        /// Else-branch statements.
        else_body: Vec<StmtId>,
    },
    /// Iteration over a subflow list, binding `slot` per element.
    Foreach {
        /// Loop variable slot.
        slot: VarSlot,
        /// Subflow list to iterate.
        list: ExprId,
        /// Loop body.
        body: Vec<StmtId>,
    },
    /// Register write.
    SetReg {
        /// Destination register.
        reg: RegId,
        /// Integer value.
        value: ExprId,
    },
    /// Schedule a packet on a subflow. A `NULL` subflow or packet makes
    /// this a no-op (graceful failure by design).
    Push {
        /// Subflow operand.
        target: ExprId,
        /// Packet operand.
        packet: ExprId,
    },
    /// Discard a packet from the schedulable queues. `NULL` is a no-op.
    Drop {
        /// Packet operand.
        packet: ExprId,
    },
    /// End the execution.
    Return,
}

/// A complete lowered program.
#[derive(Debug, Clone, PartialEq)]
pub struct HProgram {
    /// Expression arena.
    pub exprs: Vec<HExpr>,
    /// Type of each expression, parallel to `exprs`.
    pub expr_ty: Vec<Type>,
    /// Source position of each expression, parallel to `exprs`. The
    /// optimizer rewrites nodes in place (never appends), so these stay
    /// aligned across the whole pipeline and back diagnostics in
    /// [`crate::verify`].
    pub expr_pos: Vec<Pos>,
    /// Statement arena.
    pub stmts: Vec<HStmt>,
    /// Source position of each statement, parallel to `stmts`.
    pub stmt_pos: Vec<Pos>,
    /// Top-level statement list.
    pub body: Vec<StmtId>,
    /// Number of variable slots in the execution frame (including lambda
    /// and loop bindings).
    pub n_slots: usize,
    /// Type of each variable slot.
    pub slot_ty: Vec<Type>,
    /// For slots of aggregate type, the initializer expression. Compiled
    /// backends re-expand these at each use site (aggregates are fused
    /// into loops and never materialize); see DESIGN.md §3.
    pub aggregate_init: Vec<Option<ExprId>>,
}

impl HProgram {
    /// The expression node for `id`.
    pub fn expr(&self, id: ExprId) -> &HExpr {
        &self.exprs[id.0 as usize]
    }

    /// The type of expression `id`.
    pub fn ty(&self, id: ExprId) -> Type {
        self.expr_ty[id.0 as usize]
    }

    /// The statement node for `id`.
    pub fn stmt(&self, id: StmtId) -> &HStmt {
        &self.stmts[id.0 as usize]
    }

    /// The source position of expression `id`.
    pub fn expr_pos(&self, id: ExprId) -> Pos {
        self.expr_pos[id.0 as usize]
    }

    /// The source position of statement `id`.
    pub fn stmt_pos(&self, id: StmtId) -> Pos {
        self.stmt_pos[id.0 as usize]
    }

    /// Approximate in-memory size of the lowered program in bytes, for
    /// the paper's §4.3 memory-overhead accounting.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.exprs.len() * std::mem::size_of::<HExpr>()
            + self.expr_ty.len() * std::mem::size_of::<Type>()
            + self.expr_pos.len() * std::mem::size_of::<Pos>()
            + self.stmts.capacity() * std::mem::size_of::<HStmt>()
            + self.stmt_pos.len() * std::mem::size_of::<Pos>()
            + self.body.len() * std::mem::size_of::<StmtId>()
            + self.slot_ty.len() * std::mem::size_of::<Type>()
            + self.aggregate_init.len() * std::mem::size_of::<Option<ExprId>>()
    }
}
