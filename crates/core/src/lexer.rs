//! Hand-written lexer for the scheduler specification language.
//!
//! Supports `/* ... */` block comments and `//` line comments, matching
//! the examples in the Middleware '17 paper (Fig. 10a, Fig. 12).

use crate::error::{CompileError, Pos, Stage};
use crate::token::{Token, TokenKind};

/// Tokenizes `source` into a vector of tokens terminated by [`TokenKind::Eof`].
pub fn lex(source: &str) -> Result<Vec<Token>, CompileError> {
    Lexer::new(source).run()
}

struct Lexer<'s> {
    chars: std::iter::Peekable<std::str::Chars<'s>>,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn new(source: &'s str) -> Self {
        Lexer {
            chars: source.chars().peekable(),
            line: 1,
            col: 1,
            out: Vec::new(),
        }
    }

    fn pos(&self) -> Pos {
        Pos::new(self.line, self.col)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn push(&mut self, kind: TokenKind, pos: Pos) {
        self.out.push(Token { kind, pos });
    }

    fn err(&self, pos: Pos, msg: impl Into<String>) -> CompileError {
        CompileError::new(Stage::Lex, pos, msg)
    }

    fn run(mut self) -> Result<Vec<Token>, CompileError> {
        while let Some(c) = self.peek() {
            let pos = self.pos();
            match c {
                ' ' | '\t' | '\r' | '\n' => {
                    self.bump();
                }
                '/' => {
                    self.bump();
                    match self.peek() {
                        Some('/') => {
                            while let Some(c) = self.peek() {
                                if c == '\n' {
                                    break;
                                }
                                self.bump();
                            }
                        }
                        Some('*') => {
                            self.bump();
                            self.skip_block_comment(pos)?;
                        }
                        _ => self.push(TokenKind::Slash, pos),
                    }
                }
                '0'..='9' => self.lex_int(pos)?,
                c if c.is_ascii_alphabetic() || c == '_' => self.lex_word(pos),
                '(' => self.single(TokenKind::LParen, pos),
                ')' => self.single(TokenKind::RParen, pos),
                '{' => self.single(TokenKind::LBrace, pos),
                '}' => self.single(TokenKind::RBrace, pos),
                ',' => self.single(TokenKind::Comma, pos),
                ';' => self.single(TokenKind::Semicolon, pos),
                '.' => self.single(TokenKind::Dot, pos),
                '+' => self.single(TokenKind::Plus, pos),
                '-' => self.single(TokenKind::Minus, pos),
                '*' => self.single(TokenKind::Star, pos),
                '%' => self.single(TokenKind::Percent, pos),
                '=' => {
                    self.bump();
                    match self.peek() {
                        Some('=') => {
                            self.bump();
                            self.push(TokenKind::Eq, pos);
                        }
                        Some('>') => {
                            self.bump();
                            self.push(TokenKind::Arrow, pos);
                        }
                        _ => self.push(TokenKind::Assign, pos),
                    }
                }
                '!' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        self.push(TokenKind::Ne, pos);
                    } else {
                        self.push(TokenKind::Bang, pos);
                    }
                }
                '<' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        self.push(TokenKind::Le, pos);
                    } else {
                        self.push(TokenKind::Lt, pos);
                    }
                }
                '>' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        self.push(TokenKind::Ge, pos);
                    } else {
                        self.push(TokenKind::Gt, pos);
                    }
                }
                other => {
                    return Err(self.err(pos, format!("unexpected character {other:?}")));
                }
            }
        }
        let pos = self.pos();
        self.push(TokenKind::Eof, pos);
        Ok(self.out)
    }

    fn single(&mut self, kind: TokenKind, pos: Pos) {
        self.bump();
        self.push(kind, pos);
    }

    fn skip_block_comment(&mut self, start: Pos) -> Result<(), CompileError> {
        loop {
            match self.bump() {
                None => return Err(self.err(start, "unterminated block comment")),
                Some('*') => {
                    if self.peek() == Some('/') {
                        self.bump();
                        return Ok(());
                    }
                }
                Some(_) => {}
            }
        }
    }

    fn lex_int(&mut self, pos: Pos) -> Result<(), CompileError> {
        let mut value: i64 = 0;
        while let Some(c) = self.peek() {
            if let Some(d) = c.to_digit(10) {
                value = value
                    .checked_mul(10)
                    .and_then(|v| v.checked_add(i64::from(d)))
                    .ok_or_else(|| self.err(pos, "integer literal overflows i64"))?;
                self.bump();
            } else if c.is_ascii_alphabetic() || c == '_' {
                return Err(self.err(pos, "identifier may not start with a digit"));
            } else {
                break;
            }
        }
        self.push(TokenKind::Int(value), pos);
        Ok(())
    }

    fn lex_word(&mut self, pos: Pos) {
        let mut word = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                word.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match TokenKind::keyword(&word) {
            Some(kind) => self.push(kind, pos),
            None => self.push(TokenKind::Ident(word), pos),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_min_rtt_example() {
        // The Fig. 3 scheduler from the paper.
        let src =
            "IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) {\n  SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP()); }";
        let ks = kinds(src);
        assert!(ks.contains(&TokenKind::If));
        assert!(ks.contains(&TokenKind::Arrow));
        assert!(ks.contains(&TokenKind::Ident("PUSH".into())));
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn distinguishes_assign_eq_arrow() {
        assert_eq!(
            kinds("= == =>"),
            vec![
                TokenKind::Assign,
                TokenKind::Eq,
                TokenKind::Arrow,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("< <= > >= != !"),
            vec![
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Ne,
                TokenKind::Bang,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("1 /* are all QU packets sent? */ 2 // trailing\n3");
        assert_eq!(
            ks,
            vec![
                TokenKind::Int(1),
                TokenKind::Int(2),
                TokenKind::Int(3),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_comment_is_error() {
        assert!(lex("/* nope").is_err());
    }

    #[test]
    fn integer_overflow_is_error() {
        assert!(lex("99999999999999999999999").is_err());
    }

    #[test]
    fn digit_prefixed_identifier_is_error() {
        assert!(lex("1abc").is_err());
    }

    #[test]
    fn positions_are_tracked() {
        let toks = lex("VAR x\n  = 1;").unwrap();
        assert_eq!(toks[0].pos, Pos::new(1, 1)); // VAR
        assert_eq!(toks[1].pos, Pos::new(1, 5)); // x
        assert_eq!(toks[2].pos, Pos::new(2, 3)); // =
    }

    #[test]
    fn unexpected_character_reports_position() {
        let err = lex("VAR x = @;").unwrap_err();
        assert_eq!(err.pos, Pos::new(1, 9));
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(
            kinds("IF ifx IN inx"),
            vec![
                TokenKind::If,
                TokenKind::Ident("ifx".into()),
                TokenKind::In,
                TokenKind::Ident("inx".into()),
                TokenKind::Eof
            ]
        );
    }
}
