//! A self-contained in-memory [`SchedulerEnv`] for tests, examples, and
//! micro-benchmarks.
//!
//! `MockEnv` models the environment semantics the real transport
//! implements: acknowledged packets vanish from all queues, pushed packets
//! move from `Q`/`RQ` to `QU`, and transmissions are recorded per subflow.
//! It performs no actual networking — `mptcp-sim` provides the full
//! event-driven substrate.

use crate::env::{
    Action, PacketProp, PacketRef, QueueKind, RegId, SchedulerEnv, SubflowId, SubflowProp,
    NUM_REGISTERS,
};
use std::collections::HashMap;

/// Mutable per-subflow state of the mock environment.
#[derive(Debug, Clone)]
pub struct MockSubflow {
    /// Identifier.
    pub id: SubflowId,
    /// Property table; unset properties read as 0.
    pub props: HashMap<SubflowProp, i64>,
    /// Whether `HAS_WINDOW_FOR` reports true (per-subflow toggle).
    pub has_window: bool,
}

/// Mutable per-packet state of the mock environment.
#[derive(Debug, Clone)]
pub struct MockPacket {
    /// Handle.
    pub id: PacketRef,
    /// Property table; unset properties read as 0.
    pub props: HashMap<PacketProp, i64>,
    /// Subflows this packet has been transmitted on.
    pub sent_on: Vec<SubflowId>,
}

/// In-memory scheduler environment with explicit state setters.
#[derive(Debug, Clone, Default)]
pub struct MockEnv {
    subflow_order: Vec<SubflowId>,
    subflows: HashMap<SubflowId, MockSubflow>,
    packets: HashMap<PacketRef, MockPacket>,
    queues: HashMap<QueueKind, Vec<PacketRef>>,
    registers: [i64; NUM_REGISTERS],
    /// Log of every `Push` applied, in order: (subflow, packet).
    pub transmissions: Vec<(SubflowId, PacketRef)>,
    /// Log of every `Drop` applied, in order.
    pub dropped: Vec<PacketRef>,
}

impl MockEnv {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a subflow with all properties zero and window available.
    pub fn add_subflow(&mut self, id: u32) -> &mut MockSubflow {
        let sid = SubflowId(id);
        self.subflow_order.push(sid);
        self.subflows.entry(sid).or_insert(MockSubflow {
            id: sid,
            props: HashMap::new(),
            has_window: true,
        });
        let sbf = self.subflows.get_mut(&sid).expect("just inserted");
        sbf.props.insert(SubflowProp::Id, i64::from(id));
        sbf
    }

    /// Removes a subflow (simulates sudden disappearance).
    pub fn remove_subflow(&mut self, id: u32) {
        let sid = SubflowId(id);
        self.subflow_order.retain(|s| *s != sid);
        self.subflows.remove(&sid);
    }

    /// Sets one property of an existing subflow.
    pub fn set_subflow_prop(&mut self, id: u32, prop: SubflowProp, value: i64) {
        if let Some(s) = self.subflows.get_mut(&SubflowId(id)) {
            s.props.insert(prop, value);
        }
    }

    /// Appends a packet with the given data sequence number and size to
    /// the back of `queue`, creating the packet record if new.
    pub fn push_packet(&mut self, queue: QueueKind, id: u64, seq: i64, size: i64) -> PacketRef {
        let pid = PacketRef(id);
        self.packets.entry(pid).or_insert_with(|| {
            let mut props = HashMap::new();
            props.insert(PacketProp::Seq, seq);
            props.insert(PacketProp::Size, size);
            MockPacket {
                id: pid,
                props,
                sent_on: Vec::new(),
            }
        });
        self.queues.entry(queue).or_default().push(pid);
        pid
    }

    /// Sets one property of an existing packet.
    pub fn set_packet_prop(&mut self, id: u64, prop: PacketProp, value: i64) {
        if let Some(p) = self.packets.get_mut(&PacketRef(id)) {
            p.props.insert(prop, value);
        }
    }

    /// Marks a packet as already transmitted on a subflow.
    pub fn mark_sent_on(&mut self, pkt: u64, sbf: u32) {
        if let Some(p) = self.packets.get_mut(&PacketRef(pkt)) {
            let sid = SubflowId(sbf);
            if !p.sent_on.contains(&sid) {
                p.sent_on.push(sid);
            }
        }
    }

    /// Sets whether `HAS_WINDOW_FOR` reports true for `sbf`.
    pub fn set_has_window(&mut self, sbf: u32, value: bool) {
        if let Some(s) = self.subflows.get_mut(&SubflowId(sbf)) {
            s.has_window = value;
        }
    }

    /// Writes a register directly (as the application API would).
    pub fn set_register(&mut self, reg: RegId, value: i64) {
        self.registers[reg.index()] = value;
    }

    /// Simulates a cumulative acknowledgement: removes the packet from
    /// every queue ("acknowledged packets are automatically removed from
    /// *all* queues", paper §3.1).
    pub fn acknowledge(&mut self, pkt: u64) {
        let pid = PacketRef(pkt);
        for q in self.queues.values_mut() {
            q.retain(|p| *p != pid);
        }
    }

    /// The queue contents (test inspection helper).
    pub fn queue_contents(&self, queue: QueueKind) -> &[PacketRef] {
        self.queues.get(&queue).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Canonical multi-line dump of the complete observable state:
    /// subflows with their set properties, packets with properties and
    /// transmission history, queue contents, registers, and the applied
    /// transmission/drop logs.
    ///
    /// The rendering is deterministic (hash maps are emitted in a fixed
    /// order), so two environments are observably identical iff their
    /// fingerprints are string-equal. This is the comparison anchor of the
    /// cross-backend differential harness and doubles as the repro
    /// description a divergence report prints.
    pub fn state_fingerprint(&self) -> String {
        let mut out = String::new();
        out.push_str("registers [");
        for (i, r) in self.registers.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&r.to_string());
        }
        out.push_str("]\n");
        for sid in &self.subflow_order {
            let s = &self.subflows[sid];
            out.push_str(&format!("subflow {} window={}", sid.0, s.has_window));
            for prop in SubflowProp::ALL {
                if let Some(v) = s.props.get(&prop) {
                    out.push_str(&format!(" {}={v}", prop.name()));
                }
            }
            out.push('\n');
        }
        let mut pkt_ids: Vec<PacketRef> = self.packets.keys().copied().collect();
        pkt_ids.sort();
        for pid in pkt_ids {
            let p = &self.packets[&pid];
            out.push_str(&format!("packet {}", pid.0));
            for prop in PacketProp::ALL {
                if let Some(v) = p.props.get(&prop) {
                    out.push_str(&format!(" {}={v}", prop.name()));
                }
            }
            if !p.sent_on.is_empty() {
                out.push_str(" sent_on=[");
                for (i, s) in p.sent_on.iter().enumerate() {
                    if i > 0 {
                        out.push(' ');
                    }
                    out.push_str(&s.0.to_string());
                }
                out.push(']');
            }
            out.push('\n');
        }
        for kind in QueueKind::ALL {
            out.push_str(&format!("{} [", kind.name()));
            for (i, p) in self.queue_contents(kind).iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                out.push_str(&p.0.to_string());
            }
            out.push_str("]\n");
        }
        out.push_str("transmissions [");
        for (i, (s, p)) in self.transmissions.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&format!("{}:{}", s.0, p.0));
        }
        out.push_str("]\n");
        out.push_str("dropped [");
        for (i, p) in self.dropped.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&p.0.to_string());
        }
        out.push_str("]\n");
        out
    }
}

impl SchedulerEnv for MockEnv {
    fn subflows(&self) -> &[SubflowId] {
        &self.subflow_order
    }

    fn subflow_prop(&self, subflow: SubflowId, prop: SubflowProp) -> i64 {
        self.subflows
            .get(&subflow)
            .and_then(|s| s.props.get(&prop).copied())
            .unwrap_or(0)
    }

    fn queue(&self, queue: QueueKind) -> &[PacketRef] {
        self.queues.get(&queue).map(Vec::as_slice).unwrap_or(&[])
    }

    fn packet_prop(&self, packet: PacketRef, prop: PacketProp) -> i64 {
        self.packets
            .get(&packet)
            .and_then(|p| p.props.get(&prop).copied())
            .unwrap_or(0)
    }

    fn sent_on(&self, packet: PacketRef, subflow: SubflowId) -> bool {
        self.packets
            .get(&packet)
            .map(|p| p.sent_on.contains(&subflow))
            .unwrap_or(false)
    }

    fn has_window_for(&self, subflow: SubflowId, _packet: PacketRef) -> bool {
        self.subflows
            .get(&subflow)
            .map(|s| s.has_window)
            .unwrap_or(false)
    }

    fn register(&self, reg: RegId) -> i64 {
        self.registers[reg.index()]
    }

    fn apply(&mut self, registers: &[i64; NUM_REGISTERS], actions: &[Action]) {
        self.registers = *registers;
        for action in actions {
            match *action {
                Action::Push { subflow, packet } => {
                    // Ignore pushes to subflows that vanished between the
                    // snapshot and application: the packet simply stays
                    // schedulable (no packet loss by design).
                    if !self.subflows.contains_key(&subflow) {
                        continue;
                    }
                    // Move the packet out of Q/RQ into QU on first push.
                    let mut was_queued = false;
                    for kind in [QueueKind::SendQueue, QueueKind::Reinject] {
                        if let Some(q) = self.queues.get_mut(&kind) {
                            let before = q.len();
                            q.retain(|p| *p != packet);
                            was_queued |= q.len() != before;
                        }
                    }
                    let qu = self.queues.entry(QueueKind::Unacked).or_default();
                    if was_queued && !qu.contains(&packet) {
                        qu.push(packet);
                    }
                    if let Some(p) = self.packets.get_mut(&packet) {
                        if !p.sent_on.contains(&subflow) {
                            p.sent_on.push(subflow);
                        }
                        *p.props.entry(PacketProp::SentCount).or_insert(0) += 1;
                    }
                    self.transmissions.push((subflow, packet));
                }
                Action::Drop { packet } => {
                    for kind in [QueueKind::SendQueue, QueueKind::Reinject] {
                        if let Some(q) = self.queues.get_mut(&kind) {
                            q.retain(|p| *p != packet);
                        }
                    }
                    self.dropped.push(packet);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_action_moves_packet_to_qu() {
        let mut env = MockEnv::new();
        env.add_subflow(0);
        env.push_packet(QueueKind::SendQueue, 1, 0, 100);
        let regs = [0i64; NUM_REGISTERS];
        env.apply(
            &regs,
            &[Action::Push {
                subflow: SubflowId(0),
                packet: PacketRef(1),
            }],
        );
        assert!(env.queue_contents(QueueKind::SendQueue).is_empty());
        assert_eq!(env.queue_contents(QueueKind::Unacked), &[PacketRef(1)]);
        assert!(env.sent_on(PacketRef(1), SubflowId(0)));
        assert_eq!(env.transmissions.len(), 1);
    }

    #[test]
    fn push_to_vanished_subflow_keeps_packet() {
        let mut env = MockEnv::new();
        env.push_packet(QueueKind::SendQueue, 1, 0, 100);
        let regs = [0i64; NUM_REGISTERS];
        env.apply(
            &regs,
            &[Action::Push {
                subflow: SubflowId(9),
                packet: PacketRef(1),
            }],
        );
        assert_eq!(env.queue_contents(QueueKind::SendQueue), &[PacketRef(1)]);
        assert!(env.transmissions.is_empty());
    }

    #[test]
    fn redundant_push_counts_each_transmission() {
        let mut env = MockEnv::new();
        env.add_subflow(0);
        env.add_subflow(1);
        env.push_packet(QueueKind::SendQueue, 1, 0, 100);
        let regs = [0i64; NUM_REGISTERS];
        env.apply(
            &regs,
            &[
                Action::Push {
                    subflow: SubflowId(0),
                    packet: PacketRef(1),
                },
                Action::Push {
                    subflow: SubflowId(1),
                    packet: PacketRef(1),
                },
            ],
        );
        assert_eq!(env.transmissions.len(), 2);
        assert_eq!(
            env.packet_prop(PacketRef(1), PacketProp::SentCount),
            2,
            "SENT_COUNT counts transmissions"
        );
        assert_eq!(env.queue_contents(QueueKind::Unacked).len(), 1);
    }

    #[test]
    fn ack_removes_from_all_queues() {
        let mut env = MockEnv::new();
        env.push_packet(QueueKind::Unacked, 1, 0, 100);
        env.push_packet(QueueKind::Reinject, 1, 0, 100);
        env.acknowledge(1);
        assert!(env.queue_contents(QueueKind::Unacked).is_empty());
        assert!(env.queue_contents(QueueKind::Reinject).is_empty());
    }

    #[test]
    fn fingerprint_distinguishes_observable_state() {
        let mut a = MockEnv::new();
        a.add_subflow(0);
        a.push_packet(QueueKind::SendQueue, 1, 0, 100);
        let mut b = a.clone();
        assert_eq!(a.state_fingerprint(), b.state_fingerprint());
        b.set_register(RegId::R1, 5);
        assert_ne!(a.state_fingerprint(), b.state_fingerprint());
        let mut c = a.clone();
        c.mark_sent_on(1, 0);
        assert_ne!(a.state_fingerprint(), c.state_fingerprint());
    }

    #[test]
    fn drop_action_removes_from_q_and_rq_only() {
        let mut env = MockEnv::new();
        env.push_packet(QueueKind::SendQueue, 1, 0, 100);
        env.push_packet(QueueKind::Unacked, 2, 1, 100);
        let regs = [0i64; NUM_REGISTERS];
        env.apply(
            &regs,
            &[Action::Drop {
                packet: PacketRef(1),
            }],
        );
        env.apply(
            &regs,
            &[Action::Drop {
                packet: PacketRef(2),
            }],
        );
        assert!(env.queue_contents(QueueKind::SendQueue).is_empty());
        // QU entries are only removed by acknowledgement.
        assert_eq!(env.queue_contents(QueueKind::Unacked), &[PacketRef(2)]);
    }
}
