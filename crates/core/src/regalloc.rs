//! Register allocation and lowering from virtual-register code to the
//! machine ISA.
//!
//! The paper's in-kernel cross-compiler uses "an extended version of the
//! linear scan register allocation, specifically, the Second-Chance
//! Binpacking algorithm [Traub et al., PLDI '98]". We implement linear
//! scan over live intervals with the two properties that matter from that
//! algorithm family:
//!
//! * **binpacking into lifetime holes** — when an interval expires its
//!   register immediately becomes available to later intervals, so a
//!   register serves many disjoint intervals;
//! * **furthest-next-end spilling** — under pressure the interval whose
//!   lifetime ends furthest away is evicted to a stack slot (its *second
//!   chance* to live in memory), minimizing the number of spilled
//!   accesses on the hot path.
//!
//! We do not split live ranges mid-interval (full second-chance
//! binpacking would); a spilled interval stays slot-allocated for its
//! whole lifetime and is accessed through the scratch registers `r3`/`r4`
//! around each use. This is a documented simplification — allocation
//! results remain deterministic and verifiable.
//!
//! Liveness across loops: intervals of virtual registers that are live
//! anywhere inside a loop body are extended to the loop's back-edge, so a
//! value defined before a loop and used within it survives the whole loop.

use crate::bytecode::{
    BytecodeProgram, DebugTable, Insn, FIRST_ALLOCATABLE, MAX_STACK_SLOTS, NUM_ALLOCATABLE,
};
use crate::codegen::{Label, VCode, VInsn, VReg};
use crate::error::{CompileError, Pos, Stage};
use std::collections::HashMap;

/// Where a virtual register lives after allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// A machine register (`r6`..`r9`).
    Reg(u8),
    /// A stack slot.
    Slot(u16),
}

/// Allocates registers for `code` and lowers it to verified-ready machine
/// instructions. Convenience wrapper over [`allocate_with_debug`] for
/// hand-built instruction lists with no source spans.
pub fn allocate(code: &[VInsn]) -> Result<BytecodeProgram, CompileError> {
    allocate_with_debug(&VCode::from_insns(code.to_vec())).map(|(prog, _)| prog)
}

/// Allocates registers for `vcode` and lowers it to verified-ready
/// machine instructions, threading each virtual instruction's source span
/// onto every machine instruction it expands to. The returned
/// [`DebugTable`] is parallel to the program's instruction stream.
pub fn allocate_with_debug(vcode: &VCode) -> Result<(BytecodeProgram, DebugTable), CompileError> {
    let intervals = live_intervals(&vcode.insns);
    let assignment = linear_scan(&intervals)?;
    lower(vcode, &assignment)
}

/// A live interval `[start, end]` over `VInsn` indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Interval {
    vreg: VReg,
    start: usize,
    end: usize,
}

fn for_each_use<F: FnMut(VReg)>(insn: &VInsn, mut f: F) {
    match insn {
        VInsn::Mov { src, .. } => f(*src),
        VInsn::Alu { a, b, .. } => {
            f(*a);
            f(*b);
        }
        VInsn::AluImm { a, .. } => f(*a),
        VInsn::Neg { src, .. } => f(*src),
        VInsn::Jcc { a, b, .. } => {
            f(*a);
            f(*b);
        }
        VInsn::JccImm { a, .. } => f(*a),
        VInsn::Call { args, .. } => {
            for a in args {
                f(*a);
            }
        }
        _ => {}
    }
}

fn def_of(insn: &VInsn) -> Option<VReg> {
    match insn {
        VInsn::MovImm { dst, .. }
        | VInsn::Mov { dst, .. }
        | VInsn::Alu { dst, .. }
        | VInsn::AluImm { dst, .. }
        | VInsn::Neg { dst, .. } => Some(*dst),
        VInsn::Call { ret, .. } => *ret,
        _ => None,
    }
}

/// Computes live intervals, extending them across backward branches
/// (loop bodies) to a fixpoint.
fn live_intervals(code: &[VInsn]) -> Vec<Interval> {
    let mut ranges: HashMap<VReg, (usize, usize)> = HashMap::new();
    let touch = |v: VReg, i: usize, ranges: &mut HashMap<VReg, (usize, usize)>| {
        let e = ranges.entry(v).or_insert((i, i));
        e.0 = e.0.min(i);
        e.1 = e.1.max(i);
    };
    for (i, insn) in code.iter().enumerate() {
        if let Some(d) = def_of(insn) {
            touch(d, i, &mut ranges);
        }
        for_each_use(insn, |u| touch(u, i, &mut ranges));
    }

    // Label positions for back-edge detection.
    let mut label_pos: HashMap<Label, usize> = HashMap::new();
    for (i, insn) in code.iter().enumerate() {
        if let VInsn::Label(l) = insn {
            label_pos.insert(*l, i);
        }
    }
    let mut back_edges: Vec<(usize, usize)> = Vec::new(); // (target, branch)
    for (i, insn) in code.iter().enumerate() {
        let target = match insn {
            VInsn::Ja(l) => Some(*l),
            VInsn::Jcc { target, .. } | VInsn::JccImm { target, .. } => Some(*target),
            _ => None,
        };
        if let Some(l) = target {
            if let Some(&t) = label_pos.get(&l) {
                if t < i {
                    back_edges.push((t, i));
                }
            }
        }
    }

    // Fixpoint extension: a vreg live anywhere in [t, b] lives to b.
    let mut changed = true;
    let mut guard = 0;
    while changed && guard < 64 {
        changed = false;
        guard += 1;
        for &(t, b) in &back_edges {
            for r in ranges.values_mut() {
                if r.0 <= b && r.1 >= t && r.1 < b {
                    r.1 = b;
                    changed = true;
                }
            }
        }
    }

    let mut out: Vec<Interval> = ranges
        .into_iter()
        .map(|(vreg, (start, end))| Interval { vreg, start, end })
        .collect();
    out.sort_by_key(|iv| (iv.start, iv.end, iv.vreg.0));
    out
}

/// Linear scan with hole reuse and furthest-end spilling.
fn linear_scan(intervals: &[Interval]) -> Result<HashMap<VReg, Loc>, CompileError> {
    let mut assignment: HashMap<VReg, Loc> = HashMap::new();
    // Active intervals currently holding a register, kept sorted by end.
    let mut active: Vec<(Interval, u8)> = Vec::new();
    let mut free: Vec<u8> = (0..NUM_ALLOCATABLE as u8)
        .map(|i| FIRST_ALLOCATABLE + i)
        .rev()
        .collect();
    // Spill slots are shared between spilled intervals with disjoint
    // lifetimes (the binpacking applies to stack slots too): slot_ends[s]
    // is the end of the last interval assigned to slot s.
    let mut slot_ends: Vec<usize> = Vec::new();
    let alloc_slot = |slot_ends: &mut Vec<usize>, iv: &Interval| -> Result<u16, CompileError> {
        for (s, end) in slot_ends.iter_mut().enumerate() {
            if *end < iv.start {
                *end = iv.end;
                return Ok(s as u16);
            }
        }
        if slot_ends.len() >= MAX_STACK_SLOTS {
            return Err(CompileError::new(
                Stage::Codegen,
                Pos::new(0, 0),
                format!("scheduler needs more than {MAX_STACK_SLOTS} spill slots"),
            ));
        }
        slot_ends.push(iv.end);
        Ok((slot_ends.len() - 1) as u16)
    };

    for iv in intervals {
        // Expire intervals that ended before this one starts: their
        // registers return to the pool (lifetime holes are reused).
        let mut i = 0;
        while i < active.len() {
            if active[i].0.end < iv.start {
                free.push(active[i].1);
                active.remove(i);
            } else {
                i += 1;
            }
        }

        if let Some(reg) = free.pop() {
            assignment.insert(iv.vreg, Loc::Reg(reg));
            active.push((*iv, reg));
            active.sort_by_key(|(a, _)| a.end);
            continue;
        }

        // Pressure: spill the interval (current or active) ending furthest.
        let victim_idx = active
            .iter()
            .enumerate()
            .max_by_key(|(_, (a, _))| a.end)
            .map(|(i, _)| i);
        match victim_idx {
            Some(vi) if active[vi].0.end > iv.end => {
                let (victim, reg) = active.remove(vi);
                assignment.insert(victim.vreg, Loc::Slot(alloc_slot(&mut slot_ends, &victim)?));
                assignment.insert(iv.vreg, Loc::Reg(reg));
                active.push((*iv, reg));
                active.sort_by_key(|(a, _)| a.end);
            }
            _ => {
                assignment.insert(iv.vreg, Loc::Slot(alloc_slot(&mut slot_ends, iv)?));
            }
        }
    }
    Ok(assignment)
}

/// Lowers virtual instructions to machine instructions using the
/// allocation map, resolving labels to relative offsets. Every machine
/// instruction inherits the source span of the virtual instruction it was
/// expanded from.
fn lower(
    vcode: &VCode,
    assignment: &HashMap<VReg, Loc>,
) -> Result<(BytecodeProgram, DebugTable), CompileError> {
    let code = &vcode.insns;
    let loc = |v: VReg| -> Loc {
        *assignment
            .get(&v)
            .expect("every touched vreg has an assignment")
    };
    let mut out: Vec<Insn> = Vec::with_capacity(code.len() * 2);
    let mut spans: Vec<Pos> = Vec::with_capacity(code.len() * 2);
    let mut label_at: HashMap<Label, usize> = HashMap::new();
    // (index in `out` of the jump, label) to patch after emission.
    let mut fixups: Vec<(usize, Label)> = Vec::new();
    let mut max_slot: u16 = 0;
    for l in assignment.values() {
        if let Loc::Slot(s) = l {
            max_slot = max_slot.max(s + 1);
        }
    }

    // Reads `v` into a register, using `scratch` when slot-allocated.
    fn read(out: &mut Vec<Insn>, l: Loc, scratch: u8) -> u8 {
        match l {
            Loc::Reg(r) => r,
            Loc::Slot(s) => {
                out.push(Insn::Ld {
                    dst: scratch,
                    slot: s,
                });
                scratch
            }
        }
    }
    // Writes the value currently in `src_reg` to `l`.
    fn write(out: &mut Vec<Insn>, l: Loc, src_reg: u8) {
        match l {
            Loc::Reg(r) => {
                if r != src_reg {
                    out.push(Insn::Mov {
                        dst: r,
                        src: src_reg,
                    });
                }
            }
            Loc::Slot(s) => out.push(Insn::St {
                slot: s,
                src: src_reg,
            }),
        }
    }

    for (vi, insn) in code.iter().enumerate() {
        let span = vcode
            .spans
            .get(vi)
            .copied()
            .unwrap_or(Pos { line: 0, col: 0 });
        match insn {
            VInsn::Label(l) => {
                label_at.insert(*l, out.len());
            }
            VInsn::MovImm { dst, imm } => match loc(*dst) {
                Loc::Reg(r) => out.push(Insn::MovImm { dst: r, imm: *imm }),
                Loc::Slot(s) => {
                    out.push(Insn::MovImm { dst: 0, imm: *imm });
                    out.push(Insn::St { slot: s, src: 0 });
                }
            },
            VInsn::Mov { dst, src } => {
                let a = read(&mut out, loc(*src), 3);
                write(&mut out, loc(*dst), a);
            }
            VInsn::Alu { op, dst, a, b } => {
                let ra = read(&mut out, loc(*a), 3);
                let rb = read(&mut out, loc(*b), 4);
                out.push(Insn::Mov { dst: 0, src: ra });
                out.push(Insn::Alu {
                    op: *op,
                    dst: 0,
                    src: rb,
                });
                write(&mut out, loc(*dst), 0);
            }
            VInsn::AluImm { op, dst, a, imm } => {
                let ra = read(&mut out, loc(*a), 3);
                out.push(Insn::Mov { dst: 0, src: ra });
                out.push(Insn::AluImm {
                    op: *op,
                    dst: 0,
                    imm: *imm,
                });
                write(&mut out, loc(*dst), 0);
            }
            VInsn::Neg { dst, src } => {
                let ra = read(&mut out, loc(*src), 3);
                out.push(Insn::Mov { dst: 0, src: ra });
                out.push(Insn::Neg { dst: 0 });
                write(&mut out, loc(*dst), 0);
            }
            VInsn::Ja(l) => {
                fixups.push((out.len(), *l));
                out.push(Insn::Ja { off: 0 });
            }
            VInsn::Jcc { cond, a, b, target } => {
                let ra = read(&mut out, loc(*a), 3);
                let rb = read(&mut out, loc(*b), 4);
                fixups.push((out.len(), *target));
                out.push(Insn::Jmp {
                    cond: *cond,
                    lhs: ra,
                    rhs: rb,
                    off: 0,
                });
            }
            VInsn::JccImm {
                cond,
                a,
                imm,
                target,
            } => {
                let ra = read(&mut out, loc(*a), 3);
                fixups.push((out.len(), *target));
                out.push(Insn::JmpImm {
                    cond: *cond,
                    lhs: ra,
                    imm: *imm,
                    off: 0,
                });
            }
            VInsn::Call { helper, args, ret } => {
                debug_assert!(args.len() <= 5, "at most five helper arguments");
                for (i, a) in args.iter().enumerate() {
                    let target_reg = (i + 1) as u8;
                    match loc(*a) {
                        Loc::Reg(r) => out.push(Insn::Mov {
                            dst: target_reg,
                            src: r,
                        }),
                        Loc::Slot(s) => out.push(Insn::Ld {
                            dst: target_reg,
                            slot: s,
                        }),
                    }
                }
                out.push(Insn::Call { helper: *helper });
                if let Some(r) = ret {
                    write(&mut out, loc(*r), 0);
                }
            }
            VInsn::Exit => out.push(Insn::Exit),
        }
        // Stamp every machine instruction this VInsn expanded to.
        spans.resize(out.len(), span);
    }
    if !matches!(out.last(), Some(Insn::Exit)) {
        out.push(Insn::Exit);
        spans.resize(
            out.len(),
            spans.last().copied().unwrap_or(Pos { line: 0, col: 0 }),
        );
    }

    for (at, label) in fixups {
        let Some(&target) = label_at.get(&label) else {
            return Err(CompileError::new(
                Stage::Codegen,
                Pos::new(0, 0),
                "branch to undefined label",
            ));
        };
        let off = target as i64 - (at as i64 + 1);
        let off = i32::try_from(off).map_err(|_| {
            CompileError::new(Stage::Codegen, Pos::new(0, 0), "branch offset overflow")
        })?;
        match &mut out[at] {
            Insn::Ja { off: o } | Insn::Jmp { off: o, .. } | Insn::JmpImm { off: o, .. } => {
                *o = off;
            }
            _ => unreachable!("fixup indexes a jump"),
        }
    }

    Ok((
        BytecodeProgram {
            code: out,
            stack_slots: max_slot,
        },
        DebugTable { spans },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{AluOp, Cond};

    #[test]
    fn small_program_fits_in_registers() {
        // Three short-lived vregs: all should land in registers, no spills.
        let code = vec![
            VInsn::MovImm {
                dst: VReg(0),
                imm: 1,
            },
            VInsn::MovImm {
                dst: VReg(1),
                imm: 2,
            },
            VInsn::Alu {
                op: AluOp::Add,
                dst: VReg(2),
                a: VReg(0),
                b: VReg(1),
            },
            VInsn::Exit,
        ];
        let prog = allocate(&code).unwrap();
        assert_eq!(prog.stack_slots, 0);
        assert!(matches!(prog.code.last(), Some(Insn::Exit)));
    }

    #[test]
    fn register_holes_are_reused() {
        // Six sequential, disjoint intervals: they can all share one or
        // few registers; no spills needed even with 4 allocatable regs.
        let mut code = Vec::new();
        for i in 0..6u32 {
            code.push(VInsn::MovImm {
                dst: VReg(i),
                imm: i64::from(i),
            });
            code.push(VInsn::AluImm {
                op: AluOp::Add,
                dst: VReg(i),
                a: VReg(i),
                imm: 1,
            });
        }
        code.push(VInsn::Exit);
        let prog = allocate(&code).unwrap();
        assert_eq!(prog.stack_slots, 0, "disjoint intervals binpack into holes");
    }

    #[test]
    fn pressure_spills_furthest_interval() {
        // vreg 0 is live across everything (furthest end) and should be
        // the spill victim once pressure exceeds 4 registers.
        let mut code = Vec::new();
        for i in 0..6u32 {
            code.push(VInsn::MovImm {
                dst: VReg(i),
                imm: i64::from(i),
            });
        }
        // All six are simultaneously live here.
        for i in 1..6u32 {
            code.push(VInsn::Alu {
                op: AluOp::Add,
                dst: VReg(0),
                a: VReg(0),
                b: VReg(i),
            });
        }
        code.push(VInsn::Exit);
        let prog = allocate(&code).unwrap();
        assert!(prog.stack_slots >= 1, "something must spill");
        assert!(prog.stack_slots <= 2, "only the excess spills");
    }

    #[test]
    fn loop_extends_liveness() {
        // A counter defined before a loop and incremented inside it must
        // stay allocated across the back edge.
        let l = Label(0);
        let code = vec![
            VInsn::MovImm {
                dst: VReg(0),
                imm: 0,
            },
            VInsn::Label(l),
            VInsn::AluImm {
                op: AluOp::Add,
                dst: VReg(0),
                a: VReg(0),
                imm: 1,
            },
            VInsn::JccImm {
                cond: Cond::Lt,
                a: VReg(0),
                imm: 10,
                target: l,
            },
            VInsn::Exit,
        ];
        let prog = allocate(&code).unwrap();
        // Execute mentally: the lowered code must reference a consistent
        // location for vreg 0. Just validate structure here.
        assert!(prog.code.len() >= 4);
    }

    #[test]
    fn undefined_label_is_error() {
        let code = vec![VInsn::Ja(Label(42)), VInsn::Exit];
        assert!(allocate(&code).is_err());
    }

    #[test]
    fn branch_offsets_resolve() {
        let l = Label(0);
        let code = vec![
            VInsn::MovImm {
                dst: VReg(0),
                imm: 0,
            },
            VInsn::Ja(l),
            VInsn::MovImm {
                dst: VReg(0),
                imm: 99,
            },
            VInsn::Label(l),
            VInsn::Exit,
        ];
        let prog = allocate(&code).unwrap();
        // Find the Ja and check it skips the MovImm 99.
        let ja_idx = prog
            .code
            .iter()
            .position(|i| matches!(i, Insn::Ja { .. }))
            .unwrap();
        if let Insn::Ja { off } = prog.code[ja_idx] {
            let target = (ja_idx as i64 + 1 + i64::from(off)) as usize;
            assert!(matches!(prog.code[target], Insn::Exit));
        }
    }

    #[test]
    fn heavy_pressure_spills_excess_live_values() {
        // Twelve values all live at once against four allocatable
        // registers: at least eight must move to stack slots, and the
        // lowered program must still pass the verifier.
        const LIVE: u32 = 12;
        let mut code = Vec::new();
        for i in 0..LIVE {
            code.push(VInsn::MovImm {
                dst: VReg(i),
                imm: i64::from(i) + 1,
            });
        }
        // Consume every value in one chain, keeping all simultaneously
        // live from definition to here.
        for i in 1..LIVE {
            code.push(VInsn::Alu {
                op: AluOp::Add,
                dst: VReg(0),
                a: VReg(0),
                b: VReg(i),
            });
        }
        code.push(VInsn::Exit);
        let prog = allocate(&code).unwrap();
        assert!(
            usize::from(prog.stack_slots) >= LIVE as usize - NUM_ALLOCATABLE,
            "expected >= {} spill slots, got {}",
            LIVE as usize - NUM_ALLOCATABLE,
            prog.stack_slots
        );
        assert!(usize::from(prog.stack_slots) <= LIVE as usize);
        crate::vm::verify(&prog).expect("spilled program must verify");
        // Spilled operands are accessed through loads/stores.
        assert!(prog.code.iter().any(|i| matches!(i, Insn::Ld { .. })));
        assert!(prog.code.iter().any(|i| matches!(i, Insn::St { .. })));
    }

    #[test]
    fn spill_pressure_inside_loop_keeps_values_alive() {
        // Values defined before a loop, with pressure inside the loop
        // body, must survive the back edge whether spilled or not.
        const LIVE: u32 = 8;
        let l = Label(0);
        let mut code = Vec::new();
        for i in 0..LIVE {
            code.push(VInsn::MovImm {
                dst: VReg(i),
                imm: 1,
            });
        }
        // Loop counter.
        code.push(VInsn::MovImm {
            dst: VReg(LIVE),
            imm: 0,
        });
        code.push(VInsn::Label(l));
        for i in 0..LIVE {
            code.push(VInsn::Alu {
                op: AluOp::Add,
                dst: VReg(LIVE),
                a: VReg(LIVE),
                b: VReg(i),
            });
        }
        code.push(VInsn::JccImm {
            cond: Cond::Lt,
            a: VReg(LIVE),
            imm: 100,
            target: l,
        });
        code.push(VInsn::Exit);
        let prog = allocate(&code).unwrap();
        assert!(prog.stack_slots >= 1, "pressure must spill");
        crate::vm::verify(&prog).expect("looping spilled program must verify");
    }

    #[test]
    fn exceeding_stack_slot_budget_is_rejected() {
        // More simultaneously live values than registers + stack slots:
        // allocation must fail with the spill-slot budget error, not
        // overflow or mis-allocate.
        let live = (MAX_STACK_SLOTS + NUM_ALLOCATABLE + 1) as u32;
        let mut code = Vec::new();
        for i in 0..live {
            code.push(VInsn::MovImm {
                dst: VReg(i),
                imm: 1,
            });
        }
        for i in 1..live {
            code.push(VInsn::Alu {
                op: AluOp::Add,
                dst: VReg(0),
                a: VReg(0),
                b: VReg(i),
            });
        }
        code.push(VInsn::Exit);
        let err = allocate(&code).unwrap_err();
        assert_eq!(err.stage, Stage::Codegen);
        assert!(err.message.contains("spill slots"), "{}", err.message);
    }
}
