//! Verifier and executor for the eBPF-flavoured bytecode.
//!
//! Mirrors the kernel eBPF infrastructure's contract: programs are
//! statically verified once when loaded (register bounds, branch targets,
//! stack bounds, guaranteed termination through the runtime step budget)
//! and then executed without further checks beyond the step counter.
//!
//! Also implements the paper's *constant subflow number* optimization
//! (§4.1): [`specialize_subflow_count`] patches `SubflowCount` helper
//! calls to an immediate load for the common case that the number of
//! subflows has not changed, with the generic image kept as fallback.

use crate::bytecode::{
    AluOp, BytecodeProgram, DebugTable, Helper, Insn, MAX_STACK_SLOTS, NUM_MACH_REGS,
};
use crate::env::{PacketProp, QueueKind, RegId, SubflowProp};
use crate::error::{CompileError, ExecError, Pos, Stage};
use crate::exec::{ExecCtx, NULL_HANDLE};

/// Statically verifies a bytecode program (structural checks only; the
/// dataflow verifier lives in [`crate::verify::vm`]).
///
/// Rejects out-of-range registers, writes to the frame pointer `r10`,
/// branches outside the instruction stream, stack accesses beyond the
/// declared slot count, and a missing terminal `Exit`.
pub fn verify(prog: &BytecodeProgram) -> Result<(), CompileError> {
    verify_with_debug(prog, None)
}

/// Like [`verify`], but routes rejection positions through the
/// instruction → source-span side table, so structural failures point at
/// the scheduler source construct whose code is malformed.
pub fn verify_with_debug(
    prog: &BytecodeProgram,
    debug: Option<&DebugTable>,
) -> Result<(), CompileError> {
    let pos_at = |pc: usize| debug.map(|d| d.pos(pc)).unwrap_or(Pos::new(0, 0));
    let err_at = |pc: usize, msg: String| CompileError::new(Stage::VmVerify, pos_at(pc), msg);
    let n = prog.code.len();
    if n == 0 {
        return Err(err_at(0, "empty program".into()));
    }
    if !matches!(prog.code[n - 1], Insn::Exit) {
        return Err(err_at(n - 1, "program does not end with exit".into()));
    }
    if usize::from(prog.stack_slots) > MAX_STACK_SLOTS {
        return Err(err_at(
            0,
            format!(
                "stack requirement {} exceeds {MAX_STACK_SLOTS} slots",
                prog.stack_slots
            ),
        ));
    }
    for (i, insn) in prog.code.iter().enumerate() {
        let err = |msg: String| err_at(i, format!("pc {i}: {msg}"));
        let check_reg = |r: u8, writable: bool| -> Result<(), CompileError> {
            if usize::from(r) >= NUM_MACH_REGS {
                return Err(err(format!("register r{r} out of range")));
            }
            if writable && r == 10 {
                return Err(err("r10 (frame pointer) is read-only".into()));
            }
            Ok(())
        };
        let check_slot = |s: u16| -> Result<(), CompileError> {
            if s >= prog.stack_slots {
                return Err(err(format!(
                    "stack slot {s} outside declared range {}",
                    prog.stack_slots
                )));
            }
            Ok(())
        };
        let check_jump = |off: i32| -> Result<(), CompileError> {
            let target = i as i64 + 1 + i64::from(off);
            if target < 0 || target >= n as i64 {
                return Err(err("branch jumps outside program".into()));
            }
            Ok(())
        };
        match insn {
            Insn::MovImm { dst, .. } | Insn::Neg { dst } => check_reg(*dst, true)?,
            Insn::Mov { dst, src } => {
                check_reg(*dst, true)?;
                check_reg(*src, false)?;
            }
            Insn::Alu { dst, src, .. } => {
                check_reg(*dst, true)?;
                check_reg(*src, false)?;
            }
            Insn::AluImm { dst, .. } => check_reg(*dst, true)?,
            Insn::Ja { off } => check_jump(*off)?,
            Insn::Jmp { lhs, rhs, off, .. } => {
                check_reg(*lhs, false)?;
                check_reg(*rhs, false)?;
                check_jump(*off)?;
            }
            Insn::JmpImm { lhs, off, .. } => {
                check_reg(*lhs, false)?;
                check_jump(*off)?;
            }
            Insn::Call { .. } => {}
            Insn::Ld { dst, slot } => {
                check_reg(*dst, true)?;
                check_slot(*slot)?;
            }
            Insn::St { slot, src } => {
                check_reg(*src, false)?;
                check_slot(*slot)?;
            }
            Insn::Exit => {}
        }
    }
    Ok(())
}

/// Produces a copy of `prog` specialized for a constant subflow count:
/// every `call SubflowCount` becomes `r0 = n`. The caller must fall back
/// to the generic image when the live subflow count differs.
///
/// In debug builds the patched image is re-verified — structurally and
/// through the dataflow verifier — so specialized code can never skip
/// verification.
pub fn specialize_subflow_count(prog: &BytecodeProgram, n: i64) -> BytecodeProgram {
    let code = prog
        .code
        .iter()
        .map(|insn| match insn {
            Insn::Call {
                helper: Helper::SubflowCount,
            } => Insn::MovImm { dst: 0, imm: n },
            other => *other,
        })
        .collect();
    let specialized = BytecodeProgram {
        code,
        stack_slots: prog.stack_slots,
    };
    debug_assert!(
        verify(&specialized).is_ok(),
        "specialized image fails structural verification"
    );
    #[cfg(debug_assertions)]
    {
        let verdict = crate::verify::vm::verify_bytecode(
            &specialized,
            None,
            &crate::verify::VerifyConfig::default(),
        );
        debug_assert!(
            verdict.admitted(),
            "specialized image fails bytecode verification: {:?}",
            verdict.diagnostics
        );
    }
    specialized
}

/// Executes a verified program against `ctx`, recording per-instruction
/// hit counts into `counts` (resized to the code length). This powers the
/// proc-style "performance profiling traces based on the control flow
/// representation" of paper §4.1.
pub fn execute_profiled(
    prog: &BytecodeProgram,
    ctx: &mut ExecCtx<'_>,
    counts: &mut Vec<u64>,
) -> Result<(), ExecError> {
    counts.resize(prog.code.len(), 0);
    execute_inner(prog, ctx, Some(counts))
}

/// Executes a verified program against `ctx`. One step is charged per
/// instruction; queue/subflow scans charge through their helper calls.
pub fn execute(prog: &BytecodeProgram, ctx: &mut ExecCtx<'_>) -> Result<(), ExecError> {
    execute_inner(prog, ctx, None)
}

/// Checked register read: unverified hand-built images surface a
/// structured [`ExecError::MalformedBytecode`] instead of panicking, so
/// the simulator's containment boundary never needs `catch_unwind`.
#[inline]
fn reg(regs: &[i64; NUM_MACH_REGS], r: u8, pc: usize) -> Result<i64, ExecError> {
    regs.get(usize::from(r))
        .copied()
        .ok_or_else(|| ExecError::MalformedBytecode {
            pc,
            detail: format!("register r{r} out of range"),
        })
}

/// Checked register write (see [`reg`]).
#[inline]
fn reg_mut(regs: &mut [i64; NUM_MACH_REGS], r: u8, pc: usize) -> Result<&mut i64, ExecError> {
    regs.get_mut(usize::from(r))
        .ok_or_else(|| ExecError::MalformedBytecode {
            pc,
            detail: format!("register r{r} out of range"),
        })
}

fn execute_inner(
    prog: &BytecodeProgram,
    ctx: &mut ExecCtx<'_>,
    mut profile: Option<&mut Vec<u64>>,
) -> Result<(), ExecError> {
    let mut regs = [0i64; NUM_MACH_REGS];
    let mut stack = vec![0i64; usize::from(prog.stack_slots)];
    let mut pc: usize = 0;
    let code = &prog.code;
    loop {
        ctx.step(1)?;
        let insn = code.get(pc).ok_or_else(|| ExecError::MalformedBytecode {
            pc,
            detail: "program counter out of range".into(),
        })?;
        if let Some(counts) = profile.as_deref_mut() {
            counts[pc] += 1;
        }
        let at = pc;
        pc += 1;
        match *insn {
            Insn::MovImm { dst, imm } => *reg_mut(&mut regs, dst, at)? = imm,
            Insn::Mov { dst, src } => {
                let v = reg(&regs, src, at)?;
                *reg_mut(&mut regs, dst, at)? = v;
            }
            Insn::Alu { op, dst, src } => {
                let a = reg(&regs, dst, at)?;
                let b = reg(&regs, src, at)?;
                *reg_mut(&mut regs, dst, at)? = alu(op, a, b);
            }
            Insn::AluImm { op, dst, imm } => {
                let a = reg(&regs, dst, at)?;
                *reg_mut(&mut regs, dst, at)? = alu(op, a, imm);
            }
            Insn::Neg { dst } => {
                let a = reg(&regs, dst, at)?;
                *reg_mut(&mut regs, dst, at)? = a.wrapping_neg();
            }
            Insn::Ja { off } => {
                pc = jump(pc, off);
            }
            Insn::Jmp {
                cond,
                lhs,
                rhs,
                off,
            } => {
                if cond.eval(reg(&regs, lhs, at)?, reg(&regs, rhs, at)?) {
                    pc = jump(pc, off);
                }
            }
            Insn::JmpImm {
                cond,
                lhs,
                imm,
                off,
            } => {
                if cond.eval(reg(&regs, lhs, at)?, imm) {
                    pc = jump(pc, off);
                }
            }
            Insn::Call { helper } => {
                let r1 = regs[1];
                let r2 = regs[2];
                regs[0] = call_helper(ctx, helper, r1, r2);
                // Helper calls clobber the argument registers, as in eBPF.
                for r in regs.iter_mut().take(6).skip(1) {
                    *r = 0;
                }
            }
            Insn::Ld { dst, slot } => {
                let v =
                    *stack
                        .get(usize::from(slot))
                        .ok_or_else(|| ExecError::MalformedBytecode {
                            pc: at,
                            detail: "stack read out of range".into(),
                        })?;
                *reg_mut(&mut regs, dst, at)? = v;
            }
            Insn::St { slot, src } => {
                let v = reg(&regs, src, at)?;
                *stack.get_mut(usize::from(slot)).ok_or_else(|| {
                    ExecError::MalformedBytecode {
                        pc: at,
                        detail: "stack write out of range".into(),
                    }
                })? = v;
            }
            Insn::Exit => return Ok(()),
        }
    }
}

#[inline]
fn jump(pc: usize, off: i32) -> usize {
    (pc as i64 + i64::from(off)) as usize
}

#[inline]
fn alu(op: AluOp, a: i64, b: i64) -> i64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        AluOp::Rem => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
    }
}

#[inline]
fn call_helper(ctx: &mut ExecCtx<'_>, helper: Helper, r1: i64, r2: i64) -> i64 {
    match helper {
        Helper::GetReg => reg_id(r1).map(|r| ctx.get_reg(r)).unwrap_or(0),
        Helper::SetReg => {
            if let Some(r) = reg_id(r1) {
                ctx.set_reg(r, r2);
            }
            0
        }
        Helper::SubflowCount => ctx.subflow_count(),
        Helper::SubflowAt => ctx.subflow_at(r1),
        Helper::SubflowProp => SubflowProp::from_code(r2)
            .map(|p| ctx.subflow_prop(r1, p))
            .unwrap_or(0),
        Helper::QueueLen => QueueKind::from_code(r1)
            .map(|q| ctx.queue_raw_len(q))
            .unwrap_or(0),
        Helper::QueueGet => QueueKind::from_code(r1)
            .map(|q| ctx.queue_get(q, r2))
            .unwrap_or(NULL_HANDLE),
        Helper::PacketProp => PacketProp::from_code(r2)
            .map(|p| ctx.packet_prop(r1, p))
            .unwrap_or(0),
        Helper::SentOn => ctx.sent_on(r1, r2),
        Helper::HasWindowFor => ctx.has_window_for(r1, r2),
        Helper::Pop => {
            ctx.pop(r1);
            0
        }
        Helper::Push => {
            ctx.push(r1, r2);
            0
        }
        Helper::DropPkt => {
            ctx.drop_packet(r1);
            0
        }
    }
}

#[inline]
fn reg_id(index: i64) -> Option<RegId> {
    u8::try_from(index)
        .ok()
        .and_then(|i| RegId::new(i.checked_add(1)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::generate;
    use crate::env::SchedulerEnv;
    use crate::parser::parse;
    use crate::regalloc::allocate;
    use crate::sema::lower;
    use crate::testenv::MockEnv;

    fn compile_vm(src: &str) -> BytecodeProgram {
        let hir = lower(&parse(src).unwrap()).unwrap();
        let vcode = generate(&hir).unwrap();
        let prog = allocate(&vcode.insns).unwrap();
        verify(&prog).expect("generated code verifies");
        prog
    }

    fn run_vm(src: &str, env: &mut MockEnv) {
        let prog = compile_vm(src);
        let mut ctx = ExecCtx::new(env, 1_000_000);
        execute(&prog, &mut ctx).unwrap();
        let (regs, actions, _) = ctx.finish();
        env.apply(&regs, &actions);
    }

    #[test]
    fn vm_runs_min_rtt() {
        use crate::env::{QueueKind, SubflowProp};
        let mut env = MockEnv::new();
        env.add_subflow(0);
        env.set_subflow_prop(0, SubflowProp::Rtt, 10_000);
        env.add_subflow(1);
        env.set_subflow_prop(1, SubflowProp::Rtt, 40_000);
        env.push_packet(QueueKind::SendQueue, 100, 0, 1400);
        run_vm(
            "IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) { SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP()); }",
            &mut env,
        );
        assert_eq!(env.transmissions.len(), 1);
        assert_eq!(env.transmissions[0].0 .0, 0);
    }

    #[test]
    fn vm_arithmetic_matches_semantics() {
        use crate::env::RegId;
        let mut env = MockEnv::new();
        run_vm(
            "SET(R1, (7 * 3 - 1) / 4); SET(R2, 10 % 3); SET(R3, 5 / 0);",
            &mut env,
        );
        assert_eq!(env.register(RegId::R1), 5);
        assert_eq!(env.register(RegId::R2), 1);
        assert_eq!(env.register(RegId::R3), 0);
    }

    #[test]
    fn verifier_rejects_bad_jump() {
        let prog = BytecodeProgram {
            code: vec![Insn::Ja { off: 5 }, Insn::Exit],
            stack_slots: 0,
        };
        assert!(verify(&prog).is_err());
    }

    #[test]
    fn verifier_rejects_missing_exit() {
        let prog = BytecodeProgram {
            code: vec![Insn::MovImm { dst: 0, imm: 1 }],
            stack_slots: 0,
        };
        assert!(verify(&prog).is_err());
    }

    #[test]
    fn verifier_rejects_bad_register() {
        let prog = BytecodeProgram {
            code: vec![Insn::MovImm { dst: 11, imm: 1 }, Insn::Exit],
            stack_slots: 0,
        };
        assert!(verify(&prog).is_err());
    }

    #[test]
    fn verifier_rejects_frame_pointer_write() {
        let prog = BytecodeProgram {
            code: vec![Insn::MovImm { dst: 10, imm: 1 }, Insn::Exit],
            stack_slots: 0,
        };
        assert!(verify(&prog).is_err());
    }

    #[test]
    fn verifier_rejects_stack_overflow() {
        let prog = BytecodeProgram {
            code: vec![Insn::St { slot: 3, src: 0 }, Insn::Exit],
            stack_slots: 2,
        };
        assert!(verify(&prog).is_err());
    }

    #[test]
    fn verifier_reports_vm_verify_stage_and_debug_spans() {
        // Structural rejections report the dedicated stage, and when a
        // debug side table is available the position of the faulty pc.
        let prog = BytecodeProgram {
            code: vec![
                Insn::MovImm { dst: 0, imm: 1 },
                Insn::Ja { off: 5 },
                Insn::Exit,
            ],
            stack_slots: 0,
        };
        let err = verify(&prog).unwrap_err();
        assert_eq!(err.stage, Stage::VmVerify);
        assert!(err.message.contains("pc 1"), "{}", err.message);
        assert_eq!(err.pos, Pos::new(0, 0), "no table -> placeholder span");

        let debug = DebugTable {
            spans: vec![Pos::new(1, 1), Pos::new(2, 5), Pos::new(2, 5)],
        };
        let err = verify_with_debug(&prog, Some(&debug)).unwrap_err();
        assert_eq!(err.pos, Pos::new(2, 5), "span of the faulty instruction");
    }

    #[test]
    fn specialized_images_are_reverified() {
        // The specialization path re-runs both verifiers in debug builds;
        // this exercises it over a program with real loops and checks the
        // patched image still admits.
        let prog = compile_vm(
            "IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) { SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP()); }",
        );
        for n in [0, 1, 3, 64] {
            let spec = specialize_subflow_count(&prog, n);
            verify(&spec).expect("specialized image verifies structurally");
            let verdict = crate::verify::vm::verify_bytecode(
                &spec,
                None,
                &crate::verify::VerifyConfig::default(),
            );
            assert!(
                verdict.admitted(),
                "specialized image (n={n}) rejected: {:?}",
                verdict.diagnostics
            );
        }
    }

    #[test]
    fn specialization_replaces_subflow_count() {
        let prog = compile_vm("SET(R1, SUBFLOWS.COUNT);");
        let spec = specialize_subflow_count(&prog, 3);
        assert!(spec.code.iter().all(|i| !matches!(
            i,
            Insn::Call {
                helper: Helper::SubflowCount
            }
        )));
        // Specialized program computes with the constant.
        let mut env = MockEnv::new();
        for i in 0..3 {
            env.add_subflow(i);
        }
        let mut ctx = ExecCtx::new(&env, 10_000);
        execute(&spec, &mut ctx).unwrap();
        let (regs, actions, _) = ctx.finish();
        env.apply(&regs, &actions);
        assert_eq!(env.register(crate::env::RegId::R1), 3);
    }

    #[test]
    fn unverified_bad_register_traps_instead_of_panicking() {
        // Malformed images that skip structural verification must surface
        // a structured error, never a panic: the simulator's containment
        // boundary depends on trap-as-value propagation.
        let prog = BytecodeProgram {
            code: vec![Insn::MovImm { dst: 12, imm: 1 }, Insn::Exit],
            stack_slots: 0,
        };
        let env = MockEnv::new();
        let mut ctx = ExecCtx::new(&env, 1000);
        assert!(matches!(
            execute(&prog, &mut ctx),
            Err(ExecError::MalformedBytecode { pc: 0, .. })
        ));
    }

    #[test]
    fn step_budget_terminates_runaway_loop() {
        // Hand-written infinite loop: the budget must stop it.
        let prog = BytecodeProgram {
            code: vec![Insn::Ja { off: -1 }, Insn::Exit],
            stack_slots: 0,
        };
        verify(&prog).unwrap();
        let env = MockEnv::new();
        let mut ctx = ExecCtx::new(&env, 1000);
        assert!(matches!(
            execute(&prog, &mut ctx),
            Err(ExecError::StepBudgetExhausted { .. })
        ));
    }

    #[test]
    fn helper_call_clobbers_arg_registers() {
        // r1..r5 are zeroed by calls; ensure lowered code never relies on
        // them surviving. This is a structural test over generated code:
        // after every Call, the next read of r1..r5 must be a write-first.
        let prog = compile_vm("VAR a = SUBFLOWS.COUNT; VAR b = SUBFLOWS.COUNT; SET(R1, a + b);");
        // Execute for effect: two subflows -> R1 = 4.
        let mut env = MockEnv::new();
        env.add_subflow(0);
        env.add_subflow(1);
        let mut ctx = ExecCtx::new(&env, 10_000);
        execute(&prog, &mut ctx).unwrap();
        let (regs, actions, _) = ctx.finish();
        env.apply(&regs, &actions);
        assert_eq!(env.register(crate::env::RegId::R1), 4);
    }
}
