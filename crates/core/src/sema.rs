//! Semantic analysis: name resolution, static typing, and the semantic
//! restrictions of the programming model.
//!
//! Enforced rules (paper §3.3 / Table 1):
//!
//! 1. **Single assignment** — a variable is declared exactly once and never
//!    reassigned; redeclaring a visible name (including shadowing) is
//!    rejected.
//! 2. **Implicit static typing** — each variable has the type of its
//!    initializer; all operations are type-checked; `NULL` only exists at
//!    packet/subflow type and only where that type can be inferred.
//! 3. **Side-effect isolation** — `POP()` is only permitted in *effect
//!    contexts*: a `VAR` initializer, the packet argument of `PUSH`, or
//!    the argument of `DROP`. Conditions, lambda bodies (predicates and
//!    keys), `FOREACH` list expressions, `GET` indices, `SET` values and
//!    `PUSH` subflow targets are *pure contexts* where `POP` is rejected —
//!    this is the rule that makes `Q.POP().RTT`-style accidental removal
//!    impossible.
//! 4. Lambda parameters bind a fresh slot; aggregate-typed variables
//!    record their initializer for loop fusion in the compiled backends.

use crate::ast::{BinOp, Expr, ExprKind, Program, Stmt, StmtKind, UnOp};
use crate::env::{PacketProp, SubflowProp};
use crate::error::{CompileError, Pos, Stage};
use crate::hir::{ExprId, HExpr, HProgram, HStmt, StmtId, VarSlot};
use crate::types::Type;

/// Lowers a parsed program to typed HIR, or reports the first semantic
/// error.
pub fn lower(program: &Program) -> Result<HProgram, CompileError> {
    let mut ctx = Ctx {
        out: HProgram {
            exprs: Vec::new(),
            expr_ty: Vec::new(),
            expr_pos: Vec::new(),
            stmts: Vec::new(),
            stmt_pos: Vec::new(),
            body: Vec::new(),
            n_slots: 0,
            slot_ty: Vec::new(),
            aggregate_init: Vec::new(),
        },
        scopes: vec![Vec::new()],
    };
    let body = ctx.lower_block(&program.body)?;
    ctx.out.body = body;
    ctx.out.n_slots = ctx.out.slot_ty.len();
    Ok(ctx.out)
}

/// Whether the expression being lowered may contain `POP()`.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Purity {
    /// Effect context: `POP` allowed.
    Effect,
    /// Pure context: `POP` rejected.
    Pure,
}

struct Binding {
    name: String,
    slot: VarSlot,
    ty: Type,
}

struct Ctx {
    out: HProgram,
    /// Stack of lexical scopes; lookups walk outward.
    scopes: Vec<Vec<Binding>>,
}

impl Ctx {
    fn err(&self, pos: Pos, msg: impl Into<String>) -> CompileError {
        CompileError::new(Stage::Sema, pos, msg)
    }

    fn push_expr(&mut self, e: HExpr, ty: Type, pos: Pos) -> ExprId {
        let id = ExprId(self.out.exprs.len() as u32);
        self.out.exprs.push(e);
        self.out.expr_ty.push(ty);
        self.out.expr_pos.push(pos);
        id
    }

    fn push_stmt(&mut self, s: HStmt, pos: Pos) -> StmtId {
        let id = StmtId(self.out.stmts.len() as u32);
        self.out.stmts.push(s);
        self.out.stmt_pos.push(pos);
        id
    }

    fn new_slot(&mut self, ty: Type, init: Option<ExprId>) -> VarSlot {
        let slot = VarSlot(self.out.slot_ty.len() as u32);
        self.out.slot_ty.push(ty);
        self.out
            .aggregate_init
            .push(if ty.is_aggregate() { init } else { None });
        slot
    }

    fn lookup(&self, name: &str) -> Option<(&Binding, usize)> {
        for (depth, scope) in self.scopes.iter().enumerate().rev() {
            if let Some(b) = scope.iter().rev().find(|b| b.name == name) {
                return Some((b, depth));
            }
        }
        None
    }

    fn declare(
        &mut self,
        pos: Pos,
        name: &str,
        ty: Type,
        init: Option<ExprId>,
    ) -> Result<VarSlot, CompileError> {
        if self.lookup(name).is_some() {
            return Err(self.err(
                pos,
                format!("variable `{name}` is already defined (single-assignment form forbids redeclaration and shadowing)"),
            ));
        }
        let slot = self.new_slot(ty, init);
        self.scopes
            .last_mut()
            .expect("scope stack non-empty")
            .push(Binding {
                name: name.to_string(),
                slot,
                ty,
            });
        Ok(slot)
    }

    fn lower_block(&mut self, stmts: &[Stmt]) -> Result<Vec<StmtId>, CompileError> {
        self.scopes.push(Vec::new());
        let result = self.lower_stmts(stmts);
        self.scopes.pop();
        result
    }

    fn lower_stmts(&mut self, stmts: &[Stmt]) -> Result<Vec<StmtId>, CompileError> {
        let mut out = Vec::with_capacity(stmts.len());
        for s in stmts {
            out.push(self.lower_stmt(s)?);
        }
        Ok(out)
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<StmtId, CompileError> {
        match &stmt.kind {
            StmtKind::VarDecl { name, init } => {
                if matches!(init.kind, ExprKind::Null) {
                    return Err(self.err(
                        stmt.pos,
                        "cannot infer a type for `VAR ... = NULL` (annotate by comparing against a typed expression instead)",
                    ));
                }
                let (ie, ty) = self.lower_expr(init, Purity::Effect)?;
                let slot = self.declare(stmt.pos, name, ty, Some(ie))?;
                Ok(self.push_stmt(HStmt::VarDecl { slot, init: ie }, stmt.pos))
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                let (c, cty) = self.lower_expr(cond, Purity::Pure)?;
                if cty != Type::Bool {
                    return Err(
                        self.err(cond.pos, format!("IF condition must be bool, found {cty}"))
                    );
                }
                let tb = self.lower_block(then_body)?;
                let eb = self.lower_block(else_body)?;
                Ok(self.push_stmt(
                    HStmt::If {
                        cond: c,
                        then_body: tb,
                        else_body: eb,
                    },
                    stmt.pos,
                ))
            }
            StmtKind::Foreach { var, list, body } => {
                let (le, lty) = self.lower_expr(list, Purity::Pure)?;
                if lty != Type::SubflowList {
                    return Err(self.err(
                        list.pos,
                        format!("FOREACH iterates subflow lists, found {lty}"),
                    ));
                }
                self.scopes.push(Vec::new());
                let slot = self.declare(stmt.pos, var, Type::Subflow, None)?;
                let b = self.lower_stmts(body);
                self.scopes.pop();
                Ok(self.push_stmt(
                    HStmt::Foreach {
                        slot,
                        list: le,
                        body: b?,
                    },
                    stmt.pos,
                ))
            }
            StmtKind::SetReg { reg, value } => {
                let (v, vty) = self.lower_expr(value, Purity::Pure)?;
                if vty != Type::Int {
                    return Err(self.err(value.pos, format!("SET value must be int, found {vty}")));
                }
                Ok(self.push_stmt(
                    HStmt::SetReg {
                        reg: *reg,
                        value: v,
                    },
                    stmt.pos,
                ))
            }
            StmtKind::Push { target, packet } => {
                let (t, tty) = self.lower_expr(target, Purity::Pure)?;
                if tty != Type::Subflow {
                    return Err(self.err(
                        target.pos,
                        format!("PUSH target must be a subflow, found {tty}"),
                    ));
                }
                let (p, pty) = self.lower_expr_nullable(packet, Purity::Effect, Type::Packet)?;
                if pty != Type::Packet {
                    return Err(self.err(
                        packet.pos,
                        format!("PUSH argument must be a packet, found {pty}"),
                    ));
                }
                Ok(self.push_stmt(
                    HStmt::Push {
                        target: t,
                        packet: p,
                    },
                    stmt.pos,
                ))
            }
            StmtKind::Drop { packet } => {
                let (p, pty) = self.lower_expr_nullable(packet, Purity::Effect, Type::Packet)?;
                if pty != Type::Packet {
                    return Err(self.err(
                        packet.pos,
                        format!("DROP argument must be a packet, found {pty}"),
                    ));
                }
                Ok(self.push_stmt(HStmt::Drop { packet: p }, stmt.pos))
            }
            StmtKind::Return => Ok(self.push_stmt(HStmt::Return, stmt.pos)),
        }
    }

    /// Lowers an expression that may be a bare `NULL` when the expected
    /// nullable type is known from context.
    fn lower_expr_nullable(
        &mut self,
        expr: &Expr,
        purity: Purity,
        expected: Type,
    ) -> Result<(ExprId, Type), CompileError> {
        if matches!(expr.kind, ExprKind::Null) {
            let node = match expected {
                Type::Packet => HExpr::NullPacket,
                Type::Subflow => HExpr::NullSubflow,
                _ => return Err(self.err(expr.pos, format!("NULL cannot have type {expected}"))),
            };
            return Ok((self.push_expr(node, expected, expr.pos), expected));
        }
        self.lower_expr(expr, purity)
    }

    fn lower_expr(&mut self, expr: &Expr, purity: Purity) -> Result<(ExprId, Type), CompileError> {
        match &expr.kind {
            ExprKind::Int(v) => Ok((self.push_expr(HExpr::Int(*v), Type::Int, expr.pos), Type::Int)),
            ExprKind::Bool(b) => Ok((self.push_expr(HExpr::Bool(*b), Type::Bool, expr.pos), Type::Bool)),
            ExprKind::Null => Err(self.err(
                expr.pos,
                "NULL is only allowed where a packet/subflow type is known (comparisons, PUSH/DROP arguments)",
            )),
            ExprKind::Reg(r) => Ok((self.push_expr(HExpr::ReadReg(*r), Type::Int, expr.pos), Type::Int)),
            ExprKind::Var(name) => match self.lookup(name) {
                Some((b, _)) => {
                    let (slot, ty) = (b.slot, b.ty);
                    Ok((self.push_expr(HExpr::ReadVar(slot), ty, expr.pos), ty))
                }
                None => Err(self.err(expr.pos, format!("unknown variable `{name}`"))),
            },
            ExprKind::Subflows => Ok((
                self.push_expr(HExpr::Subflows, Type::SubflowList, expr.pos),
                Type::SubflowList,
            )),
            ExprKind::Queue(q) => Ok((
                self.push_expr(HExpr::Queue(*q), Type::PacketQueue, expr.pos),
                Type::PacketQueue,
            )),
            ExprKind::Prop { obj, name } => self.lower_prop(expr.pos, obj, name, purity),
            ExprKind::Filter { obj, var, pred } => {
                let (oe, oty) = self.lower_expr(obj, purity)?;
                let elem_ty = match oty {
                    Type::SubflowList => Type::Subflow,
                    Type::PacketQueue => Type::Packet,
                    other => {
                        return Err(self.err(expr.pos, format!("FILTER requires a list or queue, found {other}")))
                    }
                };
                let (slot, pe, pty) = self.lower_lambda(expr.pos, var, pred, elem_ty)?;
                if pty != Type::Bool {
                    return Err(self.err(pred.pos, format!("FILTER predicate must be bool, found {pty}")));
                }
                let node = if oty == Type::SubflowList {
                    HExpr::ListFilter {
                        list: oe,
                        var: slot,
                        pred: pe,
                    }
                } else {
                    HExpr::QueueFilter {
                        queue: oe,
                        var: slot,
                        pred: pe,
                    }
                };
                Ok((self.push_expr(node, oty, expr.pos), oty))
            }
            ExprKind::MinMax {
                obj,
                var,
                key,
                is_max,
            } => {
                let (oe, oty) = self.lower_expr(obj, purity)?;
                let elem_ty = match oty {
                    Type::SubflowList => Type::Subflow,
                    Type::PacketQueue => Type::Packet,
                    other => {
                        return Err(self.err(expr.pos, format!("MIN/MAX requires a list or queue, found {other}")))
                    }
                };
                let (slot, ke, kty) = self.lower_lambda(expr.pos, var, key, elem_ty)?;
                if kty != Type::Int {
                    return Err(self.err(key.pos, format!("MIN/MAX key must be int, found {kty}")));
                }
                let (node, rty) = if oty == Type::SubflowList {
                    (
                        HExpr::ListMinMax {
                            list: oe,
                            var: slot,
                            key: ke,
                            is_max: *is_max,
                        },
                        Type::Subflow,
                    )
                } else {
                    (
                        HExpr::QueueMinMax {
                            queue: oe,
                            var: slot,
                            key: ke,
                            is_max: *is_max,
                        },
                        Type::Packet,
                    )
                };
                Ok((self.push_expr(node, rty, expr.pos), rty))
            }
            ExprKind::Sum { obj, var, key } => {
                let (oe, oty) = self.lower_expr(obj, purity)?;
                let elem_ty = match oty {
                    Type::SubflowList => Type::Subflow,
                    Type::PacketQueue => Type::Packet,
                    other => {
                        return Err(self.err(expr.pos, format!("SUM requires a list or queue, found {other}")))
                    }
                };
                let (slot, ke, kty) = self.lower_lambda(expr.pos, var, key, elem_ty)?;
                if kty != Type::Int {
                    return Err(self.err(key.pos, format!("SUM key must be int, found {kty}")));
                }
                let node = if oty == Type::SubflowList {
                    HExpr::ListSum {
                        list: oe,
                        var: slot,
                        key: ke,
                    }
                } else {
                    HExpr::QueueSum {
                        queue: oe,
                        var: slot,
                        key: ke,
                    }
                };
                Ok((self.push_expr(node, Type::Int, expr.pos), Type::Int))
            }
            ExprKind::Get { obj, index } => {
                let (oe, oty) = self.lower_expr(obj, purity)?;
                if oty != Type::SubflowList {
                    return Err(self.err(expr.pos, format!("GET requires a subflow list, found {oty}")));
                }
                let (ie, ity) = self.lower_expr(index, Purity::Pure)?;
                if ity != Type::Int {
                    return Err(self.err(index.pos, format!("GET index must be int, found {ity}")));
                }
                Ok((
                    self.push_expr(HExpr::ListGet { list: oe, index: ie }, Type::Subflow, expr.pos),
                    Type::Subflow,
                ))
            }
            ExprKind::Pop { obj } => {
                if purity == Purity::Pure {
                    return Err(self.err(
                        expr.pos,
                        "POP() has a side effect and is not allowed in conditions, predicates, keys, or SET values",
                    ));
                }
                let (oe, oty) = self.lower_expr(obj, purity)?;
                if oty != Type::PacketQueue {
                    return Err(self.err(expr.pos, format!("POP requires a packet queue, found {oty}")));
                }
                Ok((self.push_expr(HExpr::QueuePop(oe), Type::Packet, expr.pos), Type::Packet))
            }
            ExprKind::SentOn { pkt, sbf } => {
                let (pe, pty) = self.lower_expr(pkt, Purity::Pure)?;
                if pty != Type::Packet {
                    return Err(self.err(pkt.pos, format!("SENT_ON receiver must be a packet, found {pty}")));
                }
                let (se, sty) = self.lower_expr(sbf, Purity::Pure)?;
                if sty != Type::Subflow {
                    return Err(self.err(sbf.pos, format!("SENT_ON argument must be a subflow, found {sty}")));
                }
                Ok((
                    self.push_expr(HExpr::SentOn { pkt: pe, sbf: se }, Type::Bool, expr.pos),
                    Type::Bool,
                ))
            }
            ExprKind::HasWindowFor { sbf, pkt } => {
                let (se, sty) = self.lower_expr(sbf, Purity::Pure)?;
                if sty != Type::Subflow {
                    return Err(self.err(
                        sbf.pos,
                        format!("HAS_WINDOW_FOR receiver must be a subflow, found {sty}"),
                    ));
                }
                let (pe, pty) = self.lower_expr(pkt, Purity::Pure)?;
                if pty != Type::Packet {
                    return Err(self.err(
                        pkt.pos,
                        format!("HAS_WINDOW_FOR argument must be a packet, found {pty}"),
                    ));
                }
                Ok((
                    self.push_expr(HExpr::HasWindowFor { sbf: se, pkt: pe }, Type::Bool, expr.pos),
                    Type::Bool,
                ))
            }
            ExprKind::Unary { op, expr: inner } => {
                let (ie, ity) = self.lower_expr(inner, purity)?;
                let want = match op {
                    UnOp::Not => Type::Bool,
                    UnOp::Neg => Type::Int,
                };
                if ity != want {
                    return Err(self.err(
                        inner.pos,
                        format!("operand of unary {op:?} must be {want}, found {ity}"),
                    ));
                }
                Ok((self.push_expr(HExpr::Unary { op: *op, expr: ie }, want, expr.pos), want))
            }
            ExprKind::Binary { op, lhs, rhs } => self.lower_binary(expr.pos, *op, lhs, rhs, purity),
        }
    }

    fn lower_binary(
        &mut self,
        pos: Pos,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        purity: Purity,
    ) -> Result<(ExprId, Type), CompileError> {
        // Equality against NULL needs the non-null side lowered first to
        // infer the reference type.
        if matches!(op, BinOp::Eq | BinOp::Ne) {
            let lhs_null = matches!(lhs.kind, ExprKind::Null);
            let rhs_null = matches!(rhs.kind, ExprKind::Null);
            if lhs_null && rhs_null {
                return Err(self.err(pos, "cannot compare NULL with NULL"));
            }
            if lhs_null || rhs_null {
                let (typed, typed_expr) = if lhs_null { (rhs, lhs) } else { (lhs, rhs) };
                let _ = typed_expr;
                let (te, tty) = self.lower_expr(typed, purity)?;
                if !tty.is_nullable() {
                    return Err(self.err(pos, format!("cannot compare {tty} with NULL")));
                }
                let null_node = match tty {
                    Type::Packet => HExpr::NullPacket,
                    Type::Subflow => HExpr::NullSubflow,
                    _ => unreachable!(),
                };
                let ne = self.push_expr(null_node, tty, pos);
                let (l, r) = if lhs_null { (ne, te) } else { (te, ne) };
                let node = HExpr::Binary {
                    op,
                    lhs: l,
                    rhs: r,
                    operand_ty: tty,
                };
                return Ok((self.push_expr(node, Type::Bool, pos), Type::Bool));
            }
        }

        let (le, lty) = self.lower_expr(lhs, purity)?;
        let (re, rty) = self.lower_expr(rhs, purity)?;
        if lty != rty {
            return Err(self.err(
                pos,
                format!("operands of {op:?} have mismatched types {lty} and {rty}"),
            ));
        }
        let result_ty = if op.is_arith() {
            if lty != Type::Int {
                return Err(self.err(
                    pos,
                    format!("arithmetic requires int operands, found {lty}"),
                ));
            }
            Type::Int
        } else if op.is_logic() {
            if lty != Type::Bool {
                return Err(self.err(pos, format!("AND/OR require bool operands, found {lty}")));
            }
            Type::Bool
        } else {
            // comparison
            match op {
                BinOp::Eq | BinOp::Ne => {
                    if lty.is_aggregate() {
                        return Err(self.err(pos, format!("cannot compare values of type {lty}")));
                    }
                }
                _ => {
                    if lty != Type::Int {
                        return Err(self.err(
                            pos,
                            format!("ordering comparison requires int operands, found {lty}"),
                        ));
                    }
                }
            }
            Type::Bool
        };
        let node = HExpr::Binary {
            op,
            lhs: le,
            rhs: re,
            operand_ty: lty,
        };
        Ok((self.push_expr(node, result_ty, pos), result_ty))
    }

    /// Lowers a lambda `var => body` binding `var` at `elem_ty`. Lambda
    /// bodies are always pure contexts.
    fn lower_lambda(
        &mut self,
        pos: Pos,
        var: &str,
        body: &Expr,
        elem_ty: Type,
    ) -> Result<(VarSlot, ExprId, Type), CompileError> {
        self.scopes.push(Vec::new());
        let slot = self.declare(pos, var, elem_ty, None)?;
        let result = self.lower_expr(body, Purity::Pure);
        self.scopes.pop();
        let (be, bty) = result?;
        Ok((slot, be, bty))
    }

    fn lower_prop(
        &mut self,
        pos: Pos,
        obj: &Expr,
        name: &str,
        purity: Purity,
    ) -> Result<(ExprId, Type), CompileError> {
        let (oe, oty) = self.lower_expr(obj, purity)?;
        match oty {
            Type::Subflow => match SubflowProp::from_name(name) {
                Some(p) => {
                    let ty = if p.is_bool() { Type::Bool } else { Type::Int };
                    Ok((
                        self.push_expr(HExpr::SubflowProp { sbf: oe, prop: p }, ty, pos),
                        ty,
                    ))
                }
                None => Err(self.err(pos, format!("unknown subflow property `{name}`"))),
            },
            Type::Packet => match PacketProp::from_name(name) {
                Some(p) => Ok((
                    self.push_expr(HExpr::PacketProp { pkt: oe, prop: p }, Type::Int, pos),
                    Type::Int,
                )),
                None => Err(self.err(pos, format!("unknown packet property `{name}`"))),
            },
            Type::SubflowList => match name {
                "COUNT" => Ok((
                    self.push_expr(HExpr::ListCount(oe), Type::Int, pos),
                    Type::Int,
                )),
                "EMPTY" => Ok((
                    self.push_expr(HExpr::ListEmpty(oe), Type::Bool, pos),
                    Type::Bool,
                )),
                _ => Err(self.err(pos, format!("unknown subflow-list property `{name}`"))),
            },
            Type::PacketQueue => match name {
                "COUNT" => Ok((
                    self.push_expr(HExpr::QueueCount(oe), Type::Int, pos),
                    Type::Int,
                )),
                "EMPTY" => Ok((
                    self.push_expr(HExpr::QueueEmpty(oe), Type::Bool, pos),
                    Type::Bool,
                )),
                "TOP" | "FIRST" => Ok((
                    self.push_expr(HExpr::QueueTop(oe), Type::Packet, pos),
                    Type::Packet,
                )),
                _ => Err(self.err(pos, format!("unknown queue property `{name}`"))),
            },
            other => Err(self.err(pos, format!("type {other} has no properties"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check(src: &str) -> Result<HProgram, CompileError> {
        lower(&parse(src).expect("parse"))
    }

    #[test]
    fn lowers_min_rtt_scheduler() {
        let p = check(
            "IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) { SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP()); }",
        )
        .unwrap();
        assert_eq!(p.body.len(), 1);
        // One lambda slot.
        assert_eq!(p.n_slots, 1);
        assert_eq!(p.slot_ty[0], Type::Subflow);
    }

    #[test]
    fn lowers_round_robin_with_registers() {
        let p = check(
            "VAR sbfs = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY);
             IF (R1 >= sbfs.COUNT) { SET(R1, 0); }
             IF (!Q.EMPTY) {
                 VAR sbf = sbfs.GET(R1);
                 IF (sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED) { sbf.PUSH(Q.POP()); }
                 SET(R1, R1 + 1); }",
        )
        .unwrap();
        // sbfs (aggregate) records its initializer for fusion. Slot 0 is
        // the lambda binding; the list var is allocated after it.
        let list_slot = p
            .slot_ty
            .iter()
            .position(|t| *t == Type::SubflowList)
            .expect("sbfs slot exists");
        assert!(p.aggregate_init[list_slot].is_some());
    }

    #[test]
    fn pop_rejected_in_condition() {
        let err = check("IF (Q.POP() != NULL) { RETURN; }").unwrap_err();
        assert!(err.message.contains("POP"));
    }

    #[test]
    fn pop_rejected_in_predicate() {
        let err = check("VAR s = SUBFLOWS.FILTER(x => Q.POP() != NULL);").unwrap_err();
        assert!(err.message.contains("POP"));
    }

    #[test]
    fn pop_rejected_in_set_value() {
        let err = check("SET(R1, Q.POP().SIZE);").unwrap_err();
        assert!(err.message.contains("POP"));
    }

    #[test]
    fn pop_allowed_in_var_init_and_push_and_drop() {
        check("VAR skb = Q.POP();\nDROP(RQ.POP());\nSUBFLOWS.GET(0).PUSH(QU.POP());").unwrap();
    }

    #[test]
    fn redeclaration_rejected() {
        let err = check("VAR x = 1; VAR x = 2;").unwrap_err();
        assert!(err.message.contains("already defined"));
    }

    #[test]
    fn shadowing_rejected() {
        let err = check("VAR x = 1; IF (TRUE) { VAR x = 2; }").unwrap_err();
        assert!(err.message.contains("already defined"));
    }

    #[test]
    fn lambda_shadowing_rejected() {
        let err = check("VAR sbf = SUBFLOWS.GET(0); VAR y = SUBFLOWS.FILTER(sbf => sbf.RTT > 0);")
            .unwrap_err();
        assert!(err.message.contains("already defined"));
    }

    #[test]
    fn block_scoping_allows_sibling_reuse() {
        // x goes out of scope after the IF, so y can use the name later...
        // but reuse of the *name* is still a redeclaration only if visible.
        check("IF (TRUE) { VAR x = 1; } IF (TRUE) { VAR x = 2; }").unwrap();
    }

    #[test]
    fn unknown_variable() {
        let err = check("VAR y = x + 1;").unwrap_err();
        assert!(err.message.contains("unknown variable"));
    }

    #[test]
    fn unknown_property() {
        let err = check("VAR y = SUBFLOWS.GET(0).WAT;").unwrap_err();
        assert!(err.message.contains("unknown subflow property"));
    }

    #[test]
    fn type_error_arith_on_bool() {
        let err = check("VAR y = TRUE + 1;").unwrap_err();
        assert!(err.message.contains("mismatched") || err.message.contains("int"));
    }

    #[test]
    fn type_error_if_on_int() {
        let err = check("IF (1) { RETURN; }").unwrap_err();
        assert!(err.message.contains("bool"));
    }

    #[test]
    fn null_comparison_infers_type() {
        check("VAR s = SUBFLOWS.MIN(x => x.RTT); IF (s != NULL) { s.PUSH(Q.POP()); }").unwrap();
        check("VAR p = Q.TOP; IF (NULL == p) { RETURN; }").unwrap();
    }

    #[test]
    fn null_vs_null_rejected() {
        let err = check("IF (NULL == NULL) { RETURN; }").unwrap_err();
        assert!(err.message.contains("NULL"));
    }

    #[test]
    fn null_vs_int_rejected() {
        let err = check("IF (1 == NULL) { RETURN; }").unwrap_err();
        assert!(err.message.contains("NULL"));
    }

    #[test]
    fn bare_null_var_rejected() {
        let err = check("VAR x = NULL;").unwrap_err();
        assert!(err.message.contains("NULL"));
    }

    #[test]
    fn foreach_requires_subflow_list() {
        let err = check("FOREACH (VAR p IN Q) { RETURN; }").unwrap_err();
        assert!(err.message.contains("subflow list"));
    }

    #[test]
    fn push_target_must_be_subflow() {
        let err = check("Q.TOP.PUSH(Q.POP());").unwrap_err();
        assert!(err.message.contains("subflow"));
    }

    #[test]
    fn sent_on_types() {
        check("VAR sbf = SUBFLOWS.GET(0); VAR p = QU.FILTER(s => !s.SENT_ON(sbf)).TOP;").unwrap();
        let err = check("VAR sbf = SUBFLOWS.GET(0); VAR b = sbf.SENT_ON(sbf);").unwrap_err();
        assert!(err.message.contains("packet"));
    }

    #[test]
    fn ordering_on_packets_rejected() {
        let err = check("IF (Q.TOP < Q.TOP) { RETURN; }").unwrap_err();
        assert!(err.message.contains("int"));
    }

    #[test]
    fn queue_equality_rejected() {
        let err = check("IF (Q == QU) { RETURN; }").unwrap_err();
        assert!(err.message.contains("compare"));
    }

    #[test]
    fn rtt_avg_alias_resolves() {
        check("VAR s = SUBFLOWS.FILTER(sbf => sbf.RTT_AVG < 10).MIN(sbf => sbf.RTT_VAR);").unwrap();
    }

    #[test]
    fn queue_min_max_yields_packet() {
        let p = check("VAR oldest = QU.MIN(s => s.SEQ); IF (oldest != NULL) { RETURN; }").unwrap();
        assert_eq!(p.slot_ty[1], Type::Packet); // slot 0 is the lambda var
    }

    #[test]
    fn sum_over_list() {
        check("VAR total = SUBFLOWS.SUM(s => s.BW); SET(R1, total);").unwrap();
    }

    #[test]
    fn get_on_queue_rejected() {
        let err = check("VAR p = Q.GET(0);").unwrap_err();
        assert!(err.message.contains("subflow list"));
    }
}
