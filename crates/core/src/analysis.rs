//! Static analysis of compiled scheduler programs.
//!
//! The paper's runtime hosts *tenant-supplied* schedulers inside the
//! shared transport stack (§6: "individual schedulers per application in
//! multi-tenancy and light-weight container environments"). Before
//! admitting a scheduler, an operator can audit what it touches: which
//! subflow/packet properties it reads, which queues it consumes, whether
//! it drops data, which registers form its application interface, and how
//! deeply its scans nest (a static cost proxy complementing the runtime
//! step budget).
//!
//! The analysis is a single HIR walk; everything it reports is exact (the
//! language has no dynamic property access).

use crate::env::{QueueKind, RegId};
use crate::hir::{ExprId, HExpr, HProgram, HStmt, StmtId};
use std::collections::BTreeSet;
use std::fmt;

/// Exact static facts about a scheduler program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Analysis {
    /// Subflow properties the scheduler reads.
    pub subflow_props: BTreeSet<&'static str>,
    /// Packet properties the scheduler reads.
    pub packet_props: BTreeSet<&'static str>,
    /// Queues the scheduler observes (TOP/COUNT/EMPTY/FILTER/MIN/SUM).
    pub queues_read: BTreeSet<&'static str>,
    /// Queues the scheduler pops packets from.
    pub queues_popped: BTreeSet<&'static str>,
    /// Registers read (the application→scheduler interface).
    pub registers_read: BTreeSet<u8>,
    /// Registers written (scheduler state / scheduler→application).
    pub registers_written: BTreeSet<u8>,
    /// Number of `PUSH` statements.
    pub push_sites: usize,
    /// Number of `DROP` statements.
    pub drop_sites: usize,
    /// Whether `SENT_ON` is used (redundancy/retransmission logic).
    pub uses_sent_on: bool,
    /// Whether `HAS_WINDOW_FOR` is used (receive-window awareness).
    pub uses_window_check: bool,
    /// Maximum static nesting depth of true scans (`FILTER`/`MIN`/`MAX`/
    /// `SUM`/`FOREACH`): each level multiplies worst-case cost by the
    /// element count. O(1) queue operations (`COUNT`/`EMPTY`/`TOP`/`GET`
    /// and a plain `POP`) do not deepen it; popping *through* a filter
    /// still counts via the `FILTER` node itself.
    pub max_scan_depth: usize,
}

impl Analysis {
    /// True if the scheduler can transmit packets at all.
    pub fn can_transmit(&self) -> bool {
        self.push_sites > 0
    }

    /// True if the scheduler may discard data (`DROP` of send-queue
    /// packets is the one scheduler action that loses payload).
    pub fn can_discard(&self) -> bool {
        self.drop_sites > 0
    }
}

impl fmt::Display for Analysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let join = |set: &BTreeSet<&'static str>| -> String {
            if set.is_empty() {
                "-".to_string()
            } else {
                set.iter().copied().collect::<Vec<_>>().join(", ")
            }
        };
        let regs = |set: &BTreeSet<u8>| -> String {
            if set.is_empty() {
                "-".to_string()
            } else {
                set.iter()
                    .map(|r| format!("R{r}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            }
        };
        writeln!(f, "subflow properties: {}", join(&self.subflow_props))?;
        writeln!(f, "packet properties:  {}", join(&self.packet_props))?;
        writeln!(f, "queues read:        {}", join(&self.queues_read))?;
        writeln!(f, "queues popped:      {}", join(&self.queues_popped))?;
        writeln!(f, "registers read:     {}", regs(&self.registers_read))?;
        writeln!(f, "registers written:  {}", regs(&self.registers_written))?;
        writeln!(
            f,
            "effects:            {} push site(s), {} drop site(s)",
            self.push_sites, self.drop_sites
        )?;
        writeln!(
            f,
            "features:           sent_on={}, window_check={}",
            self.uses_sent_on, self.uses_window_check
        )?;
        write!(f, "max scan depth:     {}", self.max_scan_depth)
    }
}

/// Analyzes a lowered program.
pub fn analyze(prog: &HProgram) -> Analysis {
    let mut a = Analysis::default();
    for &sid in &prog.body {
        walk_stmt(prog, sid, 0, &mut a);
    }
    a
}

fn reg_index(r: RegId) -> u8 {
    (r.index() + 1) as u8
}

fn walk_stmt(prog: &HProgram, sid: StmtId, depth: usize, a: &mut Analysis) {
    match prog.stmt(sid) {
        HStmt::VarDecl { init, .. } => walk_expr(prog, *init, depth, a),
        HStmt::If {
            cond,
            then_body,
            else_body,
        } => {
            walk_expr(prog, *cond, depth, a);
            for &s in then_body.iter().chain(else_body) {
                walk_stmt(prog, s, depth, a);
            }
        }
        HStmt::Foreach { list, body, .. } => {
            a.max_scan_depth = a.max_scan_depth.max(depth + 1);
            walk_expr(prog, *list, depth + 1, a);
            for &s in body {
                walk_stmt(prog, s, depth + 1, a);
            }
        }
        HStmt::SetReg { reg, value } => {
            a.registers_written.insert(reg_index(*reg));
            walk_expr(prog, *value, depth, a);
        }
        HStmt::Push { target, packet } => {
            a.push_sites += 1;
            walk_expr(prog, *target, depth, a);
            walk_expr(prog, *packet, depth, a);
        }
        HStmt::Drop { packet } => {
            a.drop_sites += 1;
            walk_expr(prog, *packet, depth, a);
        }
        HStmt::Return => {}
    }
}

fn queue_base(prog: &HProgram, e: ExprId) -> Option<QueueKind> {
    match prog.expr(e) {
        HExpr::Queue(k) => Some(*k),
        HExpr::QueueFilter { queue, .. } => queue_base(prog, *queue),
        HExpr::ReadVar(slot) => {
            prog.aggregate_init[slot.0 as usize].and_then(|init| queue_base(prog, init))
        }
        _ => None,
    }
}

fn note_queue_read(prog: &HProgram, e: ExprId, a: &mut Analysis) {
    if let Some(k) = queue_base(prog, e) {
        a.queues_read.insert(k.name());
    }
}

fn walk_expr(prog: &HProgram, eid: ExprId, depth: usize, a: &mut Analysis) {
    match prog.expr(eid) {
        HExpr::Int(_) | HExpr::Bool(_) | HExpr::NullPacket | HExpr::NullSubflow => {}
        HExpr::ReadReg(r) => {
            a.registers_read.insert(reg_index(*r));
        }
        HExpr::ReadVar(_) | HExpr::Subflows | HExpr::Queue(_) => {}
        HExpr::SubflowProp { sbf, prop } => {
            a.subflow_props.insert(prop.name());
            walk_expr(prog, *sbf, depth, a);
        }
        HExpr::PacketProp { pkt, prop } => {
            a.packet_props.insert(prop.name());
            walk_expr(prog, *pkt, depth, a);
        }
        HExpr::SentOn { pkt, sbf } => {
            a.uses_sent_on = true;
            walk_expr(prog, *pkt, depth, a);
            walk_expr(prog, *sbf, depth, a);
        }
        HExpr::HasWindowFor { sbf, pkt } => {
            a.uses_window_check = true;
            walk_expr(prog, *sbf, depth, a);
            walk_expr(prog, *pkt, depth, a);
        }
        HExpr::ListFilter { list, pred, .. } => {
            a.max_scan_depth = a.max_scan_depth.max(depth + 1);
            walk_expr(prog, *list, depth, a);
            walk_expr(prog, *pred, depth + 1, a);
        }
        HExpr::QueueFilter { queue, pred, .. } => {
            a.max_scan_depth = a.max_scan_depth.max(depth + 1);
            note_queue_read(prog, eid, a);
            walk_expr(prog, *queue, depth, a);
            walk_expr(prog, *pred, depth + 1, a);
        }
        HExpr::ListMinMax { list, key, .. } => {
            a.max_scan_depth = a.max_scan_depth.max(depth + 1);
            walk_expr(prog, *list, depth, a);
            walk_expr(prog, *key, depth + 1, a);
        }
        HExpr::QueueMinMax { queue, key, .. } => {
            a.max_scan_depth = a.max_scan_depth.max(depth + 1);
            note_queue_read(prog, *queue, a);
            walk_expr(prog, *queue, depth, a);
            walk_expr(prog, *key, depth + 1, a);
        }
        HExpr::ListSum { list, key, .. } => {
            a.max_scan_depth = a.max_scan_depth.max(depth + 1);
            walk_expr(prog, *list, depth, a);
            walk_expr(prog, *key, depth + 1, a);
        }
        HExpr::QueueSum { queue, key, .. } => {
            a.max_scan_depth = a.max_scan_depth.max(depth + 1);
            note_queue_read(prog, *queue, a);
            walk_expr(prog, *queue, depth, a);
            walk_expr(prog, *key, depth + 1, a);
        }
        HExpr::ListCount(e) | HExpr::ListEmpty(e) => {
            walk_expr(prog, *e, depth, a);
        }
        HExpr::QueueCount(e) | HExpr::QueueEmpty(e) | HExpr::QueueTop(e) => {
            note_queue_read(prog, *e, a);
            walk_expr(prog, *e, depth, a);
        }
        HExpr::QueuePop(e) => {
            if let Some(k) = queue_base(prog, *e) {
                a.queues_read.insert(k.name());
                a.queues_popped.insert(k.name());
            }
            walk_expr(prog, *e, depth, a);
        }
        HExpr::ListGet { list, index } => {
            walk_expr(prog, *list, depth, a);
            walk_expr(prog, *index, depth, a);
        }
        HExpr::Unary { expr, .. } => walk_expr(prog, *expr, depth, a),
        HExpr::Binary { lhs, rhs, .. } => {
            walk_expr(prog, *lhs, depth, a);
            walk_expr(prog, *rhs, depth, a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::sema::lower;

    fn analysis_of(src: &str) -> Analysis {
        analyze(&lower(&parse(src).unwrap()).unwrap())
    }

    #[test]
    fn min_rtt_analysis() {
        let a = analysis_of(
            "IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) { SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP()); }",
        );
        assert!(a.subflow_props.contains("RTT"));
        assert_eq!(a.queues_read.iter().copied().collect::<Vec<_>>(), ["Q"]);
        assert_eq!(a.queues_popped.iter().copied().collect::<Vec<_>>(), ["Q"]);
        assert_eq!(a.push_sites, 1);
        assert_eq!(a.drop_sites, 0);
        assert!(a.can_transmit());
        assert!(!a.can_discard());
        assert!(!a.uses_sent_on);
        assert_eq!(a.max_scan_depth, 1);
    }

    #[test]
    fn register_interface_is_reported() {
        let a = analysis_of("IF (R1 > 0) { SET(R2, R1 + R3); }");
        assert_eq!(a.registers_read.iter().copied().collect::<Vec<_>>(), [1, 3]);
        assert_eq!(a.registers_written.iter().copied().collect::<Vec<_>>(), [2]);
        assert!(!a.can_transmit());
    }

    #[test]
    fn nested_scans_report_depth() {
        let a = analysis_of(
            "FOREACH (VAR s IN SUBFLOWS.FILTER(x => x.RTT > 0)) {
                 VAR p = QU.FILTER(q => !q.SENT_ON(s)).TOP;
                 IF (p != NULL) { s.PUSH(p); }
             }",
        );
        assert!(a.uses_sent_on);
        assert!(a.queues_read.contains("QU"));
        assert!(a.queues_popped.is_empty(), "TOP does not pop");
        assert!(a.max_scan_depth >= 2, "queue scan nested in FOREACH");
    }

    #[test]
    fn drop_and_window_checks_detected() {
        let a = analysis_of(
            "VAR s = SUBFLOWS.GET(0);
             IF (s != NULL AND s.HAS_WINDOW_FOR(Q.TOP)) { s.PUSH(Q.POP()); }
             ELSE { DROP(RQ.POP()); }",
        );
        assert!(a.uses_window_check);
        assert!(a.can_discard());
        assert!(a.queues_popped.contains("Q"));
        assert!(a.queues_popped.contains("RQ"));
    }

    #[test]
    fn aggregate_vars_attribute_to_base_queue() {
        let a = analysis_of(
            "VAR hot = Q.FILTER(p => p.PROP == 1);
             IF (!hot.EMPTY) { SUBFLOWS.GET(0).PUSH(hot.POP()); }",
        );
        assert!(a.queues_popped.contains("Q"), "var-level pop resolves to Q");
        assert!(a.packet_props.contains("PROP"));
    }

    #[test]
    fn display_renders_all_sections() {
        let a = analysis_of("SET(R1, Q.COUNT);");
        let text = a.to_string();
        assert!(text.contains("queues read:        Q"));
        assert!(text.contains("registers written:  R1"));
        assert!(text.contains("max scan depth:     0"));
    }

    #[test]
    fn constant_time_queue_ops_are_not_scans() {
        // COUNT/EMPTY/TOP/GET and a plain POP are O(1): no scan level.
        let a = analysis_of(
            "SET(R1, Q.COUNT);
             IF (!QU.EMPTY AND RQ.TOP != NULL) { SUBFLOWS.GET(0).PUSH(Q.POP()); }",
        );
        assert_eq!(a.max_scan_depth, 0);
        // Popping *through* a filter still scans (the FILTER node counts).
        let b = analysis_of("VAR p = Q.FILTER(x => x.PROP == 1).POP();");
        assert_eq!(b.max_scan_depth, 1);
    }
}
