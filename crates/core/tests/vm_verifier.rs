//! Integration corpus for the dataflow bytecode verifier.
//!
//! The module tests in `verify::vm` cover the abstract domain and
//! translation validation from the inside; this corpus drives the same
//! machinery through the crate's public surface the way embedders do:
//! hand-built [`BytecodeProgram`]s straight into [`verify_bytecode`],
//! hand-built virtual-register programs through the register allocator
//! (spill/reload def-use), and full source programs through the
//! `vm-verify` admission stage of [`progmp_core::compile`].

use progmp_core::bytecode::{AluOp, BytecodeProgram, Cond, Helper, Insn};
use progmp_core::codegen::{VCode, VInsn, VReg};
use progmp_core::exec::NULL_HANDLE;
use progmp_core::regalloc;
use progmp_core::verify::vm::verify_bytecode;
use progmp_core::verify::{Lint, Severity, VerifyConfig};

fn prog(code: Vec<Insn>) -> BytecodeProgram {
    BytecodeProgram {
        code,
        stack_slots: 0,
    }
}

fn check(p: &BytecodeProgram) -> progmp_core::verify::vm::BytecodeVerdict {
    verify_bytecode(p, None, &VerifyConfig::default())
}

// --- uninitialized reads -------------------------------------------------

#[test]
fn read_before_any_write_is_rejected() {
    let v = check(&prog(vec![
        Insn::AluImm {
            op: AluOp::Add,
            dst: 6,
            imm: 1,
        },
        Insn::Exit,
    ]));
    assert!(!v.admitted());
    assert!(
        v.diagnostics
            .iter()
            .any(|d| d.lint == Lint::UninitRead && d.severity == Severity::Error),
        "{:?}",
        v.diagnostics
    );
}

#[test]
fn store_of_uninitialized_register_is_rejected() {
    let p = BytecodeProgram {
        code: vec![Insn::St { slot: 0, src: 8 }, Insn::Exit],
        stack_slots: 1,
    };
    let v = check(&p);
    assert!(!v.admitted());
    assert!(v
        .diagnostics
        .iter()
        .any(|d| d.lint == Lint::UninitRead && d.message.contains("r8")));
}

#[test]
fn helper_clobbered_argument_register_is_dead_after_the_call() {
    // r1..r5 are caller-saved: their values do not survive a call.
    let v = check(&prog(vec![
        Insn::MovImm { dst: 1, imm: 3 },
        Insn::Call {
            helper: Helper::GetReg,
        },
        Insn::Mov { dst: 6, src: 1 },
        Insn::Exit,
    ]));
    assert!(!v.admitted());
    assert!(v
        .diagnostics
        .iter()
        .any(|d| d.lint == Lint::UninitRead && d.message.contains("r1")));
}

#[test]
fn both_branch_arms_writing_satisfies_the_merge() {
    // The classic comparison lowering: 1 on one arm, 0 on the other. The
    // merge point sees an initialized value on every path.
    let v = check(&prog(vec![
        Insn::MovImm { dst: 1, imm: 0 },
        Insn::Call {
            helper: Helper::GetReg,
        },
        Insn::JmpImm {
            cond: Cond::Eq,
            lhs: 0,
            imm: 0,
            off: 2,
        },
        Insn::MovImm { dst: 6, imm: 1 },
        Insn::Ja { off: 1 },
        Insn::MovImm { dst: 6, imm: 0 },
        Insn::Mov { dst: 7, src: 6 },
        Insn::Exit,
    ]));
    assert!(v.admitted(), "{:?}", v.diagnostics);
}

// --- dead code -----------------------------------------------------------

#[test]
fn instruction_after_unconditional_jump_is_reported_unreachable() {
    let v = check(&prog(vec![
        Insn::Ja { off: 1 },
        Insn::MovImm { dst: 6, imm: 9 },
        Insn::Exit,
    ]));
    // Dead code is a warning, not a rejection: the paper pipeline's
    // optimizer may leave benign unreachable tails.
    assert!(v.admitted(), "{:?}", v.diagnostics);
    let dead: Vec<_> = v
        .diagnostics
        .iter()
        .filter(|d| d.lint == Lint::UnreachableCode)
        .collect();
    assert!(!dead.is_empty(), "{:?}", v.diagnostics);
    assert!(dead.iter().all(|d| d.severity == Severity::Warning));
}

#[test]
fn branch_on_known_constant_makes_one_arm_unreachable() {
    // r6 = 7 is a known scalar, so `r6 == 7` always branches: the
    // fall-through arm is dead and the verifier's constant propagation
    // must see that.
    let v = check(&prog(vec![
        Insn::MovImm { dst: 6, imm: 7 },
        Insn::JmpImm {
            cond: Cond::Eq,
            lhs: 6,
            imm: 7,
            off: 1,
        },
        Insn::MovImm { dst: 7, imm: 1 },
        Insn::Exit,
    ]));
    assert!(v.admitted(), "{:?}", v.diagnostics);
    assert!(
        v.diagnostics
            .iter()
            .any(|d| d.lint == Lint::UnreachableCode && d.message.contains("pc 2")),
        "{:?}",
        v.diagnostics
    );
}

#[test]
fn annotated_listing_marks_unreachable_instructions() {
    let v = check(&prog(vec![
        Insn::Ja { off: 1 },
        Insn::MovImm { dst: 6, imm: 9 },
        Insn::Exit,
    ]));
    assert!(v.annotated.contains("unreachable"), "{}", v.annotated);
}

// --- helper-signature violations ----------------------------------------

#[test]
fn scalar_passed_where_subflow_handle_expected_is_rejected() {
    // SubflowProp wants (subflow handle, prop code); 42 is a plain scalar.
    let v = check(&prog(vec![
        Insn::MovImm { dst: 1, imm: 42 },
        Insn::MovImm { dst: 2, imm: 0 },
        Insn::Call {
            helper: Helper::SubflowProp,
        },
        Insn::Exit,
    ]));
    assert!(!v.admitted());
    assert!(
        v.diagnostics
            .iter()
            .any(|d| d.lint == Lint::HelperSignature && d.message.contains("subflow")),
        "{:?}",
        v.diagnostics
    );
}

#[test]
fn packet_handle_passed_to_subflow_helper_is_kind_confusion() {
    // QueueGet returns a packet handle; feeding it to SubflowProp as the
    // subflow argument is exactly the confusion the typed signatures
    // exist to catch.
    let v = check(&prog(vec![
        Insn::MovImm { dst: 1, imm: 0 }, // queue kind
        Insn::MovImm { dst: 2, imm: 0 }, // index
        Insn::Call {
            helper: Helper::QueueGet,
        },
        Insn::Mov { dst: 1, src: 0 }, // packet handle → r1
        Insn::MovImm { dst: 2, imm: 0 },
        Insn::Call {
            helper: Helper::SubflowProp,
        },
        Insn::Exit,
    ]));
    assert!(!v.admitted());
    assert!(
        v.diagnostics
            .iter()
            .any(|d| d.lint == Lint::HelperSignature),
        "{:?}",
        v.diagnostics
    );
}

#[test]
fn subflow_handle_passed_where_scalar_expected_is_rejected() {
    // SubflowAt's index argument is a scalar; a handle there means an
    // address is being used as arithmetic — a miscompile signature.
    let v = check(&prog(vec![
        Insn::MovImm { dst: 1, imm: 0 },
        Insn::Call {
            helper: Helper::SubflowAt,
        },
        Insn::Mov { dst: 1, src: 0 }, // subflow handle as the new index
        Insn::Call {
            helper: Helper::SubflowAt,
        },
        Insn::Exit,
    ]));
    assert!(!v.admitted());
    assert!(
        v.diagnostics
            .iter()
            .any(|d| d.lint == Lint::HelperSignature && d.message.contains("scalar")),
        "{:?}",
        v.diagnostics
    );
}

#[test]
fn null_handle_is_a_legal_helper_argument() {
    // NULL is a valid member of every handle type at the call boundary
    // (helpers perform their own null checks at runtime), so passing the
    // NULL_HANDLE sentinel must not trip the signature check.
    let v = check(&prog(vec![
        Insn::MovImm {
            dst: 1,
            imm: NULL_HANDLE,
        },
        Insn::Call {
            helper: Helper::DropPkt,
        },
        Insn::Exit,
    ]));
    assert!(v.admitted(), "{:?}", v.diagnostics);
}

#[test]
fn arithmetic_on_a_handle_is_rejected() {
    let v = check(&prog(vec![
        Insn::MovImm { dst: 1, imm: 0 },
        Insn::Call {
            helper: Helper::SubflowAt,
        },
        Insn::Mov { dst: 6, src: 0 },
        Insn::AluImm {
            op: AluOp::Add,
            dst: 6,
            imm: 4,
        },
        Insn::Exit,
    ]));
    assert!(!v.admitted());
    assert!(
        v.diagnostics.iter().any(|d| d.lint == Lint::HandleArith),
        "{:?}",
        v.diagnostics
    );
}

// --- regalloc spill/reload def-use --------------------------------------

/// Builds a VInsn program with `live` simultaneously-live scalar values
/// (forcing spills beyond the four allocatable registers), then sums
/// them. Returns the allocated machine program and its debug table.
fn spill_pressure(live: u32) -> (BytecodeProgram, progmp_core::bytecode::DebugTable) {
    let mut insns = Vec::new();
    for i in 0..live {
        insns.push(VInsn::MovImm {
            dst: VReg(i),
            imm: i64::from(i) + 1,
        });
    }
    let acc = VReg(live);
    insns.push(VInsn::MovImm { dst: acc, imm: 0 });
    for i in 0..live {
        insns.push(VInsn::Alu {
            op: AluOp::Add,
            dst: acc,
            a: acc,
            b: VReg(i),
        });
    }
    insns.push(VInsn::Call {
        helper: Helper::SetReg,
        args: vec![VReg(live + 1), acc],
        ret: None,
    });
    // The first SetReg argument (register code) must be defined too.
    insns.insert(
        0,
        VInsn::MovImm {
            dst: VReg(live + 1),
            imm: 0,
        },
    );
    insns.push(VInsn::Exit);
    regalloc::allocate_with_debug(&VCode::from_insns(insns)).expect("allocates")
}

#[test]
fn spilled_values_verify_with_fully_defined_slots() {
    // Twelve live values cannot fit in r6..r9: the allocator must spill,
    // and every spill slot must be written before the reload that the
    // verifier observes. A def-use break here (reload before store) is
    // precisely the allocator bug class the verifier exists to catch.
    let (machine, debug) = spill_pressure(12);
    assert!(
        machine.stack_slots > 0,
        "pressure program must actually spill"
    );
    let v = verify_bytecode(&machine, Some(&debug), &VerifyConfig::default());
    assert!(v.admitted(), "{:?}", v.diagnostics);
    assert_eq!(v.count(Severity::Error), 0);
    assert!(v.step_bound.is_some());
}

#[test]
fn spill_reload_def_use_break_is_caught() {
    // Take the correct spilled program and delete one spill *store*: the
    // paired reload now reads an uninitialized slot and the verifier must
    // reject. This simulates a lost-store allocator bug without needing
    // to construct the broken allocation by hand.
    let (machine, debug) = spill_pressure(12);
    let store_pc = machine
        .code
        .iter()
        .position(|i| matches!(i, Insn::St { .. }))
        .expect("spilled program contains a store");
    let mut broken = machine.clone();
    // Replace the store with a harmless scratch write, keeping indices
    // (and the debug table) aligned.
    broken.code[store_pc] = Insn::MovImm { dst: 0, imm: 0 };
    let v = verify_bytecode(&broken, Some(&debug), &VerifyConfig::default());
    assert!(!v.admitted(), "lost spill store must be rejected");
    assert!(
        v.diagnostics
            .iter()
            .any(|d| d.lint == Lint::UninitRead && d.message.contains("slot")),
        "{:?}",
        v.diagnostics
    );
}

#[test]
fn spilled_loop_induction_variable_still_bounds() {
    // A counted loop whose induction variable gets spilled: the bound
    // analysis must see through the Ld/St traffic and still produce a
    // finite step bound.
    let n = VReg(0);
    let idx = VReg(1);
    // Enough extra live values to evict the induction variable.
    let pressure: Vec<VReg> = (2..8).map(VReg).collect();
    let head = progmp_core::codegen::Label(0);
    let end = progmp_core::codegen::Label(1);
    let mut insns = vec![VInsn::Call {
        helper: Helper::SubflowCount,
        args: vec![],
        ret: Some(n),
    }];
    for (k, &p) in pressure.iter().enumerate() {
        insns.push(VInsn::MovImm {
            dst: p,
            imm: k as i64,
        });
    }
    insns.push(VInsn::MovImm { dst: idx, imm: 0 });
    insns.push(VInsn::Label(head));
    insns.push(VInsn::Jcc {
        cond: Cond::Ge,
        a: idx,
        b: n,
        target: end,
    });
    // Keep the pressure values live across the loop body.
    for &p in &pressure {
        insns.push(VInsn::Alu {
            op: AluOp::Add,
            dst: p,
            a: p,
            b: idx,
        });
    }
    insns.push(VInsn::AluImm {
        op: AluOp::Add,
        dst: idx,
        a: idx,
        imm: 1,
    });
    insns.push(VInsn::Ja(head));
    insns.push(VInsn::Label(end));
    insns.push(VInsn::Exit);
    let (machine, debug) =
        regalloc::allocate_with_debug(&VCode::from_insns(insns)).expect("allocates");
    let v = verify_bytecode(&machine, Some(&debug), &VerifyConfig::default());
    assert!(v.admitted(), "{:?}\n{}", v.diagnostics, v.annotated);
    assert!(v.step_bound.is_some(), "loop must bound:\n{}", v.annotated);
}

// --- the admission stage end-to-end --------------------------------------

#[test]
fn compiled_programs_expose_an_admitted_bytecode_verdict() {
    let program = progmp_core::compile(
        "IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) {
             SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP()); }",
    )
    .expect("compiles through the vm-verify stage");
    let verdict = program.bytecode_verdict();
    assert!(verdict.admitted());
    assert!(verdict.step_bound.is_some());
    let report = program.bytecode_report();
    assert!(report.contains("ADMITTED"), "{report}");
    // Every reachable line carries a source span from the debug table.
    assert!(report.contains("; 1:"), "{report}");
}

#[test]
fn validate_bytecode_rejects_a_foreign_image() {
    // Validating a different scheduler's image against this program's
    // HIR certificate must fail: the helper audit cannot match.
    let min_rtt = progmp_core::compile(
        "IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) {
             SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP()); }",
    )
    .expect("compiles");
    let set_reg = progmp_core::compile("SET(R3, 7);").expect("compiles");
    let v = min_rtt.validate_bytecode(set_reg.bytecode());
    assert!(!v.admitted(), "foreign image must not validate");
    assert!(
        v.diagnostics
            .iter()
            .any(|d| d.lint == Lint::Miscompile && d.severity == Severity::Error),
        "{:?}",
        v.diagnostics
    );
}
