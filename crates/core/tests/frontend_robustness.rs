//! Robustness properties of the language front end: arbitrary input never
//! panics (it either compiles or returns a structured error), and
//! anything that parses pretty-prints to something that parses again.

use progmp_core::parser::parse;
use progmp_core::printer::print_program;
use progmp_core::{compile, CompileError};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary Unicode input: the pipeline returns Ok or Err, never
    /// panics.
    #[test]
    fn arbitrary_input_never_panics(src in ".{0,200}") {
        let _: Result<_, CompileError> = compile(&src);
    }

    /// Inputs built from language tokens (much more likely to get deep
    /// into the parser and type checker): still no panics.
    #[test]
    fn token_soup_never_panics(tokens in proptest::collection::vec(
        prop_oneof![
            Just("VAR"), Just("IF"), Just("ELSE"), Just("FOREACH"), Just("IN"),
            Just("SET"), Just("DROP"), Just("RETURN"), Just("NULL"), Just("TRUE"),
            Just("AND"), Just("OR"), Just("Q"), Just("QU"), Just("RQ"),
            Just("SUBFLOWS"), Just("R1"), Just("R2"), Just("x"), Just("sbf"),
            Just("RTT"), Just("CWND"), Just("EMPTY"), Just("COUNT"), Just("TOP"),
            Just("FILTER"), Just("MIN"), Just("POP"), Just("PUSH"),
            Just("("), Just(")"), Just("{"), Just("}"), Just(";"), Just(","),
            Just("."), Just("=>"), Just("="), Just("=="), Just("!="), Just("<"),
            Just(">"), Just("+"), Just("-"), Just("*"), Just("/"), Just("%"),
            Just("!"), Just("42"), Just("0"),
        ],
        0..40,
    )) {
        let src = tokens.join(" ");
        let _: Result<_, CompileError> = compile(&src);
    }

    /// If a token soup happens to parse, printing and re-parsing succeeds.
    #[test]
    fn parsed_programs_reprint_and_reparse(tokens in proptest::collection::vec(
        prop_oneof![
            Just("SET"), Just("("), Just(")"), Just("R1"), Just("R2"), Just(","),
            Just(";"), Just("IF"), Just("{"), Just("}"), Just("Q"), Just("EMPTY"),
            Just("."), Just("!"), Just("1"), Just("+"), Just("RETURN"),
        ],
        0..30,
    )) {
        let src = tokens.join(" ");
        if let Ok(ast) = parse(&src) {
            let printed = print_program(&ast);
            let reparsed = parse(&printed);
            prop_assert!(reparsed.is_ok(), "printed form must parse:\n{printed}");
        }
    }
}
