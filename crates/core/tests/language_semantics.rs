//! Golden tests for tricky semantic corners of the programming model,
//! executed on all three backends (the fixed-scenario complement to the
//! randomized backend-equivalence suite).

use progmp_core::env::{PacketProp, QueueKind, RegId, SchedulerEnv, SubflowProp};
use progmp_core::testenv::MockEnv;
use progmp_core::{compile, Backend};

fn env3() -> MockEnv {
    let mut env = MockEnv::new();
    for (i, rtt) in [(0u32, 30_000i64), (1, 10_000), (2, 20_000)] {
        env.add_subflow(i);
        env.set_subflow_prop(i, SubflowProp::Rtt, rtt);
        env.set_subflow_prop(i, SubflowProp::Cwnd, 10);
        env.set_subflow_prop(i, SubflowProp::Bw, rtt * 10);
    }
    for p in 0..5u64 {
        env.push_packet(QueueKind::SendQueue, 100 + p, 1400 * p as i64, 1400);
        env.set_packet_prop(100 + p, PacketProp::UserProp, (p % 3) as i64);
    }
    env
}

/// Runs `src` on every backend and returns the per-backend outcomes,
/// asserting they are all identical; returns one of them.
fn run_all(src: &str, setup: impl Fn(&mut MockEnv)) -> MockEnv {
    let program = compile(src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    let mut outcomes: Vec<MockEnv> = Vec::new();
    for backend in Backend::ALL {
        let mut env = env3();
        setup(&mut env);
        let mut inst = program.instantiate(backend);
        inst.execute(&mut env).unwrap();
        outcomes.push(env);
    }
    for pair in outcomes.windows(2) {
        assert_eq!(pair[0].transmissions, pair[1].transmissions);
        assert_eq!(pair[0].dropped, pair[1].dropped);
        for r in 1..=8u8 {
            let reg = RegId::new(r).unwrap();
            assert_eq!(pair[0].register(reg), pair[1].register(reg));
        }
    }
    outcomes.pop().unwrap()
}

#[test]
fn nested_foreach_over_filtered_lists() {
    let env = run_all(
        "FOREACH (VAR a IN SUBFLOWS.FILTER(x => x.RTT > 5000)) {
             FOREACH (VAR b IN SUBFLOWS.FILTER(y => y.RTT < a.RTT)) {
                 SET(R1, R1 + 1);
             }
         }",
        |_| {},
    );
    // Pairs (a, b) with b.RTT < a.RTT among 30/10/20: (30,10), (30,20), (20,10).
    assert_eq!(env.register(RegId::R1), 3);
}

#[test]
fn deep_filter_chain_on_queue_with_register_threshold() {
    let env = run_all(
        "SET(R2, 2);
         SET(R1, Q.FILTER(p => p.SEQ >= 1400)
                  .FILTER(p => p.PROP != 1)
                  .FILTER(p => p.SEQ / 1400 < R2 + 2).COUNT);",
        |_| {},
    );
    // Packets seq 1400..5600 with PROP != 1 and index < 4: indices 2, 3
    // (props 2, 0). Index 1 has prop 1; index 4 fails the bound.
    assert_eq!(env.register(RegId::R1), 2);
}

#[test]
fn get_with_register_index_and_wraparound() {
    let env = run_all(
        "SET(R4, 7);
         IF (R4 >= SUBFLOWS.COUNT) { SET(R4, R4 % SUBFLOWS.COUNT); }
         VAR s = SUBFLOWS.GET(R4);
         IF (s != NULL) { SET(R1, s.RTT); }",
        |_| {},
    );
    // 7 % 3 = 1 -> subflow 1, RTT 10 ms.
    assert_eq!(env.register(RegId::R1), 10_000);
}

#[test]
fn min_ties_resolve_to_first_element() {
    let env = run_all(
        "SET(R1, SUBFLOWS.FILTER(s => s.CWND == 10).MIN(s => s.CWND).ID);",
        |_| {},
    );
    assert_eq!(env.register(RegId::R1), 0, "stable: first of equals wins");
}

#[test]
fn queue_sum_and_max_interact_with_pops() {
    let env = run_all(
        "SET(R1, Q.SUM(p => p.SIZE));
         VAR first = Q.POP();
         SET(R2, Q.SUM(p => p.SIZE));
         SUBFLOWS.GET(0).PUSH(first);
         SET(R3, Q.MAX(p => p.SEQ).SEQ);",
        |_| {},
    );
    assert_eq!(env.register(RegId::R1), 5 * 1400);
    assert_eq!(
        env.register(RegId::R2),
        4 * 1400,
        "pop visible to later SUM"
    );
    assert_eq!(env.register(RegId::R3), 4 * 1400);
    assert_eq!(env.transmissions.len(), 1);
}

#[test]
fn foreach_body_pops_one_per_iteration() {
    let env = run_all(
        "FOREACH (VAR s IN SUBFLOWS) {
             VAR p = Q.POP();
             IF (p != NULL) { s.PUSH(p); }
         }",
        |_| {},
    );
    // Three subflows, three distinct packets.
    assert_eq!(env.transmissions.len(), 3);
    let pkts: Vec<u64> = env.transmissions.iter().map(|t| t.1 .0).collect();
    assert_eq!(pkts, vec![100, 101, 102]);
}

#[test]
fn drop_inside_loop_consumes_queue() {
    let env = run_all("FOREACH (VAR s IN SUBFLOWS) { DROP(Q.POP()); }", |_| {});
    assert_eq!(env.dropped.len(), 3);
    assert_eq!(env.queue_contents(QueueKind::SendQueue).len(), 2);
}

#[test]
fn null_propagation_through_property_chains() {
    let env = run_all(
        "VAR ghost = SUBFLOWS.FILTER(s => s.RTT > 1000000).MIN(s => s.RTT);
         SET(R1, ghost.CWND + 5);
         SET(R2, QU.TOP.SIZE + 7);",
        |_| {},
    );
    assert_eq!(env.register(RegId::R1), 5, "NULL subflow property reads 0");
    assert_eq!(env.register(RegId::R2), 7, "NULL packet property reads 0");
}

#[test]
fn negative_arithmetic_and_modulo() {
    let env = run_all(
        "SET(R1, (0 - 7) / 2);
         SET(R2, (0 - 7) % 3);
         SET(R3, (0 - 1) * (0 - 1));",
        |_| {},
    );
    // Rust/eBPF truncating semantics.
    assert_eq!(env.register(RegId::R1), -3);
    assert_eq!(env.register(RegId::R2), -1);
    assert_eq!(env.register(RegId::R3), 1);
}

#[test]
fn early_return_from_nested_blocks() {
    let env = run_all(
        "IF (!Q.EMPTY) {
             FOREACH (VAR s IN SUBFLOWS) {
                 IF (s.RTT == 10000) {
                     SET(R1, s.ID);
                     RETURN;
                 }
                 SET(R2, R2 + 1);
             }
         }
         SET(R3, 99);",
        |_| {},
    );
    assert_eq!(env.register(RegId::R1), 1);
    assert_eq!(env.register(RegId::R2), 1, "one iteration before the match");
    assert_eq!(env.register(RegId::R3), 0, "RETURN skips the trailing SET");
}

#[test]
fn sent_on_with_variables_across_scopes() {
    let env = run_all(
        "VAR fast = SUBFLOWS.MIN(s => s.RTT);
         FOREACH (VAR other IN SUBFLOWS.FILTER(o => o.ID != fast.ID)) {
             VAR skb = QU.FILTER(p => p.SENT_ON(fast) AND !p.SENT_ON(other)).TOP;
             IF (skb != NULL) { other.PUSH(skb); }
         }",
        |env| {
            env.push_packet(QueueKind::Unacked, 500, 0, 1400);
            env.mark_sent_on(500, 1); // sent on the fast subflow (id 1)
        },
    );
    // Retransmitted on both other subflows (0 and 2).
    assert_eq!(env.transmissions.len(), 2);
    assert!(env.transmissions.iter().all(|t| t.1 .0 == 500));
}

#[test]
fn empty_subflow_set_is_fully_graceful() {
    let program = compile(
        "SET(R1, SUBFLOWS.COUNT);
         VAR m = SUBFLOWS.MIN(s => s.RTT);
         IF (m == NULL) { SET(R2, 1); }
         FOREACH (VAR s IN SUBFLOWS) { SET(R3, 9); }
         IF (SUBFLOWS.EMPTY) { SET(R4, 1); }",
    )
    .unwrap();
    for backend in Backend::ALL {
        let mut env = MockEnv::new();
        env.push_packet(QueueKind::SendQueue, 1, 0, 100);
        program.instantiate(backend).execute(&mut env).unwrap();
        assert_eq!(env.register(RegId::R1), 0);
        assert_eq!(env.register(RegId::R2), 1);
        assert_eq!(env.register(RegId::R3), 0);
        assert_eq!(env.register(RegId::R4), 1);
    }
}

#[test]
fn redundant_push_of_same_packet_counts_each_copy() {
    let env = run_all(
        "VAR skb = Q.TOP;
         FOREACH (VAR s IN SUBFLOWS) { s.PUSH(skb); }
         DROP(Q.POP());",
        |_| {},
    );
    assert_eq!(env.transmissions.len(), 3);
    assert_eq!(
        env.packet_prop(progmp_core::env::PacketRef(100), PacketProp::SentCount),
        3
    );
    // The DROP found the packet already moved to QU by the pushes: the
    // send queue lost exactly one packet.
    assert_eq!(env.queue_contents(QueueKind::SendQueue).len(), 4);
}
