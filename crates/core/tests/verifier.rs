//! Bytecode verifier rejection tests and runtime-fault behavior.
//!
//! The verifier is the safety boundary of the VM backend (the analogue
//! of the kernel eBPF verifier): hand-built malformed programs must be
//! rejected statically, and the few faults that can only manifest at
//! runtime (step budget, malformed bytecode behind the verifier's back)
//! must surface as the documented `ExecError`s.

use progmp_core::bytecode::{AluOp, BytecodeProgram, Cond, Insn, MAX_STACK_SLOTS, NUM_MACH_REGS};
use progmp_core::env::NUM_REGISTERS;
use progmp_core::testenv::MockEnv;
use progmp_core::vm::{execute, verify};
use progmp_core::{Backend, ExecCtx, ExecError};

fn prog(code: Vec<Insn>, stack_slots: u16) -> BytecodeProgram {
    BytecodeProgram { code, stack_slots }
}

#[test]
fn empty_program_is_rejected() {
    assert!(verify(&prog(vec![], 0)).is_err());
}

#[test]
fn missing_terminal_exit_is_rejected() {
    let p = prog(vec![Insn::MovImm { dst: 0, imm: 1 }], 0);
    let err = verify(&p).unwrap_err();
    assert!(
        err.message.to_lowercase().contains("exit"),
        "{}",
        err.message
    );
}

#[test]
fn out_of_bounds_forward_jump_is_rejected() {
    // Ja +5 from the first of two instructions lands past the program.
    let p = prog(vec![Insn::Ja { off: 5 }, Insn::Exit], 0);
    assert!(verify(&p).is_err());
}

#[test]
fn out_of_bounds_backward_jump_is_rejected() {
    let p = prog(vec![Insn::Ja { off: -3 }, Insn::Exit], 0);
    assert!(verify(&p).is_err());
}

#[test]
fn conditional_jump_target_is_checked() {
    let p = prog(
        vec![
            Insn::JmpImm {
                cond: Cond::Eq,
                lhs: 0,
                imm: 0,
                off: 7,
            },
            Insn::Exit,
        ],
        0,
    );
    assert!(verify(&p).is_err());
}

#[test]
fn register_out_of_range_is_rejected() {
    let p = prog(
        vec![
            Insn::MovImm {
                dst: NUM_MACH_REGS as u8,
                imm: 0,
            },
            Insn::Exit,
        ],
        0,
    );
    assert!(verify(&p).is_err());
}

#[test]
fn write_to_frame_pointer_is_rejected() {
    // r10 is the read-only frame pointer.
    let p = prog(
        vec![
            Insn::Alu {
                op: AluOp::Add,
                dst: 10,
                src: 0,
            },
            Insn::Exit,
        ],
        0,
    );
    assert!(verify(&p).is_err());
}

#[test]
fn stack_slot_budget_is_enforced() {
    let p = prog(vec![Insn::Exit], (MAX_STACK_SLOTS + 1) as u16);
    assert!(verify(&p).is_err());
}

#[test]
fn slot_access_beyond_declared_frame_is_rejected() {
    let p = prog(
        vec![Insn::St { slot: 2, src: 0 }, Insn::Exit],
        2, // slots 0 and 1 only
    );
    assert!(verify(&p).is_err());
    // In-bounds access with the same frame verifies.
    let ok = prog(
        vec![
            Insn::St { slot: 1, src: 0 },
            Insn::Ld { dst: 0, slot: 1 },
            Insn::Exit,
        ],
        2,
    );
    verify(&ok).expect("in-bounds slot access must verify");
}

#[test]
fn self_loop_verifies_but_exhausts_step_budget() {
    // `Ja -1` jumps to itself: structurally valid (the target is in
    // range), so the verifier accepts it; termination is enforced by the
    // runtime step budget instead — exactly the eBPF split of concerns.
    let p = prog(vec![Insn::Ja { off: -1 }, Insn::Exit], 0);
    verify(&p).expect("self-loop is structurally valid");
    let env = MockEnv::new();
    let mut ctx = ExecCtx::new(&env, 1000);
    let err = execute(&p, &mut ctx).unwrap_err();
    assert_eq!(err, ExecError::StepBudgetExhausted { budget: 1000 });
}

#[test]
fn unverified_slot_fault_is_caught_at_runtime() {
    // Skipping the verifier (as `execute` permits for tests), an
    // out-of-range slot access must fault as MalformedBytecode rather
    // than corrupt memory.
    let p = prog(vec![Insn::Ld { dst: 0, slot: 63 }, Insn::Exit], 1);
    let env = MockEnv::new();
    let mut ctx = ExecCtx::new(&env, 1000);
    let err = execute(&p, &mut ctx).unwrap_err();
    assert!(
        matches!(err, ExecError::MalformedBytecode { .. }),
        "{err:?}"
    );
}

#[test]
fn spilled_register_pressure_computes_correctly_end_to_end() {
    // Twelve live values forced through the allocator's spill path: the
    // VM must agree with the interpreter and with the arithmetic.
    let mut src = String::new();
    for i in 0..12 {
        src.push_str(&format!("VAR a{i} = R1 + {i};\n"));
    }
    src.push_str("SET(R2, a0");
    for i in 1..12 {
        src.push_str(&format!(" + a{i}"));
    }
    src.push_str(");\n");
    let program = progmp_core::compile(&src).expect("pressure program compiles");
    let mut results = Vec::new();
    for backend in Backend::ALL {
        let mut env = MockEnv::new();
        env.set_register(progmp_core::env::RegId::R1, 5);
        let mut instance = program.instantiate(backend);
        instance.execute(&mut env).expect("executes");
        let mut regs = [0i64; NUM_REGISTERS];
        for (i, r) in regs.iter_mut().enumerate() {
            use progmp_core::env::SchedulerEnv;
            *r = env.register(
                progmp_core::env::RegId::new(i as u8 + 1).expect("register index in range"),
            );
        }
        results.push(regs);
    }
    // 12 * 5 + (0 + 1 + ... + 11) = 60 + 66 = 126.
    assert_eq!(results[0][1], 126);
    assert!(results.iter().all(|r| *r == results[0]), "{results:?}");
}
