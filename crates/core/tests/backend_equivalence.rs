//! Property tests: the three execution backends (interpreter, AOT
//! closures, bytecode VM) are observationally equivalent — identical
//! register files, transmissions, and drops — on randomly generated
//! programs and randomly generated environments.
//!
//! This is the safety net behind the paper's claim that the scheduler
//! developer "can be agnostic with respect to the execution
//! alternatives" (§4.1 footnote 3).

use progmp_core::env::{PacketProp, QueueKind, RegId, SchedulerEnv, SubflowProp};
use progmp_core::testenv::MockEnv;
use progmp_core::{compile_with_options, Backend, CompileOptions, SchedulerProgram};
use proptest::prelude::*;

/// Compiles in observe mode: these property tests are about backend
/// equivalence, so admission-gate rejections (e.g. a generated literal
/// zero divisor) must not mask the behaviours under test.
fn compile_observed(src: &str) -> SchedulerProgram {
    compile_with_options(
        None,
        src,
        CompileOptions {
            enforce_admission: false,
            ..CompileOptions::default()
        },
    )
    .expect("generated programs compile")
}

/// Recursive generator for integer-typed expressions. `lambda_var` is the
/// name of the subflow variable in scope (inside FILTER/MIN lambdas).
fn int_expr(depth: u32, lambda_var: Option<&'static str>) -> BoxedStrategy<String> {
    let leaf = {
        let mut options: Vec<BoxedStrategy<String>> = vec![
            (-100i64..100)
                .prop_map(|v| {
                    if v < 0 {
                        format!("(0 - {})", -v)
                    } else {
                        v.to_string()
                    }
                })
                .boxed(),
            (1u8..=4).prop_map(|r| format!("R{r}")).boxed(),
            Just("Q.COUNT".to_string()).boxed(),
            Just("QU.COUNT".to_string()).boxed(),
            Just("SUBFLOWS.COUNT".to_string()).boxed(),
        ];
        if let Some(v) = lambda_var {
            options.push(
                prop_oneof![
                    Just(format!("{v}.RTT")),
                    Just(format!("{v}.CWND")),
                    Just(format!("{v}.ID")),
                    Just(format!("{v}.BW")),
                ]
                .boxed(),
            );
        }
        proptest::strategy::Union::new(options).boxed()
    };
    if depth == 0 {
        return leaf;
    }
    let sub = int_expr(depth - 1, lambda_var);
    prop_oneof![
        3 => leaf,
        1 => (sub.clone(), sub.clone(), prop_oneof![Just("+"), Just("-"), Just("*"), Just("/"), Just("%")])
            .prop_map(|(a, b, op)| format!("({a} {op} {b})")),
    ]
    .boxed()
}

/// Boolean-typed expressions.
fn bool_expr(depth: u32, lambda_var: Option<&'static str>) -> BoxedStrategy<String> {
    let cmp = (
        int_expr(depth, lambda_var),
        int_expr(depth, lambda_var),
        prop_oneof![
            Just("<"),
            Just("<="),
            Just(">"),
            Just(">="),
            Just("=="),
            Just("!=")
        ],
    )
        .prop_map(|(a, b, op)| format!("({a} {op} {b})"));
    let mut options: Vec<BoxedStrategy<String>> = vec![
        cmp.boxed(),
        Just("Q.EMPTY".to_string()).boxed(),
        Just("!SUBFLOWS.EMPTY".to_string()).boxed(),
    ];
    if let Some(v) = lambda_var {
        options.push(Just(format!("!{v}.IS_BACKUP")).boxed());
        options.push(Just(format!("!{v}.LOSSY")).boxed());
    }
    let base = proptest::strategy::Union::new(options);
    if depth == 0 {
        return base.boxed();
    }
    let sub = bool_expr(depth - 1, lambda_var);
    prop_oneof![
        3 => base,
        1 => (sub.clone(), sub.clone(), prop_oneof![Just("AND"), Just("OR")])
            .prop_map(|(a, b, op)| format!("({a} {op} {b})")),
        1 => sub.prop_map(|e| format!("!{e}")),
    ]
    .boxed()
}

/// A statement. Variable names are made unique with `idx` to respect the
/// single-assignment rule.
fn stmt(depth: u32, idx: u32) -> BoxedStrategy<String> {
    let set = (1u8..=4, int_expr(2, None)).prop_map(|(r, e)| format!("SET(R{r}, {e});"));
    let push_min = bool_expr(1, Some("pm")).prop_map(move |pred| {
        format!(
            "VAR s{idx} = SUBFLOWS.FILTER(pm => {pred}).MIN(pm => pm.RTT);\n\
                 IF (s{idx} != NULL AND !Q.EMPTY) {{ s{idx}.PUSH(Q.POP()); }}"
        )
    });
    let foreach = (bool_expr(1, Some("fv")), int_expr(1, None)).prop_map(move |(pred, e)| {
        format!("FOREACH (VAR f{idx} IN SUBFLOWS.FILTER(fv => {pred})) {{ SET(R5, R5 + {e}); }}")
    });
    if depth == 0 {
        return prop_oneof![set, push_min, foreach].boxed();
    }
    let cond_stmt = (
        bool_expr(1, None),
        stmt(depth - 1, idx * 2 + 100),
        stmt(depth - 1, idx * 2 + 101),
    )
        .prop_map(|(c, t, e)| format!("IF ({c}) {{\n{t}\n}} ELSE {{\n{e}\n}}"));
    prop_oneof![
        2 => set,
        2 => push_min,
        1 => foreach,
        2 => cond_stmt,
    ]
    .boxed()
}

/// A whole program: 1..4 statements.
fn program() -> impl Strategy<Value = String> {
    proptest::collection::vec(stmt(1, 0), 1..4).prop_map(|stmts| {
        stmts
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                // Re-number var declarations to keep names unique.
                s.replace("s0", &format!("sa{i}"))
                    .replace("f0", &format!("fa{i}"))
            })
            .collect::<Vec<_>>()
            .join("\n")
    })
}

/// A random environment: 0..5 subflows with random properties and three
/// queues with random packets.
fn environment() -> impl Strategy<Value = MockEnv> {
    (
        proptest::collection::vec(
            (1i64..200_000, 1i64..64, any::<bool>(), any::<bool>()),
            0..5,
        ),
        proptest::collection::vec((1u32..2000, 0i64..1_000_000), 0..6),
        proptest::collection::vec((1u32..2000, 0i64..1_000_000), 0..4),
        proptest::collection::vec(-50i64..50, 8),
    )
        .prop_map(|(subflows, q_pkts, qu_pkts, regs)| {
            let mut env = MockEnv::new();
            for (i, (rtt, cwnd, backup, lossy)) in subflows.iter().enumerate() {
                let id = i as u32;
                env.add_subflow(id);
                env.set_subflow_prop(id, SubflowProp::Rtt, *rtt);
                env.set_subflow_prop(id, SubflowProp::Cwnd, *cwnd);
                env.set_subflow_prop(id, SubflowProp::Bw, rtt * 7 % 100_000);
                env.set_subflow_prop(id, SubflowProp::IsBackup, i64::from(*backup));
                env.set_subflow_prop(id, SubflowProp::Lossy, i64::from(*lossy));
            }
            let mut next_id = 1u64;
            for (size, seq) in q_pkts {
                env.push_packet(QueueKind::SendQueue, next_id, seq, i64::from(size));
                next_id += 1;
            }
            for (i, (size, seq)) in qu_pkts.iter().enumerate() {
                env.push_packet(QueueKind::Unacked, next_id, *seq, i64::from(*size));
                env.set_packet_prop(next_id, PacketProp::UserProp, (i % 4) as i64);
                if !env.subflows().is_empty() {
                    env.mark_sent_on(next_id, (i % env.subflows().len()) as u32);
                }
                next_id += 1;
            }
            for (i, v) in regs.iter().enumerate() {
                env.set_register(RegId::new((i + 1) as u8).unwrap(), *v);
            }
            env
        })
}

/// Runs `src` on `env` with `backend`, returning the observable outcome.
fn run(src: &str, env: &MockEnv, backend: Backend) -> (Vec<(u32, u64)>, Vec<u64>, Vec<i64>) {
    let program = compile_observed(src);
    let mut inst = program.instantiate(backend);
    let mut env = env.clone();
    // Three consecutive executions to exercise register persistence.
    for _ in 0..3 {
        inst.execute(&mut env).expect("execution succeeds");
    }
    let txs = env.transmissions.iter().map(|(s, p)| (s.0, p.0)).collect();
    let drops = env.dropped.iter().map(|p| p.0).collect();
    let regs = (1..=8)
        .map(|i| env.register(RegId::new(i).unwrap()))
        .collect();
    (txs, drops, regs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// All three backends agree on arbitrary programs and environments.
    #[test]
    fn backends_are_observationally_equivalent(src in program(), env in environment()) {
        let a = run(&src, &env, Backend::Interpreter);
        let b = run(&src, &env, Backend::Aot);
        let c = run(&src, &env, Backend::Vm);
        prop_assert_eq!(&a, &b, "interpreter vs aot differ for:\n{}", src);
        prop_assert_eq!(&a, &c, "interpreter vs vm differ for:\n{}", src);
    }

    /// Generated programs never lose packets: every packet is either
    /// still in a queue, transmitted, or dropped.
    #[test]
    fn no_packet_loss_by_design(src in program(), env in environment()) {
        let program = compile_observed(&src);
        let mut inst = program.instantiate(Backend::Vm);
        let mut e = env.clone();
        let q_before: Vec<u64> = e.queue_contents(QueueKind::SendQueue).iter().map(|p| p.0).collect();
        inst.execute(&mut e).expect("execution succeeds");
        let q_after: Vec<u64> = e.queue_contents(QueueKind::SendQueue).iter().map(|p| p.0).collect();
        let qu_after: Vec<u64> = e.queue_contents(QueueKind::Unacked).iter().map(|p| p.0).collect();
        let dropped: Vec<u64> = e.dropped.iter().map(|p| p.0).collect();
        for pkt in q_before {
            let accounted = q_after.contains(&pkt)
                || qu_after.contains(&pkt)
                || dropped.contains(&pkt)
                || e.transmissions.iter().any(|(_, p)| p.0 == pkt);
            prop_assert!(accounted, "packet {pkt} vanished for program:\n{src}");
        }
    }

    /// The HIR optimizer never changes observable behaviour: optimized
    /// and unoptimized compiles of random programs agree on random
    /// environments.
    #[test]
    fn optimizer_preserves_semantics(src in program(), env in environment()) {
        let run_with = |optimize: bool| {
            let program = compile_with_options(
                None,
                &src,
                CompileOptions {
                    optimize,
                    enforce_admission: false,
                    ..CompileOptions::default()
                },
            )
            .expect("generated programs compile");
            let mut inst = program.instantiate(Backend::Vm);
            let mut env = env.clone();
            for _ in 0..3 {
                inst.execute(&mut env).expect("execution succeeds");
            }
            let txs: Vec<(u32, u64)> = env.transmissions.iter().map(|(s, p)| (s.0, p.0)).collect();
            let regs: Vec<i64> = (1..=8).map(|i| env.register(RegId::new(i).unwrap())).collect();
            (txs, regs)
        };
        prop_assert_eq!(run_with(true), run_with(false), "optimizer changed behaviour of:\n{}", src);
    }

    /// The step budget terminates any generated program (the verifier
    /// guarantee) and partial executions apply no effects.
    #[test]
    fn tiny_budget_never_panics(src in program(), env in environment()) {
        let program = compile_observed(&src);
        for backend in Backend::ALL {
            let mut inst = program.instantiate(backend);
            inst.set_step_budget(7);
            let mut e = env.clone();
            // Either completes within budget or errors — never panics.
            let _ = inst.execute(&mut e);
        }
    }
}
