//! Shared machine-readable reporting for the experiment binaries.
//!
//! Every `src/bin/` binary prints its human-readable table as before;
//! this module adds the common plumbing around it:
//!
//! * [`smoke`] — `--smoke` flag detection, the CI fast path: run a
//!   drastically reduced parameter sweep that still exercises every
//!   code path and emits schema-valid output;
//! * [`json_out`] — `--json PATH` output redirection;
//! * [`Report`] — a name + metadata + rows document rendered as JSON
//!   ([`Json`]) with a hand-rolled renderer/parser (the workspace takes
//!   no serde dependency), so results like `BENCH_scale.json` are
//!   diffable across commits and parseable by the validation tests;
//! * [`peak_rss_bytes`] — peak resident set size from
//!   `/proc/self/status` for the memory columns of the scale tier.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Whether the binary was invoked with `--smoke`: run the reduced
/// CI-speed sweep instead of the full experiment.
pub fn smoke() -> bool {
    std::env::args().any(|a| a == "--smoke")
}

/// The `--json PATH` argument, if given: where to write the
/// machine-readable report alongside the printed table.
pub fn json_out() -> Option<PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--json" {
            return args.next().map(PathBuf::from);
        }
    }
    None
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`); `None` off Linux or on parse failure.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// A JSON value. Object keys keep insertion order so rendered reports
/// are stable and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (rendered without trailing `.0` for integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).render_into(out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (strict enough for round-tripping our own
    /// reports; rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(v)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at offset {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                pairs.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("invalid number at offset {start}"))
        }
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at offset {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("bad \\u escape")?;
                        out.push(char::from_u32(hex).ok_or("bad \\u codepoint")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                let start = *pos;
                while *pos < b.len() && b[*pos] != b'"' && b[*pos] != b'\\' {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

/// A named experiment report: metadata plus uniform rows, rendered as
/// one JSON document.
#[derive(Debug, Clone)]
pub struct Report {
    name: String,
    meta: Vec<(String, Json)>,
    rows: Vec<Json>,
}

impl Report {
    /// An empty report called `name`.
    pub fn new(name: &str) -> Report {
        Report {
            name: name.to_string(),
            meta: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Attaches a metadata entry (sweep parameters, environment).
    pub fn meta(&mut self, key: &str, value: impl Into<Json>) -> &mut Self {
        self.meta.push((key.to_string(), value.into()));
        self
    }

    /// Appends one result row.
    pub fn row(&mut self, pairs: Vec<(&str, Json)>) -> &mut Self {
        self.rows.push(Json::obj(pairs));
        self
    }

    /// The whole report as a JSON value:
    /// `{"name", "schema": 1, "meta": {...}, "rows": [...]}`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("schema", Json::Num(1.0)),
            ("meta", Json::Obj(self.meta.clone())),
            ("rows", Json::Arr(self.rows.clone())),
        ])
    }

    /// Renders the report as compact JSON with a trailing newline.
    pub fn render(&self) -> String {
        let mut s = self.to_json().render();
        s.push('\n');
        s
    }

    /// Writes the rendered report to `--json PATH` if the flag was
    /// given, and says so on stdout. Returns whether a file was written.
    pub fn write_if_requested(&self) -> std::io::Result<bool> {
        let Some(path) = json_out() else {
            return Ok(false);
        };
        std::fs::write(&path, self.render())?;
        println!("\nwrote {} ({} rows)", path.display(), self.rows.len());
        Ok(true)
    }
}

/// Validates the common report envelope: `name`/`schema`/`meta`/`rows`
/// present, every row an object, and every row carrying at least the
/// columns of the first row (uniform tables).
pub fn validate_report(doc: &Json) -> Result<(), String> {
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .ok_or("missing string field 'name'")?;
    if name.is_empty() {
        return Err("empty report name".into());
    }
    doc.get("schema")
        .and_then(Json::as_f64)
        .filter(|v| *v == 1.0)
        .ok_or("missing or unknown 'schema'")?;
    match doc.get("meta") {
        Some(Json::Obj(_)) => {}
        _ => return Err("missing object field 'meta'".into()),
    }
    let rows = doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("missing array field 'rows'")?;
    let mut first_cols: Option<BTreeMap<&str, ()>> = None;
    for (i, row) in rows.iter().enumerate() {
        let Json::Obj(pairs) = row else {
            return Err(format!("row {i} is not an object"));
        };
        let cols: BTreeMap<&str, ()> = pairs.iter().map(|(k, _)| (k.as_str(), ())).collect();
        match &first_cols {
            None => first_cols = Some(cols),
            Some(first) => {
                for k in first.keys() {
                    if !cols.contains_key(k) {
                        return Err(format!("row {i} is missing column {k:?}"));
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips() {
        let doc = Json::obj(vec![
            ("s", Json::from("a \"quoted\"\nline")),
            ("n", Json::from(12.5)),
            ("i", Json::from(42u64)),
            ("b", Json::from(true)),
            ("z", Json::Null),
            ("a", Json::Arr(vec![Json::from(1u64), Json::from("x")])),
            ("o", Json::obj(vec![("k", Json::from(7u64))])),
        ]);
        let text = doc.render();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        assert_eq!(text, Json::parse(&text).unwrap().render());
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::from(10_000u64).render(), "10000");
        assert_eq!(Json::from(1.25).render(), "1.25");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("nope").is_err());
    }

    #[test]
    fn report_envelope_validates() {
        let mut r = Report::new("demo");
        r.meta("seed", 1u64);
        r.row(vec![("x", Json::from(1u64)), ("y", Json::from(2u64))]);
        r.row(vec![("x", Json::from(3u64)), ("y", Json::from(4u64))]);
        let doc = Json::parse(&r.render()).unwrap();
        validate_report(&doc).unwrap();
        assert_eq!(doc.get("name").unwrap().as_str(), Some("demo"));
        assert_eq!(doc.get("rows").unwrap().as_arr().unwrap().len(), 2);

        let mut bad = Report::new("demo");
        bad.row(vec![("x", Json::from(1u64))]);
        bad.row(vec![("y", Json::from(2u64))]);
        let doc = Json::parse(&bad.render()).unwrap();
        assert!(validate_report(&doc).is_err(), "non-uniform rows rejected");
    }

    #[test]
    fn peak_rss_reads_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(peak_rss_bytes().unwrap_or(0) > 0);
        }
    }
}
