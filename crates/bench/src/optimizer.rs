//! Before/after measurement of the verified bytecode optimizer
//! ([`progmp_core::opt`]) over the seven paper schedulers.
//!
//! Two benches share these numbers: `tab_upcall_overhead` reports the
//! per-upcall executed-instruction reduction next to the §4.1
//! calling-model comparison, and `scale_fleet` pins them into the
//! `BENCH_scale.json` meta so the performance-trajectory baseline
//! records which image generation it was measured against.
//!
//! The VM charges exactly one step per retired instruction, so
//! [`progmp_core::exec::ExecStats::steps`] from a VM execution *is* the
//! per-upcall dynamic instruction count — the measurement is
//! deterministic, not a timing.

use crate::report::Json;
use crate::scale::PAPER_SCHEDULERS;
use progmp_core::env::{QueueKind, RegId, SubflowProp};
use progmp_core::exec::ExecCtx;
use progmp_core::testenv::MockEnv;
use progmp_core::{Backend, CompileOptions};

/// Optimizer before/after numbers for one bundled scheduler.
#[derive(Debug, Clone)]
pub struct OptMeasurement {
    /// Bundled scheduler name.
    pub scheduler: &'static str,
    /// Instructions retired by one upcall on the unoptimized image.
    pub upcall_insns_before: u64,
    /// Instructions retired by one upcall on the optimized image.
    pub upcall_insns_after: u64,
    /// Static image size before optimization.
    pub image_insns_before: usize,
    /// Static image size after optimization.
    pub image_insns_after: usize,
    /// Bytecode-model step bound before optimization.
    pub model_bound_before: u64,
    /// Bytecode-model step bound after optimization (never larger).
    pub model_bound_after: u64,
    /// HIR-certified step bound (unchanged by bytecode optimization).
    pub certified_bound: u64,
}

/// The same two-subflow, eight-packet decision point every scheduler is
/// measured on; `tap`/`targetRtt` get their tuning register set the way
/// the scale scenarios set it.
fn bench_env(scheduler: &str) -> MockEnv {
    let mut env = MockEnv::new();
    for i in 0..2 {
        env.add_subflow(i);
        env.set_subflow_prop(i, SubflowProp::Rtt, 10_000 + i64::from(i) * 5_000);
        env.set_subflow_prop(i, SubflowProp::Cwnd, 100);
    }
    for p in 0..8u64 {
        env.push_packet(QueueKind::SendQueue, 100 + p, 1400 * p as i64, 1400);
    }
    match scheduler {
        "tap" => env.set_register(RegId::R1, 1_000_000),
        "targetRtt" => env.set_register(RegId::R1, 40_000),
        _ => {}
    }
    env
}

fn executed_insns(program: &progmp_core::SchedulerProgram, scheduler: &str) -> u64 {
    let env = bench_env(scheduler);
    let mut inst = program.instantiate(Backend::Vm);
    let mut ctx = ExecCtx::new(&env, 1_000_000);
    inst.execute_raw(&mut ctx)
        .unwrap_or_else(|e| panic!("bundled scheduler {scheduler} executes: {e}"));
    let (_, _, stats) = ctx.finish();
    stats.steps
}

/// Compiles `scheduler` with and without the bytecode optimizer and runs
/// one upcall of each image on the shared decision point.
pub fn measure(scheduler: &'static str) -> OptMeasurement {
    let source = progmp_schedulers::sources::ALL
        .iter()
        .find(|(n, _)| *n == scheduler)
        .map(|(_, s)| *s)
        .unwrap_or_else(|| panic!("bundled scheduler {scheduler} not found"));
    let compile = |optimize: bool| {
        progmp_core::compile_with_options(
            Some(scheduler),
            source,
            CompileOptions {
                optimize_bytecode: optimize,
                ..CompileOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("bundled scheduler {scheduler} compiles: {e}"))
    };
    let unopt = compile(false);
    let opt = compile(true);
    let report = opt
        .opt_report()
        .expect("optimized compile records an OptReport");
    OptMeasurement {
        scheduler,
        upcall_insns_before: executed_insns(&unopt, scheduler),
        upcall_insns_after: executed_insns(&opt, scheduler),
        image_insns_before: report.insns_before,
        image_insns_after: report.insns_after,
        model_bound_before: report.bound_before,
        model_bound_after: report.bound_after,
        certified_bound: opt.certified_step_bound(),
    }
}

/// [`measure`] over all seven paper schedulers.
pub fn measure_all() -> Vec<OptMeasurement> {
    PAPER_SCHEDULERS.iter().map(|s| measure(s)).collect()
}

/// Renders measurements as the `optimizer` meta object shared by the
/// bench reports: one entry per scheduler, keyed by name.
pub fn meta_json(measurements: &[OptMeasurement]) -> Json {
    Json::Obj(
        measurements
            .iter()
            .map(|m| {
                (
                    m.scheduler.to_string(),
                    Json::Obj(vec![
                        (
                            "upcall_insns_before".to_string(),
                            Json::from(m.upcall_insns_before),
                        ),
                        (
                            "upcall_insns_after".to_string(),
                            Json::from(m.upcall_insns_after),
                        ),
                        (
                            "image_insns_before".to_string(),
                            Json::from(m.image_insns_before),
                        ),
                        (
                            "image_insns_after".to_string(),
                            Json::from(m.image_insns_after),
                        ),
                        (
                            "model_bound_before".to_string(),
                            Json::from(m.model_bound_before),
                        ),
                        (
                            "model_bound_after".to_string(),
                            Json::from(m.model_bound_after),
                        ),
                        ("certified_bound".to_string(), Json::from(m.certified_bound)),
                    ]),
                )
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline payoff the optimizer tier promises: a majority of
    /// the paper schedulers retire fewer instructions per upcall, and the
    /// model bound never grows for any of them.
    #[test]
    fn optimizer_reduces_upcall_insns_for_most_paper_schedulers() {
        let measurements = measure_all();
        assert_eq!(measurements.len(), PAPER_SCHEDULERS.len());
        let mut reduced = 0;
        for m in &measurements {
            assert!(
                m.model_bound_after <= m.model_bound_before,
                "{}: model bound grew {} -> {}",
                m.scheduler,
                m.model_bound_before,
                m.model_bound_after
            );
            assert!(
                m.upcall_insns_after <= m.upcall_insns_before,
                "{}: upcall got slower {} -> {} insns",
                m.scheduler,
                m.upcall_insns_before,
                m.upcall_insns_after
            );
            if m.upcall_insns_after < m.upcall_insns_before {
                reduced += 1;
            }
        }
        assert!(
            reduced >= 5,
            "expected >= 5/7 schedulers to reduce, got {reduced}"
        );
    }
}
