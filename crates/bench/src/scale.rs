//! The scale-benchmark tier: fleet sweeps over
//! `{connections} × {workers}` with all seven paper schedulers mixed
//! through the fleet, reported as the machine-readable
//! `BENCH_scale.json` (schema in [`crate::report`], validated by
//! [`validate_scale_report`]).
//!
//! This is the performance-trajectory fixture: each commit that touches
//! the engine hot path (event queue, segment arena, dispatch) re-runs
//! `scale_fleet` and diffs events/second against the committed
//! baseline. Worker-count rows share identical event counts and fleet
//! digests — the determinism tier guarantees the sweep measures *speed*,
//! never behavior.

use crate::report::{validate_report, Json, Report};
use mptcp_sim::fleet::{run_fleet, ConnScenario, FleetConfig, OracleMode, Workload};
use mptcp_sim::time::{from_millis, SimTime, SECONDS};
use mptcp_sim::{ConnectionConfig, PathConfig, SchedulerSpec, SubflowConfig};
use progmp_core::env::RegId;

/// The seven paper schedulers the sweep cycles through (§3.4/§5).
pub const PAPER_SCHEDULERS: [&str; 7] = [
    "minRttSimple",
    "default",
    "roundRobin",
    "redundant",
    "opportunisticRedundant",
    "tap",
    "targetRtt",
];

/// Parameters of one scale sweep.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Fleet sizes to sweep.
    pub sizes: Vec<usize>,
    /// Worker counts to sweep.
    pub workers: Vec<usize>,
    /// Fleet seed.
    pub seed: u64,
    /// Bytes each connection transfers.
    pub flow_bytes: u64,
    /// Simulated-time horizon per shard.
    pub horizon: SimTime,
}

impl ScaleConfig {
    /// The full sweep: `{1,10,100,1k,10k}` connections across 1/2/4
    /// workers, ~20 KB per connection.
    pub fn full() -> ScaleConfig {
        ScaleConfig {
            sizes: vec![1, 10, 100, 1_000, 10_000],
            workers: vec![1, 2, 4],
            seed: 0x5CA1E,
            flow_bytes: 20_000,
            horizon: 120 * SECONDS,
        }
    }

    /// The `--smoke` sweep: seconds, not minutes, but the same code
    /// paths and the same output schema.
    pub fn smoke() -> ScaleConfig {
        ScaleConfig {
            sizes: vec![1, 8],
            workers: vec![1, 2],
            seed: 0x5CA1E,
            flow_bytes: 6_000,
            horizon: 60 * SECONDS,
        }
    }
}

/// Scenario of fleet connection `global`: scheduler cycles through
/// [`PAPER_SCHEDULERS`], the two-path mix varies with the frozen
/// per-connection seed. No fault plans — the scale tier measures the
/// clean hot path; chaos lives in the soak tier.
pub fn scale_scenario(global: usize, seed: u64, flow_bytes: u64) -> ConnScenario {
    let scheduler = PAPER_SCHEDULERS[global % PAPER_SCHEDULERS.len()];
    let source = progmp_schedulers::sources::ALL
        .iter()
        .find(|(n, _)| *n == scheduler)
        .map(|(_, s)| *s)
        .expect("known scheduler");
    let subflows = vec![
        SubflowConfig::new(PathConfig::symmetric(from_millis(5 + seed % 40), 1_250_000)),
        SubflowConfig::new(PathConfig::symmetric(
            from_millis(20 + (seed >> 8) % 60),
            1_250_000,
        )),
    ];
    let cfg = ConnectionConfig::new(subflows, SchedulerSpec::dsl(source));
    let mut sc = ConnScenario::new(
        cfg,
        Workload::Bulk {
            bytes: flow_bytes,
            prop: 0,
        },
    );
    match scheduler {
        "tap" => sc.registers.push((0, RegId::R1, 1_000_000)),
        "targetRtt" => sc
            .registers
            .push((0, RegId::R1, 40_000 + (seed % 80_000) as i64)),
        _ => {}
    }
    sc
}

/// Runs the sweep and builds the `BENCH_scale.json` report.
pub fn run_scale(cfg: &ScaleConfig, progress: &mut dyn FnMut(&str)) -> Report {
    let mut report = Report::new("scale_fleet");
    report
        .meta("seed", cfg.seed)
        .meta("flow_bytes", cfg.flow_bytes)
        .meta("horizon_s", cfg.horizon / SECONDS)
        .meta(
            "cpus",
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
        .meta(
            "schedulers",
            Json::Arr(PAPER_SCHEDULERS.iter().map(|s| Json::from(*s)).collect()),
        )
        // The image generation this trajectory point was measured
        // against: per-scheduler dynamic/static instruction counts and
        // step bounds before and after the verified bytecode optimizer.
        .meta(
            "optimizer",
            crate::optimizer::meta_json(&crate::optimizer::measure_all()),
        );
    for &size in &cfg.sizes {
        for &workers in &cfg.workers {
            let fleet = FleetConfig::new(size, cfg.seed)
                .with_workers(workers)
                .with_horizon(cfg.horizon)
                .with_oracle(OracleMode::Collect);
            let flow = cfg.flow_bytes;
            let run = run_fleet(&fleet, |global, seed| scale_scenario(global, seed, flow));
            // Per-scheduler interpreter cost, from the host-time counters
            // the snapshot digest deliberately excludes.
            let mut sched_ns = Vec::new();
            for (i, name) in PAPER_SCHEDULERS.iter().enumerate() {
                let (mut ns, mut execs) = (0u64, 0u64);
                for c in run.per_conn.iter().skip(i).step_by(PAPER_SCHEDULERS.len()) {
                    ns += c.scheduler_host_ns;
                    execs += c.scheduler_executions;
                }
                let per_exec = if execs > 0 {
                    ns as f64 / execs as f64
                } else {
                    0.0
                };
                sched_ns.push((name.to_string(), Json::from(per_exec)));
            }
            report.row(vec![
                ("connections", Json::from(size)),
                ("workers", Json::from(run.workers)),
                ("events", Json::from(run.events_processed)),
                ("wall_ms", Json::from(run.wall.as_secs_f64() * 1e3)),
                ("events_per_sec", Json::from(run.events_per_sec())),
                ("completion_rate", Json::from(run.completion_rate())),
                ("violations", Json::from(run.violations.len())),
                ("fleet_digest", Json::from(format!("{:016x}", run.digest()))),
                (
                    "peak_rss_bytes",
                    crate::report::peak_rss_bytes()
                        .map(Json::from)
                        .unwrap_or(Json::Null),
                ),
                ("sched_exec_ns", Json::Obj(sched_ns)),
            ]);
            progress(&format!(
                "conns={size:>6} workers={} events={:>9} {:>12.0} ev/s completion={:.2}",
                run.workers,
                run.events_processed,
                run.events_per_sec(),
                run.completion_rate(),
            ));
            if !run.violations.is_empty() {
                progress(&format!(
                    "  !! {} oracle violations, first: {}",
                    run.violations.len(),
                    run.violations[0]
                ));
            }
        }
    }
    report
}

/// Validates a parsed `BENCH_scale.json`: the common report envelope
/// plus the scale tier's required columns, a row per swept
/// configuration, zero violations, and identical event counts across
/// worker counts at each size (the determinism witness).
pub fn validate_scale_report(doc: &Json) -> Result<(), String> {
    validate_report(doc)?;
    if doc.get("name").and_then(Json::as_str) != Some("scale_fleet") {
        return Err("report name is not 'scale_fleet'".into());
    }
    let optimizer = doc
        .get("meta")
        .and_then(|m| m.get("optimizer"))
        .ok_or("meta is missing the 'optimizer' before/after object")?;
    for name in PAPER_SCHEDULERS {
        let entry = optimizer
            .get(name)
            .ok_or_else(|| format!("optimizer meta is missing scheduler {name:?}"))?;
        let field = |key: &str| {
            entry
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("optimizer meta for {name:?}: missing numeric {key:?}"))
        };
        if field("model_bound_after")? > field("model_bound_before")? {
            return Err(format!("optimizer meta for {name:?}: model bound grew"));
        }
        if field("upcall_insns_after")? > field("upcall_insns_before")? {
            return Err(format!(
                "optimizer meta for {name:?}: per-upcall instruction count grew"
            ));
        }
    }
    let rows = doc.get("rows").and_then(Json::as_arr).ok_or("no rows")?;
    if rows.is_empty() {
        return Err("empty sweep".into());
    }
    let mut events_by_size: Vec<(u64, u64, String)> = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        for col in [
            "connections",
            "workers",
            "events",
            "wall_ms",
            "events_per_sec",
            "completion_rate",
            "violations",
        ] {
            row.get(col)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("row {i}: missing numeric column {col:?}"))?;
        }
        let digest = row
            .get("fleet_digest")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("row {i}: missing 'fleet_digest'"))?;
        match row.get("sched_exec_ns") {
            Some(Json::Obj(pairs)) if pairs.len() == PAPER_SCHEDULERS.len() => {}
            _ => return Err(format!("row {i}: bad 'sched_exec_ns'")),
        }
        if row.get("violations").and_then(Json::as_f64) != Some(0.0) {
            return Err(format!("row {i}: oracle violations recorded"));
        }
        let size = row.get("connections").and_then(Json::as_f64).unwrap() as u64;
        let events = row.get("events").and_then(Json::as_f64).unwrap() as u64;
        if let Some((_, e0, d0)) = events_by_size.iter().find(|(s, _, _)| *s == size) {
            if *e0 != events || d0 != digest {
                return Err(format!(
                    "row {i}: size {size} is not bit-identical across worker counts"
                ));
            }
        } else {
            events_by_size.push((size, events, digest.to_string()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The smoke sweep end to end: run, render, parse, validate — the
    /// same path `ci.sh` takes through `scale_fleet --smoke`.
    #[test]
    fn smoke_sweep_emits_schema_valid_report() {
        let cfg = ScaleConfig::smoke();
        let report = run_scale(&cfg, &mut |_line| {});
        let text = report.render();
        let doc = Json::parse(&text).expect("rendered report parses");
        validate_scale_report(&doc).expect("schema-valid BENCH_scale.json");
        let rows = doc.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), cfg.sizes.len() * cfg.workers.len());
    }

    #[test]
    fn validator_rejects_drift() {
        let cfg = ScaleConfig {
            sizes: vec![2],
            workers: vec![1],
            ..ScaleConfig::smoke()
        };
        let report = run_scale(&cfg, &mut |_| {});
        let mut doc = Json::parse(&report.render()).unwrap();
        // Corrupt the event count of the only row.
        if let Json::Obj(pairs) = &mut doc {
            let rows = pairs.iter_mut().find(|(k, _)| k == "rows").unwrap();
            if let Json::Arr(rows) = &mut rows.1 {
                if let Json::Obj(row) = &mut rows[0] {
                    for (k, v) in row.iter_mut() {
                        if k == "violations" {
                            *v = Json::from(3u64);
                        }
                    }
                }
            }
        }
        assert!(validate_scale_report(&doc).is_err());
    }
}
