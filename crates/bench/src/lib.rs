//! # progmp-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! Middleware '17 evaluation. Each `src/bin/` binary reproduces one
//! table/figure and prints the same rows/series the paper reports;
//! EXPERIMENTS.md records paper-vs-measured for each. Criterion
//! micro-benchmarks (`benches/`) cover the §4 overhead numbers.
//!
//! Shared scenario builders and statistics helpers live here.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod optimizer;
pub mod report;
pub mod scale;

use mptcp_sim::time::{from_millis, SimTime, SECONDS};
use mptcp_sim::{ConnectionConfig, PathConfig, SchedulerSpec, Sim, SubflowConfig};
use progmp_core::env::RegId;

/// Standard WiFi/LTE two-path profile of the paper's real-world setups:
/// WiFi at `wifi_rtt_ms` preferred, LTE at 40 ms flagged backup when
/// `lte_backup`.
pub fn wifi_lte_subflows(
    wifi_rtt_ms: u64,
    wifi_rate: u64,
    lte_rate: u64,
    lte_backup: bool,
) -> Vec<SubflowConfig> {
    let mut lte = SubflowConfig::new(PathConfig::symmetric(from_millis(40), lte_rate));
    if lte_backup {
        lte = lte.backup();
    }
    vec![
        SubflowConfig::new(PathConfig::symmetric(from_millis(wifi_rtt_ms), wifi_rate)),
        lte,
    ]
}

/// Result of a batch of short-flow runs.
#[derive(Debug, Clone, Copy)]
pub struct FlowBatch {
    /// Mean flow completion time in milliseconds.
    pub mean_fct_ms: f64,
    /// 95th-percentile flow completion time in milliseconds.
    pub p95_fct_ms: f64,
    /// Mean transmission overhead ratio (1.0 = no redundancy).
    pub mean_overhead: f64,
    /// Fraction of runs that completed before the time limit.
    pub completion_rate: f64,
}

/// Parameters of a short-flow experiment.
#[derive(Debug, Clone)]
pub struct FlowExperiment {
    /// Scheduler source.
    pub scheduler: &'static str,
    /// Flow size in bytes.
    pub flow_bytes: u64,
    /// Subflow configurations.
    pub subflows: Vec<SubflowConfig>,
    /// Number of runs (distinct seeds).
    pub runs: u64,
    /// Base seed.
    pub seed: u64,
    /// Signal end-of-flow via `R2 = 1` right after enqueueing.
    pub signal_flow_end: bool,
    /// Per-run time limit.
    pub limit: SimTime,
}

impl FlowExperiment {
    /// A default experiment shell.
    pub fn new(scheduler: &'static str, flow_bytes: u64, subflows: Vec<SubflowConfig>) -> Self {
        FlowExperiment {
            scheduler,
            flow_bytes,
            subflows,
            runs: 30,
            seed: 1000,
            signal_flow_end: false,
            limit: 60 * SECONDS,
        }
    }

    /// Enables the §5.3 end-of-flow signal.
    pub fn with_flow_end_signal(mut self) -> Self {
        self.signal_flow_end = true;
        self
    }

    /// Sets the number of runs.
    pub fn with_runs(mut self, runs: u64) -> Self {
        self.runs = runs;
        self
    }

    /// Sets the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs the batch and aggregates FCT statistics.
    pub fn run(&self) -> FlowBatch {
        let mut fcts = Vec::with_capacity(self.runs as usize);
        let mut overheads = Vec::with_capacity(self.runs as usize);
        let mut completed = 0u64;
        for i in 0..self.runs {
            let mut sim = Sim::new(self.seed + i);
            let cfg =
                ConnectionConfig::new(self.subflows.clone(), SchedulerSpec::dsl(self.scheduler))
                    .with_timelines();
            let conn = sim.add_connection(cfg).expect("scheduler compiles");
            sim.app_send_at(conn, 0, self.flow_bytes, 0);
            if self.signal_flow_end {
                sim.set_register_at(conn, 1, RegId::R2, 1);
            }
            sim.run_to_completion(self.limit);
            let c = &sim.connections[conn];
            if let Some(fct) = c.stats.delivery_time_of(self.flow_bytes) {
                fcts.push(fct as f64 / 1e6);
                overheads.push(c.stats.overhead_ratio());
                completed += 1;
            }
        }
        FlowBatch {
            mean_fct_ms: mean(&fcts),
            p95_fct_ms: percentile(&mut fcts.clone(), 0.95),
            mean_overhead: mean(&overheads),
            completion_rate: completed as f64 / self.runs as f64,
        }
    }
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// In-place percentile (nearest-rank); 0 for an empty slice.
pub fn percentile(xs: &mut [f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let rank = ((xs.len() as f64 * p).ceil() as usize).clamp(1, xs.len());
    xs[rank - 1]
}

/// Runs a saturated bulk transfer and returns mean goodput (bytes/s).
pub fn bulk_goodput(
    scheduler: SchedulerSpec,
    subflows: Vec<SubflowConfig>,
    bytes: u64,
    seed: u64,
) -> f64 {
    let mut sim = Sim::new(seed);
    let cfg = ConnectionConfig::new(subflows, scheduler).with_timelines();
    let conn = sim.add_connection(cfg).expect("scheduler compiles");
    sim.add_bulk_source(conn, bytes, 0);
    sim.run_to_completion(600 * SECONDS);
    let c = &sim.connections[conn];
    match c.stats.delivery_time_of(bytes) {
        Some(t) if t > 0 => bytes as f64 / (t as f64 / 1e9),
        _ => 0.0,
    }
}

/// Formats a bytes/second rate as megabytes/second.
pub fn mbps(rate: f64) -> String {
    format!("{:.2} MB/s", rate / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        let mut xs = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&mut xs, 0.95), 5.0);
        let mut xs = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&mut xs, 0.5), 3.0);
    }

    #[test]
    fn flow_experiment_runs() {
        let batch = FlowExperiment::new(
            progmp_schedulers::DEFAULT_MIN_RTT,
            5 * 1400,
            wifi_lte_subflows(10, 1_250_000, 1_250_000, false),
        )
        .with_runs(3)
        .run();
        assert!(batch.completion_rate > 0.99);
        assert!(batch.mean_fct_ms > 0.0);
        assert!(batch.p95_fct_ms >= batch.mean_fct_ms * 0.5);
    }

    #[test]
    fn bulk_goodput_saturates_paths() {
        let gp = bulk_goodput(
            SchedulerSpec::dsl(progmp_schedulers::DEFAULT_MIN_RTT),
            wifi_lte_subflows(10, 1_250_000, 1_250_000, false),
            4_000_000,
            9,
        );
        // Two 1.25 MB/s paths: goodput should approach 2.5 MB/s.
        assert!(gp > 1_800_000.0, "goodput {gp} too low");
    }
}
