//! Ablation (§4.2): the improved receiver vs. the stock multi-layer-queue
//! receiver. "For certain packet loss and out-of-order patterns between
//! subflows, in-order data is not pushed to the application."
//!
//! The blocking pattern needs a subflow to carry data *below* the
//! sequence numbers it already sent (cross-subflow retransmission) while
//! also having a subflow-level hole — so the divergence shows up for
//! sophisticated schedulers (compensation, reinjection-heavy recovery)
//! under loss, and "is rarely required for the established ones", exactly
//! as the paper observes.

use mptcp_sim::time::{from_millis, SECONDS};
use mptcp_sim::{ConnectionConfig, PathConfig, ReceiverMode, SchedulerSpec, Sim, SubflowConfig};
use progmp_bench::percentile;
use progmp_core::env::RegId;
use progmp_schedulers as sched;

fn fcts(scheduler: &'static str, mode: ReceiverMode, loss: f64, signal: bool) -> Vec<f64> {
    let runs = if progmp_bench::report::smoke() { 5 } else { 60 };
    let mut out = Vec::new();
    for seed in 0..runs {
        let mut sim = Sim::new(1300 + seed);
        let cfg = ConnectionConfig::new(
            vec![
                SubflowConfig::new(
                    PathConfig::symmetric(from_millis(20), 1_250_000).with_loss(loss),
                ),
                SubflowConfig::new(
                    PathConfig::symmetric(from_millis(35), 1_250_000).with_loss(loss),
                ),
            ],
            SchedulerSpec::dsl(scheduler),
        )
        .with_receiver_mode(mode)
        .with_timelines();
        let conn = sim.add_connection(cfg).unwrap();
        sim.app_send_at(conn, 0, 30 * 1400, 0);
        if signal {
            sim.set_register_at(conn, 1, RegId::R2, 1);
        }
        sim.run_to_completion(120 * SECONDS);
        out.push(
            sim.connections[conn]
                .stats
                .delivery_time_of(30 * 1400)
                .expect("completes") as f64
                / 1e6,
        );
    }
    out
}

fn main() {
    println!("=== Ablation §4.2: improved vs legacy receiver (p95 FCT, ms; 60 runs) ===\n");
    println!(
        "{:<32} {:>6} | {:>10} {:>10} {:>8}",
        "scheduler", "loss", "legacy", "improved", "gain"
    );
    let cases: [(&str, &'static str, f64, bool); 4] = [
        ("default", sched::DEFAULT_MIN_RTT, 0.0, false),
        ("default", sched::DEFAULT_MIN_RTT, 0.05, false),
        ("compensating (flow end)", sched::COMPENSATING, 0.05, true),
        ("compensating (flow end)", sched::COMPENSATING, 0.10, true),
    ];
    let mut worst_regression: f64 = f64::MIN;
    let mut best_gain: f64 = 0.0;
    let mut established_gain: f64 = 0.0;
    for (name, src, loss, signal) in cases {
        let mut legacy = fcts(src, ReceiverMode::Legacy, loss, signal);
        let mut improved = fcts(src, ReceiverMode::Improved, loss, signal);
        let lp = percentile(&mut legacy, 0.95);
        let ip = percentile(&mut improved, 0.95);
        println!(
            "{:<32} {:>5.0}% | {:>10.1} {:>10.1} {:>7.1}%",
            name,
            loss * 100.0,
            lp,
            ip,
            (1.0 - ip / lp) * 100.0
        );
        worst_regression = worst_regression.max(ip - lp);
        if name.starts_with("compensating") {
            best_gain = best_gain.max(lp - ip);
        } else {
            established_gain = established_gain.max(lp - ip);
        }
    }
    println!("\npaper shape checks:");
    println!(
        "  [{}] the improved receiver never regresses (worst delta {:+.1} ms)",
        ok(worst_regression <= 1.0),
        worst_regression
    );
    println!(
        "  [{}] it matters for sophisticated schedulers under loss (gain {:.1} ms at p95)...",
        ok(best_gain > 1.0),
        best_gain
    );
    println!(
        "  [{}] ...and is rarely required for the established ones (default gain {:.1} ms)",
        ok(established_gain < best_gain),
        established_gain
    );
}

fn ok(b: bool) -> &'static str {
    if b {
        "ok"
    } else {
        "??"
    }
}
