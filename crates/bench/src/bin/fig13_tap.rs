//! Fig. 13 — the throughput- and preference-aware (TAP) scheduler in the
//! Fig. 1 scenario: an interactive stream (1 MB/s then 4 MB/s) over
//! WiFi (preferred, fluctuating) and LTE (metered).
//!
//! Paper shape: compared with the default scheduler, TAP reduces the
//! non-preferred LTE usage to a minimum while sustaining the required
//! stream throughput; the existing backup mode cannot sustain 4 MB/s.

use mptcp_sim::time::{from_millis, SimTime, SECONDS};
use mptcp_sim::{
    ConnectionConfig, PathConfig, PathProfileEntry, SchedulerSpec, Sim, SubflowConfig,
};
use progmp_core::env::RegId;
use progmp_schedulers as sched;

const WIFI_RATE: u64 = 3_000_000;
const LTE_RATE: u64 = 2_500_000;
const END_S: u64 = 12;

struct Outcome {
    goodput: f64,
    lte_share: f64,
    p1_lte_kb: u64,
    p2_lte_kb: u64,
    stream_done: Option<SimTime>,
}

fn wifi_with_fluctuations() -> PathConfig {
    let mut wifi = PathConfig::symmetric(from_millis(10), WIFI_RATE);
    for (i, rate) in [2_400_000u64, 3_000_000, 2_600_000, 3_200_000, 2_500_000]
        .iter()
        .enumerate()
    {
        wifi = wifi.with_profile_entry(PathProfileEntry {
            at: (2 * (i as u64 + 1)) * SECONDS,
            rate: Some(*rate),
            loss: None,
            fwd_delay: None,
        });
    }
    wifi
}

fn run(scheduler: &'static str, lte_backup: bool, signal_target: bool) -> Outcome {
    let mut sim = Sim::new(1234);
    // LTE is always flagged non-preferred for the preference-aware
    // schedulers (COST = 1); kernel backup mode is a separate switch.
    let mut lte = SubflowConfig::new(PathConfig::symmetric(from_millis(40), LTE_RATE)).with_cost(1);
    if lte_backup {
        lte = lte.backup();
    }
    let cfg = ConnectionConfig::new(
        vec![SubflowConfig::new(wifi_with_fluctuations()), lte],
        SchedulerSpec::dsl(scheduler),
    )
    .with_timelines();
    let conn = sim.add_connection(cfg).unwrap();
    if signal_target {
        sim.set_register_at(conn, 0, RegId::R1, 1_000_000);
        sim.set_register_at(conn, 6 * SECONDS, RegId::R1, 4_000_000);
    }
    sim.add_cbr_source(conn, 0, 6 * SECONDS, 1_000_000, from_millis(20), 0);
    sim.add_cbr_source(
        conn,
        6 * SECONDS,
        END_S * SECONDS,
        4_000_000,
        from_millis(20),
        0,
    );
    sim.run_to_completion((END_S + 10) * SECONDS);
    let c = &sim.connections[conn];
    let tx_in = |sbf: u32, from: u64, to: u64| -> u64 {
        c.stats
            .tx_timeline
            .iter()
            .filter(|(t, s, _)| *s == sbf && *t >= from && *t < to)
            .map(|(_, _, b)| u64::from(*b))
            .sum()
    };
    let total = 6_000_000 + 4_000_000 * (END_S - 6);
    Outcome {
        goodput: c.stats.delivered_bytes as f64 / (END_S as f64),
        lte_share: c.stats.subflows[1].tx_bytes as f64 / c.stats.tx_bytes.max(1) as f64,
        p1_lte_kb: tx_in(1, 0, 6 * SECONDS) / 1000,
        p2_lte_kb: tx_in(1, 6 * SECONDS, END_S * SECONDS) / 1000,
        stream_done: c.stats.delivery_time_of(total),
    }
}

fn main() {
    if progmp_bench::report::smoke() {
        // The 12-simulated-second timeline is already CI-sized; smoke
        // mode runs the full experiment.
        println!("(smoke: full timeline, already CI-sized)");
    }
    println!("=== Fig. 13: throughput- and preference-aware (TAP) scheduler ===");
    println!("stream 1 MB/s (0-6s) then 4 MB/s (6-12s); WiFi preferred ~3 MB/s, LTE metered\n");
    println!(
        "{:<22} {:>12} {:>10} {:>12} {:>12} {:>12}",
        "scheduler", "goodput", "LTE share", "LTE@1MB/s", "LTE@4MB/s", "stream done"
    );

    let rows = [
        ("default", run(sched::DEFAULT_MIN_RTT, false, false)),
        ("backup mode", run(sched::DEFAULT_MIN_RTT, true, false)),
        ("TAP", run(sched::TAP, false, true)),
    ];
    for (name, o) in &rows {
        println!(
            "{:<22} {:>9.2} MB/s {:>9.1}% {:>9} KB {:>9} KB {:>12}",
            name,
            o.goodput / 1e6,
            o.lte_share * 100.0,
            o.p1_lte_kb,
            o.p2_lte_kb,
            o.stream_done
                .map(|t| format!("{:.1} s", t as f64 / 1e9))
                .unwrap_or_else(|| "never".into()),
        );
    }

    let (default, backup, tap) = (&rows[0].1, &rows[1].1, &rows[2].1);
    println!("\npaper shape checks:");
    println!(
        "  [{}] default wastes metered LTE during the sustainable 1 MB/s phase ({} KB)",
        ok(default.p1_lte_kb > 500),
        default.p1_lte_kb
    );
    println!(
        "  [{}] TAP keeps LTE usage minimal in the 1 MB/s phase ({} KB)",
        ok(tap.p1_lte_kb < default.p1_lte_kb / 4),
        tap.p1_lte_kb
    );
    println!(
        "  [{}] TAP still uses LTE for the leftover in the 4 MB/s phase ({} KB > 0)",
        ok(tap.p2_lte_kb > 0),
        tap.p2_lte_kb
    );
    println!(
        "  [{}] backup mode cannot sustain the stream in time (default {:?} vs backup {:?})",
        ok(match (default.stream_done, backup.stream_done) {
            (Some(d), Some(b)) => b > d + SECONDS,
            (Some(_), None) => true,
            _ => false,
        }),
        default.stream_done.map(|t| t / 1_000_000),
        backup.stream_done.map(|t| t / 1_000_000)
    );
    println!(
        "  [{}] TAP sustains the overall stream throughput (goodput {:.2} vs default {:.2} MB/s)",
        ok(tap.goodput > default.goodput * 0.9),
        tap.goodput / 1e6,
        default.goodput / 1e6
    );
}

fn ok(b: bool) -> &'static str {
    if b {
        "ok"
    } else {
        "??"
    }
}
