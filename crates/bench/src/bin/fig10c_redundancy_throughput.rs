//! Fig. 10c — maximum achievable throughput of the redundancy family,
//! normalized to single-path TCP, for a constantly backlogged transfer
//! (iPerf) and a bursty flow.
//!
//! Paper shape: the default scheduler aggregates both paths (~2x single
//! path); the existing `redundant` scheduler pays full redundancy (~1x);
//! the new `OpportunisticRedundant` and `RedundantIfNoQ` reach nearly the
//! maximum achievable throughput for backlogged transfers, while bursty
//! flows depend on fine timing and fall between the extremes.

use mptcp_sim::time::{from_millis, SECONDS};
use mptcp_sim::{ConnectionConfig, PathConfig, SchedulerSpec, Sim, SubflowConfig};
use progmp_bench::bulk_goodput;
use progmp_schedulers as sched;

const RATE: u64 = 1_250_000;
/// Bulk size: 8 MB for the full run, 1 MB under `--smoke`.
fn bulk_bytes() -> u64 {
    if progmp_bench::report::smoke() {
        1_000_000
    } else {
        8_000_000
    }
}

fn subflows() -> Vec<SubflowConfig> {
    vec![
        SubflowConfig::new(PathConfig::symmetric(from_millis(20), RATE)),
        SubflowConfig::new(PathConfig::symmetric(from_millis(30), RATE)),
    ]
}

fn single_path() -> Vec<SubflowConfig> {
    vec![SubflowConfig::new(PathConfig::symmetric(
        from_millis(20),
        RATE,
    ))]
}

/// Bursty flow: 100 KB bursts every 500 ms; returns delivered goodput
/// relative to offered load completion.
fn bursty_goodput(scheduler: &'static str, seed: u64) -> f64 {
    let mut sim = Sim::new(seed);
    let cfg = ConnectionConfig::new(subflows(), SchedulerSpec::dsl(scheduler)).with_timelines();
    let conn = sim.add_connection(cfg).unwrap();
    let bursts = 20u64;
    for i in 0..bursts {
        sim.app_send_at(conn, i * 500 * 1_000_000, 100_000, 0);
    }
    sim.run_to_completion(60 * SECONDS);
    let c = &sim.connections[conn];
    let total = bursts * 100_000;
    match c.stats.delivery_time_of(total) {
        Some(t) => total as f64 / (t as f64 / 1e9),
        None => 0.0,
    }
}

fn main() {
    println!("=== Fig. 10c: throughput normalized to single-path TCP ===");
    println!("2 subflows at 10 Mbit/s each; backlogged (iPerf) and bursty flows\n");

    let sp_bulk = bulk_goodput(
        SchedulerSpec::dsl(sched::DEFAULT_MIN_RTT),
        single_path(),
        bulk_bytes(),
        5,
    );
    let sp_bursty = bursty_goodput(sched::DEFAULT_MIN_RTT, 5); // single path irrelevant for bursty norm; use default 2-path? paper normalizes to single-path TCP
    let _ = sp_bursty;

    println!(
        "single-path TCP baseline: {:.2} MB/s (backlogged)\n",
        sp_bulk / 1e6
    );
    println!(
        "{:<18} {:>14} {:>12} {:>14}",
        "scheduler", "iPerf (MB/s)", "normalized", "bursty (MB/s)"
    );

    let schedulers = [
        ("default", sched::DEFAULT_MIN_RTT),
        ("redundant", sched::REDUNDANT),
        ("oppRedundant", sched::OPPORTUNISTIC_REDUNDANT),
        ("redundantIfNoQ", sched::REDUNDANT_IF_NO_Q),
    ];
    let mut normalized = Vec::new();
    for (name, src) in schedulers {
        let bulk = bulk_goodput(SchedulerSpec::dsl(src), subflows(), bulk_bytes(), 5);
        let bursty = bursty_goodput(src, 5);
        let norm = bulk / sp_bulk;
        normalized.push((name, norm));
        println!(
            "{name:<18} {:>14.2} {:>11.2}x {:>14.2}",
            bulk / 1e6,
            norm,
            bursty / 1e6
        );
    }

    println!("\npaper shape checks:");
    let get = |n: &str| normalized.iter().find(|(m, _)| *m == n).unwrap().1;
    println!(
        "  [{}] default aggregates both paths (~2x single path): {:.2}x",
        ok(get("default") > 1.6),
        get("default")
    );
    println!(
        "  [{}] full redundancy trades throughput for latency (~1x): {:.2}x",
        ok(get("redundant") < 1.35),
        get("redundant")
    );
    println!(
        "  [{}] new schedulers recover nearly maximum throughput for backlogged flows: oppRed {:.2}x, redIfNoQ {:.2}x",
        ok(get("oppRedundant") > 1.5 && get("redundantIfNoQ") > 1.5),
        get("oppRedundant"),
        get("redundantIfNoQ")
    );
}

fn ok(b: bool) -> &'static str {
    if b {
        "ok"
    } else {
        "??"
    }
}
