//! Fig. 1 — the motivating measurement: an interactive stream (1 MB/s for
//! 6 s, then 4 MB/s) over WiFi (10 ms) + LTE (40 ms) with (a) the default
//! MinRTT scheduler and (b) LTE in backup mode.
//!
//! Paper observation: MinRTT places ~30% of the traffic on the high-RTT
//! LTE subflow even while the stream is sustainable on WiFi alone, and
//! backup mode cannot sustain the 4 MB/s phase.

use mptcp_sim::time::{from_millis, MILLIS, SECONDS};
use mptcp_sim::{ConnectionConfig, PathConfig, SchedulerSpec, Sim, SubflowConfig};
use progmp_schedulers::DEFAULT_MIN_RTT;

const WIFI_RATE: u64 = 3_000_000; // ~24 Mbit/s: sustains 1 MB/s easily, not 4 MB/s
const LTE_RATE: u64 = 2_500_000;
const END_S: u64 = 12;

struct Outcome {
    phase1_lte_share: f64,
    phase2_goodput: f64,
    total_lte_share: f64,
}

fn run(lte_backup: bool) -> Outcome {
    let mut sim = Sim::new(77);
    let mut lte = SubflowConfig::new(PathConfig::symmetric(from_millis(40), LTE_RATE));
    if lte_backup {
        lte = lte.backup();
    }
    let cfg = ConnectionConfig::new(
        vec![
            SubflowConfig::new(PathConfig::symmetric(from_millis(10), WIFI_RATE)),
            lte,
        ],
        SchedulerSpec::dsl(DEFAULT_MIN_RTT),
    )
    .with_timelines();
    let conn = sim.add_connection(cfg).unwrap();
    sim.add_cbr_source(conn, 0, 6 * SECONDS, 1_000_000, from_millis(20), 0);
    sim.add_cbr_source(
        conn,
        6 * SECONDS,
        END_S * SECONDS,
        4_000_000,
        from_millis(20),
        0,
    );
    sim.run_to_completion((END_S + 10) * SECONDS);

    let c = &sim.connections[conn];
    let tx_in = |sbf: u32, from: u64, to: u64| -> u64 {
        c.stats
            .tx_timeline
            .iter()
            .filter(|(t, s, _)| *s == sbf && *t >= from && *t < to)
            .map(|(_, _, b)| u64::from(*b))
            .sum()
    };
    let p1_wifi = tx_in(0, 0, 6 * SECONDS);
    let p1_lte = tx_in(1, 0, 6 * SECONDS);
    // Goodput of the 4 MB/s phase: bytes delivered between 6 s and 12 s.
    let delivered_at = |t: u64| -> u64 {
        c.stats
            .delivery_timeline
            .iter()
            .take_while(|(ts, _)| *ts <= t)
            .last()
            .map(|(_, b)| *b)
            .unwrap_or(0)
    };
    let phase2_goodput = (delivered_at(END_S * SECONDS + 500 * MILLIS)
        .saturating_sub(delivered_at(6 * SECONDS))) as f64
        / 6.5;
    Outcome {
        phase1_lte_share: p1_lte as f64 / (p1_wifi + p1_lte).max(1) as f64,
        phase2_goodput,
        total_lte_share: c.stats.subflows[1].tx_bytes as f64 / c.stats.tx_bytes.max(1) as f64,
    }
}

fn main() {
    if progmp_bench::report::smoke() {
        // The 12-simulated-second timeline is already CI-sized; smoke
        // mode runs the full experiment.
        println!("(smoke: full timeline, already CI-sized)");
    }
    println!("=== Fig. 1: interactive stream over WiFi(10ms)+LTE(40ms), default MinRTT ===");
    println!("stream: 1 MB/s for 0-6 s (sustainable on WiFi), 4 MB/s for 6-12 s\n");
    println!(
        "{:<26} {:>16} {:>18} {:>14}",
        "configuration", "LTE share @1MB/s", "goodput @4MB/s", "LTE share all"
    );
    let normal = run(false);
    println!(
        "{:<26} {:>15.1}% {:>15.2} MB/s {:>13.1}%",
        "MinRTT, LTE normal",
        normal.phase1_lte_share * 100.0,
        normal.phase2_goodput / 1e6,
        normal.total_lte_share * 100.0
    );
    let backup = run(true);
    println!(
        "{:<26} {:>15.1}% {:>15.2} MB/s {:>13.1}%",
        "MinRTT, LTE backup mode",
        backup.phase1_lte_share * 100.0,
        backup.phase2_goodput / 1e6,
        backup.total_lte_share * 100.0
    );

    println!("\npaper shape checks:");
    println!(
        "  [{}] MinRTT puts substantial traffic (~30% in the paper) on LTE during the 1 MB/s phase: {:.1}%",
        ok(normal.phase1_lte_share > 0.10),
        normal.phase1_lte_share * 100.0
    );
    println!(
        "  [{}] backup mode starves LTE ({:.1}% share) ...",
        ok(backup.total_lte_share < 0.10),
        backup.total_lte_share * 100.0
    );
    println!(
        "  [{}] ... and therefore cannot sustain the 4 MB/s phase: {:.2} MB/s < 4 MB/s",
        ok(backup.phase2_goodput < 3_600_000.0),
        backup.phase2_goodput / 1e6
    );
    println!("\nSee fig13_tap for the TAP scheduler that fixes this.");
}

fn ok(b: bool) -> &'static str {
    if b {
        "ok"
    } else {
        "??"
    }
}
