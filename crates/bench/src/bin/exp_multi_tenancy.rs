//! §4.3 "Number of Schedulers" / §6 multi-tenancy: many concurrent
//! connections, each with its own scheduler instance (mixed programs and
//! backends), in one runtime. Verifies the isolation story — every tenant
//! completes, register state never leaks between connections, and the
//! per-instance memory cost stays at the paper's "does not restrict
//! adoption" scale.

use mptcp_sim::time::{from_millis, SECONDS};
use mptcp_sim::{ConnectionConfig, PathConfig, SchedulerSpec, Sim, SubflowConfig};
use progmp_core::env::RegId;
use progmp_core::Backend;
use progmp_schedulers as sched;

/// Tenant count: 40 for the full run, 8 under `--smoke`.
fn tenants() -> usize {
    if progmp_bench::report::smoke() {
        8
    } else {
        40
    }
}
const BYTES_PER_TENANT: u64 = 100_000;

fn main() {
    println!(
        "=== §4.3/§6: {} tenants, mixed schedulers and backends ===\n",
        tenants()
    );
    let names = sched::names();
    let mut sim = Sim::new(2024);
    let mut expected_r6 = Vec::new();
    for i in 0..tenants() {
        let name = names[i % names.len()];
        let source = sched::sources::ALL
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, s)| *s)
            .unwrap();
        let backend = Backend::ALL[i % 3];
        let conn = sim
            .add_connection(
                ConnectionConfig::new(
                    vec![
                        SubflowConfig::new(PathConfig::symmetric(
                            from_millis(8 + (i as u64 % 7) * 4),
                            1_250_000,
                        )),
                        SubflowConfig::new(PathConfig::symmetric(
                            from_millis(25 + (i as u64 % 5) * 9),
                            1_250_000,
                        ))
                        .with_cost(1),
                    ],
                    SchedulerSpec::dsl_on(source, backend),
                )
                .with_timelines(),
            )
            .unwrap();
        // Tenant-specific register state: must never leak across tenants.
        let marker = 1_000 + i as i64;
        sim.set_register_at(conn, 0, RegId::R6, marker);
        sim.set_register_at(conn, 0, RegId::R1, 4_000_000);
        sim.app_send_at(conn, (i as u64) * from_millis(3), BYTES_PER_TENANT, 2);
        sim.set_register_at(conn, (i as u64) * from_millis(3) + 1, RegId::R2, 1);
        expected_r6.push((conn, marker));
    }
    sim.run_to_completion(300 * SECONDS);

    let mut completed = 0;
    let mut leaked = 0;
    let mut total_exec = 0u64;
    for (conn, marker) in &expected_r6 {
        let c = &sim.connections[*conn];
        if c.all_acked() {
            completed += 1;
        }
        // R6 is never written by any bundled scheduler: it must still
        // hold this tenant's marker.
        if c.register_direct(RegId::R6) != *marker {
            leaked += 1;
        }
        total_exec += c.stats.scheduler_executions;
    }
    // Program memory is shared: loading each distinct program once.
    let program_bytes: usize = sched::names()
        .iter()
        .map(|n| sched::load(n).unwrap().size_bytes())
        .sum();

    println!("tenants completed:       {completed}/{}", tenants());
    println!("register leaks:          {leaked}");
    println!("scheduler executions:    {total_exec}");
    println!(
        "resident program bytes:  {} KB for {} distinct schedulers (shared across tenants)",
        program_bytes / 1000,
        sched::names().len()
    );

    println!("\npaper shape checks:");
    println!(
        "  [{}] every tenant's transfer completes under its own scheduler",
        ok(completed == tenants())
    );
    println!(
        "  [{}] per-connection register state is isolated (0 leaks)",
        ok(leaked == 0)
    );
    println!(
        "  [{}] resident scheduler memory stays in the paper's few-hundred-KB regime",
        ok(program_bytes < 512 * 1024)
    );
}

fn ok(b: bool) -> &'static str {
    if b {
        "ok"
    } else {
        "??"
    }
}
