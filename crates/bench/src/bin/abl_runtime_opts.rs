//! Ablation (§4.1 "Runtime Optimizations"): what each runtime
//! optimization buys, measured as per-execution cost on the VM backend.
//!
//! * HIR optimizer (constant folding / dead branches) on vs off;
//! * constant-subflow-count specialization on vs off;
//! * compressed executions: scheduler rounds per trigger capped at 1 vs
//!   unbounded, measured as simulation goodput (a trigger that can only
//!   place one packet wastes wall-clock between triggers).

use mptcp_sim::time::{from_millis, SECONDS};
use mptcp_sim::{ConnectionConfig, PathConfig, SchedulerSpec, Sim, SubflowConfig};
use progmp_core::env::{QueueKind, SubflowProp};
use progmp_core::exec::ExecCtx;
use progmp_core::testenv::MockEnv;
use progmp_core::{compile_with_options, Backend, CompileOptions};
use progmp_schedulers as sched;
use std::time::Instant;

/// A scheduler with foldable structure in its *hot path*: the threshold
/// arithmetic inside the filter predicate re-evaluates per scanned
/// subflow unless the optimizer folds it to a constant. (Dead branches
/// also fold away, but they were never executed, so the predicate is
/// where folding pays.)
const FOLDABLE: &str = "
    VAR mode = 2 * 3 - 5;
    IF (mode == 1 AND TRUE) {
        VAR avail = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY
            AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED
            AND sbf.RTT < ((((((1000 * 1000 + 500000) * 2 - 500000) / 5) * 4
                + 80000 - 80000) * 3 + 21) / 3) * 2 + ((7 * 11 + 23) * 100 - 10000));
        IF (!Q.EMPTY) {
            VAR s = avail.MIN(sbf => sbf.RTT);
            IF (s != NULL) { s.PUSH(Q.POP()); }
        }
    } ELSE {
        FOREACH (VAR x IN SUBFLOWS.FILTER(x => x.RTT > 1000000000)) {
            SET(R6, R6 + 1);
        }
    }";

fn bench_env() -> MockEnv {
    let mut env = MockEnv::new();
    for i in 0..2 {
        env.add_subflow(i);
        env.set_subflow_prop(i, SubflowProp::Rtt, 10_000 + i64::from(i) * 5_000);
        env.set_subflow_prop(i, SubflowProp::Cwnd, 100);
    }
    for p in 0..16u64 {
        env.push_packet(QueueKind::SendQueue, 100 + p, 1400 * p as i64, 1400);
    }
    env
}

fn measure(inst: &mut progmp_core::SchedulerInstance, env: &MockEnv, iters: u32) -> f64 {
    for _ in 0..2000 {
        let mut ctx = ExecCtx::new(env, 1_000_000);
        inst.execute_raw(&mut ctx).unwrap();
    }
    // Min over several repetitions suppresses scheduling noise.
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t0 = Instant::now();
        for _ in 0..iters {
            let mut ctx = ExecCtx::new(env, 1_000_000);
            inst.execute_raw(&mut ctx).unwrap();
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / f64::from(iters));
    }
    best
}

fn main() {
    let iters = if progmp_bench::report::smoke() {
        2_000
    } else {
        30_000
    };
    let env = bench_env();
    println!("=== Ablation §4.1: runtime optimizations (VM backend) ===\n");

    // 1. HIR optimizer.
    let opt = compile_with_options(
        None,
        FOLDABLE,
        CompileOptions {
            optimize: true,
            ..CompileOptions::default()
        },
    )
    .unwrap();
    let unopt = compile_with_options(
        None,
        FOLDABLE,
        CompileOptions {
            optimize: false,
            ..CompileOptions::default()
        },
    )
    .unwrap();
    let mut opt_inst = opt.instantiate(Backend::Vm);
    let mut unopt_inst = unopt.instantiate(Backend::Vm);
    let opt_ns = measure(&mut opt_inst, &env, iters);
    let unopt_ns = measure(&mut unopt_inst, &env, iters);
    println!(
        "optimizer:     {:>8.0} ns optimized ({} rewrites) vs {:>8.0} ns unoptimized",
        opt_ns,
        opt.optimizer_rewrites(),
        unopt_ns
    );

    // 2. Constant-subflow-count specialization.
    let default =
        compile_with_options(None, sched::DEFAULT_MIN_RTT, CompileOptions::default()).unwrap();
    let mut spec_on = default.instantiate(Backend::Vm);
    let mut spec_off = default.instantiate(Backend::Vm);
    spec_off.set_specialization(false);
    let on_ns = measure(&mut spec_on, &env, iters);
    let off_ns = measure(&mut spec_off, &env, iters);
    println!(
        "specialization: {:>7.0} ns specialized vs {:>8.0} ns generic",
        on_ns, off_ns
    );

    // 3. Compressed executions (scheduler rounds per trigger).
    let goodput = |max_rounds: u32| -> f64 {
        let mut sim = Sim::new(9);
        let mut cfg = ConnectionConfig::new(
            vec![
                SubflowConfig::new(PathConfig::symmetric(from_millis(10), 1_250_000)),
                SubflowConfig::new(PathConfig::symmetric(from_millis(20), 1_250_000)),
            ],
            SchedulerSpec::dsl(sched::DEFAULT_MIN_RTT),
        )
        .with_timelines();
        cfg.max_sched_rounds = max_rounds;
        let conn = sim.add_connection(cfg).unwrap();
        sim.app_send_at(conn, 0, 2_000_000, 0);
        sim.run_to_completion(120 * SECONDS);
        let c = &sim.connections[conn];
        match c.stats.delivery_time_of(2_000_000) {
            Some(t) => 2_000_000.0 / (t as f64 / 1e9),
            None => 0.0,
        }
    };
    let gp1 = goodput(1);
    let gp256 = goodput(256);
    println!(
        "compressed exec: {:>6.2} MB/s with 1 round/trigger vs {:.2} MB/s with 256",
        gp1 / 1e6,
        gp256 / 1e6
    );

    println!("\npaper shape checks:");
    println!(
        "  [{}] constant folding + dead-branch elimination speed up execution ({:.0}% of unoptimized)",
        ok(opt_ns < unopt_ns),
        opt_ns / unopt_ns * 100.0
    );
    println!(
        "  [{}] subflow-count specialization does not hurt ({:.0}% of generic)",
        ok(on_ns <= off_ns * 1.1),
        on_ns / off_ns * 100.0
    );
    println!(
        "  [{}] compressed executions keep the pipe full ({:.2} vs {:.2} MB/s)",
        ok(gp256 >= gp1),
        gp256 / 1e6,
        gp1 / 1e6
    );
}

fn ok(b: bool) -> &'static str {
    if b {
        "ok"
    } else {
        "??"
    }
}
