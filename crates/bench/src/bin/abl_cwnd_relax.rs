//! Ablation (§6 "Dependencies"): cross-concern optimization — relaxing
//! the congestion-window constraint for the last packets of a flow "to
//! save an RTT". We sweep flow sizes on a window-limited path and compare
//! the default scheduler against `cwndRelax` with the tail signaled via
//! `R2`.

use mptcp_sim::time::{from_millis, SECONDS};
use mptcp_sim::{ConnectionConfig, PathConfig, SchedulerSpec, Sim, SubflowConfig};
use progmp_core::env::RegId;
use progmp_schedulers as sched;

fn mean_fct(scheduler: &'static str, flow_pkts: u64, signal_tail: bool) -> f64 {
    let runs = if progmp_bench::report::smoke() { 2 } else { 10 };
    let mut total = 0.0;
    for seed in 0..runs {
        let mut sim = Sim::new(3100 + seed);
        // A long-RTT path: window-limited flows pay a full RTT for every
        // window's worth of packets beyond the initial window.
        let cfg = ConnectionConfig::new(
            vec![SubflowConfig::new(PathConfig::symmetric(
                from_millis(80),
                5_000_000,
            ))],
            SchedulerSpec::dsl(scheduler),
        )
        .with_timelines();
        let conn = sim.add_connection(cfg).unwrap();
        sim.app_send_at(conn, 0, flow_pkts * 1400, 0);
        if signal_tail {
            // Application signals the flow tail length (last 4 packets).
            sim.set_register_at(conn, 1, RegId::R2, 4);
        }
        sim.run_to_completion(60 * SECONDS);
        total += sim.connections[conn]
            .stats
            .delivery_time_of(flow_pkts * 1400)
            .expect("completes") as f64
            / 1e6;
    }
    total / runs as f64
}

fn main() {
    println!("=== Ablation §6: relaxing the cwnd constraint for the flow tail ===");
    println!("single 80 ms path; IW10 makes 11..14-packet flows pay an extra RTT\n");
    println!(
        "{:>12} {:>14} {:>14} {:>10}",
        "flow (pkts)", "default (ms)", "cwndRelax (ms)", "saved"
    );
    let mut saved_at_tail = 0.0;
    for pkts in [8u64, 11, 13, 20, 40] {
        let d = mean_fct(sched::DEFAULT_MIN_RTT, pkts, false);
        let r = mean_fct(sched::CWND_RELAX, pkts, true);
        println!(
            "{:>12} {:>14.1} {:>14.1} {:>9.1}%",
            pkts,
            d,
            r,
            (1.0 - r / d) * 100.0
        );
        if pkts == 13 {
            saved_at_tail = d - r;
        }
    }
    println!("\npaper shape checks:");
    println!(
        "  [{}] relaxing the window for the tail saves roughly one RTT for flows just past a window boundary ({:.0} ms at 13 pkts, RTT = 80 ms)",
        ok(saved_at_tail > 40.0),
        saved_at_tail
    );
}

fn ok(b: bool) -> &'static str {
    if b {
        "ok"
    } else {
        "??"
    }
}
