//! Fig. 10b — mean flow completion time vs. flow size for the redundancy
//! family (2 subflows, 2% loss, following the ReMP evaluation setup).
//!
//! Paper shape: all redundant schedulers beat the default for small
//! flows; for growing flow sizes `OpportunisticRedundant` beats the
//! existing `redundant` (full redundancy becomes expensive), and
//! `RedundantIfNoQ` — which never delays fresh packets — wins overall.

use mptcp_sim::time::from_millis;
use mptcp_sim::{PathConfig, SubflowConfig};
use progmp_bench::FlowExperiment;
use progmp_schedulers as sched;

const LOSS: f64 = 0.02;
// 2 Mbit/s links: large flows are path-limited, so the cost of full
// redundancy (which halves the effective aggregate capacity) is visible.
const RATE: u64 = 250_000;

fn subflows() -> Vec<SubflowConfig> {
    vec![
        SubflowConfig::new(PathConfig::symmetric(from_millis(20), RATE).with_loss(LOSS)),
        SubflowConfig::new(PathConfig::symmetric(from_millis(30), RATE).with_loss(LOSS)),
    ]
}

fn main() {
    let schedulers = [
        ("default", sched::DEFAULT_MIN_RTT),
        ("redundant", sched::REDUNDANT),
        ("oppRedundant", sched::OPPORTUNISTIC_REDUNDANT),
        ("redundantIfNoQ", sched::REDUNDANT_IF_NO_Q),
    ];
    let sizes_pkts: &[u64] = if progmp_bench::report::smoke() {
        &[2, 16, 64]
    } else {
        &[2, 4, 8, 16, 32, 64, 128, 256]
    };
    let runs = if progmp_bench::report::smoke() { 4 } else { 30 };

    println!("=== Fig. 10b: mean FCT (ms) vs flow size; 2 subflows, 2% loss, 30 runs ===\n");
    print!("{:>12}", "flow (pkts)");
    for (name, _) in &schedulers {
        print!(" {name:>15}");
    }
    println!();

    let mut results = vec![Vec::new(); schedulers.len()];
    for &pkts in sizes_pkts {
        print!("{pkts:>12}");
        for (i, (_, src)) in schedulers.iter().enumerate() {
            let batch = FlowExperiment::new(src, pkts * 1400, subflows())
                .with_runs(runs)
                .with_seed(4200 + pkts)
                .run();
            print!(" {:>15.1}", batch.mean_fct_ms);
            results[i].push(batch.mean_fct_ms);
        }
        println!();
    }

    // Shape checks against the paper's ranking.
    let small = 0; // 2-packet flows
    let default_small = results[0][small];
    let rednoq_small = results[3][small];
    println!("\npaper shape checks:");
    println!(
        "  [{}] redundancy beats the default for small flows ({:.1} ms vs {:.1} ms)",
        ok(rednoq_small < default_small),
        rednoq_small,
        default_small
    );
    let last = sizes_pkts.len() - 1;
    println!(
        "  [{}] RedundantIfNoQ is the best redundant flavour for large flows ({:.1} vs redundant {:.1} ms)",
        ok(results[3][last] <= results[1][last] * 1.05),
        results[3][last],
        results[1][last]
    );
    println!(
        "  [{}] OpportunisticRedundant <= full redundancy for large flows ({:.1} vs {:.1} ms)",
        ok(results[2][last] <= results[1][last] * 1.05),
        results[2][last],
        results[1][last]
    );
}

fn ok(b: bool) -> &'static str {
    if b {
        "ok"
    } else {
        "??"
    }
}
