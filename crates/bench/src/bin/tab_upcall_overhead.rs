//! §4.1 "Scheduler Location and Calling Model" — the design-decision
//! measurement behind the in-kernel runtime: a userspace up-call costs
//! ~2.4 µs per scheduling decision while the in-kernel execution costs
//! ~0.2 µs, an order of magnitude.
//!
//! The architectural analogue here: dispatching each scheduling decision
//! to another thread over channels (context switch + wakeup, like a
//! netlink round trip) versus executing the scheduler in-process.
//!
//! The second half of the upcall story is how much work each upcall
//! does: the verified bytecode optimizer trims the per-decision dynamic
//! instruction count without touching the certified step bound, and
//! this bench pins the before/after numbers for all seven paper
//! schedulers (the `optimizer` meta object in the JSON report).
//!
//! The third section prices the containment supervisor's clean path: a
//! healthy transfer with and without the supervisor enabled, compared
//! per scheduling decision. The fault boundary only pays when a fault
//! actually fires; on the clean path the supervisor adds a per-upcall
//! branch and a once-per-second watchdog tick, so the target is <5%
//! wall overhead.

use progmp_bench::optimizer;
use progmp_bench::report::{Json, Report};
use progmp_core::env::{QueueKind, SubflowProp};
use progmp_core::exec::ExecCtx;
use progmp_core::testenv::MockEnv;
use progmp_core::{compile, Backend};
use progmp_schedulers::DEFAULT_MIN_RTT;
use std::sync::mpsc;
use std::time::Instant;

fn env() -> MockEnv {
    let mut env = MockEnv::new();
    for i in 0..2 {
        env.add_subflow(i);
        env.set_subflow_prop(i, SubflowProp::Rtt, 10_000 + i64::from(i) * 5_000);
        env.set_subflow_prop(i, SubflowProp::Cwnd, 100);
    }
    for p in 0..8u64 {
        env.push_packet(QueueKind::SendQueue, 100 + p, 1400 * p as i64, 1400);
    }
    env
}

/// Runs one healthy bulk transfer, optionally under the containment
/// supervisor, and returns `(wall, scheduler executions)`.
fn contained_clean_run(contained: bool, bytes: u64) -> (std::time::Duration, u64) {
    use mptcp_sim::time::{from_millis, SECONDS};
    use mptcp_sim::{
        ConnectionConfig, ContainmentConfig, PathConfig, SchedulerSpec, Sim, SubflowConfig,
    };

    let mut sim = Sim::new(7);
    if contained {
        sim.enable_containment(ContainmentConfig::default());
    }
    let cfg = ConnectionConfig::new(
        vec![
            SubflowConfig::new(PathConfig::symmetric(from_millis(10), 5_000_000)),
            SubflowConfig::new(PathConfig::symmetric(from_millis(40), 5_000_000)),
        ],
        SchedulerSpec::dsl(DEFAULT_MIN_RTT),
    );
    let conn = sim.add_connection(cfg).expect("scheduler compiles");
    sim.add_bulk_source(conn, bytes, 0);
    let t0 = Instant::now();
    sim.run_to_completion(600 * SECONDS);
    let wall = t0.elapsed();
    assert!(sim.connections[conn].all_acked(), "clean run completes");
    assert!(
        sim.incidents().is_empty(),
        "a healthy scheduler must produce no incidents"
    );
    (wall, sim.connections[conn].stats.scheduler_executions)
}

fn main() {
    let iters: u32 = if progmp_bench::report::smoke() {
        5_000
    } else {
        50_000
    };
    let program = compile(DEFAULT_MIN_RTT).unwrap();
    let mut inst = program.instantiate(Backend::Vm);
    let e = env();

    // In-process execution (the in-kernel model).
    for _ in 0..1000 {
        let mut ctx = ExecCtx::new(&e, 1_000_000);
        inst.execute_raw(&mut ctx).unwrap();
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        let mut ctx = ExecCtx::new(&e, 1_000_000);
        inst.execute_raw(&mut ctx).unwrap();
    }
    let in_process_ns = t0.elapsed().as_nanos() as f64 / f64::from(iters);

    // Up-call model: every scheduling decision round-trips to a worker
    // thread (request + response over channels), as a netlink-based
    // userspace scheduler would.
    let (req_tx, req_rx) = mpsc::channel::<u64>();
    let (resp_tx, resp_rx) = mpsc::channel::<u64>();
    let worker = std::thread::spawn(move || {
        let program = compile(DEFAULT_MIN_RTT).unwrap();
        let mut inst = program.instantiate(Backend::Vm);
        let e = env();
        while let Ok(x) = req_rx.recv() {
            if x == u64::MAX {
                break;
            }
            let mut ctx = ExecCtx::new(&e, 1_000_000);
            inst.execute_raw(&mut ctx).unwrap();
            resp_tx.send(x).expect("main thread alive");
        }
    });
    for i in 0..1000u64 {
        req_tx.send(i).unwrap();
        resp_rx.recv().unwrap();
    }
    let t0 = Instant::now();
    for i in 0..u64::from(iters) {
        req_tx.send(i).unwrap();
        resp_rx.recv().unwrap();
    }
    let upcall_ns = t0.elapsed().as_nanos() as f64 / f64::from(iters);
    req_tx.send(u64::MAX).unwrap();
    worker.join().expect("worker exits cleanly");

    println!("=== §4.1 calling-model comparison ===\n");
    println!("{:<34} {:>12}", "model", "per decision");
    println!(
        "{:<34} {:>9.2} µs",
        "in-process (in-kernel analogue)",
        in_process_ns / 1000.0
    );
    println!(
        "{:<34} {:>9.2} µs",
        "thread round-trip (up-call)",
        upcall_ns / 1000.0
    );
    println!(
        "\npaper reference: up-call ~2.4 µs vs in-kernel ~0.2 µs (12x).\nmeasured factor: {:.1}x",
        upcall_ns / in_process_ns
    );
    println!(
        "  [{}] the up-call model is many times more expensive — the reason the runtime lives in the kernel",
        if upcall_ns > 3.0 * in_process_ns { "ok" } else { "??" }
    );
    // Per-upcall work: the verified bytecode optimizer's effect on the
    // dynamic instruction count of one scheduling decision.
    let measurements = optimizer::measure_all();
    println!("\n=== verified bytecode optimizer: per-upcall instruction count ===\n");
    println!(
        "{:<24} {:>14} {:>14} {:>8}   {:>17} {:>11}",
        "scheduler", "insns before", "insns after", "change", "model bound", "certified"
    );
    let mut reduced = 0usize;
    for m in &measurements {
        if m.upcall_insns_after < m.upcall_insns_before {
            reduced += 1;
        }
        println!(
            "{:<24} {:>14} {:>14} {:>7.1}%   {:>8} -> {:>5} {:>11}",
            m.scheduler,
            m.upcall_insns_before,
            m.upcall_insns_after,
            100.0 * (m.upcall_insns_after as f64 - m.upcall_insns_before as f64)
                / m.upcall_insns_before as f64,
            m.model_bound_before,
            m.model_bound_after,
            m.certified_bound,
        );
    }
    println!(
        "\n  [{}] {reduced}/{} paper schedulers retire fewer instructions per upcall; no model bound grew",
        if reduced >= 5 { "ok" } else { "??" },
        measurements.len()
    );

    // Clean-path cost of the containment supervisor: same healthy
    // transfer, supervisor off vs on, best-of-N to shed scheduler noise.
    let (bytes, repeats) = if progmp_bench::report::smoke() {
        (1_000_000u64, 2)
    } else {
        (5_000_000, 5)
    };
    let best = |contained: bool| -> (f64, u64) {
        let mut best_ns = f64::INFINITY;
        let mut execs = 0;
        for _ in 0..repeats {
            let (wall, e) = contained_clean_run(contained, bytes);
            let ns = wall.as_nanos() as f64 / e.max(1) as f64;
            if ns < best_ns {
                best_ns = ns;
                execs = e;
            }
        }
        (best_ns, execs)
    };
    let (plain_ns, plain_execs) = best(false);
    let (contained_ns, contained_execs) = best(true);
    let overhead_pct = 100.0 * (contained_ns - plain_ns) / plain_ns;
    println!("\n=== containment supervisor: clean-path overhead ===\n");
    println!(
        "{:<34} {:>12} {:>12}",
        "configuration", "per decision", "decisions"
    );
    println!(
        "{:<34} {:>9.0} ns {:>12}",
        "supervisor off", plain_ns, plain_execs
    );
    println!(
        "{:<34} {:>9.0} ns {:>12}",
        "supervisor on (no faults)", contained_ns, contained_execs
    );
    println!(
        "\n  [{}] clean-path containment overhead {overhead_pct:+.1}% (target < 5%)",
        if overhead_pct < 5.0 { "ok" } else { "??" }
    );

    let mut report = Report::new("tab_upcall_overhead");
    report
        .meta("iters", u64::from(iters))
        .meta("paper_upcall_us", 2.4)
        .meta("paper_in_kernel_us", 0.2)
        .meta("optimizer", optimizer::meta_json(&measurements));
    report.row(vec![
        ("model", Json::from("in_process")),
        ("ns_per_decision", Json::from(in_process_ns)),
    ]);
    report.row(vec![
        ("model", Json::from("thread_round_trip")),
        ("ns_per_decision", Json::from(upcall_ns)),
    ]);
    report.meta("containment_overhead_pct", overhead_pct);
    report.row(vec![
        ("model", Json::from("sim_supervisor_off")),
        ("ns_per_decision", Json::from(plain_ns)),
    ]);
    report.row(vec![
        ("model", Json::from("sim_supervisor_on")),
        ("ns_per_decision", Json::from(contained_ns)),
    ]);
    report.write_if_requested().expect("write JSON report");
}
