//! The scale-benchmark tier: sharded fleet sweeps over
//! `{1,10,100,1k,10k}` connections × worker counts × all seven paper
//! schedulers, with the invariant oracle armed in collect mode.
//!
//! Output is the machine-readable `BENCH_scale.json` (validated by
//! `progmp_bench::scale` unit tests and re-checked here after every
//! run); the committed copy at the repo root is the performance
//! trajectory baseline that future engine changes diff against.
//!
//! Flags: `--smoke` runs the reduced CI sweep; `--json PATH` chooses
//! the output file (default `BENCH_scale.json`).

use progmp_bench::report::{json_out, smoke, Json};
use progmp_bench::scale::{run_scale, validate_scale_report, ScaleConfig};

fn main() {
    let cfg = if smoke() {
        ScaleConfig::smoke()
    } else {
        ScaleConfig::full()
    };
    println!(
        "=== scale tier: fleet sweep {:?} connections x {:?} workers ({} mode) ===\n",
        cfg.sizes,
        cfg.workers,
        if smoke() { "smoke" } else { "full" },
    );
    let report = run_scale(&cfg, &mut |line| println!("{line}"));

    let text = report.render();
    let doc = Json::parse(&text).expect("own report parses");
    validate_scale_report(&doc).expect("schema-valid scale report");

    let path = json_out().unwrap_or_else(|| "BENCH_scale.json".into());
    std::fs::write(&path, &text).expect("write scale report");
    println!("\nwrote {} (schema-valid)", path.display());
}
