//! §4.3 "Number of Schedulers" — memory footprint of loaded schedulers
//! and per-connection instances.
//!
//! Paper numbers: the round-robin scheduler requires 3048 bytes, each
//! instantiation an additional 328 bytes; "the memory overhead of our
//! runtime environment does not restrict the adoption".
//!
//! Reports through the shared JSON emitter: `--json PATH` writes the
//! table as a machine-readable report. `--smoke` is accepted (the
//! audit is a fixed, already CI-sized pass over the bundled programs).

use progmp_bench::report::{Json, Report};
use progmp_core::Backend;
use progmp_schedulers as sched;

fn main() {
    println!("=== §4.3 memory footprint of loaded schedulers ===\n");
    println!(
        "{:<24} {:>8} {:>12} {:>14} {:>14}",
        "scheduler", "LOC", "program B", "instance(vm)", "instance(aot)"
    );
    let mut report = Report::new("tab_memory_footprint");
    report.meta("paper_program_bytes", 3048u64);
    report.meta("paper_instance_bytes", 328u64);
    let mut max_program = 0usize;
    for name in sched::names() {
        let program = sched::load(name).expect("bundled schedulers compile");
        let loc = program
            .source()
            .lines()
            .filter(|l| !l.trim().is_empty())
            .count();
        let vm_inst = program.instantiate(Backend::Vm);
        let aot_inst = program.instantiate(Backend::Aot);
        println!(
            "{:<24} {:>8} {:>12} {:>14} {:>14}",
            name,
            loc,
            program.size_bytes(),
            vm_inst.size_bytes(),
            aot_inst.size_bytes()
        );
        report.row(vec![
            ("scheduler", Json::from(name)),
            ("loc", Json::from(loc)),
            ("program_bytes", Json::from(program.size_bytes())),
            ("instance_vm_bytes", Json::from(vm_inst.size_bytes())),
            ("instance_aot_bytes", Json::from(aot_inst.size_bytes())),
        ]);
        max_program = max_program.max(program.size_bytes());
    }

    println!("\npaper reference: round robin 3048 B loaded, +328 B per instantiation.");
    println!(
        "  [{}] every loaded scheduler stays in the paper's few-KB regime (max {} B)",
        if max_program < 64 * 1024 { "ok" } else { "??" },
        max_program
    );
    let rr = sched::load("roundRobin").unwrap();
    let inst = rr.instantiate(Backend::Vm);
    println!(
        "  [{}] per-instance overhead is small relative to the program ({} B vs {} B)",
        if inst.size_bytes() < rr.size_bytes() {
            "ok"
        } else {
            "??"
        },
        inst.size_bytes(),
        rr.size_bytes()
    );
    println!(
        "  note: instances share the loaded program through Arc, exactly like the\n\
         \u{20}       paper's reuse of previously loaded schedulers across connections."
    );
    report.write_if_requested().expect("write JSON report");
}
