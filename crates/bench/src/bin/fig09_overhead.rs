//! Fig. 9 — overhead of the runtime environment: (top) per-execution
//! scheduler cost of the three ProgMP backends relative to the native
//! implementation, with 2 and 4 subflows; (bottom) maximum throughput of
//! a saturated transfer, which must be unchanged across all schedulers.
//!
//! Paper numbers: interpreter ~144% and eBPF ~125% of the native C
//! execution time; the total throughput remains unchanged throughout all
//! schedulers; the impact of the number of subflows is marginal.

use mptcp_sim::native::{NativeMinRtt, NativeScheduler};
use mptcp_sim::time::from_millis;
use mptcp_sim::{NativeMinRtt as _NM, PathConfig, SchedulerSpec, SubflowConfig};
use progmp_bench::bulk_goodput;
use progmp_core::env::{QueueKind, SubflowProp};
use progmp_core::exec::ExecCtx;
use progmp_core::testenv::MockEnv;
use progmp_core::{compile, Backend};
use progmp_schedulers::DEFAULT_MIN_RTT;
use std::time::Instant;

/// Builds a mock environment with `n` subflows and a filled send queue.
fn env_with(n: u32) -> MockEnv {
    let mut env = MockEnv::new();
    for i in 0..n {
        env.add_subflow(i);
        env.set_subflow_prop(i, SubflowProp::Rtt, 10_000 + i64::from(i) * 5_000);
        env.set_subflow_prop(i, SubflowProp::Cwnd, 100);
        env.set_subflow_prop(i, SubflowProp::Mss, 1400);
    }
    for p in 0..32u64 {
        env.push_packet(QueueKind::SendQueue, 100 + p, 1400 * p as i64, 1400);
    }
    env
}

/// Measures mean per-execution wall time (ns) over `iters` runs.
/// Executions are side-effect-free on the timing path: effects are
/// buffered in the context and dropped, so every run sees the same state.
fn measure<F: FnMut(&mut ExecCtx<'_>)>(env: &MockEnv, iters: u32, mut f: F) -> f64 {
    // Warmup.
    for _ in 0..1000 {
        let mut ctx = ExecCtx::new(env, 1_000_000);
        f(&mut ctx);
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        let mut ctx = ExecCtx::new(env, 1_000_000);
        f(&mut ctx);
    }
    t0.elapsed().as_nanos() as f64 / f64::from(iters)
}

fn main() {
    let iters = if progmp_bench::report::smoke() {
        2_000
    } else {
        20_000
    };
    println!("=== Fig. 9 (top): per-execution cost relative to the native scheduler ===\n");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12}",
        "subflows", "native ns", "interp", "aot", "vm (eBPF)"
    );

    let program = compile(DEFAULT_MIN_RTT).expect("default compiles");
    let mut rel = Vec::new();
    for n in [2u32, 4] {
        let env = env_with(n);
        let mut native = NativeMinRtt;
        let native_ns = measure(&env, iters, |ctx| {
            native.schedule(ctx).unwrap();
        });
        let mut row = format!("{n:>10} {native_ns:>12.0}");
        for backend in [Backend::Interpreter, Backend::Aot, Backend::Vm] {
            let mut inst = program.instantiate(backend);
            let ns = measure(&env, iters, |ctx| {
                inst.execute_raw(ctx).unwrap();
            });
            let pct = ns / native_ns * 100.0;
            row.push_str(&format!(" {:>10.0}%", pct));
            rel.push((n, backend, pct));
        }
        println!("{row}");
    }

    println!("\n=== Fig. 9 (bottom): saturated throughput is scheduler-independent ===\n");
    let subflows = || {
        vec![
            SubflowConfig::new(PathConfig::symmetric(from_millis(10), 1_250_000)),
            SubflowConfig::new(PathConfig::symmetric(from_millis(20), 1_250_000)),
        ]
    };
    let bytes = 6_000_000;
    let native_gp = bulk_goodput(SchedulerSpec::Native(Box::new(_NM)), subflows(), bytes, 3);
    println!("{:<22} {:>10.3} MB/s", "native minRTT", native_gp / 1e6);
    let mut gps = vec![native_gp];
    for backend in [Backend::Interpreter, Backend::Aot, Backend::Vm] {
        let gp = bulk_goodput(
            SchedulerSpec::dsl_on(DEFAULT_MIN_RTT, backend),
            subflows(),
            bytes,
            3,
        );
        println!(
            "{:<22} {:>10.3} MB/s",
            format!("dsl/{}", backend.name()),
            gp / 1e6
        );
        gps.push(gp);
    }

    println!("\npaper shape checks:");
    let interp_slower_than_vm = rel
        .iter()
        .filter(|(_, b, _)| *b == Backend::Interpreter)
        .map(|(_, _, p)| *p)
        .sum::<f64>()
        > rel
            .iter()
            .filter(|(_, b, _)| *b == Backend::Vm)
            .map(|(_, _, p)| *p)
            .sum::<f64>();
    println!(
        "  [{}] the eBPF-style backend reduces the interpreter's relative execution time",
        ok(interp_slower_than_vm)
    );
    let spread = gps.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        / gps.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "  [{}] total throughput unchanged across schedulers (max/min = {:.3})",
        ok(spread < 1.02),
        spread
    );
    let s2: f64 = rel
        .iter()
        .filter(|(n, _, _)| *n == 2)
        .map(|(_, _, p)| *p)
        .sum();
    let s4: f64 = rel
        .iter()
        .filter(|(n, _, _)| *n == 4)
        .map(|(_, _, p)| *p)
        .sum();
    println!(
        "  [{}] impact of the number of subflows is marginal (sum rel 2sbf {:.0}% vs 4sbf {:.0}%)",
        ok((s2 - s4).abs() / s2 < 0.5),
        s2,
        s4
    );
}

fn ok(b: bool) -> &'static str {
    if b {
        "ok"
    } else {
        "??"
    }
}
