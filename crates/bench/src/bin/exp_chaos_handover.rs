//! Chaos-tier companion to `exp_handover`: the same WiFi→LTE break
//! expressed as a deterministic [`mptcp_sim::FaultPlan`] (a full blackout
//! of the primary subflow), run with the runtime invariant oracle armed.
//!
//! Shape checks:
//!
//! * redundancy masks the blackout — the redundant scheduler's delivery
//!   stall is shorter than the default scheduler's RTO-driven recovery;
//! * the default scheduler recovers through the reinjection queue
//!   (reinjections observed, transfer completes);
//! * chaos runs are bit-reproducible — identical seed, identical stats.

use mptcp_sim::time::from_millis;
use mptcp_sim::time::{SimTime, MILLIS, SECONDS};
use mptcp_sim::{
    ConnectionConfig, FaultClause, FaultPlan, PathConfig, SchedulerSpec, Sim, SubflowConfig,
};
use progmp_schedulers as sched;

const BLACKOUT_FROM: SimTime = 2 * SECONDS;
const BLACKOUT_UNTIL: SimTime = 3 * SECONDS + 200 * MILLIS;

struct Outcome {
    max_stall: SimTime,
    completed: bool,
    reinjections: u64,
    digest: String,
}

fn run(scheduler: &'static str, seed: u64) -> Outcome {
    let mut sim = Sim::new(seed);
    sim.enable_oracle(format!("exp_chaos_handover seed {seed}"), true);
    let cfg = ConnectionConfig::new(
        vec![
            // The primary (WiFi-like) subflow the blackout will hit.
            SubflowConfig::new(PathConfig::symmetric(from_millis(15), 1_250_000)),
            // The surviving (LTE-like) subflow.
            SubflowConfig::new(PathConfig::symmetric(from_millis(45), 1_250_000)),
        ],
        SchedulerSpec::dsl(scheduler),
    )
    .with_timelines();
    let conn = sim.add_connection(cfg).unwrap();
    // A steady 500 KB/s stream across the blackout window.
    sim.add_cbr_source(conn, 0, 5 * SECONDS, 500_000, from_millis(20), 0);
    sim.apply_fault_plan(
        conn,
        &FaultPlan {
            clauses: vec![FaultClause::Blackout {
                sbf: 0,
                from: BLACKOUT_FROM,
                until: BLACKOUT_UNTIL,
            }],
        },
    );
    sim.run_to_completion(120 * SECONDS);

    let c = &sim.connections[conn];
    // Longest in-order delivery stall around the blackout window.
    let mut last = BLACKOUT_FROM.saturating_sub(200 * MILLIS);
    let mut max_stall = 0;
    for &(t, _) in
        c.stats.delivery_timeline.iter().filter(|(t, _)| {
            *t + 400 * MILLIS >= BLACKOUT_FROM && *t < BLACKOUT_UNTIL + 3 * SECONDS
        })
    {
        max_stall = max_stall.max(t.saturating_sub(last));
        last = t;
    }
    Outcome {
        max_stall,
        completed: c.all_acked(),
        reinjections: c.stats.reinjections,
        digest: c.stats.snapshot_text(),
    }
}

fn main() {
    println!("=== chaos tier: scheduled blackout of the primary subflow (t = 2.0–3.2 s) ===\n");
    println!(
        "{:<26} {:>16} {:>14} {:>12}",
        "scheduler", "max stall (ms)", "reinjections", "completed"
    );
    let mut worst: Vec<SimTime> = Vec::new();
    let mut reinj: Vec<u64> = Vec::new();
    let mut done: Vec<bool> = Vec::new();
    for (name, src) in [
        ("default", sched::DEFAULT_MIN_RTT),
        ("redundant", sched::REDUNDANT),
        ("minRttSimple", sched::MIN_RTT_SIMPLE),
    ] {
        let mut w: SimTime = 0;
        let mut r = 0;
        let mut d = true;
        let seeds = if progmp_bench::report::smoke() { 2 } else { 10 };
        for seed in 0..seeds {
            let out = run(src, 70 + seed);
            w = w.max(out.max_stall);
            r += out.reinjections;
            d &= out.completed;
        }
        println!(
            "{:<26} {:>16.1} {:>14} {:>12}",
            name,
            w as f64 / 1e6,
            r,
            if d { "yes" } else { "no" }
        );
        worst.push(w);
        reinj.push(r);
        done.push(d);
    }

    let replay_a = run(sched::DEFAULT_MIN_RTT, 70).digest;
    let replay_b = run(sched::DEFAULT_MIN_RTT, 70).digest;

    println!("\npaper shape checks:");
    println!(
        "  [{}] redundancy masks the blackout: redundant stalls {:.0} ms < default {:.0} ms",
        if worst[1] < worst[0] { "ok" } else { "??" },
        worst[1] as f64 / 1e6,
        worst[0] as f64 / 1e6
    );
    println!(
        "  [{}] the default scheduler recovers through the reinjection queue and completes",
        if done[0] && reinj[0] > 0 { "ok" } else { "??" }
    );
    println!(
        "  [{}] chaos runs replay bit-identically from the seed",
        if replay_a == replay_b { "ok" } else { "??" }
    );
}
