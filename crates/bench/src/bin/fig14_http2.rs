//! Fig. 14 — HTTP/2-aware scheduling: dependency-retrieval time, initial
//! page time, and metered-LTE usage vs. the WiFi RTT (the paper
//! systematically increases WiFi packet delays to sweep the RTT ratio).
//!
//! Paper shape: the HTTP/2-aware scheduler reduces the time to retrieve
//! all dependency information by avoiding high-RTT subflows for the
//! initial packets, without affecting the remaining time; the
//! preference-aware handling of post-initial content significantly
//! reduces the data transferred on the metered LTE subflow.

use http2_sim::{run_page_load, Page, ServerMode, WifiLteProfile};
use mptcp_sim::time::from_millis;
use progmp_schedulers as sched;

fn main() {
    let page = Page::amazon_like();
    println!("=== Fig. 14: HTTP/2-aware scheduling, WiFi-RTT sweep ===");
    println!(
        "page: {} KB total, {} KB post-initial; LTE 60 ms metered\n",
        page.total_bytes() / 1000,
        page.class_bytes(http2_sim::ContentClass::PostInitial) / 1000
    );
    println!(
        "{:>12} | {:>11} {:>11} | {:>12} {:>12} | {:>9} {:>9}",
        "WiFi RTT",
        "deps dflt",
        "deps aware",
        "initial dflt",
        "initial aware",
        "LTE dflt",
        "LTE aware"
    );

    let mut lte_savings = Vec::new();
    let mut dep_ok = 0;
    let wifi_rtts: &[u64] = if progmp_bench::report::smoke() {
        &[10, 80]
    } else {
        &[10, 20, 40, 80, 120]
    };
    for &wifi_ms in wifi_rtts {
        let profile = WifiLteProfile {
            wifi_rtt: from_millis(wifi_ms),
            ..Default::default()
        };
        let unaware = run_page_load(
            &page,
            &profile,
            sched::DEFAULT_MIN_RTT,
            ServerMode::Legacy,
            31,
        )
        .unwrap();
        let aware =
            run_page_load(&page, &profile, sched::HTTP2_AWARE, ServerMode::Aware, 31).unwrap();
        println!(
            "{:>9} ms | {:>8.1} ms {:>8.1} ms | {:>9.1} ms {:>9.1} ms | {:>6} KB {:>6} KB",
            wifi_ms,
            unaware.dependency_resolved as f64 / 1e6,
            aware.dependency_resolved as f64 / 1e6,
            unaware.initial_page_time as f64 / 1e6,
            aware.initial_page_time as f64 / 1e6,
            unaware.lte_bytes / 1000,
            aware.lte_bytes / 1000
        );
        lte_savings.push(1.0 - aware.lte_bytes as f64 / unaware.lte_bytes.max(1) as f64);
        if aware.dependency_resolved <= unaware.dependency_resolved + from_millis(3) {
            dep_ok += 1;
        }
    }

    println!("\npaper shape checks:");
    println!(
        "  [{}] dependency retrieval with the aware scheduler is never worse ({}/{} sweep points)",
        ok(dep_ok >= wifi_rtts.len() - 1),
        dep_ok,
        wifi_rtts.len()
    );
    let min_saving = lte_savings.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "  [{}] preference-aware post-initial scheduling cuts metered LTE usage at every RTT (min saving {:.0}%)",
        ok(min_saving > 0.3),
        min_saving * 100.0
    );
}

fn ok(b: bool) -> &'static str {
    if b {
        "ok"
    } else {
        "??"
    }
}
