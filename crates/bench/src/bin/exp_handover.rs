//! §5.2 — the handover-aware scheduler: during a WiFi→LTE handover the
//! WiFi subflow degrades (loss ramps to 100%) while a fresh cellular
//! subflow is established. The handover-aware scheduler aggressively
//! retransmits WiFi's in-flight packets on the new subflow.
//!
//! Metric: the delivery stall around the handover (longest gap between
//! consecutive in-order deliveries), which the proactive retransmission
//! shortens compared with waiting for WiFi's RTO-based recovery.

use mptcp_sim::time::{from_millis, SimTime, MILLIS, SECONDS};
use mptcp_sim::{
    ConnectionConfig, PathConfig, PathProfileEntry, SchedulerSpec, Sim, SubflowConfig,
};
use progmp_core::env::RegId;
use progmp_schedulers as sched;

const HANDOVER_AT: SimTime = 2 * SECONDS;

fn run(scheduler: &'static str, signal_handover: bool, seed: u64) -> (SimTime, bool) {
    let mut sim = Sim::new(seed);
    // WiFi: good until the handover, then fully lossy (connection break).
    let wifi =
        PathConfig::symmetric(from_millis(15), 1_250_000).with_profile_entry(PathProfileEntry {
            at: HANDOVER_AT,
            rate: None,
            loss: Some(1.0),
            fwd_delay: None,
        });
    // Cellular subflow comes up shortly before the break (proactive
    // establishment, as in the paper's sensor-assisted handover).
    let lte = SubflowConfig::new(PathConfig::symmetric(from_millis(45), 1_250_000))
        .starting_at(HANDOVER_AT - 100 * MILLIS);
    let cfg = ConnectionConfig::new(
        vec![SubflowConfig::new(wifi), lte],
        SchedulerSpec::dsl(scheduler),
    )
    .with_timelines();
    let conn = sim.add_connection(cfg).unwrap();
    // A steady 500 KB/s stream across the handover.
    sim.add_cbr_source(conn, 0, 4 * SECONDS, 500_000, from_millis(20), 0);
    if signal_handover {
        sim.set_register_at(conn, HANDOVER_AT - 100 * MILLIS, RegId::R3, 1);
        sim.set_register_at(conn, HANDOVER_AT + SECONDS, RegId::R3, 0);
    }
    // The path manager eventually declares WiFi dead.
    sim.subflow_down_at(conn, 0, HANDOVER_AT + 800 * MILLIS);
    sim.run_to_completion(20 * SECONDS);

    let c = &sim.connections[conn];
    // Longest in-order delivery stall around the handover window.
    let mut last = HANDOVER_AT.saturating_sub(200 * MILLIS);
    let mut max_gap = 0;
    for &(t, _) in c
        .stats
        .delivery_timeline
        .iter()
        .filter(|(t, _)| *t + 400 * MILLIS >= HANDOVER_AT && *t < HANDOVER_AT + 3 * SECONDS)
    {
        max_gap = max_gap.max(t.saturating_sub(last));
        last = t;
    }
    (max_gap, c.all_acked())
}

fn main() {
    println!("=== §5.2: handover-aware scheduling (WiFi breaks at t = 2 s) ===\n");
    println!(
        "{:<26} {:>16} {:>12}",
        "scheduler", "max stall (ms)", "completed"
    );
    let mut rows = Vec::new();
    for (name, src, signal) in [
        ("default", sched::DEFAULT_MIN_RTT, false),
        ("handoverAware (R3=1)", sched::HANDOVER_AWARE, true),
    ] {
        let mut worst: SimTime = 0;
        let mut all_done = true;
        let seeds = if progmp_bench::report::smoke() { 2 } else { 10 };
        for seed in 0..seeds {
            let (gap, done) = run(src, signal, 40 + seed);
            worst = worst.max(gap);
            all_done &= done;
        }
        println!(
            "{:<26} {:>16.1} {:>12}",
            name,
            worst as f64 / 1e6,
            if all_done { "yes" } else { "no" }
        );
        rows.push(worst);
    }
    println!("\npaper shape checks:");
    println!(
        "  [{}] aggressive retransmission on the new subflow shortens the handover stall ({:.0} ms vs {:.0} ms)",
        if rows[1] < rows[0] { "ok" } else { "??" },
        rows[1] as f64 / 1e6,
        rows[0] as f64 / 1e6
    );
}
