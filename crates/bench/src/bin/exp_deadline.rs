//! §5.4 "Target Deadline" — the MP-DASH use case: video chunks with
//! arrival deadlines. The deadline-aware scheduler uses the non-preferred
//! (metered) subflow only when the preferred path cannot meet a chunk's
//! deadline, unlike the default scheduler (uses LTE freely) and a
//! WiFi-only policy (misses deadlines when WiFi dips).

use mptcp_sim::time::{from_millis, SimTime, MILLIS, SECONDS};
use mptcp_sim::{
    ConnectionConfig, PathConfig, PathProfileEntry, SchedulerSpec, Sim, SubflowConfig,
};
use progmp_core::env::RegId;
use progmp_schedulers as sched;

/// Chunk count: 12 for the full run, 3 under `--smoke`.
fn chunks() -> u64 {
    if progmp_bench::report::smoke() {
        3
    } else {
        12
    }
}
const CHUNK_BYTES: u64 = 800_000; // 0.8 MB every 2 s = 3.2 Mbit/s video
const CHUNK_PERIOD: SimTime = 2 * SECONDS;

/// WiFi nominally 0.5 MB/s but dipping to 0.15 MB/s for one second of
/// every four (rate fluctuation).
fn wifi() -> PathConfig {
    let mut w = PathConfig::symmetric(from_millis(20), 500_000);
    for k in 0..7u64 {
        w = w
            .with_profile_entry(PathProfileEntry {
                at: (4 * k + 2) * SECONDS,
                rate: Some(120_000),
                loss: None,
                fwd_delay: None,
            })
            .with_profile_entry(PathProfileEntry {
                at: (4 * k + 3) * SECONDS,
                rate: Some(500_000),
                loss: None,
                fwd_delay: None,
            });
    }
    w
}

struct Outcome {
    deadline_hits: u64,
    lte_bytes: u64,
}

/// `wifi_only`: drop the LTE subflow entirely (the "avoid metered"
/// strawman). The application updates R1 (remaining ms) and R2 (remaining
/// chunk bytes) at every chunk start — the MP-DASH control loop.
fn run(scheduler: &'static str, signal: bool, wifi_only: bool, seed: u64) -> Outcome {
    let mut sim = Sim::new(seed);
    let mut subflows = vec![SubflowConfig::new(wifi())];
    if !wifi_only {
        subflows.push(
            SubflowConfig::new(PathConfig::symmetric(from_millis(60), 1_250_000)).with_cost(1),
        );
    }
    let cfg = ConnectionConfig::new(subflows, SchedulerSpec::dsl(scheduler)).with_timelines();
    let conn = sim.add_connection(cfg).unwrap();
    for i in 0..chunks() {
        let start = i * CHUNK_PERIOD;
        sim.app_send_at(conn, start, CHUNK_BYTES, 0);
        if signal {
            // Deadline: the next chunk boundary. Refresh the remaining
            // budget a few times within the chunk.
            for (k, frac) in [(0u64, 1.0f64), (1, 0.5), (2, 0.25)] {
                let at = start + k * 500 * MILLIS;
                let remaining_ms = (CHUNK_PERIOD / MILLIS).saturating_sub(k * 500) as i64;
                sim.set_register_at(conn, at, RegId::R1, remaining_ms);
                sim.set_register_at(conn, at, RegId::R2, (CHUNK_BYTES as f64 * frac) as i64);
            }
        }
    }
    sim.run_to_completion(120 * SECONDS);
    let c = &sim.connections[conn];
    let mut hits = 0;
    for i in 0..chunks() {
        let deadline = (i + 1) * CHUNK_PERIOD;
        if let Some(t) = c.stats.delivery_time_of((i + 1) * CHUNK_BYTES) {
            if t <= deadline {
                hits += 1;
            }
        }
    }
    Outcome {
        deadline_hits: hits,
        lte_bytes: c.stats.subflows.get(1).map(|s| s.tx_bytes).unwrap_or(0),
    }
}

fn main() {
    println!("=== §5.4 target-deadline scheduler (MP-DASH scenario) ===");
    println!(
        "{} chunks of {} KB every {} s; WiFi 0.5 MB/s dipping to 0.15 MB/s; LTE metered\n",
        chunks(),
        CHUNK_BYTES / 1000,
        CHUNK_PERIOD / SECONDS
    );
    println!("{:<28} {:>14} {:>12}", "policy", "deadlines met", "LTE KB");
    let rows = [
        ("WiFi only", run(sched::DEFAULT_MIN_RTT, false, true, 21)),
        (
            "default (both paths)",
            run(sched::DEFAULT_MIN_RTT, false, false, 21),
        ),
        (
            "targetDeadline (R1/R2)",
            run(sched::TARGET_DEADLINE, true, false, 21),
        ),
    ];
    for (name, o) in &rows {
        println!(
            "{:<28} {:>9}/{:<4} {:>12}",
            name,
            o.deadline_hits,
            chunks(),
            o.lte_bytes / 1000
        );
    }
    let (wifi_only, default, deadline) = (&rows[0].1, &rows[1].1, &rows[2].1);
    println!("\npaper shape checks:");
    println!(
        "  [{}] WiFi alone misses deadlines ({}/{})",
        if wifi_only.deadline_hits < chunks() {
            "ok"
        } else {
            "??"
        },
        wifi_only.deadline_hits,
        chunks()
    );
    println!(
        "  [{}] the deadline-aware scheduler meets (nearly) all deadlines ({}/{})",
        if deadline.deadline_hits >= chunks() - 1 {
            "ok"
        } else {
            "??"
        },
        deadline.deadline_hits,
        chunks()
    );
    println!(
        "  [{}] while using much less metered LTE than the default scheduler ({} KB vs {} KB)",
        if deadline.lte_bytes < default.lte_bytes {
            "ok"
        } else {
            "??"
        },
        deadline.lte_bytes / 1000,
        default.lte_bytes / 1000
    );
}
