//! Ablation (§5.3): the choice of the retransmitted packet in the
//! Compensating scheduler. The paper: "A variation of the choice of the
//! retransmitted packet using TOP instead of FIRST showed only minor
//! impact on the FCT." We compare three variants — queue-order TOP,
//! lowest sequence number (oldest data), and highest sequence number —
//! expecting minor differences.

use mptcp_sim::time::{from_millis, SECONDS};
use mptcp_sim::{ConnectionConfig, PathConfig, SchedulerSpec, Sim, SubflowConfig};
use progmp_core::env::RegId;

fn compensating_with(selector: &str) -> String {
    format!(
        "
    VAR avail = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY
        AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
    IF (!Q.EMPTY) {{
        VAR s = avail.MIN(sbf => sbf.RTT);
        IF (s != NULL) {{ s.PUSH(Q.POP()); }}
        RETURN;
    }}
    IF (R2 == 1) {{
        FOREACH (VAR sbf IN SUBFLOWS) {{
            VAR skb = QU.FILTER(p => !p.SENT_ON(sbf)){selector};
            IF (skb != NULL) {{ sbf.PUSH(skb); }}
        }}
    }}"
    )
}

fn mean_fct(selector: &str, ratio: u64) -> f64 {
    let runs = if progmp_bench::report::smoke() { 3 } else { 15 };
    let mut total = 0.0;
    let src = compensating_with(selector);
    for seed in 0..runs {
        let mut sim = Sim::new(2200 + seed);
        let cfg = ConnectionConfig::new(
            vec![
                SubflowConfig::new(PathConfig::symmetric(from_millis(15), 1_250_000)),
                SubflowConfig::new(PathConfig::symmetric(from_millis(15 * ratio), 1_250_000)),
            ],
            SchedulerSpec::dsl(&src),
        )
        .with_timelines();
        let conn = sim.add_connection(cfg).unwrap();
        sim.app_send_at(conn, 0, 12 * 1400, 0);
        sim.set_register_at(conn, 1, RegId::R2, 1);
        sim.run_to_completion(30 * SECONDS);
        total += sim.connections[conn]
            .stats
            .delivery_time_of(12 * 1400)
            .expect("completes") as f64
            / 1e6;
    }
    total / runs as f64
}

fn main() {
    println!("=== Ablation §5.3: which packet does compensation retransmit? ===\n");
    println!(
        "{:>6} | {:>12} {:>12} {:>12}",
        "ratio", "TOP", "MIN(SEQ)", "MAX(SEQ)"
    );
    let variants = [".TOP", ".MIN(k => k.SEQ)", ".MAX(k => k.SEQ)"];
    let mut max_spread: f64 = 0.0;
    for ratio in [2u64, 4, 8] {
        let fcts: Vec<f64> = variants.iter().map(|v| mean_fct(v, ratio)).collect();
        println!(
            "{:>6} | {:>9.1} ms {:>9.1} ms {:>9.1} ms",
            ratio, fcts[0], fcts[1], fcts[2]
        );
        let hi = fcts.iter().cloned().fold(f64::MIN, f64::max);
        let lo = fcts.iter().cloned().fold(f64::MAX, f64::min);
        max_spread = max_spread.max((hi - lo) / lo);
    }
    println!("\npaper shape checks:");
    println!(
        "  [{}] the retransmitted-packet choice has only minor FCT impact (max spread {:.1}%)",
        if max_spread < 0.15 { "ok" } else { "??" },
        max_spread * 100.0
    );
}
