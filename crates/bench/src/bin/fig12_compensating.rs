//! Fig. 12 — leveraging the end-of-flow signal to mitigate subflow
//! heterogeneity: mean FCT and transmission overhead vs. RTT ratio for
//! the default, `Compensating`, and `Selective Compensation` schedulers.
//!
//! Paper shape: the default scheduler's FCT grows steeply with the RTT
//! ratio; the flow-end-aware Compensating scheduler retains the FCT at
//! the cost of overhead (which matters least at high ratios); Selective
//! Compensation only pays the overhead when the ratio exceeds 2.

use mptcp_sim::time::from_millis;
use mptcp_sim::{PathConfig, SubflowConfig};
use progmp_bench::FlowExperiment;
use progmp_schedulers as sched;

const BASE_RTT_MS: u64 = 15;
const FLOW_BYTES: u64 = 12 * 1400;
const RATE: u64 = 1_250_000;

fn subflows(ratio: u64) -> Vec<SubflowConfig> {
    vec![
        SubflowConfig::new(PathConfig::symmetric(from_millis(BASE_RTT_MS), RATE)),
        SubflowConfig::new(PathConfig::symmetric(
            from_millis(BASE_RTT_MS * ratio),
            RATE,
        )),
    ]
}

fn main() {
    println!(
        "=== Fig. 12: FCT and overhead vs RTT ratio (12-packet flows, end-of-flow signal) ===\n"
    );
    println!(
        "{:>6} | {:>11} {:>7} | {:>11} {:>7} | {:>11} {:>7}",
        "ratio", "default", "ovh", "compensate", "ovh", "selective", "ovh"
    );

    let ratios: &[u64] = if progmp_bench::report::smoke() {
        &[1, 2, 8]
    } else {
        &[1, 2, 3, 4, 6, 8]
    };
    let runs = if progmp_bench::report::smoke() { 4 } else { 20 };
    let mut def = Vec::new();
    let mut comp = Vec::new();
    let mut sel_ovh = Vec::new();
    for &ratio in ratios {
        let d = FlowExperiment::new(sched::DEFAULT_MIN_RTT, FLOW_BYTES, subflows(ratio))
            .with_flow_end_signal()
            .with_runs(runs)
            .with_seed(9000 + ratio)
            .run();
        let c = FlowExperiment::new(sched::COMPENSATING, FLOW_BYTES, subflows(ratio))
            .with_flow_end_signal()
            .with_runs(runs)
            .with_seed(9000 + ratio)
            .run();
        let s = FlowExperiment::new(sched::SELECTIVE_COMPENSATION, FLOW_BYTES, subflows(ratio))
            .with_flow_end_signal()
            .with_runs(runs)
            .with_seed(9000 + ratio)
            .run();
        println!(
            "{:>6} | {:>8.1} ms {:>6.2}x | {:>8.1} ms {:>6.2}x | {:>8.1} ms {:>6.2}x",
            ratio,
            d.mean_fct_ms,
            d.mean_overhead,
            c.mean_fct_ms,
            c.mean_overhead,
            s.mean_fct_ms,
            s.mean_overhead
        );
        def.push(d.mean_fct_ms);
        comp.push(c.mean_fct_ms);
        sel_ovh.push(s.mean_overhead);
    }

    println!("\npaper shape checks:");
    println!(
        "  [{}] default FCT rapidly increases with the RTT ratio ({:.1} -> {:.1} ms)",
        ok(def[ratios.len() - 1] > def[0] * 2.0),
        def[0],
        def[ratios.len() - 1]
    );
    println!(
        "  [{}] Compensating retains the FCT under skew ({:.1} -> {:.1} ms)",
        ok(comp[ratios.len() - 1] < comp[0] * 2.0),
        comp[0],
        comp[ratios.len() - 1]
    );
    println!(
        "  [{}] Selective Compensation is overhead-free at ratio <= 2 ({:.2}x) and compensates above ({:.2}x)",
        ok(sel_ovh[0] < 1.2 && sel_ovh[1] < 1.2 && sel_ovh[sel_ovh.len() - 1] > 1.4),
        sel_ovh[0],
        sel_ovh[sel_ovh.len() - 1]
    );
}

fn ok(b: bool) -> &'static str {
    if b {
        "ok"
    } else {
        "??"
    }
}
