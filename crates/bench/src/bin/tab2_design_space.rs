//! Table 2 — the MPTCP scheduler design space. Every row of the paper's
//! catalogue maps to a bundled scheduler; this binary lists them, their
//! specification size (the paper's usability argument: the in-kernel
//! round robin alone is 301 lines of C), and smoke-runs each of them in
//! the simulator to prove the whole catalogue is executable.

use mptcp_sim::time::{from_millis, SECONDS};
use mptcp_sim::{ConnectionConfig, PathConfig, SchedulerSpec, Sim, SubflowConfig};
use progmp_core::env::RegId;
use progmp_schedulers as sched;

/// (Table 2 category, goal, scheduler name).
const CATALOGUE: &[(&str, &str, &str)] = &[
    ("Probing", "timely RTT/capacity estimates", "probing"),
    (
        "Redundancy",
        "minimize latency: existing full redundancy",
        "redundant",
    ),
    (
        "Redundancy",
        "prefer fresh packets at first scheduling",
        "opportunisticRedundant",
    ),
    (
        "Redundancy",
        "redundancy only when no fresh data",
        "redundantIfNoQ",
    ),
    ("Handover", "smooth WiFi/LTE handover", "handoverAware"),
    (
        "Heterogeneous",
        "compensate scheduling at flow end",
        "compensating",
    ),
    (
        "Heterogeneous",
        "selective compensation (ratio > 2)",
        "selectiveCompensation",
    ),
    ("Preference", "ensure throughput (TAP)", "tap"),
    ("Preference", "ensure RTT target", "targetRtt"),
    (
        "Preference",
        "ensure chunk deadline (MP-DASH)",
        "targetDeadline",
    ),
    (
        "Higher protocols",
        "HTTP/2 content-aware strategies",
        "http2Aware",
    ),
    ("Baselines", "Linux default minRTT", "default"),
    (
        "Baselines",
        "round robin (301 LOC in kernel C)",
        "roundRobin",
    ),
    ("Baselines", "textbook minRTT (Fig. 3)", "minRttSimple"),
    (
        "Baselines",
        "opportunistic retransmission",
        "opportunisticRtx",
    ),
    (
        "Probing",
        "target RTT with probing composition",
        "targetRttProbing",
    ),
    (
        "Redundancy",
        "fast coupled retransmission [7,27]",
        "fastCoupledRtx",
    ),
    (
        "Cross-concern",
        "relax cwnd for the flow tail (paper 6)",
        "cwndRelax",
    ),
];

fn smoke_run(name: &str) -> bool {
    let source = sched::sources::ALL
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, s)| *s)
        .expect("catalogue names exist");
    let mut sim = Sim::new(5);
    let cfg = ConnectionConfig::new(
        vec![
            SubflowConfig::new(PathConfig::symmetric(from_millis(10), 1_250_000)),
            SubflowConfig::new(PathConfig::symmetric(from_millis(40), 1_250_000)).with_cost(1),
        ],
        SchedulerSpec::dsl(source),
    );
    let conn = match sim.add_connection(cfg) {
        Ok(c) => c,
        Err(_) => return false,
    };
    // Generic intents so every scheduler has what it needs.
    sim.set_register_at(conn, 0, RegId::R1, 4_000_000);
    sim.set_register_at(conn, 1, RegId::R3, 1);
    sim.app_send_at(conn, 0, 50_000, 2);
    sim.set_register_at(conn, 2, RegId::R2, 1);
    sim.run_to_completion(30 * SECONDS);
    sim.connections[conn].all_acked()
}

fn main() {
    if progmp_bench::report::smoke() {
        // One bounded run per catalogue entry; already CI-sized.
        println!("(smoke: full catalogue, already CI-sized)");
    }
    println!("=== Table 2: the executable scheduler design-space catalogue ===\n");
    println!(
        "{:<18} {:<42} {:<22} {:>5} {:>6} {:>10} {:>6}",
        "category", "goal / approach", "scheduler", "LOC", "regs", "queues", "runs"
    );
    let mut all_ok = true;
    for (cat, goal, name) in CATALOGUE {
        let program = sched::load(name).expect("bundled schedulers compile");
        let loc = program
            .source()
            .lines()
            .filter(|l| !l.trim().is_empty())
            .count();
        // Static audit (the multi-tenancy admission view).
        let audit = program.analyze();
        let regs: String = audit
            .registers_read
            .union(&audit.registers_written)
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let queues: String = audit
            .queues_read
            .iter()
            .copied()
            .collect::<Vec<_>>()
            .join(",");
        let ok = smoke_run(name);
        all_ok &= ok;
        println!(
            "{:<18} {:<42} {:<22} {:>5} {:>6} {:>10} {:>6}",
            cat,
            goal,
            name,
            loc,
            if regs.is_empty() {
                "-".into()
            } else {
                format!("R{regs}")
            },
            queues,
            if ok { "ok" } else { "FAIL" }
        );
    }
    println!(
        "\n  [{}] every design-space entry is specified, compiled, verified, and delivers data end-to-end",
        if all_ok { "ok" } else { "??" }
    );
    println!(
        "  usability reference: the kernel's C round robin is 301 LOC; the ProgMP versions above are 10-35 lines."
    );
}
