//! §5.4 "Target RTT" — a latency- and preference-aware scheduler for
//! request/response applications (voice assistants): keep request
//! latencies below a tolerable RTT, escalating to the non-preferred
//! subflow only when the preferred one violates the target.
//!
//! Scenario from the paper's motivation (reference \[13\]): around 15% of WiFi
//! samples show a *higher* RTT than LTE; during such episodes the
//! target-RTT scheduler moves traffic to LTE, the default scheduler's
//! backup semantics do not.

use mptcp_sim::time::{from_millis, SimTime, MILLIS, SECONDS};
use mptcp_sim::{
    ConnectionConfig, PathConfig, PathProfileEntry, SchedulerSpec, Sim, SubflowConfig,
};
use progmp_bench::{mean, percentile};
use progmp_core::env::RegId;
use progmp_schedulers as sched;

/// Request count: 150 for the full run, 6 under `--smoke`.
fn requests() -> u64 {
    if progmp_bench::report::smoke() {
        6
    } else {
        150
    }
}
const REQ_INTERVAL: SimTime = 100 * MILLIS;
const REQ_BYTES: u64 = 3 * 1400;

/// WiFi with periodic RTT spikes (congested episodes); LTE steady 20 ms
/// but metered. A pure min-RTT scheduler would live on LTE permanently.
fn wifi_with_spikes() -> PathConfig {
    let mut wifi = PathConfig::symmetric(from_millis(30), 1_250_000);
    // Every 8 s: a 2 s episode at 150 ms RTT (75 ms one-way).
    for k in 0..3u64 {
        wifi = wifi
            .with_profile_entry(PathProfileEntry {
                at: (8 * k + 2) * SECONDS,
                rate: None,
                loss: None,
                fwd_delay: Some(from_millis(75)),
            })
            .with_profile_entry(PathProfileEntry {
                at: (8 * k + 4) * SECONDS,
                rate: None,
                loss: None,
                fwd_delay: Some(from_millis(15)),
            });
    }
    wifi
}

fn run(scheduler: &'static str, target_rtt_us: Option<i64>, seed: u64) -> (Vec<f64>, u64) {
    let mut sim = Sim::new(seed);
    let cfg = ConnectionConfig::new(
        vec![
            SubflowConfig::new(wifi_with_spikes()),
            SubflowConfig::new(PathConfig::symmetric(from_millis(20), 1_250_000)).with_cost(1),
        ],
        SchedulerSpec::dsl(scheduler),
    )
    .with_timelines();
    let conn = sim.add_connection(cfg).unwrap();
    if let Some(t) = target_rtt_us {
        sim.set_register_at(conn, 0, RegId::R1, t);
    }
    for i in 0..requests() {
        sim.app_send_at(conn, i * REQ_INTERVAL, REQ_BYTES, 0);
    }
    sim.run_to_completion(60 * SECONDS);
    let c = &sim.connections[conn];
    // Response latency of request i: delivery of its last byte minus send time.
    let mut latencies = Vec::new();
    for i in 0..requests() {
        let end_bytes = (i + 1) * REQ_BYTES;
        if let Some(t) = c.stats.delivery_time_of(end_bytes) {
            let sent_at = i * REQ_INTERVAL;
            latencies.push(t.saturating_sub(sent_at) as f64 / 1e6);
        }
    }
    (latencies, c.stats.subflows[1].tx_bytes)
}

fn main() {
    println!("=== §5.4 target-RTT scheduler: request/response under WiFi RTT spikes ===");
    println!(
        "{} requests of {} B every {} ms; WiFi 30 ms spiking to 150 ms 2s-in-8s; LTE 20 ms, metered\n",
        requests(),
        REQ_BYTES,
        REQ_INTERVAL / MILLIS
    );
    println!(
        "{:<26} {:>11} {:>11} {:>12}",
        "scheduler", "mean (ms)", "p95 (ms)", "LTE bytes"
    );
    let mut p95s = Vec::new();
    let mut ltes = Vec::new();
    for (name, src, target) in [
        // TAP with a zero throughput target never escalates off the
        // preferred subflow: the "stay off metered LTE" strawman.
        ("WiFi-preferred only", sched::TAP, Some(0)),
        ("default", sched::DEFAULT_MIN_RTT, None),
        (
            "targetRtt+probing (50 ms)",
            sched::TARGET_RTT_PROBING,
            Some(50_000),
        ),
    ] {
        let (lat, lte) = run(src, target, 11);
        let p95 = percentile(&mut lat.clone(), 0.95);
        println!(
            "{:<26} {:>11.1} {:>11.1} {:>12}",
            name,
            mean(&lat),
            p95,
            lte
        );
        p95s.push(p95);
        ltes.push(lte);
    }

    println!("\npaper shape checks:");
    println!(
        "  [{}] staying on preferred WiFi suffers the RTT spikes (p95 {:.0} ms)",
        if p95s[0] > 60.0 { "ok" } else { "??" },
        p95s[0]
    );
    println!(
        "  [{}] the target-RTT scheduler cuts that tail latency (p95 {:.0} ms vs {:.0} ms)",
        if p95s[2] < p95s[0] * 0.8 { "ok" } else { "??" },
        p95s[2],
        p95s[0]
    );
    println!(
        "  [{}] while using no more metered LTE than the default scheduler ({} B vs {} B)",
        if ltes[2] <= ltes[1] { "ok" } else { "??" },
        ltes[2],
        ltes[1]
    );
}
