//! Criterion micro-benchmark for §4.1's calling-model decision: the cost
//! of one scheduling decision executed in-process (the in-kernel model)
//! versus dispatched to another thread over channels (the userspace
//! up-call / netlink model). Paper reference: 0.2 µs vs 2.4 µs.

use criterion::{criterion_group, criterion_main, Criterion};
use progmp_core::env::{QueueKind, SubflowProp};
use progmp_core::exec::ExecCtx;
use progmp_core::testenv::MockEnv;
use progmp_core::{compile, Backend};
use progmp_schedulers::DEFAULT_MIN_RTT;
use std::hint::black_box;
use std::sync::mpsc;

fn env() -> MockEnv {
    let mut env = MockEnv::new();
    for i in 0..2 {
        env.add_subflow(i);
        env.set_subflow_prop(i, SubflowProp::Rtt, 10_000 + i64::from(i) * 5_000);
        env.set_subflow_prop(i, SubflowProp::Cwnd, 100);
    }
    for p in 0..8u64 {
        env.push_packet(QueueKind::SendQueue, 100 + p, 1400 * p as i64, 1400);
    }
    env
}

fn bench_calling_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("calling_model");

    let program = compile(DEFAULT_MIN_RTT).unwrap();
    let mut inst = program.instantiate(Backend::Vm);
    let e = env();
    group.bench_function("in_process", |b| {
        b.iter(|| {
            let mut ctx = ExecCtx::new(black_box(&e), 1_000_000);
            inst.execute_raw(&mut ctx).unwrap();
            black_box(ctx.action_count())
        })
    });

    let (req_tx, req_rx) = mpsc::channel::<u64>();
    let (resp_tx, resp_rx) = mpsc::channel::<u64>();
    let worker = std::thread::spawn(move || {
        let program = compile(DEFAULT_MIN_RTT).unwrap();
        let mut inst = program.instantiate(Backend::Vm);
        let e = env();
        while let Ok(x) = req_rx.recv() {
            if x == u64::MAX {
                break;
            }
            let mut ctx = ExecCtx::new(&e, 1_000_000);
            inst.execute_raw(&mut ctx).unwrap();
            if resp_tx.send(x).is_err() {
                break;
            }
        }
    });
    group.bench_function("upcall_roundtrip", |b| {
        b.iter(|| {
            req_tx.send(1).unwrap();
            black_box(resp_rx.recv().unwrap())
        })
    });
    req_tx.send(u64::MAX).unwrap();
    worker.join().expect("worker exits");
    group.finish();
}

criterion_group!(benches, bench_calling_model);
criterion_main!(benches);
