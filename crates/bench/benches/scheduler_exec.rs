//! Criterion micro-benchmark for Fig. 9 (top): per-execution cost of the
//! default scheduler across the three ProgMP backends and the native
//! implementation, at 2 and 4 subflows.
//!
//! Paper reference: interpreter ~144% and eBPF ~125% of the native C
//! scheduler's execution time; the subflow count has marginal impact.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mptcp_sim::native::{NativeMinRtt, NativeScheduler};
use progmp_core::env::{QueueKind, SubflowProp};
use progmp_core::exec::ExecCtx;
use progmp_core::testenv::MockEnv;
use progmp_core::{compile, Backend};
use progmp_schedulers::DEFAULT_MIN_RTT;
use std::hint::black_box;

fn env_with(n: u32) -> MockEnv {
    let mut env = MockEnv::new();
    for i in 0..n {
        env.add_subflow(i);
        env.set_subflow_prop(i, SubflowProp::Rtt, 10_000 + i64::from(i) * 5_000);
        env.set_subflow_prop(i, SubflowProp::Cwnd, 100);
        env.set_subflow_prop(i, SubflowProp::Mss, 1400);
    }
    for p in 0..16u64 {
        env.push_packet(QueueKind::SendQueue, 100 + p, 1400 * p as i64, 1400);
    }
    env
}

fn bench_backends(c: &mut Criterion) {
    let program = compile(DEFAULT_MIN_RTT).expect("compiles");
    let mut group = c.benchmark_group("scheduler_exec");
    for n in [2u32, 4] {
        let env = env_with(n);
        let mut native = NativeMinRtt;
        group.bench_with_input(BenchmarkId::new("native", n), &n, |b, _| {
            b.iter(|| {
                let mut ctx = ExecCtx::new(black_box(&env), 1_000_000);
                native.schedule(&mut ctx).unwrap();
                black_box(ctx.action_count())
            })
        });
        for backend in [Backend::Interpreter, Backend::Aot, Backend::Vm] {
            let mut inst = program.instantiate(backend);
            group.bench_with_input(BenchmarkId::new(backend.name(), n), &n, |b, _| {
                b.iter(|| {
                    let mut ctx = ExecCtx::new(black_box(&env), 1_000_000);
                    inst.execute_raw(&mut ctx).unwrap();
                    black_box(ctx.action_count())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
