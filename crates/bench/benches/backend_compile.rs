//! Criterion micro-benchmark for scheduler loading: the cost of the full
//! compilation pipeline (parse → sema → optimize → codegen → regalloc →
//! verify) and of per-backend instantiation. The paper's API encourages
//! applications to reuse loaded schedulers "to reduce compilation
//! overhead" — this measures what that reuse saves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use progmp_core::{compile, Backend};
use progmp_schedulers as sched;
use std::hint::black_box;

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile");
    for (name, src) in [
        ("minRttSimple", sched::MIN_RTT_SIMPLE),
        ("default", sched::DEFAULT_MIN_RTT),
        ("tap", sched::TAP),
    ] {
        group.bench_with_input(BenchmarkId::new("pipeline", name), &src, |b, src| {
            b.iter(|| black_box(compile(src).unwrap()))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("instantiate");
    let program = compile(sched::DEFAULT_MIN_RTT).unwrap();
    for backend in [Backend::Interpreter, Backend::Aot, Backend::Vm] {
        group.bench_with_input(
            BenchmarkId::new("backend", backend.name()),
            &backend,
            |b, backend| b.iter(|| black_box(program.instantiate(*backend))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
