//! Event-queue equivalence tier: the hierarchical timing wheel
//! ([`CalendarQueue`]) must pop in *exactly* the order of the
//! `BinaryHeap<Reverse<(time, seq)>>` it replaced — the engine's golden
//! snapshots and the fleet determinism guarantee both ride on this.
//!
//! The property test drives both structures through the same randomized
//! schedule of pushes and pops. Time generation is deliberately biased
//! toward the adversarial cases: exact same-tick ties, sub-microsecond
//! distinct times inside one tick, cross-level jumps, and events beyond
//! the 2^32-µs wheel horizon (the overflow heap).

use mptcp_sim::CalendarQueue;
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One step of a schedule.
#[derive(Debug, Clone)]
enum Op {
    /// Push an event at this absolute time (ns).
    Push(u64),
    /// Pop up to this many events.
    Pop(u8),
}

/// Event times biased toward tie and boundary cases.
fn event_time() -> impl Strategy<Value = u64> {
    prop_oneof![
        // Exact-tick ties: many events landing on the same µs tick.
        4 => (0u64..32).prop_map(|t| t * 1_000),
        // Sub-tick times: distinct ns inside a shared tick.
        4 => 0u64..50_000,
        // Cross-level: spread over all four wheel levels.
        2 => 0u64..10_000_000_000_000,
        // Past the 2^32-µs wheel horizon: the overflow heap.
        1 => 4_400_000_000_000_000u64..4_500_000_000_000_000,
    ]
}

fn schedule() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            3 => event_time().prop_map(Op::Push),
            1 => (1u8..6).prop_map(Op::Pop),
        ],
        1..200,
    )
}

proptest! {
    /// For every randomized schedule, the wheel and a reference binary
    /// heap ordered by `(time, seq)` pop identical sequences.
    #[test]
    fn wheel_matches_reference_heap(ops in schedule()) {
        let mut wheel = CalendarQueue::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut next_seq = 0u64;
        for op in ops {
            match op {
                Op::Push(t) => {
                    wheel.push(t, next_seq);
                    heap.push(Reverse((t, next_seq)));
                    next_seq += 1;
                }
                Op::Pop(n) => {
                    for _ in 0..n {
                        let expect = heap.pop().map(|Reverse((t, s))| (t, s));
                        prop_assert_eq!(wheel.pop(), expect);
                        if expect.is_none() {
                            break;
                        }
                    }
                }
            }
            prop_assert_eq!(wheel.len(), heap.len());
        }
        // Drain: the tails must agree too.
        while let Some(Reverse((t, s))) = heap.pop() {
            prop_assert_eq!(wheel.pop(), Some((t, s)));
        }
        prop_assert_eq!(wheel.pop(), None);
        prop_assert!(wheel.is_empty());
    }

    /// Pushes that land at or before the wheel's already-advanced cursor
    /// (possible when the engine schedules a zero-delay follow-up) still
    /// pop in global `(time, seq)` order.
    #[test]
    fn past_inserts_stay_ordered(
        first in 1_000u64..1_000_000,
        later in proptest::collection::vec(0u64..2_000_000, 1..40),
    ) {
        let mut wheel = CalendarQueue::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        wheel.push(first, 0);
        heap.push(Reverse((first, 0)));
        // Advance the cursor to `first`'s tick...
        prop_assert_eq!(wheel.pop(), heap.pop().map(|Reverse(k)| k));
        // ...then insert times on both sides of it.
        for (i, t) in later.iter().enumerate() {
            let seq = i as u64 + 1;
            wheel.push(*t, seq);
            heap.push(Reverse((*t, seq)));
        }
        while let Some(Reverse(k)) = heap.pop() {
            prop_assert_eq!(wheel.pop(), Some(k));
        }
        prop_assert!(wheel.is_empty());
    }
}

/// The tie-break rule, pinned as a plain regression test: events with
/// identical simulated times pop in insertion order, regardless of
/// which structure (due list, wheel slot, overflow heap) they traverse.
#[test]
fn same_time_ties_resolve_in_insertion_order() {
    let mut q = CalendarQueue::new();
    for tag in 0..8 {
        q.push(5_000, ("five-us", tag));
    }
    for tag in 0..8 {
        // Same tick via the overflow heap as well.
        q.push(4_400_000_000_005_000, ("overflow", tag));
    }
    for tag in 0..8 {
        assert_eq!(q.pop(), Some((5_000, ("five-us", tag))));
    }
    for tag in 0..8 {
        assert_eq!(q.pop(), Some((4_400_000_000_005_000, ("overflow", tag))));
    }
    assert_eq!(q.pop(), None);
}

/// `next_time` agrees with the reference heap's peek across a mixed
/// schedule, and never disturbs pop order.
#[test]
fn next_time_matches_peek() {
    let times = [
        7_300u64,
        7_300,
        1_000,
        999,
        4_400_000_000_000_123,
        250 * 1_000,
        70_000 * 1_000,
        10_000_000 * 1_000,
    ];
    let mut wheel = CalendarQueue::new();
    let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
    for (seq, &t) in times.iter().enumerate() {
        wheel.push(t, seq as u64);
        heap.push(Reverse((t, seq as u64)));
    }
    while let Some(Reverse((t, s))) = heap.pop() {
        assert_eq!(wheel.next_time(), Some(t));
        assert_eq!(wheel.pop(), Some((t, s)));
    }
    assert_eq!(wheel.next_time(), None);
}
