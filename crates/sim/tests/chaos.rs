//! End-to-end tests for the deterministic fault-injection layer and the
//! runtime invariant oracle: per-path RNG stream isolation, fault-plan
//! determinism, and the oracle's ability to catch a real conservation
//! bug.

use mptcp_sim::time::{from_millis, SECONDS};
use mptcp_sim::{
    ConnectionConfig, FaultClause, FaultPlan, PathConfig, SchedulerSpec, Sim, SubflowConfig,
};

fn scheduler_src(name: &str) -> &'static str {
    progmp_schedulers::sources::ALL
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, s)| *s)
        .expect("known scheduler")
}

fn lossy_cfg(rtts_ms: &[u64], loss: f64, scheduler: &str) -> ConnectionConfig {
    ConnectionConfig::new(
        rtts_ms
            .iter()
            .map(|ms| {
                SubflowConfig::new(
                    PathConfig::symmetric(from_millis(*ms), 1_250_000).with_loss(loss),
                )
            })
            .collect(),
        SchedulerSpec::dsl(scheduler_src(scheduler)),
    )
}

fn conn0_fingerprint(sim: &Sim) -> (String, u64, u64) {
    let c = &sim.connections[0];
    (
        c.stats.snapshot_text(),
        c.stats.reinjections,
        c.receiver.delivered_total,
    )
}

/// Satellite regression test for the RNG audit: loss/jitter draws come
/// from per-path streams keyed by `(sim seed, conn, sbf)`, so adding a
/// second (lossy, chattering) connection to the simulation must not
/// perturb the first connection's draws in any way. Before the audit a
/// single engine-level RNG made every connection's losses depend on the
/// global event interleaving.
#[test]
fn per_path_streams_isolate_connections_from_each_other() {
    let solo = {
        let mut sim = Sim::new(42);
        let conn = sim
            .add_connection(lossy_cfg(&[10, 40], 0.04, "default"))
            .unwrap();
        sim.app_send_at(conn, 0, 200_000, 0);
        sim.run_to_completion(300 * SECONDS);
        conn0_fingerprint(&sim)
    };
    let shared = {
        let mut sim = Sim::new(42);
        let conn = sim
            .add_connection(lossy_cfg(&[10, 40], 0.04, "default"))
            .unwrap();
        // A second connection whose own draws interleave with conn 0's
        // events throughout the run.
        let other = sim
            .add_connection(lossy_cfg(&[7, 23, 55], 0.08, "roundRobin"))
            .unwrap();
        sim.app_send_at(conn, 0, 200_000, 0);
        sim.add_bulk_source(other, 400_000, 0);
        sim.run_to_completion(300 * SECONDS);
        conn0_fingerprint(&sim)
    };
    assert_eq!(
        solo, shared,
        "conn 0 must be bit-identical with or without a neighbour"
    );
}

/// Fault clauses install themselves via scheduled events; because every
/// draw comes from the affected path's own stream, the order the clauses
/// are inserted into the plan (and hence into the event heap) is
/// immaterial to the resulting trace.
#[test]
fn permuted_fault_clause_insertion_order_is_immaterial() {
    let clauses = vec![
        FaultClause::Blackout {
            sbf: 0,
            from: from_millis(40),
            until: from_millis(400),
        },
        FaultClause::BurstLoss {
            sbf: 1,
            from: from_millis(10),
            until: from_millis(900),
            p_enter_bad: 40_000,
            p_exit_bad: 300_000,
            loss_bad: 600_000,
        },
        FaultClause::DelayJitter {
            sbf: 1,
            from: from_millis(0),
            until: from_millis(1_500),
            amplitude: from_millis(6),
        },
    ];
    let run = |order: Vec<FaultClause>| {
        let mut sim = Sim::new(9);
        sim.enable_oracle("chaos-permute", true);
        let conn = sim
            .add_connection(lossy_cfg(&[10, 40], 0.01, "default"))
            .unwrap();
        sim.add_bulk_source(conn, 300_000, 0);
        sim.apply_fault_plan(conn, &FaultPlan { clauses: order });
        sim.run_to_completion(300 * SECONDS);
        assert!(sim.oracle_violations().is_empty());
        conn0_fingerprint(&sim)
    };
    let forward = run(clauses.clone());
    let reversed = run(clauses.into_iter().rev().collect());
    assert_eq!(forward, reversed);
}

/// Generated fault plans are a pure function of the seed, and replaying
/// the same seed gives a bit-identical simulation — the replay workflow
/// the oracle's panic message points at.
#[test]
fn generated_plans_replay_bit_identically() {
    for seed in 0..8u64 {
        let plan = FaultPlan::generate(seed, 2, 2 * SECONDS);
        assert_eq!(
            plan.render(),
            FaultPlan::generate(seed, 2, 2 * SECONDS).render()
        );
        assert!(!plan.clauses.is_empty());
        let run = || {
            let mut sim = Sim::new(seed);
            sim.enable_oracle(format!("chaos-replay-{seed}"), true);
            let conn = sim
                .add_connection(lossy_cfg(&[10, 40], 0.02, "default"))
                .unwrap();
            sim.add_bulk_source(conn, 150_000, 0);
            sim.apply_fault_plan(conn, &plan);
            sim.run_to_completion(300 * SECONDS);
            assert!(
                sim.oracle_violations().is_empty(),
                "seed {seed}: {:?}",
                sim.oracle_violations()
            );
            conn0_fingerprint(&sim)
        };
        assert_eq!(run(), run(), "seed {seed} must replay identically");
    }
}

/// The oracle's reason to exist: a deliberately injected conservation
/// bug (duplicate segments re-counted as delivered) must be caught. The
/// redundant scheduler guarantees duplicate arrivals, so the bug fires
/// deterministically.
#[test]
fn oracle_catches_injected_double_delivery() {
    let mut sim = Sim::new(3);
    sim.enable_oracle("chaos-mutation", false);
    let conn = sim
        .add_connection(lossy_cfg(&[10, 40], 0.0, "redundant"))
        .unwrap();
    sim.connections[conn].receiver.inject_double_delivery_bug();
    sim.app_send_at(conn, 0, 50_000, 0);
    sim.run_to_completion(60 * SECONDS);
    let violations = sim.oracle_violations();
    assert!(
        violations
            .iter()
            .any(|v| v.invariant == "conservation-delivery"),
        "expected a conservation-delivery violation, got {violations:?}"
    );
}

/// Without the bug, the identical redundant scenario is clean — the
/// oracle does not cry wolf on legitimate duplicate suppression.
#[test]
fn oracle_is_silent_on_legitimate_redundant_duplicates() {
    let mut sim = Sim::new(3);
    sim.enable_oracle("chaos-clean", true);
    let conn = sim
        .add_connection(lossy_cfg(&[10, 40], 0.0, "redundant"))
        .unwrap();
    sim.app_send_at(conn, 0, 50_000, 0);
    sim.run_to_completion(60 * SECONDS);
    assert!(sim.oracle_violations().is_empty());
}
