//! Property tests for the receiver: any arrival order — including
//! duplicates from redundant transmission — yields exactly-once, in-order
//! delivery, and the improved receiver (paper §4.2) never delivers later
//! than the legacy multi-layer-queue receiver.

use mptcp_sim::receiver::{Receiver, ReceiverMode};
use progmp_core::env::PacketRef;
use proptest::prelude::*;

/// A synthetic packet: (data_seq implied by index, subflow, size).
fn arrival_plan() -> impl Strategy<Value = (Vec<(usize, u32)>, Vec<usize>, usize)> {
    // n packets of fixed size distributed over k subflows, then a
    // shuffled arrival order with some duplicates appended.
    (2usize..20, 1u32..4).prop_flat_map(|(n, k)| {
        let assignment = proptest::collection::vec(0u32..k, n);
        let order = Just((0..n).collect::<Vec<_>>()).prop_shuffle();
        let dups = proptest::collection::vec(0..n, 0..5);
        (assignment, order, dups, Just(n)).prop_map(|(assign, order, dups, n)| {
            let pkts: Vec<(usize, u32)> = assign.into_iter().enumerate().collect();
            let mut seq = order;
            seq.extend(dups);
            (pkts, seq, n)
        })
    })
}

const SIZE: u32 = 1000;

/// Replays the plan against a receiver, returning the delivery times
/// (arrival index at which each cumulative byte count was reached).
fn replay(
    mode: ReceiverMode,
    pkts: &[(usize, u32)],
    order: &[usize],
    n_subflows: usize,
) -> (u64, Vec<u64>) {
    let mut rx = Receiver::new(mode, n_subflows, 1 << 20);
    // Per-subflow sequence numbers in transmission order (the order the
    // packets were assigned, which is data order here).
    let mut sbf_seq = vec![0u64; n_subflows];
    let mut assigned: Vec<(u64, u64)> = Vec::new(); // (sbf_seq, data_seq) per packet
    for &(i, sbf) in pkts {
        assigned.push((sbf_seq[sbf as usize], i as u64 * u64::from(SIZE)));
        sbf_seq[sbf as usize] += 1;
    }
    let mut cumulative = Vec::new();
    for &p in order {
        let (sseq, dseq) = assigned[p];
        let sbf = pkts[p].1 as usize;
        rx.on_arrival(sbf, sseq, dseq, PacketRef(p as u64), SIZE);
        cumulative.push(rx.delivered_total);
    }
    (rx.delivered_total, cumulative)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Exactly-once delivery under any reordering and duplication.
    #[test]
    fn exactly_once_in_order((pkts, order, n) in arrival_plan()) {
        let (total, cumulative) = replay(ReceiverMode::Improved, &pkts, &order, 3);
        prop_assert_eq!(total, n as u64 * u64::from(SIZE), "every byte delivered exactly once");
        // Monotone non-decreasing cumulative delivery.
        for w in cumulative.windows(2) {
            prop_assert!(w[1] >= w[0]);
        }
    }

    /// The improved receiver delivers at least as early as the legacy
    /// receiver at every arrival step (the §4.2 claim).
    #[test]
    fn improved_dominates_legacy((pkts, order, n) in arrival_plan()) {
        let (_, improved) = replay(ReceiverMode::Improved, &pkts, &order, 3);
        let (legacy_total, legacy) = replay(ReceiverMode::Legacy, &pkts, &order, 3);
        for (i, (a, b)) in improved.iter().zip(legacy.iter()).enumerate() {
            prop_assert!(a >= b, "improved receiver fell behind legacy at arrival {i}");
        }
        // Legacy still delivers everything eventually (no arrival losses
        // in this plan).
        prop_assert_eq!(legacy_total, n as u64 * u64::from(SIZE));
    }
}
